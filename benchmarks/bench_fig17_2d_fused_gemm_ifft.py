"""Figure 17: 2-D fused CGEMM-iFFT.

Paper result: maintains 50-100 % over PyTorch; adds ~1-3 % over the
FFT-only optimisation on the batch sweeps.
"""

from _series import record_sweep_figure

from repro.analysis import figures
from repro.core.stages import FusionStage


def _build():
    return figures.fig17()


def test_fig17_2d_fused_gemm_ifft(benchmark, record):
    panels = benchmark(_build)
    stats = record_sweep_figure(
        record, "fig17_2d_fused_gemm_ifft", panels,
        FusionStage.FUSED_GEMM_IFFT,
        "50-100% vs PyTorch, +1-3% over FFT-only on BS sweeps",
    )
    assert stats["mean"] > 50.0
    for panel in panels[1:]:  # BS sweeps
        for a, c in zip(
            panel.series[FusionStage.FFT_OPT],
            panel.series[FusionStage.FUSED_GEMM_IFFT],
        ):
            assert c >= a - 1e-9  # consistent (small) improvement
