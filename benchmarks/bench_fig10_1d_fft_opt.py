"""Figure 10: 1-D FFT pruning, truncation and zero-padding (stage A).

Paper result: up to 100 % speedup over PyTorch, ~50 % average; 70-100 % at
small K settling near 50 %; speedup grows with problem size.
"""

from _series import record_sweep_figure

from repro.analysis import figures
from repro.core.stages import FusionStage


def _build():
    return figures.fig10()


def test_fig10_1d_fft_opt(benchmark, record):
    panels = benchmark(_build)
    stats = record_sweep_figure(
        record, "fig10_1d_fft_opt", panels, FusionStage.FFT_OPT,
        "avg ~50% vs PyTorch, 70-100% at small K, grows with BS",
    )
    k_panel = panels[0]
    series = k_panel.series[FusionStage.FFT_OPT]
    assert series[0] > series[-1]  # declines with K
    assert 25.0 < stats["mean"] < 75.0
