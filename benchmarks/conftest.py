"""Shared helpers for the figure-regeneration benchmark harness.

Every ``bench_figNN_*`` module regenerates one paper artifact on the
execution model, times the regeneration with pytest-benchmark, and records
the rendered series under ``benchmarks/results/`` so EXPERIMENTS.md can be
cross-checked against a fresh run.

The ``benchmark`` fixture is wrapped so every timed call starts with a
cold :mod:`repro.api` plan cache: the figure benchmarks measure pipeline
compilation + modelling, and without the wrap every round after the first
would be cache-hit bookkeeping (and depend on which bench ran earlier in
the session).  Benchmarks that intentionally measure warm-cache behavior
opt out with ``@pytest.mark.keep_plan_cache``.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "keep_plan_cache: don't clear the repro.api plan cache around timed "
        "calls (for benchmarks that measure warm-cache behavior)",
    )


@pytest.fixture(autouse=True)
def _cold_plan_cache(request, monkeypatch):
    """Make every ``benchmark(fn)`` round start with a cold plan cache.

    pytest-benchmark refuses a redefined ``benchmark`` fixture, so the
    wrap happens on ``BenchmarkFixture.__call__`` instead (monkeypatch is
    restored per test).  The clear itself is microseconds against the
    millisecond-scale builds being timed.
    """
    if request.node.get_closest_marker("keep_plan_cache"):
        return
    try:
        from pytest_benchmark.fixture import BenchmarkFixture
    except ImportError:  # plugin absent: nothing is timed anyway
        return

    from repro.api import clear_plan_cache

    orig_call = BenchmarkFixture.__call__

    def cold_call(self, function_to_benchmark, *args, **kwargs):
        def cold(*a, **k):
            clear_plan_cache()
            return function_to_benchmark(*a, **k)

        cold.__name__ = getattr(function_to_benchmark, "__name__", "cold")
        return orig_call(self, cold, *args, **kwargs)

    monkeypatch.setattr(BenchmarkFixture, "__call__", cold_call)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record(results_dir):
    """Write one artifact's rendered output to results/<name>.txt."""

    def _write(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        # Also echo a compact header so `pytest -s` shows progress.
        first = text.splitlines()[0] if text else ""
        print(f"[{name}] {first}")

    return _write
