"""Shared helpers for the figure-regeneration benchmark harness.

Every ``bench_figNN_*`` module regenerates one paper artifact on the
execution model, times the regeneration with pytest-benchmark, and records
the rendered series under ``benchmarks/results/`` so EXPERIMENTS.md can be
cross-checked against a fresh run.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record(results_dir):
    """Write one artifact's rendered output to results/<name>.txt."""

    def _write(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        # Also echo a compact header so `pytest -s` shows progress.
        first = text.splitlines()[0] if text else ""
        print(f"[{name}] {first}")

    return _write
