#!/usr/bin/env python
"""Pruned R2C/C2R plans vs the full compiled transform plus slice/pad.

The pruned real-transform family
(:class:`repro.fft.compiled.CompiledPrunedRFFTPlan` /
``CompiledPrunedIRFFTPlan``) fuses spectrum truncation *into* the
half-length packed-real decomposition: with ``modes`` kept bins out of
``n//2 + 1``, the forward path runs ``n/2 / q``-way sub-transforms of
length ``q = next_pow2(modes)`` and recombines only the kept bins; the
inverse synthesises from the truncated half spectrum without ever
materialising the Hermitian completion.  The baseline here is the best
non-fused strategy this repo has: the *compiled* full R2C plan plus a
slice (forward) and zero-padding plus the compiled full C2R plan
(inverse) — i.e. the win measured is pruning alone, not plan caching.

Every case hard-asserts agreement with ``numpy.fft`` and the legacy
oracle (:mod:`repro.fft.legacy`) to working precision, and determinism
(byte-identical repeat executions) within the pruned plan family.

Exit status is the CI gate: non-zero when the geometric-mean speedup
over the grid (forward and inverse cases pooled, all at
``modes <= n/8``) falls below 1.3x (0.9x when the C kernels are
unavailable and everything runs the slower NumPy substrate, where the
per-stage overheads weigh more against the pruned work savings).

Usage::

    PYTHONPATH=src python benchmarks/bench_rfft_pruned.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import math
import os
import pathlib
import platform
import sys
import time

import numpy as np

from repro.fft import legacy
from repro.fft._ckernels import build_info, kernels_available
from repro.fft.real import irfft, padded_irfft, rfft, truncated_rfft

RESULTS = pathlib.Path(__file__).parent / "results"

#: (rows, n, modes) — serving-scale grid lengths at deep truncation
#: (modes <= n/8, the regime the symmetric rollout layers run in).
CASES = {
    "quick": [(256, 2048, 32), (128, 1024, 16)],
    "full": [(128, 1024, 16), (128, 1024, 32), (128, 1024, 64),
             (64, 2048, 32), (64, 2048, 128), (256, 2048, 32),
             (32, 4096, 32)],
}

DTYPES = {"quick": [np.float32], "full": [np.float32, np.float64]}


def _timeit(fn, repeats: int) -> float:
    fn()  # warm (plan build / workspace growth outside the timing)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _assert_close(got, ref, dtype, what):
    atol = 1e-3 if np.dtype(dtype) in (np.dtype(np.float32),
                                       np.dtype(np.complex64)) else 1e-9
    if not np.allclose(got, ref, atol=atol):
        raise SystemExit(
            f"{what}: pruned output disagrees with the oracle "
            f"(max err {np.abs(got - ref).max():.3g})"
        )


def _assert_deterministic(fn, what):
    a, b = fn(), fn()
    if not np.array_equal(a.view(a.real.dtype), b.view(b.real.dtype)):
        raise SystemExit(f"{what}: repeat execution not byte-identical")


def _pad(yk, n):
    padded = np.zeros((yk.shape[0], n // 2 + 1), yk.dtype)
    padded[:, : yk.shape[1]] = yk
    return padded


def bench_direction(cases, dtypes, repeats, rng, inverse: bool):
    rows_out = []
    for (rows, n, modes) in cases:
        for dtype in dtypes:
            cdtype = np.complex64 if dtype == np.float32 else np.complex128
            if inverse:
                yk = np.fft.rfft(rng.standard_normal((rows, n)))[
                    :, :modes
                ].astype(cdtype)
                yk = np.ascontiguousarray(yk)
                pruned_fn = lambda: padded_irfft(yk, n)
                full_fn = lambda: irfft(_pad(yk, n), n)
                ref = np.fft.irfft(_pad(yk.astype(np.complex128), n), n)
                oracle = legacy.irfft(_pad(yk.astype(np.complex128), n), n)
            else:
                x = rng.standard_normal((rows, n)).astype(dtype)
                pruned_fn = lambda: truncated_rfft(x, modes)
                full_fn = lambda: np.ascontiguousarray(rfft(x)[:, :modes])
                ref = np.fft.rfft(x.astype(np.float64))[:, :modes]
                oracle = legacy.rfft(x)[:, :modes]
            got = pruned_fn()
            name = (f"{'padded_irfft' if inverse else 'truncated_rfft'} "
                    f"rows={rows} n={n} m={modes} {np.dtype(dtype).name}")
            _assert_close(got, ref, dtype, f"{name} vs numpy")
            _assert_close(got, oracle, dtype, f"{name} vs legacy")
            _assert_deterministic(pruned_fn, name)
            t_full = _timeit(full_fn, repeats)
            t_pruned = _timeit(pruned_fn, repeats)
            rows_out.append({
                "case": name,
                "full_ms": t_full * 1e3,
                "pruned_ms": t_pruned * 1e3,
                "speedup": t_full / t_pruned,
                "oracle_agreement": True,
            })
    return rows_out


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="small grid (the CI gate)")
    ap.add_argument("--repeats", type=int, default=None)
    ap.add_argument("--out", default=str(RESULTS / "rfft_pruned.json"))
    args = ap.parse_args(argv)

    mode = "quick" if args.quick else "full"
    repeats = args.repeats or (5 if args.quick else 9)
    rng = np.random.default_rng(0)

    fwd = bench_direction(CASES[mode], DTYPES[mode], repeats, rng,
                          inverse=False)
    inv = bench_direction(CASES[mode], DTYPES[mode], repeats, rng,
                          inverse=True)
    all_rows = fwd + inv
    geomean = math.exp(
        sum(math.log(r["speedup"]) for r in all_rows) / len(all_rows)
    )

    report = {
        "meta": {
            "mode": mode,
            "repeats": repeats,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
            "ckernels": kernels_available(),
            "ckernels_info": build_info(),
        },
        "truncated_rfft": fwd,
        "padded_irfft": inv,
        "grid_speedup_geomean": geomean,
        "grid_speedup_min": min(r["speedup"] for r in all_rows),
    }

    out = pathlib.Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")

    print(f"# pruned vs full-R2C+slice / pad+full-C2R ({mode}; C kernels: "
          f"{report['meta']['ckernels_info']})")
    for row in all_rows:
        print(f"  {row['case']}: {row['full_ms']:8.2f} ms -> "
              f"{row['pruned_ms']:8.2f} ms ({row['speedup']:.2f}x)")

    # CI gate: pruning must pay for itself at deep truncation.
    floor = 1.3 if report["meta"]["ckernels"] else 0.9
    if geomean < floor:
        print(f"FAIL: pruned real-transform path at {geomean:.2f}x "
              f"(geomean) < {floor:.2f}x of full-transform+slice",
              file=sys.stderr)
        return 1
    print(f"OK: pruned real transforms at {geomean:.2f}x (geomean) >= "
          f"{floor:.2f}x of full-transform+slice")
    return 0


if __name__ == "__main__":
    sys.exit(main())
