"""Figure 12: 1-D fused CGEMM-iFFT (stage C vs stages A and B).

Paper result: at least 50 % over PyTorch across the shown sizes thanks to
the 100 % bank-conflict-free epilogue; more robust at large K than stage B.
"""

from _series import record_sweep_figure

from repro.analysis import figures
from repro.core.stages import FusionStage


def _build():
    return figures.fig12()


def test_fig12_1d_fused_gemm_ifft(benchmark, record):
    panels = benchmark(_build)
    record_sweep_figure(
        record, "fig12_1d_fused_gemm_ifft", panels, FusionStage.FUSED_GEMM_IFFT,
        ">=50% vs PyTorch on the K sweep; robust at large K",
    )
    k_panel = panels[0]
    c = k_panel.series[FusionStage.FUSED_GEMM_IFFT]
    b = k_panel.series[FusionStage.FUSED_FFT_GEMM]
    assert all(v > 25.0 for v in c)   # stays well ahead of PyTorch
    assert c[-1] > b[-1]              # beats stage B at the largest K
