"""Figure 14: 1-D TurboFNO (best of all stages) vs PyTorch heatmaps.

Four panels over K x log2(M): FFT size 128/256, filter N = 64/128.
Paper result: average +44 %, maximum +250 %; slowdowns (blue) confined to
small batch x large hidden dimension.
"""

import numpy as np

from _series import record_heatmap_figure

from repro.analysis import figures


def _build():
    return figures.fig14()


def test_fig14_1d_heatmap(benchmark, record):
    panels = benchmark(_build)
    mean, best, worst = record_heatmap_figure(
        record, "fig14_1d_heatmap", panels,
        "average +44%, max +250%, blue region at small M x large K",
    )
    assert 20.0 < mean < 70.0     # paper: 44 %
    assert best > 100.0           # paper: up to 250 %
    # The blue region exists but never covers large-M cells.
    for hm in panels:
        neg = hm.values < 0
        big_m = np.asarray(hm.rows) >= 15
        assert not neg[big_m, :].any()
