"""Ablation: what the Figure 7/8 swizzles are worth end to end.

The paper motivates its shared-memory layouts by per-warp bank
utilization; this ablation closes the loop by running the fully fused
pipeline with the naive layouts' utilizations (Fig. 7b: 6.25 %, Fig. 7a /
Fig. 8a: 25 %) plugged into the execution model, quantifying the
end-to-end cost of skipping each swizzle.
"""

from repro.core.config import FNO1DProblem, TurboFNOConfig
from repro.core.pipeline_model import build_pipeline_1d
from repro.core.stages import FusionStage
from repro.gpu.timeline import speedup_percent

PROBLEM = FNO1DProblem.from_m_spatial(2**20, hidden=64, dim_x=128, modes=64)

CONFIGS = {
    "swizzled (TurboFNO)": TurboFNOConfig(),
    "naive epilogue (Fig. 8a, 25%)": TurboFNOConfig(
        epilogue_bank_utilization=0.25
    ),
    "vkfft forward (Fig. 7a, 25%)": TurboFNOConfig(
        forward_bank_utilization=0.25
    ),
    "naive writeback (Fig. 7b, 6.25%)": TurboFNOConfig(
        forward_bank_utilization=0.0625
    ),
    "all naive": TurboFNOConfig(
        forward_bank_utilization=0.0625, epilogue_bank_utilization=0.25
    ),
}


def _build():
    return {
        name: build_pipeline_1d(PROBLEM, FusionStage.FUSED_ALL, cfg).total_time()
        for name, cfg in CONFIGS.items()
    }


def test_ablation_swizzle(benchmark, record):
    times = benchmark(_build)
    best = times["swizzled (TurboFNO)"]
    lines = ["fused FFT-CGEMM-iFFT, 1-D reference problem (M=2^20, K=64)"]
    for name, t in times.items():
        lines.append(
            f"  {name:<34s} {t * 1e3:7.3f} ms "
            f"({speedup_percent(t, best):+6.1f}% for the swizzle)"
        )
    record("ablation_swizzle", "\n".join(lines))
    # Every naive layout costs time; the 6.25 % write-back costs the most.
    assert all(t >= best for t in times.values())
    assert times["naive writeback (Fig. 7b, 6.25%)"] > times[
        "vkfft forward (Fig. 7a, 25%)"
    ]
