#!/usr/bin/env python
"""Compiled packed-real R2C/C2R plans vs the legacy full-C2C strategy.

The legacy real-transform path (frozen in :mod:`repro.fft.legacy`)
computes the *full* C2C transform and slices the half spectrum
(``rfft``) or explicitly materialises the Hermitian completion and
inverse-transforms it (``irfft``).  The compiled plans
(:class:`repro.fft.compiled.CompiledRFFTPlan` / ``CompiledIRFFTPlan``)
run one half-length Stockham transform through the cached plan layer
plus a single recombination stage — half the butterfly work and, on the
inverse side, none of the completion traffic.

Every case hard-asserts agreement with ``numpy.fft.rfft/irfft`` and the
legacy oracle to working precision, and determinism (byte-identical
repeat executions) within the compiled plan family.

Exit status is the CI gate: non-zero when the compiled path is slower
than the legacy full-C2C path on any grid case (tolerance 0.85x when
the C kernels are unavailable and both paths run the same NumPy
substrate).  The acceptance bar for the plan family is >= 1.5x on the
benchmark grid, reported as ``grid_speedup``.

Usage::

    PYTHONPATH=src python benchmarks/bench_rfft_compiled.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

import numpy as np

from repro.fft import legacy
from repro.fft._ckernels import build_info, kernels_available
from repro.fft.real import irfft, rfft

RESULTS = pathlib.Path(__file__).parent / "results"

#: (rows, n) — batched 1-D transforms over the training-stack regime
#: (the repro.nn hot path runs batch*channels rows of the grid length).
CASES = {
    "quick": [(256, 128), (128, 256)],
    "full": [(64, 128), (256, 128), (128, 256), (512, 256),
             (256, 512), (64, 1024)],
}

DTYPES = {"quick": [np.float32], "full": [np.float32, np.float64]}


def _timeit(fn, repeats: int) -> float:
    fn()  # warm (plan build / workspace growth outside the timing)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _assert_close(got, ref, dtype, what):
    atol = 1e-3 if np.dtype(dtype) in (np.dtype(np.float32),
                                       np.dtype(np.complex64)) else 1e-9
    if not np.allclose(got, ref, atol=atol):
        raise SystemExit(
            f"{what}: compiled output disagrees with the oracle "
            f"(max err {np.abs(got - ref).max():.3g})"
        )


def _assert_deterministic(fn, what):
    a, b = fn(), fn()
    if not np.array_equal(a.view(a.real.dtype), b.view(b.real.dtype)):
        raise SystemExit(f"{what}: repeat execution not byte-identical")


def bench_direction(cases, dtypes, repeats, rng, inverse: bool):
    rows_out = []
    for (rows, n) in cases:
        for dtype in dtypes:
            if inverse:
                x = np.fft.rfft(rng.standard_normal((rows, n))).astype(
                    np.complex64 if dtype == np.float32 else np.complex128
                )
                compiled_fn = lambda: irfft(x, n)
                legacy_fn = lambda: legacy.irfft(x, n)
                ref = np.fft.irfft(x.astype(np.complex128), n)
            else:
                x = rng.standard_normal((rows, n)).astype(dtype)
                compiled_fn = lambda: rfft(x)
                legacy_fn = lambda: legacy.rfft(x)
                ref = np.fft.rfft(x.astype(np.float64))
            got = compiled_fn()
            name = f"{'irfft' if inverse else 'rfft'} rows={rows} n={n} " \
                   f"{np.dtype(dtype).name}"
            _assert_close(got, ref, dtype, f"{name} vs numpy")
            _assert_close(got, legacy_fn(), dtype, f"{name} vs legacy")
            _assert_deterministic(compiled_fn, name)
            t_leg = _timeit(legacy_fn, repeats)
            t_cmp = _timeit(compiled_fn, repeats)
            rows_out.append({
                "case": name,
                "legacy_ms": t_leg * 1e3,
                "compiled_ms": t_cmp * 1e3,
                "speedup": t_leg / t_cmp,
                "oracle_agreement": True,
            })
    return rows_out


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="small grid (the CI gate)")
    ap.add_argument("--repeats", type=int, default=None)
    ap.add_argument("--out", default=str(RESULTS / "rfft_compiled.json"))
    args = ap.parse_args(argv)

    mode = "quick" if args.quick else "full"
    repeats = args.repeats or (5 if args.quick else 9)
    rng = np.random.default_rng(0)

    fwd = bench_direction(CASES[mode], DTYPES[mode], repeats, rng,
                          inverse=False)
    inv = bench_direction(CASES[mode], DTYPES[mode], repeats, rng,
                          inverse=True)
    all_rows = fwd + inv
    grid_speedup = min(r["speedup"] for r in all_rows)

    report = {
        "meta": {
            "mode": mode,
            "repeats": repeats,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
            "ckernels": kernels_available(),
            "ckernels_info": build_info(),
        },
        "rfft": fwd,
        "irfft": inv,
        "grid_speedup": grid_speedup,
    }

    out = pathlib.Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")

    print(f"# compiled rfft/irfft vs legacy full-C2C ({mode}; C kernels: "
          f"{report['meta']['ckernels_info']})")
    for row in all_rows:
        print(f"  {row['case']}: {row['legacy_ms']:8.2f} ms -> "
              f"{row['compiled_ms']:8.2f} ms ({row['speedup']:.2f}x)")

    # CI gate: never slower than the legacy full-C2C path.
    floor = 1.0 if report["meta"]["ckernels"] else 0.85
    if grid_speedup < floor:
        print(f"FAIL: compiled real-transform path at {grid_speedup:.2f}x "
              f"< {floor:.2f}x of legacy", file=sys.stderr)
        return 1
    print(f"OK: compiled real transforms >= {floor:.2f}x legacy on every "
          f"case (worst {grid_speedup:.2f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
