"""Microbenchmark: what the ``repro.api`` plan cache buys dense sweeps.

The fig14/fig19 heatmaps resolve stage E for every grid cell, which costs
five pipeline compilations per cell (PyTorch baseline + stages A-D).
Before the facade, every figure regeneration rebuilt all of them from
scratch; with the LRU plan cache a repeated sweep — re-rendering a figure,
overlapping panels, or the heavy problem-grid overlap between consecutive
figures (Figs. 11-13 share their sweep grids) — reuses the compiled plans.

Records cold-vs-warm wall clock for a dense-style fig14 + fig19
regeneration and asserts the warm pass is a measured win.
"""

import time

import pytest

from repro import api
from repro.analysis import figures


def _dense_sweeps():
    """One fig14 + fig19 regeneration (default grids)."""
    return figures.fig14(), figures.fig19()


def _timed(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


@pytest.mark.keep_plan_cache  # this bench measures the warm cache itself
def test_plan_cache_speedup(benchmark, record):
    api.clear_plan_cache()
    cold = _timed(_dense_sweeps)
    info_cold = api.plan_cache_info()
    warm = _timed(_dense_sweeps)
    info_warm = api.plan_cache_info()

    # Steady-state warm timing under pytest-benchmark.
    benchmark(_dense_sweeps)

    record(
        "api_plan_cache",
        "\n".join([
            "fig14 + fig19 regeneration, cold vs warm plan cache",
            f"  cold: {cold * 1e3:8.1f} ms "
            f"({info_cold.misses} plans compiled, {info_cold.hits} hits)",
            f"  warm: {warm * 1e3:8.1f} ms "
            f"({info_warm.misses - info_cold.misses} compiled, "
            f"{info_warm.hits - info_cold.hits} hits)",
            f"  speedup: {cold / warm:5.1f}x",
        ]),
    )

    # The warm sweep compiles nothing new ...
    assert info_warm.misses == info_cold.misses
    # ... and is a measured wall-clock win (conservative bound; the
    # observed ratio is far larger since only bookkeeping remains).
    assert warm < cold * 0.8
