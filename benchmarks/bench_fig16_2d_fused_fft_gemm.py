"""Figure 16: 2-D fused FFT-CGEMM.

Paper result: fusion adds only ~1-2 % in 2-D — the first-stage FFT's
global traffic dominates and masks the fusion benefit.
"""

from _series import record_sweep_figure

from repro.analysis import figures
from repro.core.stages import FusionStage


def _build():
    return figures.fig16()


def test_fig16_2d_fused_fft_gemm(benchmark, record):
    panels = benchmark(_build)
    record_sweep_figure(
        record, "fig16_2d_fused_fft_gemm", panels, FusionStage.FUSED_FFT_GEMM,
        "fusion increment only ~1-2% in 2-D",
    )
    # The increment over stage A is small everywhere on the K sweep —
    # visibly smaller than the 1-D increments.
    k_panel = panels[0]
    gains = [
        b - a
        for a, b in zip(
            k_panel.series[FusionStage.FFT_OPT],
            k_panel.series[FusionStage.FUSED_FFT_GEMM],
        )
    ]
    assert max(gains) < 25.0
