"""Ablation: the fused kernel's N-tile width vs the FFT-recompute tax.

§4's fused design makes every thread block re-transform its k-slices, so
the grid's N extent multiplies the FFT work.  A wider ``fused_n_tb``
suppresses the recompute (fewer block columns) at the cost of occupancy —
this sweep shows where the fusion-win/loss crossover lands for each
choice, the mechanism behind the paper's K >= 128 degradation.
"""

from repro.core.config import FNO1DProblem, TurboFNOConfig
from repro.core.pipeline_model import build_pipeline_1d
from repro.core.stages import FusionStage
from repro.gpu.timeline import speedup_percent

K_VALUES = (32, 64, 96, 128, 136)
N_TBS = (32, 64, 128)


def _build():
    table = {}
    for n_tb in N_TBS:
        cfg = TurboFNOConfig(fused_n_tb=n_tb)
        row = []
        for k in K_VALUES:
            prob = FNO1DProblem.from_m_spatial(2**20, hidden=k, dim_x=128,
                                               modes=64)
            base = build_pipeline_1d(prob, FusionStage.FFT_OPT, cfg).total_time()
            fused = build_pipeline_1d(prob, FusionStage.FUSED_FFT_GEMM,
                                      cfg).total_time()
            row.append(speedup_percent(base, fused))
        table[n_tb] = row
    return table


def test_ablation_fused_n_tile(benchmark, record):
    table = benchmark(_build)
    lines = ["fused FFT-CGEMM gain over stage A (%) by fused_n_tb"]
    lines.append("K:      " + "".join(f"{k:>9d}" for k in K_VALUES))
    for n_tb, row in table.items():
        lines.append(
            f"n_tb={n_tb:<4d}" + "".join(f"{v:>+8.1f}%" for v in row)
        )
    record("ablation_fused_tiling", "\n".join(lines))
    # A narrow N tile triggers the recompute tax earlier (smaller K).
    def crossover(row):
        for k, v in zip(K_VALUES, row):
            if v < 0:
                return k
        return K_VALUES[-1] + 1

    assert crossover(table[32]) <= crossover(table[64]) <= crossover(table[128])
