"""Microbenchmarks: the custom FFT substrate's wall-clock behaviour.

The paper's claim "performance comparable to or faster than ... cuFFT"
translates here to: our vectorized Stockham FFT is within an
interpreter-overhead factor of ``numpy.fft`` (the library stand-in), and —
the part that carries over exactly — the *pruned* transforms beat the
full-transform-then-slice pattern by doing less work.
"""

import numpy as np
import pytest

from repro.fft.pruned import truncated_fft, truncated_ifft
from repro.fft.stockham import fft

BATCH = 256
N = 256

rng = np.random.default_rng(0)
X = (rng.standard_normal((BATCH, N)) + 1j * rng.standard_normal((BATCH, N))
     ).astype(np.complex64)
XK_LOW = np.ascontiguousarray(np.fft.fft(X, axis=-1)[:, :64]).astype(np.complex64)


def test_stockham_fft(benchmark):
    out = benchmark(fft, X)
    assert np.allclose(out, np.fft.fft(X, axis=-1), atol=1e-2)


def test_numpy_fft_reference(benchmark):
    benchmark(np.fft.fft, X, None, -1)


def test_truncated_fft_quarter(benchmark):
    """Built-in truncation: compute only the kept 25 % of bins."""
    out = benchmark(truncated_fft, X, 64)
    assert out.shape == (BATCH, 64)


def test_full_fft_then_slice(benchmark):
    """The cuFFT-style alternative the paper eliminates."""
    def run():
        return np.ascontiguousarray(fft(X)[:, :64])

    out = benchmark(run)
    assert out.shape == (BATCH, 64)


def test_truncated_ifft_pad(benchmark):
    """Built-in zero padding on the inverse side."""
    out = benchmark(truncated_ifft, XK_LOW, N)
    assert out.shape == (BATCH, N)


def test_pad_then_full_ifft(benchmark):
    """The memcpy + full-iFFT alternative."""
    def run():
        padded = np.zeros((BATCH, N), dtype=np.complex64)
        padded[:, :64] = XK_LOW
        return np.fft.ifft(padded, axis=-1)

    out = benchmark(run)
    assert out.shape == (BATCH, N)


def test_stockham_radix4(benchmark):
    """Radix-4 stages halve the pass count (Table 1's per-thread sizes)."""
    from repro.fft.radix import fft_radix4

    out = benchmark(fft_radix4, X)
    assert np.allclose(out, np.fft.fft(X, axis=-1), atol=1e-2)
