"""Figure 15: 2-D FFT pruning, truncation and zero-padding (stage A).

Paper result: consistently above 50 % on average, up to ~100 %; more
stable than the 1-D case at small problem sizes because the first-stage
truncation shrinks the second stage quadratically.
"""

from _series import record_sweep_figure

from repro.analysis import figures
from repro.core.stages import FusionStage


def _build():
    return figures.fig15()


def test_fig15_2d_fft_opt(benchmark, record):
    panels = benchmark(_build)
    stats = record_sweep_figure(
        record, "fig15_2d_fft_opt", panels, FusionStage.FFT_OPT,
        "avg >+50%, stable across batch sizes",
    )
    assert stats["mean"] > 50.0
    assert stats["min"] > 0.0  # no 2-D slowdowns on these sweeps
