"""Figure 19: 2-D TurboFNO (best of all stages) vs PyTorch heatmaps.

Four panels over K x batch size: grids 256x128 and 256x256, filter
N = 64/128.  Paper result: average +67 %, maximum +150 %, and far fewer
slowdown cells than the 1-D case.
"""

import numpy as np

from _series import record_heatmap_figure

from repro.analysis import figures


def _build():
    return figures.fig19()


def test_fig19_2d_heatmap(benchmark, record):
    panels = benchmark(_build)
    mean, best, worst = record_heatmap_figure(
        record, "fig19_2d_heatmap", panels,
        "average +67%, max +150%",
    )
    assert 40.0 < mean < 170.0
    assert best > 100.0
    neg_2d = float(np.mean([p.negative_fraction() for p in panels]))
    assert neg_2d < 0.25  # 2-D is markedly more robust than 1-D
