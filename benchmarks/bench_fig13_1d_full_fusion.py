"""Figure 13: 1-D fully fused FFT-CGEMM-iFFT (stage D vs all).

Paper result: up to 150 % over PyTorch, an extra 10-20 % over the partial
fusions in the favourable regime; slight degradation vs partial fusion at
some problem sizes (inherited from the CGEMM-iFFT epilogue).
"""

from _series import record_sweep_figure

from repro.analysis import figures
from repro.core.stages import FusionStage


def _build():
    return figures.fig13()


def test_fig13_1d_full_fusion(benchmark, record):
    panels = benchmark(_build)
    stats = record_sweep_figure(
        record, "fig13_1d_full_fusion", panels, FusionStage.FUSED_ALL,
        "up to +150% vs PyTorch; +10-20% over partial fusion at K<=64",
    )
    k_panel = panels[0]
    for i, k in enumerate(k_panel.x):
        if k <= 64:
            assert (
                k_panel.series[FusionStage.FUSED_ALL][i]
                > k_panel.series[FusionStage.FFT_OPT][i]
            )
    assert stats["max"] > 60.0
