#!/usr/bin/env python
"""Fault-tolerance overhead and chaos-soak throughput of the ServePool.

Two questions, one harness:

1. **What does the safety net cost when nothing fails?**  The same
   mixed-geometry stream runs through a pool with no fault plan (the
   production configuration: heartbeats, deadline plumbing, checksummed
   headers, breaker bookkeeping all armed, nothing injected) and the
   throughput is compared against ``benchmarks/results`` expectations
   only qualitatively — the number to watch is ``faults_off_rps``.

2. **What survives when everything fails?**  The same stream re-runs
   under a seeded ``FaultPlan.chaos`` schedule (scripted crashes before
   and after execution, hangs the health monitor must cull, injected
   latency, ring-allocation failures, corrupted response headers) plus
   per-request deadlines.  The run hard-asserts the serving acceptance
   invariants — every future resolves (result or typed error), no
   shared-memory segment outlives ``close()``, and every *successful*
   result is bit-identical to the serial one-worker session — and
   reports the recovered throughput, i.e. what a client actually
   observes while the pool is being actively sabotaged.

Exit status is the CI gate: non-zero when any invariant is violated.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve_faults.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import time

import numpy as np

from repro.api import Session
from repro.api.serve import FaultPlan, HealthPolicy, ServePool, run_soak
from repro.api.serve.faults import _soak_stream

RESULTS = pathlib.Path(__file__).parent / "results"

#: (requests, workers) per mode.
CASES = {"quick": (60, 2), "full": (300, 4)}


def bench_faults_off(stream, workers: int, refs) -> dict:
    """The no-faults baseline: full safety net armed, nothing injected."""
    with ServePool(workers=workers, backend="numpy",
                   queue_depth=16) as pool:
        pool.infer_many(stream, timeout=600)  # warm every shard
        t0 = time.perf_counter()
        outs = pool.infer_many(stream, timeout=600, deadline=600.0)
        elapsed = time.perf_counter() - t0
        stats = pool.stats()
    for i, (a, b) in enumerate(zip(refs, outs)):
        if a.dtype != b.dtype or not np.array_equal(a, b):
            raise SystemExit(f"faults-off request {i} != serial session")
    leaked = pool.live_segment_names()
    if leaked:
        raise SystemExit(f"faults-off run leaked segments: {leaked}")
    return {
        "rps": len(stream) / elapsed,
        "ms": elapsed * 1e3,
        "admission": stats["admission"],
        "outputs_equal": True,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="CI-sized case (60 requests, 2 workers)")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--hang-timeout", type=float, default=2.0)
    ap.add_argument("--out", default=str(RESULTS / "serve_faults.json"))
    args = ap.parse_args(argv)

    mode = "quick" if args.quick else "full"
    requests, workers = CASES[mode]
    stream = _soak_stream(args.seed, requests)

    serial = Session(backend="numpy")
    try:
        t0 = time.perf_counter()
        refs = serial.infer_many(stream, max_batch=32)
        t_serial = time.perf_counter() - t0
    finally:
        serial.close()

    faults_off = bench_faults_off(stream, workers, refs)

    t0 = time.perf_counter()
    soak = run_soak(
        requests=requests, workers=workers, seed=args.seed,
        backend="numpy", hang_timeout=args.hang_timeout,
    )
    t_soak = time.perf_counter() - t0

    report = {
        "meta": {
            "mode": mode,
            "requests": requests,
            "workers": workers,
            "seed": args.seed,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count() or 1,
        },
        "serial_rps": requests / t_serial,
        "faults_off": faults_off,
        "chaos": {
            # Wall-clock includes the serial reference pass inside
            # run_soak; resolved_rps is the client-observed rate over
            # every submitted request, failures included.
            "wall_seconds": t_soak,
            "resolved_rps": requests / t_soak,
            "report": soak,
        },
    }
    out = pathlib.Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2, default=str) + "\n")

    print(f"# serve fault tolerance ({mode}: {requests} requests, "
          f"{workers} workers, seed={args.seed})")
    print(f"  serial session   : {report['serial_rps']:8.1f} req/s")
    print(f"  pool, faults off : {faults_off['rps']:8.1f} req/s "
          f"[bit-identical, no leaks]")
    adm = soak["admission"]
    print(f"  pool, under chaos: {requests / t_soak:8.1f} req/s resolved "
          f"({soak['outcomes']}); recovery: crashes={adm['crashes']} "
          f"hangs={adm['hangs']} retried={adm['retried']} "
          f"corrupted={adm['corrupted']} expired={adm['expired']} "
          f"degraded={adm['degraded']}")
    print(f"  wrote {out}")
    if not soak["ok"]:
        for violation in soak["violations"]:
            print(f"  VIOLATION: {violation}")
        return 1
    print("  PASS: zero lost futures, zero leaked segments, successes "
          "bit-identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
