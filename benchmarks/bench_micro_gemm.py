"""Microbenchmarks: blocked CGEMM against the BLAS-backed ``@``.

The blocked kernel walks the Table 1 hierarchy in Python, so it cannot
beat BLAS on wall clock; what matters is that it is numerically identical
(asserted) and that its overhead stays within an interpreter factor on the
paper's tall-and-skinny shape.
"""

import numpy as np

from repro.gemm.blocked import blocked_cgemm
from repro.gemm.params import SECT31_CGEMM, TABLE1_CGEMM

rng = np.random.default_rng(1)
M, K, N = 2048, 64, 64
A = (rng.standard_normal((M, K)) + 1j * rng.standard_normal((M, K))
     ).astype(np.complex64)
B = (rng.standard_normal((K, N)) + 1j * rng.standard_normal((K, N))
     ).astype(np.complex64)


def test_blocked_cgemm_table1(benchmark):
    out = benchmark(blocked_cgemm, A, B, TABLE1_CGEMM)
    assert np.allclose(out, A @ B, atol=1e-2)


def test_blocked_cgemm_sect31(benchmark):
    out = benchmark(blocked_cgemm, A, B, SECT31_CGEMM)
    assert np.allclose(out, A @ B, atol=1e-2)


def test_blas_matmul_reference(benchmark):
    benchmark(lambda: A @ B)
