"""Figure 11: 1-D fused FFT-CGEMM (stage B vs stage A).

Paper result: 50-100 % over PyTorch; only 3-5 % over the non-fused
FFT-optimised workflow; the benefit declines as K grows and can invert for
K >= 128.
"""

from _series import record_sweep_figure

from repro.analysis import figures
from repro.core.stages import FusionStage


def _build():
    return figures.fig11()


def test_fig11_1d_fused_fft_gemm(benchmark, record):
    panels = benchmark(_build)
    record_sweep_figure(
        record, "fig11_1d_fused_fft_gemm", panels, FusionStage.FUSED_FFT_GEMM,
        "+3-5% over stage A, declining with K, negative for K >= 128",
    )
    k_panel = panels[0]
    gains = [
        b - a
        for a, b in zip(
            k_panel.series[FusionStage.FFT_OPT],
            k_panel.series[FusionStage.FUSED_FFT_GEMM],
        )
    ]
    assert gains[0] > 0        # fusion helps at small K
    assert gains[-1] < gains[0]  # and declines with K
