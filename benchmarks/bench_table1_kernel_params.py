"""Table 1: CGEMM and FFT kernel parameter setup.

Validates that the paper's published kernel configurations are coherent
(warp tiling = 32 threads, shared memory within the A100 budget, FFT batch
size bs matching CGEMM's k_tb) and records the derived geometry.
"""

from repro.core.config import TurboFNOConfig
from repro.fft.plan import FFTPlan
from repro.gemm.params import TABLE1_CGEMM
from repro.gpu.device import A100_SPEC, Occupancy


def _build():
    cfg = TurboFNOConfig()
    gemm = TABLE1_CGEMM
    fft_n1 = FFTPlan(n=128, batch=1024, per_thread=8,
                     signals_per_block=cfg.signals_per_block)
    fft_n2 = FFTPlan(n=256, batch=1024, per_thread=16,
                     signals_per_block=cfg.signals_per_block)
    occ = Occupancy.compute(
        A100_SPEC, blocks=1024, threads_per_block=gemm.threads_per_block,
        smem_per_block_bytes=gemm.smem_bytes(),
    )
    return cfg, gemm, fft_n1, fft_n2, occ


def test_table1_parameters(benchmark, record):
    cfg, gemm, fft_n1, fft_n2, occ = benchmark(_build)
    lines = [
        gemm.describe(),
        f"CGEMM smem (double-buffered): {gemm.smem_bytes()} B",
        f"CGEMM occupancy on A100: {occ.blocks_per_sm} blocks/SM",
        f"FFT N1=128 n1=8: {fft_n1.threads_per_block} threads/block, "
        f"smem {fft_n1.smem_bytes_per_block} B",
        f"FFT N2=256 n2=16: {fft_n2.threads_per_block} threads/block, "
        f"smem {fft_n2.smem_bytes_per_block} B",
        f"FFT bs = {cfg.signals_per_block} == CGEMM k_tb = {gemm.k_tb}",
    ]
    record("table1_kernel_params", "\n".join(lines))
    # Table 1's alignment claim: FFT batch-per-block equals CGEMM k_tb.
    assert cfg.signals_per_block == gemm.k_tb
    assert gemm.smem_bytes() <= A100_SPEC.smem_per_sm_bytes
    assert occ.blocks_per_sm >= 1
