"""Figure 7: shared-memory bank utilization of the FFT->CGEMM hand-off.

Regenerates, from explicit thread-to-address maps, the utilizations the
paper quotes: VkFFT-style forwarding 25 % vs TurboFNO 100 %, naive
butterfly write-back 6.25 % vs ``addr += tid`` swizzle 100 %.
"""

import pytest

from repro.analysis import figures


def _build():
    return figures.fig07()


def test_fig07_bank_utilization(benchmark, record):
    util = benchmark(_build)
    lines = [f"{k}: {v:.2%}" for k, v in sorted(util.items())]
    record("fig07_smem_fft_gemm", "\n".join(lines))
    assert util["forward_vkfft"] == pytest.approx(0.25)
    assert util["forward_turbofno"] == 1.0
    assert util["writeback_16pt_naive"] == pytest.approx(0.0625)
    assert util["writeback_16pt_swizzled"] == 1.0
