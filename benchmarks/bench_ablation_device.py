"""Ablation: do the paper's conclusions survive on other devices?

Re-runs the stage ladder on device models with different compute/bandwidth
balances (V100-like, the registry's H100-class part, and a
bandwidth-starved part).  The paper's core claim — memory-transaction
reduction is the bottleneck, so fusion wins — should hold wherever the
Fourier layer is memory-bound, and grow on bandwidth-starved parts.

Devices come from the :mod:`repro.api` device registry where available
(``a100``, ``h100``); the others are ad-hoc specs, registered on the fly
to show the extension path.
"""

from repro import api
from repro.core.config import FNO1DProblem
from repro.core.stages import FusionStage
from repro.gpu.device import DeviceSpec

V100_LIKE = DeviceSpec(
    name="V100-like", num_sms=80, fp32_tflops=15.7,
    dram_bandwidth_gbs=900.0, smem_per_sm_bytes=96 * 1024,
    l2_bytes=6 * 1024 * 1024,
)
DEVICES = {
    "A100 (paper)": "a100",
    "V100-like": "bench-v100-like",
    "H100-like": "h100",
    "bandwidth-starved": "bench-a100-starved",
}

PROBLEM = FNO1DProblem.from_m_spatial(2**20, hidden=64, dim_x=128, modes=64)


def _register_bench_devices():
    """Register this bench's ad-hoc specs at run time (not import time, so
    collecting the module has no registry side effects); bench-prefixed
    names avoid clobbering anything user-registered, and overwrite=True
    keeps repeated rounds idempotent."""
    api.register_device("bench-v100-like", V100_LIKE, overwrite=True)
    api.register_device(
        "bench-a100-starved",
        api.get_device("a100").with_(dram_bandwidth_gbs=500.0),
        overwrite=True,
    )


def _build():
    _register_bench_devices()
    out = {}
    for label, name in DEVICES.items():
        runner = api.Runner(device=name)
        out[label] = runner.ladder(PROBLEM, FusionStage.ladder())
    return out


def test_ablation_device_portability(benchmark, record):
    table = benchmark(_build)
    lines = ["stage speedups vs PyTorch (%) across device models"]
    stages = list(FusionStage.ladder())
    lines.append("device              " + "".join(f"{s.value:>9s}" for s in stages))
    for name, speeds in table.items():
        lines.append(
            f"{name:<20s}" + "".join(f"{speeds[s]:>+8.1f}%" for s in stages)
        )
    record("ablation_device", "\n".join(lines))
    for name, speeds in table.items():
        # Full fusion beats the baseline on every device at the reference
        # (memory-bound) size ...
        assert speeds[FusionStage.FUSED_ALL] > 0, name
    # ... and the bandwidth-starved part benefits at least as much as the
    # best-balanced one (memory-transaction reduction is the lever).
    assert (
        table["bandwidth-starved"][FusionStage.FUSED_ALL]
        >= table["H100-like"][FusionStage.FUSED_ALL] - 5.0
    )
