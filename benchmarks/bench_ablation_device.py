"""Ablation: do the paper's conclusions survive on other devices?

Re-runs the stage ladder on device models with different compute/bandwidth
balances (V100-like, H100-like, and a bandwidth-starved part).  The
paper's core claim — memory-transaction reduction is the bottleneck, so
fusion wins — should hold wherever the Fourier layer is memory-bound, and
grow on bandwidth-starved parts.
"""

from repro.core.config import FNO1DProblem
from repro.core.pipeline_model import build_pipeline_1d
from repro.core.stages import FusionStage
from repro.gpu.device import A100_SPEC, DeviceSpec
from repro.gpu.timeline import speedup_percent

DEVICES = {
    "A100 (paper)": A100_SPEC,
    "V100-like": DeviceSpec(
        name="V100-like", num_sms=80, fp32_tflops=15.7,
        dram_bandwidth_gbs=900.0, smem_per_sm_bytes=96 * 1024,
        l2_bytes=6 * 1024 * 1024,
    ),
    "H100-like": DeviceSpec(
        name="H100-like", num_sms=132, fp32_tflops=67.0,
        dram_bandwidth_gbs=3350.0, smem_per_sm_bytes=228 * 1024,
        l2_bytes=50 * 1024 * 1024,
    ),
    "bandwidth-starved": A100_SPEC.with_(dram_bandwidth_gbs=500.0),
}

PROBLEM = FNO1DProblem.from_m_spatial(2**20, hidden=64, dim_x=128, modes=64)


def _build():
    out = {}
    for name, dev in DEVICES.items():
        base = build_pipeline_1d(PROBLEM, FusionStage.PYTORCH).total_time(dev)
        out[name] = {
            st: speedup_percent(
                base, build_pipeline_1d(PROBLEM, st).total_time(dev)
            )
            for st in FusionStage.ladder()
        }
    return out


def test_ablation_device_portability(benchmark, record):
    table = benchmark(_build)
    lines = ["stage speedups vs PyTorch (%) across device models"]
    stages = list(FusionStage.ladder())
    lines.append("device              " + "".join(f"{s.value:>9s}" for s in stages))
    for name, speeds in table.items():
        lines.append(
            f"{name:<20s}" + "".join(f"{speeds[s]:>+8.1f}%" for s in stages)
        )
    record("ablation_device", "\n".join(lines))
    for name, speeds in table.items():
        # Full fusion beats the baseline on every device at the reference
        # (memory-bound) size ...
        assert speeds[FusionStage.FUSED_ALL] > 0, name
    # ... and the bandwidth-starved part benefits at least as much as the
    # best-balanced one (memory-transaction reduction is the lever).
    assert (
        table["bandwidth-starved"][FusionStage.FUSED_ALL]
        >= table["H100-like"][FusionStage.FUSED_ALL] - 5.0
    )
