#!/usr/bin/env python
"""Autoregressive rollout serving vs the eager per-step loop.

Measures the spectrum-resident rollout tentpole: ``Session.rollout``
keeps each stream's autoregressive state inside the serving layer —
one pooled executor steps a micro-batched state tensor, instead of N
streams each paying a full ``Session.infer`` round trip per step.  A
set of concurrent rollout streams is served

1. **eager** — per stream, per step: ``state = session.infer(model,
   state)`` on one warm session (the loop every caller wrote before
   ``rollout`` existed), and
2. **rollout** — ``session.rollout(streams=..., steps=...)``: streams
   micro-batched by geometry, state resident across steps, and
3. **rollout-fast** — the same with ``profile="fast"``: the
   inverse/forward transform pair between steps elided (the linear
   inter-step path stays in the spectrum), tolerance-asserted against
   the exact loop.

The default (exact) rollout hard-asserts ``np.array_equal`` against
the eager loop per stream: keeping state resident must not change a
single bit.  The fast profile asserts ``check_rtol=1e-3`` inside the
session (it re-runs the exact loop and compares).

Exit status is the CI gate: with ``--quick``, non-zero when the exact
rollout fails to reach ``--gate``x (default 1.15x) the eager loop's
throughput, or when any bit-identity assert trips.

Usage::

    PYTHONPATH=src python benchmarks/bench_rollout.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import time

import numpy as np

from repro import api
from repro.fft._ckernels import build_info, kernels_available

RESULTS = pathlib.Path(__file__).parent / "results"

#: (streams, steps, signal batch, hidden K, dim_x, modes).  Many
#: single-signal streams over one geometry — the serving shape the
#: stream micro-batcher targets.
CASES = {
    "quick": [(8, 16, 1, 16, 512, 64)],
    "full": [
        (8, 16, 1, 16, 512, 64),
        (16, 32, 1, 32, 1024, 128),
        (4, 64, 2, 16, 2048, 256),
    ],
}


def _build_streams(n_streams, signal_batch, hidden, dim_x, modes, rng):
    weight = (
        (rng.standard_normal((hidden, hidden))
         + 1j * rng.standard_normal((hidden, hidden))) / hidden
    ).astype(np.complex64)
    model = api.SpectralModel(weight, modes)
    return [
        (model, rng.standard_normal(
            (signal_batch, hidden, dim_x)
        ).astype(np.float32))
        for _ in range(n_streams)
    ]


def _timeit(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_case(case, backend, repeats, rng):
    n_streams, steps, signal_batch, hidden, dim_x, modes = case
    streams = _build_streams(
        n_streams, signal_batch, hidden, dim_x, modes, rng
    )
    total_steps = n_streams * steps

    session = api.Session(backend=backend, private_caches=True)
    session.rollout(streams=streams, steps=1)  # warm the pooled executor

    def eager():
        outs = []
        for model, x0 in streams:
            state = x0
            for _ in range(steps):
                state = session.infer(model, state)
            outs.append(state)
        return outs

    refs = eager()
    t_eager = _timeit(eager, repeats)

    rolled = session.rollout(streams=streams, steps=steps)
    for i, (a, b) in enumerate(zip(refs, rolled)):
        if a.dtype != b.dtype or not np.array_equal(a, b):
            raise SystemExit(
                f"rollout stream {i} != eager per-step loop "
                f"(backend={backend})"
            )
    t_rollout = _timeit(
        lambda: session.rollout(streams=streams, steps=steps), repeats
    )

    # The fast profile self-asserts: check_rtol re-runs the exact loop
    # inside the session and raises on divergence.
    session.rollout(streams=streams, steps=steps, profile="fast",
                    check_rtol=1e-3)
    t_fast = _timeit(
        lambda: session.rollout(streams=streams, steps=steps,
                                profile="fast"),
        repeats,
    )
    latency = session.stats()["latency"]
    session.close()

    return {
        "case": (
            f"streams={n_streams} steps={steps} BS={signal_batch} "
            f"K={hidden} dim_x={dim_x} modes={modes}"
        ),
        "backend": backend,
        "eager_ms": t_eager * 1e3,
        "eager_steps_per_s": total_steps / t_eager,
        "rollout_ms": t_rollout * 1e3,
        "rollout_steps_per_s": total_steps / t_rollout,
        "rollout_speedup": t_eager / t_rollout,
        "fast_ms": t_fast * 1e3,
        "fast_steps_per_s": total_steps / t_fast,
        "fast_speedup": t_eager / t_fast,
        "step_latency": latency,
        "outputs_equal": True,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="small case + the CI speedup gate")
    ap.add_argument("--repeats", type=int, default=None)
    ap.add_argument("--gate", type=float, default=1.15,
                    help="required exact-rollout speedup over the eager "
                         "loop (default 1.15)")
    ap.add_argument("--out", default=str(RESULTS / "rollout.json"))
    args = ap.parse_args(argv)

    mode = "quick" if args.quick else "full"
    repeats = args.repeats or (3 if args.quick else 5)
    rng = np.random.default_rng(0)

    backends = (
        ["auto"] if kernels_available() and mode == "quick"
        else (["numpy"] + (["auto"] if kernels_available() else []))
    )
    rows = [
        bench_case(case, backend, repeats, rng)
        for case in CASES[mode]
        for backend in backends
    ]

    report = {
        "meta": {
            "mode": mode,
            "repeats": repeats,
            "gate": args.gate,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count() or 1,
            "ckernels": kernels_available(),
            "ckernels_info": build_info(),
            "backends": backends,
        },
        "rollout": rows,
    }
    out = pathlib.Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")

    print(f"# rollout serving ({mode}; C kernels: "
          f"{report['meta']['ckernels_info']})")
    for row in rows:
        print(f"  [{row['backend']:>6s}] {row['case']}:")
        print(f"      eager loop : {row['eager_steps_per_s']:8.1f} steps/s")
        print(f"      rollout    : {row['rollout_steps_per_s']:8.1f} steps/s"
              f" ({row['rollout_speedup']:.2f}x)  [bit-identical]")
        print(f"      fast       : {row['fast_steps_per_s']:8.1f} steps/s"
              f" ({row['fast_speedup']:.2f}x)  [rtol-checked]")

    if not args.quick:
        print("gate: not armed (needs --quick)")
        return 0
    worst = min(row["rollout_speedup"] for row in rows)
    if worst < args.gate:
        print(f"gate: FAIL — exact rollout {worst:.2f}x < {args.gate}x "
              f"over the eager loop")
        return 1
    print(f"gate: PASS — exact rollout {worst:.2f}x >= {args.gate}x "
          f"over the eager loop (bit-identity hard-asserted)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
