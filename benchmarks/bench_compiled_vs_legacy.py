#!/usr/bin/env python
"""Compiled plan executors vs the legacy per-call paths.

Measures the three hot paths the compiled layer targets and records the
before/after series under ``benchmarks/results/``:

1. the fused 1-D spectral convolution (prebuilt
   :class:`repro.core.compiled.CompiledSpectralConv1D` vs the frozen
   seed loops in :mod:`repro.core.legacy`),
2. the fused 2-D spectral convolution (likewise),
3. a warm fig14+fig19 heatmap sweep (census-cached, optionally
   process-pooled, vs the seed behaviour of re-censusing every plan).

Every numeric case hard-asserts ``np.array_equal`` between the compiled
and legacy outputs — the compiled layer's contract is byte identity.

Exit status is the CI gate: non-zero when the compiled path is slower
than legacy on the 1-D fused case (tolerance 0.85x when the C kernels
are unavailable and both paths run the same NumPy substrate, where the
residual difference is staging overhead vs noise).

Usage::

    PYTHONPATH=src python benchmarks/bench_compiled_vs_legacy.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

import numpy as np

import repro.core.pipeline_model as pipeline_model
import repro.fft.plan as fft_plan_mod
from repro.analysis import figures
from repro.api import clear_plan_cache, default_workers
from repro.core import legacy as core_legacy
from repro.core.compiled import CompiledSpectralConv1D, CompiledSpectralConv2D
from repro.fft._ckernels import build_info, kernels_available
from repro.fft.opcount import census

RESULTS = pathlib.Path(__file__).parent / "results"

#: (batch, hidden K, out dim N, X, modes) — the paper's FP32 1-D regime.
CASES_1D = {
    "quick": [(128, 32, 32, 128, 64)],
    "full": [(256, 64, 64, 128, 64), (1024, 16, 16, 128, 64),
             (512, 16, 16, 256, 128)],
}
#: (batch, K, N, X, Y, modes_x, modes_y).
CASES_2D = {
    "quick": [(4, 32, 32, 128, 64, 64, 32)],
    "full": [(8, 64, 64, 128, 64, 64, 32), (16, 32, 32, 256, 128, 64, 64)],
}


def _timeit(fn, repeats: int) -> float:
    fn()  # warm
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_fused_1d(cases, repeats, rng):
    rows = []
    for (batch, k, n, dim_x, modes) in cases:
        x = rng.standard_normal((batch, k, dim_x), dtype=np.float32)
        w = (rng.standard_normal((k, n)) + 1j * rng.standard_normal((k, n))
             ).astype(np.complex64)
        conv = CompiledSpectralConv1D(w, modes)
        ref = core_legacy.fused_fft_gemm_ifft_1d(x, w, modes)
        got = conv(x)
        if not np.array_equal(ref, got):
            raise SystemExit("1-D compiled output != legacy output")
        t_leg = _timeit(lambda: core_legacy.fused_fft_gemm_ifft_1d(x, w, modes),
                        repeats)
        t_cmp = _timeit(lambda: conv(x), repeats)
        rows.append({
            "case": f"BS={batch} K={k} N={n} X={dim_x} modes={modes}",
            "legacy_ms": t_leg * 1e3,
            "compiled_ms": t_cmp * 1e3,
            "speedup": t_leg / t_cmp,
            "outputs_equal": True,
        })
    return rows


def bench_fused_2d(cases, repeats, rng):
    rows = []
    for (batch, k, n, dim_x, dim_y, mx, my) in cases:
        x = rng.standard_normal((batch, k, dim_x, dim_y), dtype=np.float32)
        w = (rng.standard_normal((k, n)) + 1j * rng.standard_normal((k, n))
             ).astype(np.complex64)
        conv = CompiledSpectralConv2D(w, mx, my)
        ref = core_legacy.fused_fft_gemm_ifft_2d(x, w, mx, my)
        got = conv(x)
        if not np.array_equal(ref, got):
            raise SystemExit("2-D compiled output != legacy output")
        t_leg = _timeit(
            lambda: core_legacy.fused_fft_gemm_ifft_2d(x, w, mx, my), repeats
        )
        t_cmp = _timeit(lambda: conv(x), repeats)
        rows.append({
            "case": f"BS={batch} K={k} N={n} grid={dim_x}x{dim_y} "
                    f"modes={mx}x{my}",
            "legacy_ms": t_leg * 1e3,
            "compiled_ms": t_cmp * 1e3,
            "speedup": t_leg / t_cmp,
            "outputs_equal": True,
        })
    return rows


def _run_sweep(dense: bool, workers: int | None):
    clear_plan_cache()
    return figures.fig14(dense=dense, workers=workers) + figures.fig19(
        dense=dense, workers=workers
    )


def bench_sweep(dense: bool, repeats: int, workers: int):
    """Warm fig14+fig19 regeneration: seed behaviour vs compiled caches.

    'Warm' = the process (imports, twiddles) is warm; each measured
    round regenerates every panel from a cold *plan* cache, which is the
    work a sweep actually does.  Legacy rounds additionally bypass the
    census cache the way the seed did (every plan re-censuses its
    pruning fractions).

    Both paths are measured serially — the headline ``speedup`` isolates
    the caching win and never credits process parallelism.  When
    ``workers > 1`` the pooled compiled round is measured as well and
    reported separately (``compiled_parallel_ms``).
    """
    uncached = census.__wrapped__
    patched = [(pipeline_model, "census"), (fft_plan_mod, "census")]

    def legacy_round():
        for mod, name in patched:
            setattr(mod, name, uncached)
        try:
            return _run_sweep(dense, workers=None)
        finally:
            for mod, name in patched:
                setattr(mod, name, census)

    compiled_serial = lambda: _run_sweep(dense, workers=None)

    ref = legacy_round()
    got = compiled_serial()
    equal = all(
        np.array_equal(a.values, b.values) for a, b in zip(ref, got)
    )
    if not equal:
        raise SystemExit("sweep compiled values != legacy values")
    t_leg = _timeit(legacy_round, repeats)
    t_cmp = _timeit(compiled_serial, repeats)
    row = {
        "case": f"fig14+fig19 {'dense' if dense else 'default'} grids, "
                f"serial vs serial",
        "legacy_ms": t_leg * 1e3,
        "compiled_ms": t_cmp * 1e3,
        "speedup": t_leg / t_cmp,
        "outputs_equal": True,
    }
    if workers > 1:
        par = _run_sweep(dense, workers)
        if not all(np.array_equal(a.values, b.values)
                   for a, b in zip(ref, par)):
            raise SystemExit("parallel sweep values != legacy values")
        t_par = _timeit(lambda: _run_sweep(dense, workers), repeats)
        row["compiled_parallel_ms"] = t_par * 1e3
        row["compiled_parallel_workers"] = workers
        row["parallel_speedup"] = t_leg / t_par
    return row


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="small cases + sparse sweep grids (the CI gate)")
    ap.add_argument("--repeats", type=int, default=None)
    ap.add_argument("--workers", type=int, default=None,
                    help="process-pool width for the sweep case "
                         "(default: cpu count)")
    ap.add_argument("--out", default=str(RESULTS / "compiled_vs_legacy.json"))
    args = ap.parse_args(argv)

    mode = "quick" if args.quick else "full"
    repeats = args.repeats or (3 if args.quick else 5)
    workers = args.workers if args.workers is not None else default_workers()
    rng = np.random.default_rng(0)

    report = {
        "meta": {
            "mode": mode,
            "repeats": repeats,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
            "ckernels": kernels_available(),
            "ckernels_info": build_info(),
        },
        "fused_1d": bench_fused_1d(CASES_1D[mode], repeats, rng),
        "fused_2d": bench_fused_2d(CASES_2D[mode], repeats, rng),
        "sweep": bench_sweep(dense=not args.quick, repeats=repeats,
                             workers=workers),
    }

    out = pathlib.Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")

    print(f"# compiled vs legacy ({mode}; C kernels: "
          f"{report['meta']['ckernels_info']})")
    for section in ("fused_1d", "fused_2d"):
        for row in report[section]:
            print(f"  {section}  {row['case']}: "
                  f"{row['legacy_ms']:8.1f} ms -> {row['compiled_ms']:8.1f} ms "
                  f"({row['speedup']:.2f}x)")
    row = report["sweep"]
    print(f"  sweep     {row['case']}: {row['legacy_ms']:8.1f} ms -> "
          f"{row['compiled_ms']:8.1f} ms ({row['speedup']:.2f}x)")

    # CI gate: the compiled 1-D fused path must not be slower than legacy.
    floor = 1.0 if report["meta"]["ckernels"] else 0.85
    worst = min(r["speedup"] for r in report["fused_1d"])
    if worst < floor:
        print(f"FAIL: compiled 1-D fused path at {worst:.2f}x < {floor:.2f}x "
              f"of legacy", file=sys.stderr)
        return 1
    print(f"OK: compiled 1-D fused path >= {floor:.2f}x legacy "
          f"(worst {worst:.2f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
