"""Figure 18: 2-D fully fused FFT-CGEMM-iFFT.

Paper result: 50-105 % over PyTorch; consistently 2-3 % over the partial
fusions thanks to the 100 %-bank-utilization shared-memory design.
"""

from _series import record_sweep_figure

from repro.analysis import figures
from repro.core.stages import FusionStage


def _build():
    return figures.fig18()


def test_fig18_2d_full_fusion(benchmark, record):
    panels = benchmark(_build)
    stats = record_sweep_figure(
        record, "fig18_2d_full_fusion", panels, FusionStage.FUSED_ALL,
        "+50-105% vs PyTorch, +2-3% over partial fusion",
    )
    assert stats["mean"] > 50.0
    k_panel = panels[0]
    for i, k in enumerate(k_panel.x):
        if k <= 96:
            assert (
                k_panel.series[FusionStage.FUSED_ALL][i]
                >= k_panel.series[FusionStage.FUSED_FFT_GEMM][i] - 1e-9
            )
