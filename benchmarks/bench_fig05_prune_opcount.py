"""Figure 5: FFT butterfly pruning op counts.

Regenerates the worked 4-point example (8 ops full; 3 ops / 37.5 % at 25 %
truncation; 6 ops / 75 % at 50 %) and extends the census to the paper's
evaluation FFT sizes.
"""

import pytest

from repro.analysis import figures


def _build():
    return figures.fig05()


def test_fig05_prune_opcounts(benchmark, record):
    rows = benchmark(_build)
    lines = ["n keep ops total fraction"]
    for r in rows:
        lines.append(f"{r.n} {r.keep} {r.ops} {r.total_ops} {r.fraction:.4f}")
    record("fig05_prune_opcount", "\n".join(lines))
    by_key = {(r.n, r.keep): r for r in rows}
    assert by_key[(4, 1)].fraction == pytest.approx(0.375)
    assert by_key[(4, 2)].fraction == pytest.approx(0.75)
