"""Microbenchmarks: the three spectral-convolution engines on one layer.

This is the wall-clock analogue of the paper's end-to-end comparison on
the CPU substrate: the ``turbo`` engine's pruned transforms do strictly
less arithmetic than the staged ``pytorch`` engine's
full-FFT + copy + pad + full-iFFT pipeline.  All calls go through the
rank-dispatched :func:`repro.api.spectral_conv` facade.
"""

import numpy as np

from repro.api import spectral_conv

rng = np.random.default_rng(2)
X1 = (rng.standard_normal((8, 64, 128)) + 0j).astype(np.complex64)
W1 = ((rng.standard_normal((64, 64)) + 1j * rng.standard_normal((64, 64))) / 8
      ).astype(np.complex64)
X2 = (rng.standard_normal((2, 32, 64, 64)) + 0j).astype(np.complex64)
W2 = ((rng.standard_normal((32, 32)) + 1j * rng.standard_normal((32, 32))) / 6
      ).astype(np.complex64)


def test_spectral1d_turbo(benchmark):
    benchmark(spectral_conv, X1, W1, 64, "turbo")


def test_spectral1d_pytorch_style(benchmark):
    benchmark(spectral_conv, X1, W1, 64, "pytorch")


def test_spectral1d_reference(benchmark):
    benchmark(spectral_conv, X1, W1, 64, "reference")


def test_spectral2d_turbo(benchmark):
    benchmark(spectral_conv, X2, W2, (16, 16), "turbo")


def test_spectral2d_pytorch_style(benchmark):
    benchmark(spectral_conv, X2, W2, (16, 16), "pytorch")
