"""Shared rendering/recording helpers for the sweep-figure benchmarks."""

from __future__ import annotations

from repro.analysis import render_heatmap, render_series, summarize
from repro.core.stages import FusionStage

__all__ = ["record_sweep_figure", "record_heatmap_figure"]


def record_sweep_figure(record, name: str, panels, headline_stage: FusionStage,
                        paper_note: str) -> dict[str, float]:
    """Render all panels + a summary of the figure's headline stage."""
    stats = summarize(panels, headline_stage)
    blocks = [render_series(p) for p in panels]
    blocks.append(
        f"stage {headline_stage.value} summary: mean {stats['mean']:+.1f}% "
        f"max {stats['max']:+.1f}% min {stats['min']:+.1f}%"
    )
    blocks.append(f"paper: {paper_note}")
    record(name, "\n\n".join(blocks))
    return stats


def record_heatmap_figure(record, name: str, panels, paper_note: str):
    blocks = [render_heatmap(hm) for hm in panels]
    mean = sum(hm.mean for hm in panels) / len(panels)
    best = max(hm.max for hm in panels)
    worst = min(hm.min for hm in panels)
    blocks.append(
        f"overall: mean {mean:+.1f}% max {best:+.1f}% min {worst:+.1f}%"
    )
    blocks.append(f"paper: {paper_note}")
    record(name, "\n\n".join(blocks))
    return mean, best, worst
