#!/usr/bin/env python
"""Autotuned executor tiles vs the fixed legacy tiling.

Measures the tentpole of the tiling-autotune PR: compiled spectral-conv
executors built with ``tiles="auto"`` — plan-time tile search over a
small ``(signal_tile, k_tb)`` candidate grid, seeded by the analytic
cache-footprint model and cached in the tune store — against the same
executors on the inherited fixed tiling (``signal_tile=16``,
``k_tb=8``).

The search space is bit-exact by construction (signal tiles partition
row-independent work; staging ``k_tb`` is a whole multiple of the
accumulation width), and this benchmark **hard-asserts** it: every
autotuned output must be byte-identical to the default-tile output and
— for the fused dataflows — to the frozen :mod:`repro.core.legacy`
oracle.  Tune time is reported separately: it is plan-time cost, paid
once per (geometry, dtype, backend, batch bucket) and amortised by the
persistent store.

Exit status is the CI gate: non-zero unless the geomean autotuned
speedup over the gated (fused) cases reaches the floor on at least one
backend — tiling autotune must pay for itself somewhere, on every
runner.

Usage::

    PYTHONPATH=src python benchmarks/bench_autotune.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import math
import os
import pathlib
import platform
import sys
import tempfile
import time

import numpy as np

from repro.core import legacy
from repro.core.autotune import TuneStore, Tuner, probe_signal
from repro.core.compiled import compile_spectral_conv
from repro.fft._ckernels import build_info, kernels_available
from repro.fft.compiled import PlanCaches

RESULTS = pathlib.Path(__file__).parent / "results"

#: (kind, batch, hidden K = C_in = C_out, spatial, modes, gated).
#: Serving-shaped geometries — many signals over few channels — where
#: the fixed signal_tile=16 leaves dispatch amortisation on the table,
#: plus a channel-heavy case and (full mode) a 2-D and a symmetric
#: case.  ``gated`` marks the fused cases the geomean gate runs over.
CASES = {
    "quick": [
        ("fused1d", 512, 8, (64,), (32,), True),
        ("fused1d", 256, 16, (64,), (32,), True),
    ],
    "full": [
        ("fused1d", 512, 8, (64,), (32,), True),
        ("fused1d", 256, 16, (64,), (32,), True),
        ("fused1d", 384, 8, (128,), (32,), True),
        ("fused1d", 256, 32, (128,), (64,), True),
        ("fused2d", 32, 8, (32, 64), (8, 32), True),
        ("sym1d", 256, 16, (128,), (32,), False),
    ],
}

#: Geomean floor for the CI gate (best backend over the gated cases).
GEOMEAN_FLOOR = 1.10


def _timeit(fn, repeats: int) -> float:
    fn()  # warm: lazy staging must not bill the timed path
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _oracle(kind, x, weight, modes):
    if kind == "fused1d":
        return legacy.fused_fft_gemm_ifft_1d(x, weight, modes[0])
    if kind == "fused2d":
        return legacy.fused_fft_gemm_ifft_2d(x, weight, *modes)
    return None  # symmetric: no frozen legacy twin; default-tile twin used


def bench_case(case, plans, tuner, repeats, rng):
    kind, batch, hidden, spatial, modes, gated = case
    symmetric = kind.startswith("sym")
    weight = (
        (rng.standard_normal((hidden, hidden))
         + 1j * rng.standard_normal((hidden, hidden))) / hidden
    ).astype(np.complex64)
    x = probe_signal((batch, hidden, *spatial), np.float32)
    modes_arg = modes if len(modes) > 1 else modes[0]

    default_ex = compile_spectral_conv(
        weight, modes_arg, symmetric=symmetric, plans=plans
    )
    tuned_ex = compile_spectral_conv(
        weight, modes_arg, symmetric=symmetric, plans=plans,
        tiles="auto", tuner=tuner,
    )
    t0 = time.perf_counter()
    tiles = tuned_ex.resolve_tiles(batch, spatial, dtype=np.float32)
    tune_s = time.perf_counter() - t0

    ref = default_ex(x)
    got = tuned_ex(x)
    if got.dtype != ref.dtype or not np.array_equal(got, ref):
        raise SystemExit(
            f"FATAL: autotuned output != default-tile output ({kind})"
        )
    oracle = _oracle(kind, x, weight, modes)
    if oracle is not None and not np.array_equal(got, oracle):
        raise SystemExit(
            f"FATAL: autotuned output != core.legacy oracle ({kind})"
        )

    t_default = _timeit(lambda: default_ex(x), repeats)
    t_tuned = _timeit(lambda: tuned_ex(x), repeats)
    return {
        "case": (
            f"{kind} B={batch} K={hidden} "
            f"spatial={'x'.join(map(str, spatial))} "
            f"modes={'x'.join(map(str, modes))}"
        ),
        "kind": kind,
        "gated": gated,
        "tiles": list(tiles),
        "default_ms": t_default * 1e3,
        "tuned_ms": t_tuned * 1e3,
        "speedup": t_default / t_tuned,
        "tune_seconds": tune_s,
        "outputs_equal": True,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="small grid (the CI gate)")
    ap.add_argument("--repeats", type=int, default=None)
    ap.add_argument("--out", default=str(RESULTS / "autotune.json"))
    args = ap.parse_args(argv)

    mode = "quick" if args.quick else "full"
    repeats = args.repeats or (3 if args.quick else 5)
    rng = np.random.default_rng(0)

    backends = ["numpy"] + (["auto"] if kernels_available() else [])
    by_backend = {}
    for backend in backends:
        plans = PlanCaches(backend=backend)
        # An isolated throwaway store: the benchmark must measure a
        # fresh search, not recall winners from the developer's cache.
        store = TuneStore(
            pathlib.Path(tempfile.mkdtemp(prefix="repro-bench-tune-"))
            / "autotune.json"
        )
        tuner = Tuner(store=store)
        rows = [
            bench_case(case, plans, tuner, repeats, rng)
            for case in CASES[mode]
        ]
        gated = [r["speedup"] for r in rows if r["gated"]]
        geomean = math.exp(sum(math.log(s) for s in gated) / len(gated))
        by_backend[backend] = {
            "rows": rows,
            "geomean_gated": geomean,
            "tuner": tuner.stats(),
        }

    report = {
        "meta": {
            "mode": mode,
            "repeats": repeats,
            "geomean_floor": GEOMEAN_FLOOR,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
            "ckernels": kernels_available(),
            "ckernels_info": build_info(),
            "backends": backends,
        },
        "autotune": by_backend,
    }
    out = pathlib.Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")

    print(f"# executor tile autotune ({mode}; C kernels: "
          f"{report['meta']['ckernels_info']})")
    for backend, data in by_backend.items():
        for row in data["rows"]:
            st, ktb = row["tiles"]
            gate = "*" if row["gated"] else " "
            print(f" {gate}[{backend:>6s}] {row['case']:<44s} "
                  f"tiles=(st={st}, k_tb={ktb}) "
                  f"{row['default_ms']:8.2f} -> {row['tuned_ms']:8.2f} ms "
                  f"({row['speedup']:.2f}x; tune {row['tune_seconds']:.2f}s)")
        print(f"  [{backend:>6s}] geomean over gated cases: "
              f"{data['geomean_gated']:.3f}x")

    # CI gate: autotune must pay for itself on at least one backend.
    best = max(d["geomean_gated"] for d in by_backend.values())
    if best < GEOMEAN_FLOOR:
        print(f"FAIL: best-backend geomean {best:.3f}x < "
              f"{GEOMEAN_FLOOR:.2f}x floor", file=sys.stderr)
        return 1
    print(f"OK: autotuned geomean >= {GEOMEAN_FLOOR:.2f}x on at least one "
          f"backend (best {best:.3f}x); byte identity asserted on every "
          f"case")
    return 0


if __name__ == "__main__":
    sys.exit(main())
