"""Figure 8: bank utilization of the CGEMM->iFFT epilogue write-back.

Naive layout: threads 0/4/8/12 collide (25 %).  TurboFNO's
``addr += threadIdx.x / 4`` offset into the sFFT buffer: 100 %.
"""

import pytest

from repro.analysis import figures


def _build():
    return figures.fig08()


def test_fig08_bank_utilization(benchmark, record):
    util = benchmark(_build)
    lines = [f"{k}: {v:.2%}" for k, v in sorted(util.items())]
    record("fig08_smem_gemm_ifft", "\n".join(lines))
    assert util["epilogue_naive"] == pytest.approx(0.25)
    assert util["epilogue_swizzled"] == 1.0
