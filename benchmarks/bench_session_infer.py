#!/usr/bin/env python
"""Session batched inference vs the per-request ``spectral_conv`` path.

Measures the serving path the ``repro.api.Session`` tentpole adds: a
mixed-geometry stream of Fourier-layer inference requests served three
ways —

1. **per-call** — ``api.spectral_conv(x, w, modes, engine="turbo")``
   per request: the pre-session hot path, which restages a throwaway
   executor (weight casts, plan lookups) on every call;
2. **session, cold** — the first ``session.infer_many`` pass on a fresh
   session: pays executor compilation and FFT-plan construction once;
3. **session, warm** — ``session.infer_many`` on the warmed session:
   geometry micro-batching over the pooled compiled executors.

Every backend is measured in-process via ``Session(backend=...)`` —
per-session configuration, no environment flag needed — and every case
hard-asserts ``np.array_equal`` between the batched results, the serial
``session.infer`` loop, and the per-call reference: micro-batching must
not change a single bit, on either substrate.

Exit status is the CI gate: non-zero when warm batched serving is
slower than the per-call path (floor 1.0 with the C kernels, 0.9 on
the pure-NumPy fallback where both paths share the same substrate and
the residual margin is staging overhead vs noise).

Usage::

    PYTHONPATH=src python benchmarks/bench_session_infer.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

import numpy as np

from repro import api
from repro.fft._ckernels import build_info, kernels_available

RESULTS = pathlib.Path(__file__).parent / "results"

#: (signal batch per request, hidden K, [(dim_x, modes), ...], requests).
#: Serving-shaped traffic: many small requests over few geometries.
CASES = {
    "quick": [(1, 32, [(128, 64), (256, 64)], 96)],
    "full": [
        (1, 32, [(128, 64), (256, 64)], 384),
        (2, 64, [(128, 64), (256, 128)], 192),
        (1, 16, [(128, 32), (256, 64), (512, 128)], 576),
    ],
}


def _timeit(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _build_requests(signal_batch, hidden, geometries, n_requests, rng):
    weight = (
        (rng.standard_normal((hidden, hidden))
         + 1j * rng.standard_normal((hidden, hidden))) / hidden
    ).astype(np.complex64)
    # One model per modes count (weights shared), round-robin geometries.
    models = {m: api.SpectralModel(weight, m) for _, m in geometries}
    requests = []
    for i in range(n_requests):
        dim_x, modes = geometries[i % len(geometries)]
        x = (
            rng.standard_normal((signal_batch, hidden, dim_x))
            + 1j * rng.standard_normal((signal_batch, hidden, dim_x))
        ).astype(np.complex64)
        requests.append((models[modes], x))
    return weight, requests


def bench_case(case, backend, max_batch, workers, repeats, rng):
    signal_batch, hidden, geometries, n_requests = case
    weight, requests = _build_requests(
        signal_batch, hidden, geometries, n_requests, rng
    )

    # Cold: a fresh session pays plan + executor staging inside the call.
    cold_session = api.Session(backend=backend, private_caches=True)
    t0 = time.perf_counter()
    cold = cold_session.infer_many(requests, max_batch=max_batch)
    t_cold = time.perf_counter() - t0
    cold_session.close()

    session = api.Session(backend=backend, private_caches=True)

    def per_call():
        # The pre-session hot path *on the same warm session/substrate*:
        # one functional spectral_conv per request, restaging a
        # throwaway executor each call (FFT plans come from the
        # session's caches via the activation scope).
        with session.activate():
            return [
                api.spectral_conv(x, model.weight, model.modes[0],
                                  engine="turbo")
                for model, x in requests
            ]

    ref = per_call()
    warm0 = session.infer_many(requests, max_batch=max_batch)  # warm it
    serial = [session.infer(model, x) for model, x in requests]
    batched = session.infer_many(requests, max_batch=max_batch)
    threaded = session.infer_many(
        requests, max_batch=max_batch, workers=workers
    )
    for got, name in ((cold, "cold"), (warm0, "warm#0"), (serial, "serial"),
                      (batched, "warm"), (threaded, "threaded")):
        if not all(np.array_equal(a, b) for a, b in zip(ref, got)):
            raise SystemExit(
                f"session {name} outputs != per-call outputs "
                f"(backend={backend})"
            )

    t_per_call = _timeit(per_call, repeats)
    t_warm = _timeit(
        lambda: session.infer_many(requests, max_batch=max_batch), repeats
    )
    stats = session.stats()
    session.close()
    n = len(requests)
    return {
        "case": (
            f"BS={signal_batch} K={hidden} "
            f"geoms={'/'.join(f'{d}:{m}' for d, m in geometries)} "
            f"requests={n}"
        ),
        "backend": backend,
        "per_call_ms": t_per_call * 1e3,
        "cold_ms": t_cold * 1e3,
        "warm_ms": t_warm * 1e3,
        "per_call_rps": n / t_per_call,
        "cold_rps": n / t_cold,
        "warm_rps": n / t_warm,
        "speedup_vs_per_call": t_per_call / t_warm,
        "micro_batches": stats["batches"],
        "outputs_equal": True,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="small cases (the CI gate)")
    ap.add_argument("--repeats", type=int, default=None)
    ap.add_argument("--max-batch", type=int, default=16)
    ap.add_argument("--workers", type=int, default=4,
                    help="threads for the threaded-equality check")
    ap.add_argument("--out", default=str(RESULTS / "session_infer.json"))
    args = ap.parse_args(argv)

    mode = "quick" if args.quick else "full"
    repeats = args.repeats or (3 if args.quick else 5)
    rng = np.random.default_rng(0)

    backends = ["numpy"] + (["auto"] if kernels_available() else [])
    rows = [
        bench_case(case, backend, args.max_batch, args.workers, repeats, rng)
        for case in CASES[mode]
        for backend in backends
    ]

    report = {
        "meta": {
            "mode": mode,
            "repeats": repeats,
            "max_batch": args.max_batch,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
            "ckernels": kernels_available(),
            "ckernels_info": build_info(),
            "backends": backends,
        },
        "serve": rows,
    }
    out = pathlib.Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")

    print(f"# session batched inference ({mode}; C kernels: "
          f"{report['meta']['ckernels_info']})")
    for row in rows:
        print(f"  [{row['backend']:>6s}] {row['case']}: "
              f"per-call {row['per_call_rps']:7.1f} req/s -> "
              f"warm batched {row['warm_rps']:7.1f} req/s "
              f"({row['speedup_vs_per_call']:.2f}x; "
              f"cold {row['cold_rps']:7.1f} req/s)")

    # CI gate: warm batched serving must beat the per-call path.
    failed = False
    for row in rows:
        floor = 1.0 if (row["backend"] == "auto") else 0.9
        if row["speedup_vs_per_call"] < floor:
            print(f"FAIL: [{row['backend']}] warm batched at "
                  f"{row['speedup_vs_per_call']:.2f}x < {floor:.2f}x of "
                  f"per-call", file=sys.stderr)
            failed = True
    if failed:
        return 1
    worst = min(r["speedup_vs_per_call"] for r in rows)
    print(f"OK: warm batched serving >= per-call on every backend "
          f"(worst {worst:.2f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
