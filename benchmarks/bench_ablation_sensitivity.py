"""Ablation: model-parameter sensitivity of the paper's conclusions.

A reproduction built on an analytic device model must show its headline
conclusions are not artifacts of one calibration point.  This bench sweeps
the model's efficiency/overhead/derate knobs and asserts the paper's three
core qualitative results hold at every point.
"""

from repro.analysis.calibration import sensitivity_study


def _build():
    return sensitivity_study()


def test_conclusions_are_model_robust(benchmark, record):
    results = benchmark(_build)
    lines = []
    for conclusion, points in results.items():
        held = sum(points.values())
        lines.append(f"{conclusion}: held at {held}/{len(points)} points")
        for point, ok in points.items():
            lines.append(f"    {point:<38s} {'ok' if ok else 'VIOLATED'}")
    record("ablation_sensitivity", "\n".join(lines))
    for conclusion, points in results.items():
        assert all(points.values()), (
            f"{conclusion} violated at "
            f"{[p for p, ok in points.items() if not ok]}"
        )
