"""Figure 1(c): per-kernel time breakdown, PyTorch vs fused TurboFNO.

Regenerates the motivating bar chart — the five-kernel PyTorch pipeline
(FFT, truncation copy, CGEMM, padding copy, iFFT) against the single fused
FFT-GEMM-iFFT kernel — and records both breakdowns.
"""

from repro.analysis import figures


def _build():
    return figures.fig01c()


def test_fig01c_breakdown(benchmark, record):
    result = benchmark(_build)
    lines = [
        result.pytorch.breakdown(),
        result.turbo.breakdown(),
        f"fused speedup vs PyTorch: {result.speedup_percent:+.1f}%",
        f"kernel launches: {result.pytorch.launch_count} -> "
        f"{result.turbo.launch_count}",
        f"DRAM traffic: {result.pytorch.counters.global_bytes:.3e} B -> "
        f"{result.turbo.counters.global_bytes:.3e} B",
    ]
    record("fig01c_breakdown", "\n".join(lines))
    assert result.turbo.launch_count == 1
    assert result.speedup_percent > 0
