#!/usr/bin/env python
"""ServePool worker-scaling curve vs the serial in-process session.

Measures the multi-process serving tentpole: one warm
``repro.api.Session`` per worker process, geometry-hash sharding,
shared-memory tensor transport.  A mixed-geometry stream of
Fourier-layer inference requests is served

1. **serial** — ``Session.infer_many`` on one warm in-process session
   (the PR 4 path; the single-core reference), and
2. **pool xN** — ``ServePool(workers=N).infer_many`` for each N on the
   scaling curve, after one warmup pass per pool.

Every pool run hard-asserts ``np.array_equal`` against the serial
results: sharding and process hops must not change a single bit.  The
request grid (three FFT sizes x three mode counts) is chosen so its
geometry hashes cover every shard at ``workers=4`` — the curve
measures real multi-worker traffic, not one hot shard.

Exit status is the CI gate: with ``--quick``, non-zero when the
4-worker pool fails to reach ``--gate``x (default 1.7x) the throughput
of the 1-worker pool.  The gate only arms on hosts with >= 4 CPUs
(GitHub runners qualify); below that the scaling claim is physically
untestable and the gate reports SKIP while bit-identity stays
hard-asserted.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve_scaling.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

import numpy as np

from repro import api
from repro.api.serve import ServePool, geometry_key, shard_for
from repro.fft._ckernels import build_info, kernels_available

RESULTS = pathlib.Path(__file__).parent / "results"

#: (signal batch, hidden K, [dim_x...], [modes...], requests).  The
#: 3x3 geometry grid hashes onto all four shards at workers=4.
CASES = {
    "quick": [(4, 16, [512, 1024, 2048], [64, 128, 256], 72)],
    "full": [
        (4, 16, [512, 1024, 2048], [64, 128, 256], 216),
        (8, 32, [512, 1024, 2048], [64, 128, 256], 144),
    ],
}


def _build_requests(signal_batch, hidden, dims, modes_list, n_requests, rng):
    weight = (
        (rng.standard_normal((hidden, hidden))
         + 1j * rng.standard_normal((hidden, hidden))) / hidden
    ).astype(np.complex64)
    geometries = [(d, m) for d in dims for m in modes_list]
    models = {m: api.SpectralModel(weight, m) for m in modes_list}
    requests = []
    for i in range(n_requests):
        dim_x, modes = geometries[i % len(geometries)]
        x = (
            rng.standard_normal((signal_batch, hidden, dim_x))
            + 1j * rng.standard_normal((signal_batch, hidden, dim_x))
        ).astype(np.complex64)
        requests.append((models[modes], x))
    return requests


def _shard_coverage(requests, workers: int) -> int:
    return len({
        shard_for(geometry_key(model, x), workers) for model, x in requests
    })


def _timeit(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_case(case, backend, worker_counts, max_batch, repeats, rng):
    signal_batch, hidden, dims, modes_list, n_requests = case
    requests = _build_requests(
        signal_batch, hidden, dims, modes_list, n_requests, rng
    )
    n = len(requests)

    session = api.Session(backend=backend, private_caches=True)
    refs = session.infer_many(requests, max_batch=max_batch)  # warm
    t_serial = _timeit(
        lambda: session.infer_many(requests, max_batch=max_batch), repeats
    )
    session.close()

    curve = []
    for workers in worker_counts:
        with ServePool(workers=workers, backend=backend,
                       max_batch=max_batch) as pool:
            outs = pool.infer_many(requests, timeout=600)  # warm every shard
            for i, (a, b) in enumerate(zip(refs, outs)):
                if a.dtype != b.dtype or not np.array_equal(a, b):
                    raise SystemExit(
                        f"pool x{workers} request {i} != serial session "
                        f"(backend={backend})"
                    )
            t_pool = _timeit(
                lambda: pool.infer_many(requests, timeout=600), repeats
            )
            stats = pool.stats()
        shards_hit = len({
            entry["worker"] for entry in stats["per_geometry"].values()
        })
        curve.append({
            "workers": workers,
            "pool_ms": t_pool * 1e3,
            "pool_rps": n / t_pool,
            "speedup_vs_serial": t_serial / t_pool,
            "shards_active": shards_hit,
            "admission": stats["admission"],
            "outputs_equal": True,
        })
    return {
        "case": (
            f"BS={signal_batch} K={hidden} "
            f"dims={'/'.join(map(str, dims))} "
            f"modes={'/'.join(map(str, modes_list))} requests={n}"
        ),
        "backend": backend,
        "serial_ms": t_serial * 1e3,
        "serial_rps": n / t_serial,
        "shard_coverage_at_4": _shard_coverage(requests, 4),
        "curve": curve,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="small case + the 4-worker CI gate")
    ap.add_argument("--repeats", type=int, default=None)
    ap.add_argument("--max-batch", type=int, default=16)
    ap.add_argument("--workers", type=int, nargs="+", default=None,
                    help="worker counts on the curve (default 1 2 4)")
    ap.add_argument("--gate", type=float, default=1.7,
                    help="required 4-worker speedup over the 1-worker "
                         "pool (default 1.7)")
    ap.add_argument("--out", default=str(RESULTS / "serve_scaling.json"))
    args = ap.parse_args(argv)

    mode = "quick" if args.quick else "full"
    repeats = args.repeats or (3 if args.quick else 5)
    worker_counts = args.workers or [1, 2, 4]
    rng = np.random.default_rng(0)
    cpu_count = os.cpu_count() or 1

    backends = (
        ["auto"] if kernels_available() and mode == "quick"
        else (["numpy"] + (["auto"] if kernels_available() else []))
    )
    rows = [
        bench_case(case, backend, worker_counts, args.max_batch, repeats, rng)
        for case in CASES[mode]
        for backend in backends
    ]

    report = {
        "meta": {
            "mode": mode,
            "repeats": repeats,
            "max_batch": args.max_batch,
            "worker_counts": worker_counts,
            "gate": args.gate,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": cpu_count,
            "ckernels": kernels_available(),
            "ckernels_info": build_info(),
            "backends": backends,
        },
        "scaling": rows,
    }
    out = pathlib.Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")

    print(f"# serve pool scaling ({mode}; cpus: {cpu_count}; C kernels: "
          f"{report['meta']['ckernels_info']})")
    for row in rows:
        print(f"  [{row['backend']:>6s}] {row['case']}: "
              f"serial {row['serial_rps']:7.1f} req/s")
        for point in row["curve"]:
            print(f"      pool x{point['workers']}: "
                  f"{point['pool_rps']:7.1f} req/s "
                  f"({point['speedup_vs_serial']:.2f}x serial; "
                  f"{point['shards_active']} shards)  [bit-identical]")

    # CI gate: at >= 4 CPUs the 4-worker pool must scale over the
    # 1-worker pool.  (Pool-vs-pool isolates process-parallel speedup
    # from the constant IPC overhead both sides of the curve pay.)
    gated = args.quick and 4 in worker_counts and 1 in worker_counts
    if not gated:
        print("gate: not armed (needs --quick with 1 and 4 on the curve)")
        return 0
    if cpu_count < 4:
        print(f"gate: SKIP — {cpu_count} CPU(s) < 4; scaling is "
              f"physically untestable here (bit-identity still asserted)")
        return 0
    failed = False
    for row in rows:
        by_workers = {p["workers"]: p for p in row["curve"]}
        scale = by_workers[4]["pool_rps"] / by_workers[1]["pool_rps"]
        if scale < args.gate:
            print(f"FAIL: [{row['backend']}] 4-worker pool at {scale:.2f}x "
                  f"the 1-worker pool < {args.gate:.2f}x", file=sys.stderr)
            failed = True
        else:
            print(f"OK: [{row['backend']}] 4-worker pool {scale:.2f}x the "
                  f"1-worker pool (gate {args.gate:.2f}x)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
