"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``figures [--dense] [--out DIR] [--workers N]``
    Regenerate every paper figure/table and write rendered reports
    (``--workers`` shards the fig14/fig19 heatmap grids over a process
    pool).
``ladder [--dim {1,2}] [--k K] [--batch BS] [--fft-x NX] [--fft-y NY]
[--modes N] [--device NAME] [--json]``
    Print the Table 2 stage ladder for one problem (``--json`` for a
    machine-readable report built from ``ExecutionPlan.to_dict()``).
``claims [--json]``
    Print the exact-arithmetic paper claims (Figs. 5/7/8) and their
    reproduced values.
``tune [--grid {quick,full}] [--backend {auto,ckernels,numpy}]
[--retune] [--json]``
    Warm the persistent tile-tune store (``~/.cache/repro``;
    ``REPRO_TUNE_CACHE`` overrides): for every geometry in the chosen
    grid, time the autotune candidate tiles of the compiled
    spectral-conv executor and record the winner, printing the measured
    default-vs-tuned speedup.  Tiling never changes output bits; a
    warmed store means ``Session(autotune=True)`` serving never pays
    the timed search inline.  ``--retune`` overwrites stored winners.
``serve-bench [--requests N] [--max-batch B] [--workers W] [--procs P]
[--backend {auto,ckernels,numpy}] [--json]``
    Micro-benchmark the serving paths: a mixed-geometry stream of
    Fourier-layer inference requests runs once per request (the
    unbatched path) and once through ``session.infer_many`` (geometry
    micro-batching over pooled compiled executors), asserting
    bit-identical outputs and reporting requests/sec for both.
    ``--procs P`` additionally drives the same stream through a
    ``repro.api.ServePool`` of P shared-nothing worker processes
    (geometry-hash sharded, shared-memory tensors) and reports its
    requests/sec — still hard-asserted bit-identical.  ``--backend``
    pins the executor substrate — per-session configuration where the
    seed only had the process-global ``REPRO_NO_CKERNELS``.
``rollout [--streams N] [--steps S] [--profile {exact,fast}] [--procs P]
[--backend {auto,ckernels,numpy}] [--json]``
    Micro-benchmark autoregressive rollout serving: N concurrent
    streams step S times through an eager per-step inference loop and
    through ``session.rollout`` (state kept resident, streams
    micro-batched by geometry), hard-asserting bit-identical final
    states on the default ``exact`` profile and reporting steps/sec
    plus p50/p95/p99 step latency.  ``--procs P`` additionally serves
    the same streams through a ``repro.api.ServePool`` (each stream
    pinned to its geometry shard).  ``--profile fast`` opts into the
    spectrum-resident stepping loop (inverse/forward transform pairs
    between steps elided).
``chaos-soak [--requests N] [--workers W] [--seed S] [--backend B]
[--faults SPEC] [--quick] [--json]``
    Drive a seeded chaos soak through a ``repro.api.ServePool``: a
    mixed-geometry request stream under a scripted fault plan
    (crashes, hangs, latency, ring-allocation failures, corrupted
    headers — ``FaultPlan.chaos(seed, N)`` by default, or an explicit
    ``--faults "kind@index[:seconds][!];..."`` spec) with a short hang
    timeout and a sprinkle of already-expired deadlines.  Exits
    non-zero unless the three acceptance invariants hold: every future
    resolves (result or typed error), every shared-memory segment
    unlinks at close, and every successful result is bit-identical to
    a serial one-worker session.  ``--quick`` is the CI-sized run.
``lint [--json] [--rule NAME] [--root DIR] [--list-rules]``
    Run the project-invariant static analyzer (:mod:`repro.tools.lint`):
    AST-based rules enforcing the determinism, cache-scope,
    shared-memory-lifecycle, lock-order, typed-failure and
    worker-protocol contracts, gated at zero findings in CI.  Exits
    non-zero on any finding.

Commands resolve problems through the :mod:`repro.api` facade; ``ladder``'s
``--device h100`` (or any name added with ``repro.api.register_device``)
re-asks its question of a different part.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.analysis import figures, render_heatmap, render_series

    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    sweeps = {
        "fig10": figures.fig10, "fig11": figures.fig11,
        "fig12": figures.fig12, "fig13": figures.fig13,
        "fig15": figures.fig15, "fig16": figures.fig16,
        "fig17": figures.fig17, "fig18": figures.fig18,
    }
    for name, builder in sweeps.items():
        panels = builder(dense=args.dense)
        (out / f"{name}.txt").write_text(
            "\n\n".join(render_series(p) for p in panels) + "\n"
        )
        print(f"wrote {out / name}.txt")
    for name, builder in {"fig14": figures.fig14, "fig19": figures.fig19}.items():
        panels = builder(dense=args.dense, workers=args.workers)
        (out / f"{name}.txt").write_text(
            "\n\n".join(render_heatmap(h) for h in panels) + "\n"
        )
        print(f"wrote {out / name}.txt")
    return 0


def _ladder_problem(args: argparse.Namespace):
    """Resolve the problem geometry from the CLI flags.

    ``--fft`` remains a deprecated alias: it sets the 1-D FFT size, or the
    DimY size in 2-D (the pre-facade behavior, where DimX was hardcoded).
    """
    from repro.core.config import FNO1DProblem, FNO2DProblem

    def pick(*values: int | None) -> int:
        # First explicitly-passed value wins; 0 still reaches the problem
        # validators instead of silently falling through to the default.
        return next(v for v in values if v is not None)

    if args.dim == 1:
        if args.fft_y is not None:
            raise ValueError(
                "--fft-y only applies to --dim 2; use --fft-x for the 1-D "
                "FFT size"
            )
        dim_x = pick(args.fft_x, args.fft, 128)
        return FNO1DProblem(batch=args.batch, hidden=args.k, dim_x=dim_x,
                            modes=args.modes)
    dim_x = pick(args.fft_x, 256)
    dim_y = pick(args.fft_y, args.fft, 128)
    return FNO2DProblem(batch=args.batch, hidden=args.k, dim_x=dim_x,
                        dim_y=dim_y, modes_x=args.modes, modes_y=args.modes)


def _cmd_ladder(args: argparse.Namespace) -> int:
    from repro.api import Runner
    from repro.core.stages import FusionStage

    try:
        runner = Runner(device=args.device)
        prob = _ladder_problem(args)
    except ValueError as exc:  # unknown device / bad geometry: clean error
        print(f"error: {exc}", file=sys.stderr)
        return 2
    base = runner.plan(prob, FusionStage.PYTORCH)

    if args.json:
        payload = {
            "device": runner.device.name,
            "stages": [
                runner.plan(prob, stage).to_dict()
                for stage in (FusionStage.PYTORCH, *FusionStage.ladder())
            ],
        }
        best = runner.best(prob)
        payload["best_stage"] = best.stage.value
        print(json.dumps(payload, indent=2))
        return 0

    print(base.report().breakdown())
    for stage in FusionStage.ladder():
        p = runner.plan(prob, stage)
        print(
            f"stage {stage.value}: {p.total_time * 1e3:8.4f} ms "
            f"({p.launch_count} kernels) "
            f"speedup {p.speedup_vs_baseline():+6.1f}%"
        )
    return 0


def _cmd_claims(args: argparse.Namespace) -> int:
    from repro.analysis import figures

    rows = figures.fig05(())
    if args.json:
        payload = {
            "fig05": [
                {"n": r.n, "keep": r.keep, "ops": r.ops,
                 "total_ops": r.total_ops, "fraction": r.fraction}
                for r in rows
            ],
            "fig07": figures.fig07(),
            "fig08": figures.fig08(),
        }
        print(json.dumps(payload, indent=2))
        return 0
    print("Figure 5 (butterfly pruning, 4-pt FFT):")
    for r in rows:
        print(f"  keep {r.keep}/4: {r.ops}/{r.total_ops} ops = {r.fraction:.1%}"
              "  (paper: 37.5% / 75%)" if r.keep == 1 else
              f"  keep {r.keep}/4: {r.ops}/{r.total_ops} ops = {r.fraction:.1%}")
    print("Figure 7/8 (shared-memory bank utilization):")
    for k, v in {**figures.fig07(), **figures.fig08()}.items():
        print(f"  {k:<26s} {v:>7.2%}")
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    import time

    import numpy as np

    from repro.api import Session, SpectralModel

    try:
        session = Session(backend=args.backend)
    except (ValueError, RuntimeError) as exc:  # bad/unavailable backend
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rng = np.random.default_rng(args.seed)
    hidden = args.k
    weight = (
        (rng.standard_normal((hidden, hidden))
         + 1j * rng.standard_normal((hidden, hidden))) / hidden
    ).astype(np.complex64)
    # A mixed-geometry request stream: two FFT sizes, shared weights —
    # the shape of traffic the executor pool and micro-batcher target.
    geometries = ((128, 64), (256, 64))
    models = {
        (n, m): SpectralModel(weight, m) for (n, m) in geometries
    }
    requests = []
    for i in range(args.requests):
        dim_x, modes = geometries[i % len(geometries)]
        x = (
            rng.standard_normal((args.signal_batch, hidden, dim_x))
            + 1j * rng.standard_normal((args.signal_batch, hidden, dim_x))
        ).astype(np.complex64)
        requests.append((models[(dim_x, modes)], x))

    session.warmup([])  # no-op geometry warmup; executors warm below
    warm = session.infer_many(requests, max_batch=args.max_batch)

    t0 = time.perf_counter()
    unbatched = [session.infer(model, x) for model, x in requests]
    t_unbatched = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched = session.infer_many(
        requests, max_batch=args.max_batch, workers=args.workers
    )
    t_batched = time.perf_counter() - t0

    if not all(
        np.array_equal(a, b)
        for a, b in zip(unbatched, batched)
    ) or not all(np.array_equal(a, b) for a, b in zip(warm, batched)):
        print("error: batched outputs != per-request outputs",
              file=sys.stderr)
        return 1

    n = len(requests)
    payload = {
        "backend": session.backend,
        "requests": n,
        "max_batch": args.max_batch,
        "workers": args.workers,
        "unbatched_rps": n / t_unbatched,
        "batched_rps": n / t_batched,
        "speedup": t_unbatched / t_batched,
        "stats": session.stats(),
    }

    if args.procs:
        from repro.api import ServePool

        with ServePool(
            workers=args.procs, backend=args.backend,
            max_batch=args.max_batch,
        ) as pool:
            pool.infer_many(requests)  # warm every shard
            t0 = time.perf_counter()
            pooled = pool.infer_many(requests)
            t_pool = time.perf_counter() - t0
            pool_stats = pool.stats()
        if not all(np.array_equal(a, b) for a, b in zip(batched, pooled)):
            print("error: pooled outputs != in-process outputs",
                  file=sys.stderr)
            return 1
        payload["procs"] = args.procs
        payload["pool_rps"] = n / t_pool
        payload["pool_speedup"] = t_unbatched / t_pool
        payload["pool_stats"] = pool_stats

    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    print(f"serve-bench: {n} requests, backend={session.backend}, "
          f"max_batch={args.max_batch}")
    print(f"  per-request : {payload['unbatched_rps']:8.1f} req/s")
    print(f"  micro-batched: {payload['batched_rps']:8.1f} req/s "
          f"({payload['speedup']:.2f}x)  [bit-identical]")
    if args.procs:
        print(f"  pool x{args.procs:<4d}  : {payload['pool_rps']:8.1f} req/s "
              f"({payload['pool_speedup']:.2f}x)  [bit-identical]")
    return 0


def _cmd_rollout(args: argparse.Namespace) -> int:
    import time

    import numpy as np

    from repro.api import Session, SpectralModel

    try:
        session = Session(backend=args.backend)
    except (ValueError, RuntimeError) as exc:  # bad/unavailable backend
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rng = np.random.default_rng(args.seed)
    hidden = args.k
    weight = (
        (rng.standard_normal((hidden, hidden))
         + 1j * rng.standard_normal((hidden, hidden))) / hidden
    ).astype(np.complex64)
    model = SpectralModel(weight, args.modes)
    streams = [
        (model, rng.standard_normal(
            (args.signal_batch, hidden, args.fft_x)
        ).astype(np.float32))
        for _ in range(args.streams)
    ]

    # Warm the pooled executor, then: eager per-step loop vs the
    # state-resident stepping loop over the same streams.
    session.rollout(streams=streams, steps=1)
    t0 = time.perf_counter()
    eager = []
    for m, x0 in streams:
        state = x0
        for _ in range(args.steps):
            state = session.infer(m, state)
        eager.append(state)
    t_eager = time.perf_counter() - t0

    t0 = time.perf_counter()
    rolled = session.rollout(streams=streams, steps=args.steps,
                             profile=args.profile)
    t_rollout = time.perf_counter() - t0

    if args.profile == "exact":
        if not all(np.array_equal(a, b) for a, b in zip(eager, rolled)):
            print("error: rollout outputs != eager per-step outputs",
                  file=sys.stderr)
            return 1

    total_steps = args.streams * args.steps
    payload = {
        "backend": session.backend,
        "streams": args.streams,
        "steps": args.steps,
        "profile": args.profile,
        "eager_steps_per_s": total_steps / t_eager,
        "rollout_steps_per_s": total_steps / t_rollout,
        "speedup": t_eager / t_rollout,
        "stats": session.stats(),
    }

    if args.procs:
        from repro.api import ServePool

        with ServePool(
            workers=args.procs, backend=args.backend,
        ) as pool:
            pool.rollout_many(streams, steps=1)  # warm every shard
            t0 = time.perf_counter()
            pooled = pool.rollout_many(streams, steps=args.steps,
                                       profile=args.profile)
            t_pool = time.perf_counter() - t0
            pool_stats = pool.stats()
        if args.profile == "exact":
            if not all(np.array_equal(a, b)
                       for a, b in zip(rolled, pooled)):
                print("error: pooled rollout != in-process rollout",
                      file=sys.stderr)
                return 1
        payload["procs"] = args.procs
        payload["pool_steps_per_s"] = total_steps / t_pool
        payload["pool_speedup"] = t_eager / t_pool
        payload["pool_stats"] = pool_stats

    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    tag = "[bit-identical]" if args.profile == "exact" else "[fast profile]"
    print(f"rollout: {args.streams} streams x {args.steps} steps, "
          f"backend={session.backend}, profile={args.profile}")
    print(f"  eager loop  : {payload['eager_steps_per_s']:8.1f} steps/s")
    print(f"  rollout     : {payload['rollout_steps_per_s']:8.1f} steps/s "
          f"({payload['speedup']:.2f}x)  {tag}")
    if args.procs:
        print(f"  pool x{args.procs:<5d} : {payload['pool_steps_per_s']:8.1f}"
              f" steps/s ({payload['pool_speedup']:.2f}x)  {tag}")
    p = payload["stats"]["latency"]
    if p["count"]:
        print(f"  step latency: p50={p['p50'] * 1e3:.3f} ms "
              f"p95={p['p95'] * 1e3:.3f} ms p99={p['p99'] * 1e3:.3f} ms")
    return 0


def _cmd_chaos_soak(args: argparse.Namespace) -> int:
    from repro.api.serve import FaultPlan, run_soak

    requests = 60 if args.quick else args.requests
    workers = 2 if args.quick else args.workers
    plan = None
    if args.faults is not None:
        try:
            plan = FaultPlan.parse(args.faults)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    report = run_soak(
        requests=requests, workers=workers, seed=args.seed,
        backend=args.backend, hang_timeout=args.hang_timeout, plan=plan,
    )
    if args.json:
        print(json.dumps(report, indent=2, default=str))
    else:
        print(f"chaos-soak: {report['requests']} requests, "
              f"{report['workers']} workers, seed={report['seed']}, "
              f"{report['faults']['planned']} planned faults")
        print(f"  outcomes : {report['outcomes']}")
        adm = report["admission"]
        print(f"  recovery : crashes={adm['crashes']} hangs={adm['hangs']} "
              f"retried={adm['retried']} corrupted={adm['corrupted']} "
              f"expired={adm['expired']} degraded={adm['degraded']}")
        print(f"  segments : created={report['segments']['created']} "
              f"leaked={report['segments']['leaked']}")
        for violation in report["violations"]:
            print(f"  VIOLATION: {violation}")
        print("  PASS: every future resolved, no leaked segments, "
              "successes bit-identical" if report["ok"] else "  FAIL")
    return 0 if report["ok"] else 1


#: ``tune`` geometry grids: (kind, batch, hidden in/out, spatial, modes).
#: Serving-shaped — many signals over few channels — plus one 2-D case
#: and one symmetric (half-spectrum) case per grid.
_TUNE_GRIDS = {
    "quick": [
        ("fused", 256, 8, (64,), (32,)),
        ("fused", 128, 16, (128,), (32,)),
    ],
    "full": [
        ("fused", 256, 8, (64,), (32,)),
        ("fused", 128, 16, (128,), (32,)),
        ("fused", 256, 32, (128,), (64,)),
        ("fused", 64, 16, (32, 64), (8, 32)),
        ("sym", 128, 16, (128,), (32,)),
    ],
}


def _cmd_tune(args: argparse.Namespace) -> int:
    import time

    import numpy as np

    from repro.core.autotune import (
        Tiles,
        Tuner,
        default_tune_store,
        measure_seconds,
        probe_signal,
    )
    from repro.core.compiled import compile_spectral_conv
    from repro.fft.compiled import PlanCaches

    try:
        plans = PlanCaches(backend=args.backend)
    except (ValueError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    store = default_tune_store()
    tuner = Tuner(store=store)
    rows = []
    for kind, batch, hidden, spatial, modes in _TUNE_GRIDS[args.grid]:
        symmetric = kind == "sym"
        weight = probe_signal((hidden, hidden), np.complex64)
        dtype = np.float32
        x = probe_signal((batch, hidden, *spatial), dtype)
        t0 = time.perf_counter()
        tuned_ex = compile_spectral_conv(
            weight, modes if len(modes) > 1 else modes[0],
            symmetric=symmetric, plans=plans, tiles="auto", tuner=tuner,
        )
        tiles = tuned_ex.resolve_tiles(
            batch, spatial, dtype=dtype, retune=args.retune
        )
        tune_s = time.perf_counter() - t0
        default_ex = compile_spectral_conv(
            weight, modes if len(modes) > 1 else modes[0],
            symmetric=symmetric, plans=plans,
        )
        t_def = measure_seconds(lambda: default_ex(x), repeats=3)
        t_tuned = measure_seconds(lambda: tuned_ex(x), repeats=3)
        if not np.array_equal(default_ex(x), tuned_ex(x)):
            print("error: tuned output != default output", file=sys.stderr)
            return 1
        rows.append({
            "kind": kind,
            "geometry": (
                f"B={batch} K={hidden} "
                f"spatial={'x'.join(map(str, spatial))} "
                f"modes={'x'.join(map(str, modes))}"
            ),
            "tiles": tuple(tiles),
            "default_ms": t_def * 1e3,
            "tuned_ms": t_tuned * 1e3,
            "speedup": t_def / t_tuned,
            "tune_seconds": tune_s,
            "outputs_equal": True,
        })
    payload = {
        "backend": args.backend,
        "grid": args.grid,
        "store": str(store.path),
        "tuner": tuner.stats(),
        "results": rows,
    }
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    print(f"# tile autotune ({args.grid} grid, backend={args.backend}, "
          f"store={store.path})")
    for row in rows:
        st, ktb = row["tiles"]
        print(f"  [{row['kind']:>5s}] {row['geometry']:<40s} "
              f"tiles=(st={st}, k_tb={ktb})  "
              f"{row['default_ms']:8.2f} ms -> {row['tuned_ms']:8.2f} ms "
              f"({row['speedup']:.2f}x)  [bit-identical]")
    print(f"  tuner: {tuner.stats()}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.tools.lint import main as lint_main

    argv = []
    if args.json:
        argv.append("--json")
    if args.list_rules:
        argv.append("--list-rules")
    if args.root is not None:
        argv += ["--root", args.root]
    for rule in args.rule or []:
        argv += ["--rule", rule]
    return lint_main(argv)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig = sub.add_parser("figures", help="regenerate all paper figures")
    p_fig.add_argument("--dense", action="store_true")
    p_fig.add_argument("--out", default="paper_report")
    p_fig.add_argument("--workers", type=int, default=None,
                       help="shard the fig14/fig19 heatmap grids over a "
                            "process pool (default: serial)")
    p_fig.set_defaults(func=_cmd_figures)

    p_lad = sub.add_parser("ladder", help="stage ladder for one problem")
    p_lad.add_argument("--dim", type=int, choices=(1, 2), default=1)
    p_lad.add_argument("--k", type=int, default=64)
    p_lad.add_argument("--batch", type=int, default=8192)
    p_lad.add_argument("--fft-x", type=int, default=None,
                       help="FFT size along DimX (1-D: 128, 2-D: 256)")
    p_lad.add_argument("--fft-y", type=int, default=None,
                       help="FFT size along DimY, 2-D only (default 128)")
    p_lad.add_argument("--fft", type=int, default=None,
                       help="deprecated: 1-D FFT size / 2-D DimY size")
    p_lad.add_argument("--modes", type=int, default=64)
    p_lad.add_argument("--device", default=None,
                       help="registered device name (a100, h100)")
    p_lad.add_argument("--json", action="store_true",
                       help="machine-readable ExecutionPlan reports")
    p_lad.set_defaults(func=_cmd_ladder)

    p_cl = sub.add_parser("claims", help="exact paper claims")
    p_cl.add_argument("--json", action="store_true",
                      help="machine-readable claim values")
    p_cl.set_defaults(func=_cmd_claims)

    p_tn = sub.add_parser(
        "tune", help="warm the persistent executor tile-tune store"
    )
    p_tn.add_argument("--grid", default="quick", choices=("quick", "full"),
                      help="geometry grid to tune (default quick)")
    p_tn.add_argument("--backend", default="auto",
                      choices=("auto", "ckernels", "numpy"),
                      help="executor substrate to tune for (default auto)")
    p_tn.add_argument("--retune", action="store_true",
                      help="re-measure even when the store has a winner")
    p_tn.add_argument("--json", action="store_true",
                      help="machine-readable report incl. chosen tiles")
    p_tn.set_defaults(func=_cmd_tune)

    p_sv = sub.add_parser("serve-bench",
                          help="session batched-inference micro-benchmark")
    p_sv.add_argument("--requests", type=int, default=64,
                      help="number of inference requests (default 64)")
    p_sv.add_argument("--signal-batch", type=int, default=4,
                      help="signals per request (default 4)")
    p_sv.add_argument("--k", type=int, default=32,
                      help="hidden/channel dimension (default 32)")
    p_sv.add_argument("--max-batch", type=int, default=16,
                      help="micro-batch size in requests (default 16)")
    p_sv.add_argument("--workers", type=int, default=None,
                      help="threads draining the micro-batch queue")
    p_sv.add_argument("--procs", type=int, default=None,
                      help="also run the stream through a ServePool of "
                           "this many worker processes")
    p_sv.add_argument("--backend", default="auto",
                      choices=("auto", "ckernels", "numpy"),
                      help="session executor backend (default auto)")
    p_sv.add_argument("--seed", type=int, default=0)
    p_sv.add_argument("--json", action="store_true",
                      help="machine-readable report incl. session stats")
    p_sv.set_defaults(func=_cmd_serve_bench)

    p_ro = sub.add_parser(
        "rollout",
        help="autoregressive rollout serving micro-benchmark",
    )
    p_ro.add_argument("--streams", type=int, default=8,
                      help="concurrent rollout streams (default 8)")
    p_ro.add_argument("--steps", type=int, default=16,
                      help="autoregressive steps per stream (default 16)")
    p_ro.add_argument("--signal-batch", type=int, default=4,
                      help="signals per stream (default 4)")
    p_ro.add_argument("--k", type=int, default=32,
                      help="hidden/channel dimension (default 32)")
    p_ro.add_argument("--fft-x", type=int, default=128,
                      help="spatial grid size (default 128)")
    p_ro.add_argument("--modes", type=int, default=32,
                      help="kept spectral modes (default 32)")
    p_ro.add_argument("--profile", default="exact",
                      choices=("exact", "fast"),
                      help="stepping profile (exact: bit-identical to the "
                           "eager loop; fast: spectrum-resident)")
    p_ro.add_argument("--procs", type=int, default=None,
                      help="also serve the streams through a ServePool of "
                           "this many worker processes")
    p_ro.add_argument("--backend", default="auto",
                      choices=("auto", "ckernels", "numpy"),
                      help="session executor backend (default auto)")
    p_ro.add_argument("--seed", type=int, default=0)
    p_ro.add_argument("--json", action="store_true",
                      help="machine-readable report incl. latency stats")
    p_ro.set_defaults(func=_cmd_rollout)

    p_cs = sub.add_parser(
        "chaos-soak",
        help="fault-injection soak of the multi-process serving pool",
    )
    p_cs.add_argument("--requests", type=int, default=300,
                      help="requests in the soak stream (default 300)")
    p_cs.add_argument("--workers", type=int, default=4,
                      help="pool worker processes (default 4)")
    p_cs.add_argument("--seed", type=int, default=0,
                      help="seeds both the stream and the chaos plan")
    p_cs.add_argument("--backend", default="numpy",
                      choices=("auto", "ckernels", "numpy"),
                      help="worker session backend (default numpy)")
    p_cs.add_argument("--hang-timeout", type=float, default=2.0,
                      help="health-monitor hang timeout in seconds")
    p_cs.add_argument("--faults", default=None,
                      help="explicit fault spec 'kind@index[:seconds][!];...'"
                           " (default: FaultPlan.chaos(seed, requests))")
    p_cs.add_argument("--quick", action="store_true",
                      help="CI-sized run (60 requests, 2 workers)")
    p_cs.add_argument("--json", action="store_true",
                      help="machine-readable soak report")
    p_cs.set_defaults(func=_cmd_chaos_soak)

    p_li = sub.add_parser(
        "lint",
        help="project-invariant static analysis (CI gate: zero findings)",
    )
    p_li.add_argument("--rule", action="append", default=None,
                      metavar="NAME",
                      help="run only this rule (repeatable)")
    p_li.add_argument("--root", default=None,
                      help="tree to lint (default: this repo)")
    p_li.add_argument("--list-rules", action="store_true",
                      help="print the rule registry and exit")
    p_li.add_argument("--json", action="store_true",
                      help="machine-readable findings report")
    p_li.set_defaults(func=_cmd_lint)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
