"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``figures [--dense] [--out DIR] [--workers N]``
    Regenerate every paper figure/table and write rendered reports
    (``--workers`` shards the fig14/fig19 heatmap grids over a process
    pool).
``ladder [--dim {1,2}] [--k K] [--batch BS] [--fft-x NX] [--fft-y NY]
[--modes N] [--device NAME] [--json]``
    Print the Table 2 stage ladder for one problem (``--json`` for a
    machine-readable report built from ``ExecutionPlan.to_dict()``).
``claims [--json]``
    Print the exact-arithmetic paper claims (Figs. 5/7/8) and their
    reproduced values.

Commands resolve problems through the :mod:`repro.api` facade; ``ladder``'s
``--device h100`` (or any name added with ``repro.api.register_device``)
re-asks its question of a different part.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.analysis import figures, render_heatmap, render_series

    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    sweeps = {
        "fig10": figures.fig10, "fig11": figures.fig11,
        "fig12": figures.fig12, "fig13": figures.fig13,
        "fig15": figures.fig15, "fig16": figures.fig16,
        "fig17": figures.fig17, "fig18": figures.fig18,
    }
    for name, builder in sweeps.items():
        panels = builder(dense=args.dense)
        (out / f"{name}.txt").write_text(
            "\n\n".join(render_series(p) for p in panels) + "\n"
        )
        print(f"wrote {out / name}.txt")
    for name, builder in {"fig14": figures.fig14, "fig19": figures.fig19}.items():
        panels = builder(dense=args.dense, workers=args.workers)
        (out / f"{name}.txt").write_text(
            "\n\n".join(render_heatmap(h) for h in panels) + "\n"
        )
        print(f"wrote {out / name}.txt")
    return 0


def _ladder_problem(args: argparse.Namespace):
    """Resolve the problem geometry from the CLI flags.

    ``--fft`` remains a deprecated alias: it sets the 1-D FFT size, or the
    DimY size in 2-D (the pre-facade behavior, where DimX was hardcoded).
    """
    from repro.core.config import FNO1DProblem, FNO2DProblem

    def pick(*values: int | None) -> int:
        # First explicitly-passed value wins; 0 still reaches the problem
        # validators instead of silently falling through to the default.
        return next(v for v in values if v is not None)

    if args.dim == 1:
        if args.fft_y is not None:
            raise ValueError(
                "--fft-y only applies to --dim 2; use --fft-x for the 1-D "
                "FFT size"
            )
        dim_x = pick(args.fft_x, args.fft, 128)
        return FNO1DProblem(batch=args.batch, hidden=args.k, dim_x=dim_x,
                            modes=args.modes)
    dim_x = pick(args.fft_x, 256)
    dim_y = pick(args.fft_y, args.fft, 128)
    return FNO2DProblem(batch=args.batch, hidden=args.k, dim_x=dim_x,
                        dim_y=dim_y, modes_x=args.modes, modes_y=args.modes)


def _cmd_ladder(args: argparse.Namespace) -> int:
    from repro.api import Runner
    from repro.core.stages import FusionStage

    try:
        runner = Runner(device=args.device)
        prob = _ladder_problem(args)
    except ValueError as exc:  # unknown device / bad geometry: clean error
        print(f"error: {exc}", file=sys.stderr)
        return 2
    base = runner.plan(prob, FusionStage.PYTORCH)

    if args.json:
        payload = {
            "device": runner.device.name,
            "stages": [
                runner.plan(prob, stage).to_dict()
                for stage in (FusionStage.PYTORCH, *FusionStage.ladder())
            ],
        }
        best = runner.best(prob)
        payload["best_stage"] = best.stage.value
        print(json.dumps(payload, indent=2))
        return 0

    print(base.report().breakdown())
    for stage in FusionStage.ladder():
        p = runner.plan(prob, stage)
        print(
            f"stage {stage.value}: {p.total_time * 1e3:8.4f} ms "
            f"({p.launch_count} kernels) "
            f"speedup {p.speedup_vs_baseline():+6.1f}%"
        )
    return 0


def _cmd_claims(args: argparse.Namespace) -> int:
    from repro.analysis import figures

    rows = figures.fig05(())
    if args.json:
        payload = {
            "fig05": [
                {"n": r.n, "keep": r.keep, "ops": r.ops,
                 "total_ops": r.total_ops, "fraction": r.fraction}
                for r in rows
            ],
            "fig07": figures.fig07(),
            "fig08": figures.fig08(),
        }
        print(json.dumps(payload, indent=2))
        return 0
    print("Figure 5 (butterfly pruning, 4-pt FFT):")
    for r in rows:
        print(f"  keep {r.keep}/4: {r.ops}/{r.total_ops} ops = {r.fraction:.1%}"
              "  (paper: 37.5% / 75%)" if r.keep == 1 else
              f"  keep {r.keep}/4: {r.ops}/{r.total_ops} ops = {r.fraction:.1%}")
    print("Figure 7/8 (shared-memory bank utilization):")
    for k, v in {**figures.fig07(), **figures.fig08()}.items():
        print(f"  {k:<26s} {v:>7.2%}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig = sub.add_parser("figures", help="regenerate all paper figures")
    p_fig.add_argument("--dense", action="store_true")
    p_fig.add_argument("--out", default="paper_report")
    p_fig.add_argument("--workers", type=int, default=None,
                       help="shard the fig14/fig19 heatmap grids over a "
                            "process pool (default: serial)")
    p_fig.set_defaults(func=_cmd_figures)

    p_lad = sub.add_parser("ladder", help="stage ladder for one problem")
    p_lad.add_argument("--dim", type=int, choices=(1, 2), default=1)
    p_lad.add_argument("--k", type=int, default=64)
    p_lad.add_argument("--batch", type=int, default=8192)
    p_lad.add_argument("--fft-x", type=int, default=None,
                       help="FFT size along DimX (1-D: 128, 2-D: 256)")
    p_lad.add_argument("--fft-y", type=int, default=None,
                       help="FFT size along DimY, 2-D only (default 128)")
    p_lad.add_argument("--fft", type=int, default=None,
                       help="deprecated: 1-D FFT size / 2-D DimY size")
    p_lad.add_argument("--modes", type=int, default=64)
    p_lad.add_argument("--device", default=None,
                       help="registered device name (a100, h100)")
    p_lad.add_argument("--json", action="store_true",
                       help="machine-readable ExecutionPlan reports")
    p_lad.set_defaults(func=_cmd_ladder)

    p_cl = sub.add_parser("claims", help="exact paper claims")
    p_cl.add_argument("--json", action="store_true",
                      help="machine-readable claim values")
    p_cl.set_defaults(func=_cmd_claims)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
