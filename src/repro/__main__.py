"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``figures [--dense] [--out DIR]``
    Regenerate every paper figure/table and write rendered reports.
``ladder [--dim {1,2}] [--k K] [--batch BS]``
    Print the Table 2 stage ladder for one problem.
``claims``
    Print the exact-arithmetic paper claims (Figs. 5/7/8) and their
    reproduced values.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

import numpy as np


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.analysis import figures, render_heatmap, render_series

    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    sweeps = {
        "fig10": figures.fig10, "fig11": figures.fig11,
        "fig12": figures.fig12, "fig13": figures.fig13,
        "fig15": figures.fig15, "fig16": figures.fig16,
        "fig17": figures.fig17, "fig18": figures.fig18,
    }
    for name, builder in sweeps.items():
        panels = builder(dense=args.dense)
        (out / f"{name}.txt").write_text(
            "\n\n".join(render_series(p) for p in panels) + "\n"
        )
        print(f"wrote {out / name}.txt")
    for name, builder in {"fig14": figures.fig14, "fig19": figures.fig19}.items():
        panels = builder(dense=args.dense)
        (out / f"{name}.txt").write_text(
            "\n\n".join(render_heatmap(h) for h in panels) + "\n"
        )
        print(f"wrote {out / name}.txt")
    return 0


def _cmd_ladder(args: argparse.Namespace) -> int:
    from repro.core.config import FNO1DProblem, FNO2DProblem
    from repro.core.pipeline_model import build_pipeline_1d, build_pipeline_2d
    from repro.core.stages import FusionStage
    from repro.gpu.timeline import speedup_percent

    if args.dim == 1:
        prob = FNO1DProblem(batch=args.batch, hidden=args.k, dim_x=args.fft,
                            modes=args.modes)
        build = build_pipeline_1d
    else:
        prob = FNO2DProblem(batch=args.batch, hidden=args.k, dim_x=256,
                            dim_y=args.fft, modes_x=args.modes,
                            modes_y=args.modes)
        build = build_pipeline_2d
    base = build(prob, FusionStage.PYTORCH).report()
    print(base.breakdown())
    for stage in FusionStage.ladder():
        rep = build(prob, stage).report()
        print(
            f"stage {stage.value}: {rep.total_time * 1e3:8.4f} ms "
            f"({rep.launch_count} kernels) "
            f"speedup {speedup_percent(base.total_time, rep.total_time):+6.1f}%"
        )
    return 0


def _cmd_claims(args: argparse.Namespace) -> int:
    from repro.analysis import figures

    rows = figures.fig05(())
    print("Figure 5 (butterfly pruning, 4-pt FFT):")
    for r in rows:
        print(f"  keep {r.keep}/4: {r.ops}/{r.total_ops} ops = {r.fraction:.1%}"
              "  (paper: 37.5% / 75%)" if r.keep == 1 else
              f"  keep {r.keep}/4: {r.ops}/{r.total_ops} ops = {r.fraction:.1%}")
    print("Figure 7/8 (shared-memory bank utilization):")
    for k, v in {**figures.fig07(), **figures.fig08()}.items():
        print(f"  {k:<26s} {v:>7.2%}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig = sub.add_parser("figures", help="regenerate all paper figures")
    p_fig.add_argument("--dense", action="store_true")
    p_fig.add_argument("--out", default="paper_report")
    p_fig.set_defaults(func=_cmd_figures)

    p_lad = sub.add_parser("ladder", help="stage ladder for one problem")
    p_lad.add_argument("--dim", type=int, choices=(1, 2), default=1)
    p_lad.add_argument("--k", type=int, default=64)
    p_lad.add_argument("--batch", type=int, default=8192)
    p_lad.add_argument("--fft", type=int, default=128)
    p_lad.add_argument("--modes", type=int, default=64)
    p_lad.set_defaults(func=_cmd_ladder)

    p_cl = sub.add_parser("claims", help="exact paper claims")
    p_cl.set_defaults(func=_cmd_claims)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
