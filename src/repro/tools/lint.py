"""Project-invariant static analysis: ``python -m repro lint``.

Every rule here encodes a contract the codebase already relies on but
nothing enforced mechanically — each one has caused (or nearly caused)
a real bug:

``determinism``
    Bit-identity modules (``fft/``, ``core/``, ``nn/``) promise
    byte-identical outputs across runs and backends.  Wall-clock reads,
    unseeded ``np.random.default_rng()``, the stdlib ``random`` module
    and the legacy global-state ``np.random.*`` API all smuggle
    nondeterminism into that promise.  (``core/autotune.py`` is
    allowlisted: its *timing* probes pick tile shapes, which never
    change output bits.)
``rng-truthiness``
    ``rng = rng or np.random.default_rng()`` relies on ``Generator``
    truthiness — a ``Generator`` is always truthy today, but the idiom
    breaks the moment the operand can be falsy and hides the actual
    contract (``None`` means "make one").  Spell it ``if rng is None``.
``cache-scope``
    Plan lookups must resolve through the thread-local scope
    (:func:`repro.fft.compiled.current_plan_caches`) so sessions can
    inject their private cache sets.  Reaching for the module-global
    default set (``_DEFAULT_PLAN_CACHES`` / ``default_plan_caches``)
    bypasses every active scope.  (``api/session.py`` is allowlisted:
    the session layer *owns* the shared-default fallback.)
``shm-lifecycle``
    Shared-memory segments must be created/closed/unlinked exactly once,
    and :mod:`repro.api.serve.shm` is the only module allowed to
    construct them; a module that builds a ``SegmentRegistry`` must
    also call its ``close_all``.
``lock-order``
    ``pool.py`` documents the acquisition order ``_lock`` before
    ``_stats_lock``; a ``with self._stats_lock:`` block that acquires
    ``self._lock`` inside is a deadlock waiting for its second thread.
    (The runtime companion is :mod:`repro.tools.locks`.)
``serve-except``
    ``except Exception`` in ``api/serve/`` must either produce a typed
    :class:`~repro.api.serve.health.ServeError` (so callers can tell
    infrastructure failures from request failures) or carry an explicit
    ``noqa``/``pragma: no cover`` annotation on the ``except`` line
    justifying the breadth (teardown paths, monitors that must
    survive).
``worker-protocol``
    The message tags ``worker.py`` emits must exactly match what
    ``pool.py``'s collector handles, and the tags the pool enqueues
    must exactly match what the worker's main loop dispatches — both
    directions, no unhandled and no unreachable tags.
``no-assert``
    ``assert`` vanishes under ``python -O``; library and example code
    must raise explicit exceptions (tests and benchmarks keep
    ``assert``).

Suppression mechanisms (both are deliberate, reviewable artefacts):

* **Per-rule allowlists** — ``Rule.allow`` path patterns with recorded
  reasons, for whole files that are the sanctioned owner of an
  otherwise-forbidden pattern.
* **Inline** — a ``# lint: allow[rule-name]`` comment on the flagged
  line.

The CLI (``python -m repro lint [--json] [--rule NAME] [--root DIR]``)
exits non-zero on any finding; CI gates at zero.
"""

from __future__ import annotations

import argparse
import ast
import fnmatch
import json
import sys
from dataclasses import dataclass
from pathlib import Path

__all__ = ["Finding", "Rule", "RULES", "rule_names", "run_lint", "main"]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  #: root-relative posix path
    line: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


@dataclass(frozen=True)
class Rule:
    """One registered invariant.

    ``check(tree, path, lines)`` runs per file within scope;
    ``project_check(root)`` runs once per lint over the whole tree
    (cross-file rules).  ``allow`` is the per-rule allowlist:
    ``(path pattern, reason)`` pairs — matches are exempt, and the
    reason is part of the registry so exemptions stay reviewable.
    """

    name: str
    description: str
    includes: tuple[str, ...]
    excludes: tuple[str, ...] = ()
    allow: tuple[tuple[str, str], ...] = ()
    check: object = None  #: (tree, path, lines) -> list[Finding]
    project_check: object = None  #: (root) -> list[Finding]

    def applies(self, path: str) -> bool:
        if not any(_match(path, pat) for pat in self.includes):
            return False
        return not any(_match(path, pat) for pat in self.excludes)

    def allowlisted(self, path: str) -> bool:
        return any(_match(path, pat) for pat, _reason in self.allow)


def _match(path: str, pattern: str) -> bool:
    """Root-relative posix path against one allow/scope pattern."""
    if pattern.endswith("/**"):
        return path.startswith(pattern[:-2])
    return fnmatch.fnmatch(path, pattern)


# ---------------------------------------------------------------------------
# AST helpers
# ---------------------------------------------------------------------------

def _dotted(node: ast.AST) -> str:
    """``a.b.c`` for a Name/Attribute chain, else ``""``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _tail(node: ast.AST) -> str:
    """The final attribute/name of a call target (``default_rng`` for
    both ``default_rng(...)`` and ``np.random.default_rng(...)``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _compared_tags(func: ast.AST, subject: str = "kind") -> set[str]:
    """String constants compared against ``subject`` inside ``func``.

    Covers ``kind == "x"``, ``kind in ("x", "y")`` and the
    ``msg[0] == "x"`` spelling — the dispatch idioms of the worker
    protocol.
    """
    tags: set[str] = set()

    def _is_subject(node: ast.AST) -> bool:
        if isinstance(node, ast.Name) and node.id == subject:
            return True
        return (
            isinstance(node, ast.Subscript)
            and isinstance(node.slice, ast.Constant)
            and node.slice.value == 0
        )

    for node in ast.walk(func):
        if not isinstance(node, ast.Compare):
            continue
        if not _is_subject(node.left):
            continue
        for comparator in node.comparators:
            if isinstance(comparator, ast.Constant) and isinstance(
                comparator.value, str
            ):
                tags.add(comparator.value)
            elif isinstance(comparator, (ast.Tuple, ast.List, ast.Set)):
                for elt in comparator.elts:
                    if isinstance(elt, ast.Constant) and isinstance(
                        elt.value, str
                    ):
                        tags.add(elt.value)
    return tags


def _functions(tree: ast.AST):
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


# ---------------------------------------------------------------------------
# Rule: determinism
# ---------------------------------------------------------------------------

_WALLCLOCK_TIME = {
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns", "process_time", "process_time_ns",
}
_WALLCLOCK_CALLS = (
    {f"time.{attr}" for attr in _WALLCLOCK_TIME}
    | {
        "datetime.now", "datetime.utcnow", "datetime.today",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.date.today", "date.today",
    }
)
#: The legacy global-state RNG surface (order-dependent across calls).
_NP_RANDOM_GLOBAL = {
    "seed", "rand", "randn", "randint", "random", "random_sample",
    "normal", "standard_normal", "uniform", "choice", "shuffle",
    "permutation",
}


def _check_determinism(tree, path, lines) -> list[Finding]:
    findings = []

    def flag(node, message):
        findings.append(Finding("determinism", path, node.lineno, message))

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    flag(node, "stdlib 'random' module in a bit-identity "
                               "module; thread a seeded np.random.Generator "
                               "instead")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                flag(node, "stdlib 'random' module in a bit-identity "
                           "module; thread a seeded np.random.Generator "
                           "instead")
            elif node.module == "time":
                names = {alias.name for alias in node.names}
                if names & _WALLCLOCK_TIME:
                    flag(node, "wall-clock import in a bit-identity module")
        elif isinstance(node, ast.Call):
            chain = _dotted(node.func)
            if chain in _WALLCLOCK_CALLS:
                flag(node, f"wall-clock read '{chain}()' in a bit-identity "
                           f"module")
            elif (
                _tail(node.func) == "default_rng"
                and not node.args
                and not node.keywords
            ):
                flag(node, "unseeded np.random.default_rng() in a "
                           "bit-identity module; pass an explicit seed or "
                           "accept a Generator parameter")
            elif chain.startswith(("np.random.", "numpy.random.")):
                attr = chain.rsplit(".", 1)[1]
                if attr in _NP_RANDOM_GLOBAL:
                    flag(node, f"legacy global-state RNG '{chain}()' in a "
                               f"bit-identity module; use a seeded "
                               f"np.random.Generator")
    return findings


# ---------------------------------------------------------------------------
# Rule: rng-truthiness
# ---------------------------------------------------------------------------

def _check_rng_truthiness(tree, path, lines) -> list[Finding]:
    findings = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.BoolOp) and isinstance(node.op, ast.Or)):
            continue
        for value in node.values:
            if isinstance(value, ast.Call) and _tail(value.func) == "default_rng":
                findings.append(Finding(
                    "rng-truthiness", path, node.lineno,
                    "'x or np.random.default_rng(...)' relies on Generator "
                    "truthiness; write 'if x is None: x = "
                    "np.random.default_rng(...)'",
                ))
                break
    return findings


# ---------------------------------------------------------------------------
# Rule: cache-scope
# ---------------------------------------------------------------------------

_GLOBAL_CACHE_NAMES = {"_DEFAULT_PLAN_CACHES", "default_plan_caches"}


def _check_cache_scope(tree, path, lines) -> list[Finding]:
    findings = []

    def flag(node, name):
        findings.append(Finding(
            "cache-scope", path, node.lineno,
            f"direct use of the module-global plan caches ('{name}'); "
            f"resolve through plan_cache_scope / current_plan_caches so "
            f"session-injected cache sets are honoured",
        ))

    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name in _GLOBAL_CACHE_NAMES:
                    flag(node, alias.name)
        elif isinstance(node, ast.Name) and node.id in _GLOBAL_CACHE_NAMES:
            flag(node, node.id)
        elif isinstance(node, ast.Attribute) and node.attr in _GLOBAL_CACHE_NAMES:
            flag(node, node.attr)
    return findings


# ---------------------------------------------------------------------------
# Rule: shm-lifecycle
# ---------------------------------------------------------------------------

def _check_shm_lifecycle(tree, path, lines) -> list[Finding]:
    findings = []
    registry_creates: list[ast.Call] = []
    has_close_all = False
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "multiprocessing.shared_memory":
                    findings.append(Finding(
                        "shm-lifecycle", path, node.lineno,
                        "shared_memory import outside serve/shm.py; "
                        "segments are created by SegmentRegistry and "
                        "attached via attach_segment only",
                    ))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "multiprocessing.shared_memory" or (
                node.module == "multiprocessing"
                and any(a.name == "shared_memory" for a in node.names)
            ):
                findings.append(Finding(
                    "shm-lifecycle", path, node.lineno,
                    "shared_memory import outside serve/shm.py; "
                    "segments are created by SegmentRegistry and attached "
                    "via attach_segment only",
                ))
        elif isinstance(node, ast.Call):
            tail = _tail(node.func)
            if tail == "SharedMemory":
                findings.append(Finding(
                    "shm-lifecycle", path, node.lineno,
                    "direct SharedMemory construction outside serve/shm.py "
                    "bypasses create/close/unlink bookkeeping",
                ))
            elif tail == "SegmentRegistry":
                registry_creates.append(node)
        elif isinstance(node, ast.Attribute) and node.attr == "close_all":
            has_close_all = True
        elif isinstance(node, ast.Name) and node.id == "close_all":
            has_close_all = True
    if registry_creates and not has_close_all:
        findings.append(Finding(
            "shm-lifecycle", path, registry_creates[0].lineno,
            "SegmentRegistry constructed but close_all is never referenced "
            "in this module; every registry needs a close/unlink path",
        ))
    return findings


# ---------------------------------------------------------------------------
# Rule: lock-order
# ---------------------------------------------------------------------------

def _acquires(node: ast.AST, attr: str) -> bool:
    """Does ``node``'s subtree acquire an attribute lock named ``attr``?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.With):
            for item in sub.items:
                expr = item.context_expr
                if isinstance(expr, ast.Attribute) and expr.attr == attr:
                    return True
        elif (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == "acquire"
            and isinstance(sub.func.value, ast.Attribute)
            and sub.func.value.attr == attr
        ):
            return True
    return False


def _check_lock_order(tree, path, lines) -> list[Finding]:
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.With):
            continue
        holds_stats = any(
            isinstance(item.context_expr, ast.Attribute)
            and item.context_expr.attr == "_stats_lock"
            for item in node.items
        )
        if not holds_stats:
            continue
        if any(_acquires(stmt, "_lock") for stmt in node.body):
            findings.append(Finding(
                "lock-order", path, node.lineno,
                "acquires _lock while holding _stats_lock — inverts the "
                "documented pool order (_lock before _stats_lock) and can "
                "deadlock against any compliant thread",
            ))
    return findings


# ---------------------------------------------------------------------------
# Rule: serve-except
# ---------------------------------------------------------------------------

#: The typed serving-failure vocabulary (health.py's ServeError family
#: plus the admission-side PoolSaturated).
_SERVE_ERROR_NAMES = {
    "ServeError", "WorkerCrashed", "DeadlineExceeded", "ResultTimeout",
    "Cancelled", "CorruptedHeader", "InfrastructureError", "PoolSaturated",
}


def _catches_broad(handler: ast.ExceptHandler) -> bool:
    node = handler.type
    if node is None:
        return True  # bare except
    names = [node] if not isinstance(node, ast.Tuple) else list(node.elts)
    return any(
        isinstance(n, ast.Name) and n.id in ("Exception", "BaseException")
        for n in names
    )


def _handler_types_failure(handler: ast.ExceptHandler) -> bool:
    for node in handler.body:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Raise) and sub.exc is None:
                return True  # bare re-raise: breadth is transparent
            if isinstance(sub, ast.Name) and sub.id in _SERVE_ERROR_NAMES:
                return True
    return False


def _check_serve_except(tree, path, lines) -> list[Finding]:
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not _catches_broad(node):
            continue
        source_line = (
            lines[node.lineno - 1] if node.lineno <= len(lines) else ""
        )
        if "noqa" in source_line or "pragma: no cover" in source_line:
            continue  # explicitly annotated breadth
        if _handler_types_failure(node):
            continue
        findings.append(Finding(
            "serve-except", path, node.lineno,
            "broad 'except Exception' in the serving stack neither raises "
            "a typed ServeError nor carries a noqa/pragma annotation; "
            "infrastructure faults become indistinguishable from request "
            "errors",
        ))
    return findings


# ---------------------------------------------------------------------------
# Rule: worker-protocol (cross-file)
# ---------------------------------------------------------------------------

_WORKER_PATH = "src/repro/api/serve/worker.py"
_POOL_PATH = "src/repro/api/serve/pool.py"


def _sent_tags(tree: ast.AST) -> set[str]:
    """First elements of tuples passed to ``*.send((...))``."""
    tags = set()
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "send"
            and node.args
            and isinstance(node.args[0], ast.Tuple)
            and node.args[0].elts
        ):
            continue
        first = node.args[0].elts[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            tags.add(first.value)
    return tags


def _queued_tags(tree: ast.AST) -> set[str]:
    """First elements of tuples the pool enqueues via ``<x>.queue.put``.

    A first element that is a plain name (``kind``) resolves through the
    string-literal assignments of the enclosing function, so the
    ``kind = "req" / "roll"`` dispatch spelling is covered.
    """
    tags = set()
    for func in _functions(tree):
        literals: dict[str, set[str]] = {}
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Constant
            ) and isinstance(node.value.value, str):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        literals.setdefault(target.id, set()).add(
                            node.value.value
                        )
        for node in ast.walk(func):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "put"
                and isinstance(node.func.value, ast.Attribute)
                and node.func.value.attr == "queue"
                and node.args
                and isinstance(node.args[0], ast.Tuple)
                and node.args[0].elts
            ):
                continue
            first = node.args[0].elts[0]
            if isinstance(first, ast.Constant) and isinstance(
                first.value, str
            ):
                tags.add(first.value)
            elif isinstance(first, ast.Name):
                tags.update(literals.get(first.id, set()))
    return tags


def _named_function(tree: ast.AST, name: str):
    for func in _functions(tree):
        if func.name == name:
            return func
    return None


def _check_worker_protocol(root: Path) -> list[Finding]:
    worker_file = root / _WORKER_PATH
    pool_file = root / _POOL_PATH
    if not (worker_file.exists() and pool_file.exists()):
        return []
    try:
        worker_tree = ast.parse(worker_file.read_text())
        pool_tree = ast.parse(pool_file.read_text())
    except SyntaxError:
        return []  # the per-file pass reports the parse failure
    findings = []

    def diff(emitted, handled, direction, emit_path, handle_path, where):
        for tag in sorted(emitted - handled):
            findings.append(Finding(
                "worker-protocol", handle_path, 1,
                f"{direction} message tag {tag!r} is emitted but never "
                f"handled by {where}",
            ))
        for tag in sorted(handled - emitted):
            findings.append(Finding(
                "worker-protocol", emit_path, 1,
                f"{direction} message tag {tag!r} is handled by {where} "
                f"but never emitted",
            ))

    # worker -> parent: body.send(...) tags vs the collector dispatch.
    collector = _named_function(pool_tree, "_collect")
    if collector is not None:
        diff(_sent_tags(worker_tree), _compared_tags(collector),
             "worker->parent", _WORKER_PATH, _POOL_PATH,
             "pool.py's _collect")
    else:
        findings.append(Finding(
            "worker-protocol", _POOL_PATH, 1,
            "no _collect function found to check the worker->parent "
            "protocol against",
        ))
    # parent -> worker: queue.put(...) tags vs the worker_main dispatch.
    main_loop = _named_function(worker_tree, "worker_main")
    if main_loop is not None:
        diff(_queued_tags(pool_tree), _compared_tags(main_loop),
             "parent->worker", _POOL_PATH, _WORKER_PATH,
             "worker.py's worker_main")
    else:
        findings.append(Finding(
            "worker-protocol", _WORKER_PATH, 1,
            "no worker_main function found to check the parent->worker "
            "protocol against",
        ))
    return findings


# ---------------------------------------------------------------------------
# Rule: no-assert
# ---------------------------------------------------------------------------

def _check_no_assert(tree, path, lines) -> list[Finding]:
    return [
        Finding(
            "no-assert", path, node.lineno,
            "assert in library/example code vanishes under 'python -O'; "
            "raise an explicit exception",
        )
        for node in ast.walk(tree)
        if isinstance(node, ast.Assert)
    ]


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_BIT_IDENTITY_SCOPE = (
    "src/repro/fft/*.py",
    "src/repro/core/*.py",
    "src/repro/nn/*.py",
)

RULES: dict[str, Rule] = {
    rule.name: rule
    for rule in (
        Rule(
            name="determinism",
            description=(
                "no wall-clock, unseeded default_rng(), stdlib random, or "
                "legacy np.random globals inside bit-identity modules "
                "(fft/, core/, nn/)"
            ),
            includes=_BIT_IDENTITY_SCOPE,
            allow=(
                ("src/repro/core/autotune.py",
                 "timed tile search: timing picks tile shapes, which never "
                 "change output bits"),
            ),
            check=_check_determinism,
        ),
        Rule(
            name="rng-truthiness",
            description=(
                "'x or np.random.default_rng()' relies on Generator "
                "truthiness; use an explicit 'is None' check"
            ),
            includes=("src/repro/**",),
            check=_check_rng_truthiness,
        ),
        Rule(
            name="cache-scope",
            description=(
                "plan lookups resolve through plan_cache_scope / "
                "current_plan_caches; the module-global default cache set "
                "is private to fft/compiled.py"
            ),
            includes=("src/repro/**",),
            excludes=("src/repro/fft/compiled.py",),
            allow=(
                ("src/repro/api/session.py",
                 "the session layer owns the shared-default fallback "
                 "(Session(backend='auto') shares the process-wide set) "
                 "and the one clear_all_caches() flush path"),
            ),
            check=_check_cache_scope,
        ),
        Rule(
            name="shm-lifecycle",
            description=(
                "shared-memory segments are constructed only in "
                "serve/shm.py, and every SegmentRegistry has a close_all "
                "path"
            ),
            includes=("src/repro/**",),
            excludes=("src/repro/api/serve/shm.py",),
            check=_check_shm_lifecycle,
        ),
        Rule(
            name="lock-order",
            description=(
                "never acquire _lock while holding _stats_lock (the "
                "documented pool order is _lock before _stats_lock)"
            ),
            includes=("src/repro/**",),
            check=_check_lock_order,
        ),
        Rule(
            name="serve-except",
            description=(
                "broad except Exception in api/serve/ must produce a typed "
                "ServeError or carry a noqa/pragma annotation"
            ),
            includes=("src/repro/api/serve/*.py",),
            check=_check_serve_except,
        ),
        Rule(
            name="worker-protocol",
            description=(
                "worker.py's emitted message tags and pool.py's handled "
                "tags must match exactly, both directions"
            ),
            includes=(),
            project_check=_check_worker_protocol,
        ),
        Rule(
            name="no-assert",
            description=(
                "no assert statements outside tests/ and benchmarks/ "
                "(asserts vanish under python -O)"
            ),
            includes=("src/repro/**", "examples/**"),
            check=_check_no_assert,
        ),
    )
}


def rule_names() -> list[str]:
    return sorted(RULES)


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------

def default_root() -> Path:
    """The repository root, resolved from this file's install location
    (``src/repro/tools/lint.py`` -> three parents up)."""
    return Path(__file__).resolve().parents[3]


def _iter_files(root: Path):
    for base in ("src", "examples"):
        base_dir = root / base
        if not base_dir.is_dir():
            continue
        for path in sorted(base_dir.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            yield path


def _suppressed(finding: Finding, lines: list[str]) -> bool:
    if not (1 <= finding.line <= len(lines)):
        return False
    return f"lint: allow[{finding.rule}]" in lines[finding.line - 1]


def run_lint(
    root: Path | str | None = None,
    rules: list[str] | None = None,
) -> list[Finding]:
    """Lint the tree at ``root`` (default: this repo) and return findings.

    ``rules`` filters the registry by name; unknown names raise
    ``ValueError``.  Findings already covered by a rule's allowlist or
    an inline ``lint: allow[rule]`` comment are dropped.
    """
    root = Path(root).resolve() if root is not None else default_root()
    if rules is not None:
        unknown = sorted(set(rules) - set(RULES))
        if unknown:
            raise ValueError(
                f"unknown rule(s) {unknown}; expected from {rule_names()}"
            )
        selected = [RULES[name] for name in rules]
    else:
        selected = list(RULES.values())
    findings: list[Finding] = []
    lines_by_path: dict[str, list[str]] = {}
    for path in _iter_files(root):
        rel = path.relative_to(root).as_posix()
        per_file = [
            rule for rule in selected
            if rule.check is not None
            and rule.applies(rel)
            and not rule.allowlisted(rel)
        ]
        if not per_file:
            continue
        source = path.read_text()
        lines = source.splitlines()
        lines_by_path[rel] = lines
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            findings.append(Finding(
                "syntax", rel, exc.lineno or 1,
                f"file does not parse: {exc.msg}",
            ))
            continue
        for rule in per_file:
            for finding in rule.check(tree, rel, lines):
                if not _suppressed(finding, lines):
                    findings.append(finding)
    for rule in selected:
        if rule.project_check is None:
            continue
        for finding in rule.project_check(root):
            if rule.allowlisted(finding.path):
                continue
            lines = lines_by_path.get(finding.path, [])
            if not _suppressed(finding, lines):
                findings.append(finding)
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule))


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="project-invariant static analysis (zero findings "
                    "is the CI gate)",
    )
    parser.add_argument("--root", default=None,
                        help="tree to lint (default: this repo)")
    parser.add_argument("--rule", action="append", default=None,
                        metavar="NAME",
                        help="run only this rule (repeatable)")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable findings report")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule registry and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        if args.json:
            print(json.dumps({
                name: {
                    "description": rule.description,
                    "scope": list(rule.includes),
                    "allowlist": [
                        {"path": pat, "reason": reason}
                        for pat, reason in rule.allow
                    ],
                }
                for name, rule in sorted(RULES.items())
            }, indent=2))
        else:
            for name, rule in sorted(RULES.items()):
                print(f"{name:<16s} {rule.description}")
                for pat, reason in rule.allow:
                    print(f"{'':<16s}   allow {pat}: {reason}")
        return 0

    try:
        findings = run_lint(args.root, args.rule)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps({
            "root": str(
                Path(args.root).resolve() if args.root else default_root()
            ),
            "rules": args.rule or rule_names(),
            "count": len(findings),
            "findings": [f.as_dict() for f in findings],
        }, indent=2))
    else:
        for finding in findings:
            print(finding.format())
        ran = len(args.rule) if args.rule else len(RULES)
        print(f"repro lint: {len(findings)} finding(s) across {ran} rule(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
