"""Runtime lock-order detection for the serving pool.

The static ``lock-order`` rule in :mod:`repro.tools.lint` catches the
*textual* inversion (``with self._stats_lock: ... self._lock``), but
the PR 8 ``default_session`` race showed orders can invert across call
boundaries that no single-file AST walk sees.  This module closes that
gap dynamically: :class:`InstrumentedLock` wraps a real
``threading.Lock``/``RLock`` and reports every acquisition to a
:class:`LockOrderRecorder`, which maintains the *acquisition graph* —
a directed edge ``A -> B`` meaning "some thread acquired B while
holding A".  After a test run:

* a **cycle** in the graph means two threads can each hold the lock
  the other wants — a deadlock that merely hasn't scheduled yet;
* a **forbidden edge** (``_stats_lock -> _lock`` for the pool) means
  the documented order was inverted even if no compliant thread raced
  it during the run.

Usage in the serve suite::

    rec = LockOrderRecorder(forbidden=[POOL_LOCK_ORDER[::-1]])
    instrument_pool(pool, rec)
    ... drive traffic ...
    rec.assert_clean()

Instrumentation is plain attribute replacement — no global
monkeypatching — so only the pool under test pays the (tiny)
bookkeeping cost, and production code paths are untouched.
"""

from __future__ import annotations

import threading
from collections import defaultdict

__all__ = [
    "POOL_LOCK_ORDER",
    "LockOrderError",
    "LockOrderRecorder",
    "InstrumentedLock",
    "instrument_pool",
]

#: ServePool's documented acquisition order: the coarse state RLock
#: first, the stats Lock (if needed) nested inside it.
POOL_LOCK_ORDER = ("_lock", "_stats_lock")


class LockOrderError(AssertionError):
    """A lock-order violation observed at runtime (cycle or forbidden
    edge in the acquisition graph)."""


class LockOrderRecorder:
    """Collects the lock-acquisition graph across all threads.

    ``forbidden`` is a list of ``(held, acquired)`` name pairs that are
    violations even when they don't (yet) complete a cycle — e.g. the
    pool's ``("_stats_lock", "_lock")`` inversion.
    """

    def __init__(self, forbidden=None):
        self._graph_lock = threading.Lock()
        # edge -> list of "thread-name" witnesses (capped per edge)
        self._edges: dict[tuple[str, str], list[str]] = defaultdict(list)
        self._forbidden = [tuple(pair) for pair in (forbidden or [])]
        self._held = threading.local()
        self._acquired = 0

    # -- instrumentation hooks -------------------------------------------

    def wrap(self, lock, name: str) -> "InstrumentedLock":
        return InstrumentedLock(lock, name, self)

    def _stack(self) -> list[str]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = self._held.stack = []
        return stack

    def _on_acquire(self, name: str) -> None:
        stack = self._stack()
        with self._graph_lock:
            self._acquired += 1
            for held in stack:
                if held == name:
                    continue  # RLock re-entry is not an ordering edge
                witnesses = self._edges[(held, name)]
                if len(witnesses) < 8:
                    witnesses.append(threading.current_thread().name)
        stack.append(name)

    def _on_release(self, name: str) -> None:
        stack = self._stack()
        # Pop the last occurrence: RLocks release in LIFO per level.
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == name:
                del stack[i]
                return

    # -- analysis --------------------------------------------------------

    def edges(self) -> set[tuple[str, str]]:
        with self._graph_lock:
            return set(self._edges)

    def total_acquisitions(self) -> int:
        """How many acquisitions the instrumented locks saw — lets a
        test assert the instrumentation actually carried traffic (an
        empty edge set from zero acquisitions proves nothing)."""
        with self._graph_lock:
            return self._acquired

    def has_edge(self, held: str, acquired: str) -> bool:
        return (held, acquired) in self.edges()

    def cycles(self) -> list[list[str]]:
        """Every elementary cycle reachable in the acquisition graph
        (DFS with a colour map; good enough at lock-graph sizes)."""
        graph: dict[str, set[str]] = defaultdict(set)
        for held, acquired in self.edges():
            graph[held].add(acquired)
        found: list[list[str]] = []
        seen_keys: set[tuple[str, ...]] = set()

        def visit(node: str, path: list[str], on_path: set[str]) -> None:
            for nxt in sorted(graph.get(node, ())):
                if nxt in on_path:
                    cycle = path[path.index(nxt):] + [nxt]
                    # canonicalize rotation so each cycle reports once
                    body = cycle[:-1]
                    pivot = body.index(min(body))
                    key = tuple(body[pivot:] + body[:pivot])
                    if key not in seen_keys:
                        seen_keys.add(key)
                        found.append(cycle)
                elif len(path) <= len(graph):
                    visit(nxt, path + [nxt], on_path | {nxt})

        for start in sorted(graph):
            visit(start, [start], {start})
        return found

    def violations(self) -> list[str]:
        """Human-readable descriptions of every cycle and forbidden
        edge observed so far (empty list == clean)."""
        problems = []
        for cycle in self.cycles():
            problems.append(
                "acquisition cycle: " + " -> ".join(cycle)
            )
        edge_set = self.edges()
        for held, acquired in self._forbidden:
            if (held, acquired) in edge_set:
                with self._graph_lock:
                    witnesses = list(self._edges[(held, acquired)])
                problems.append(
                    f"forbidden edge: acquired {acquired!r} while holding "
                    f"{held!r} (threads: {', '.join(witnesses)})"
                )
        return problems

    def assert_clean(self) -> None:
        problems = self.violations()
        if problems:
            raise LockOrderError(
                "lock-order violations detected:\n  "
                + "\n  ".join(problems)
            )


class InstrumentedLock:
    """Duck-typed stand-in for ``threading.Lock``/``RLock`` that
    reports acquisitions/releases to a :class:`LockOrderRecorder`.

    Supports the full surface the pool uses: context manager,
    ``acquire(blocking=, timeout=)``, ``release()``, ``locked()``.
    """

    def __init__(self, lock, name: str, recorder: LockOrderRecorder):
        self._lock = lock
        self._name = name
        self._recorder = recorder

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._lock.acquire(blocking, timeout)
        if got:
            self._recorder._on_acquire(self._name)
        return got

    def release(self) -> None:
        self._lock.release()
        self._recorder._on_release(self._name)

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc):
        self.release()
        return False

    def __repr__(self):
        return f"InstrumentedLock({self._name!r}, {self._lock!r})"


def instrument_pool(pool, recorder: LockOrderRecorder | None = None):
    """Swap a ``ServePool``'s ``_lock``/``_stats_lock`` for instrumented
    wrappers and return the recorder.

    The pool's documented order inversion (``_stats_lock`` held while
    taking ``_lock``) is pre-registered as a forbidden edge, so
    ``recorder.assert_clean()`` fails on it even without a completing
    cycle.
    """
    if recorder is None:
        recorder = LockOrderRecorder(forbidden=[POOL_LOCK_ORDER[::-1]])
    for name in POOL_LOCK_ORDER:
        current = getattr(pool, name)
        if isinstance(current, InstrumentedLock):
            continue
        setattr(pool, name, recorder.wrap(current, name))
    return recorder
