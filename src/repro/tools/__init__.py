"""``repro.tools`` — project-invariant enforcement tooling.

The codebase's correctness contracts (bit-identity determinism, plan
cache-scope discipline, shared-memory lifecycle, lock ordering, the
typed serving-failure taxonomy, the worker wire protocol) started life
as *conventions*: documented in docstrings, enforced by review.  This
package makes them load-bearing:

:mod:`repro.tools.lint`
    AST-based static analysis with a rule registry, per-rule
    allowlists, and a ``python -m repro lint`` CLI gated at zero
    findings in CI.
:mod:`repro.tools.locks`
    A runtime lock-order detector: instrumented ``Lock``/``RLock``
    wrappers record the acquisition graph while the serve suite runs
    and fail on cycles or documented-order inversions.
"""

from repro.tools.lint import Finding, Rule, rule_names, run_lint
from repro.tools.locks import (
    InstrumentedLock,
    LockOrderError,
    LockOrderRecorder,
    instrument_pool,
)

__all__ = [
    "Finding",
    "Rule",
    "rule_names",
    "run_lint",
    "InstrumentedLock",
    "LockOrderError",
    "LockOrderRecorder",
    "instrument_pool",
]
