"""Shared dtype policy for every numeric engine in the package.

The paper evaluates in single precision, so the rule — applied by the
FFT substrate, the pruned transforms, the blocked CGEMM and the fused
operators alike — is: float32/complex64 inputs stay complex64, every
other real/complex input computes in complex128.  This module is the one
place that rule lives; it deliberately imports nothing from the rest of
``repro`` so any layer may use it.
"""

from __future__ import annotations

import numpy as np

__all__ = ["complex_dtype_for"]

_SINGLE = (np.dtype(np.float32), np.dtype(np.complex64))


def complex_dtype_for(dtype: np.dtype | type) -> np.dtype:
    """Complex working dtype for an input dtype.

    complex64 for float32/complex64 inputs (the paper's FP32 setting),
    complex128 otherwise.
    """
    if np.dtype(dtype) in _SINGLE:
        return np.dtype(np.complex64)
    return np.dtype(np.complex128)
