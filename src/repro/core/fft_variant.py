"""The k-loop FFT variant (Figure 6c/d).

A conventional batched FFT picks its pencils along a spatial axis; each
thread block transforms a contiguous chunk of signals and writes the whole
spectrum back.  TurboFNO instead makes one thread block *iterate over the
hidden dimension*: at GEMM k-iteration ``kk`` it transforms the ``k_tb``
hidden-channel slices it is about to multiply, truncates them, and lays
the result into shared memory as the GEMM ``A`` tile (column-major: one
column per hidden channel).

:func:`kloop_fft_schedule` yields exactly that iteration order, and
:func:`assemble_a_tile` produces the column-major tile a k-iteration hands
to the CGEMM inner loop.  The fused operators in :mod:`repro.core.fused`
are built on these, so tests can check both the schedule (each k-slice
visited once, in k order) and the tile contents (equal to the truncated
FFT of the right slices).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.fft.pruned import truncated_fft

__all__ = ["KLoopStep", "kloop_fft_schedule", "assemble_a_tile"]


@dataclass(frozen=True)
class KLoopStep:
    """One k-iteration of the fused kernel's FFT side.

    ``k_range`` is the hidden-channel slice transformed this iteration;
    ``a_tile`` is the truncated spectrum laid out ``(modes, k_tb)`` —
    column-major exactly as CGEMM expects operand A (Fig. 7a, bottom).
    """

    k_index: int
    k_range: tuple[int, int]
    a_tile: np.ndarray


def kloop_fft_schedule(
    signals: np.ndarray, modes: int, k_tb: int = 8
) -> Iterator[KLoopStep]:
    """Iterate one signal's hidden channels in GEMM k-loop order.

    Parameters
    ----------
    signals:
        ``(hidden, n)`` complex array: all hidden-channel slices of one
        spatial pencil.
    modes:
        Kept low-frequency bins (the truncation threshold that makes the
        FFT output "match the size of GEMM input tiles", §1).
    k_tb:
        Channels transformed per iteration (= CGEMM ``k_tb`` = FFT ``bs``).
    """
    if signals.ndim != 2:
        raise ValueError(f"expected (hidden, n), got shape {signals.shape}")
    hidden, n = signals.shape
    if k_tb <= 0:
        raise ValueError("k_tb must be positive")
    for kk, k0 in enumerate(range(0, hidden, k_tb)):
        k1 = min(k0 + k_tb, hidden)
        yield KLoopStep(
            k_index=kk,
            k_range=(k0, k1),
            a_tile=assemble_a_tile(signals[k0:k1], modes),
        )


def assemble_a_tile(k_slices: np.ndarray, modes: int) -> np.ndarray:
    """Truncated FFT of ``(k_tb, n)`` slices as a ``(modes, k_tb)`` A tile.

    The transpose is the layout decision of Fig. 7(a): consecutive rows
    (bins) of one column (channel) are contiguous, so CGEMM's column-major
    loads are bank-conflict-free.
    """
    if k_slices.ndim != 2:
        raise ValueError(f"expected (k_tb, n), got shape {k_slices.shape}")
    return np.ascontiguousarray(truncated_fft(k_slices, modes, axis=-1).T)
