"""The optimization ladder of Table 2.

The paper evaluates five method configurations against the PyTorch
baseline; each figure pair (1D/2D) corresponds to one rung:

====  =========================================  ==================
Id    TurboFNO optimization                      Evaluated in
====  =========================================  ==================
A     FFT pruning, truncation, zero-padding      Fig. 10 / Fig. 15
B     A + fused FFT-CGEMM                        Fig. 11 / Fig. 16
C     A + fused CGEMM-iFFT                       Fig. 12 / Fig. 17
D     A + fully fused FFT-CGEMM-iFFT             Fig. 13 / Fig. 18
E     best of A-D per problem size               Fig. 14 / Fig. 19
====  =========================================  ==================
"""

from __future__ import annotations

import enum

__all__ = ["FusionStage"]


class FusionStage(enum.Enum):
    """One rung of the Table 2 optimization ladder."""

    PYTORCH = "pytorch"
    FFT_OPT = "A"
    FUSED_FFT_GEMM = "B"
    FUSED_GEMM_IFFT = "C"
    FUSED_ALL = "D"
    BEST = "E"

    @property
    def description(self) -> str:
        return _DESCRIPTIONS[self]

    @property
    def is_turbo(self) -> bool:
        """True for TurboFNO variants (everything but the baseline)."""
        return self is not FusionStage.PYTORCH

    @classmethod
    def ladder(cls) -> tuple["FusionStage", ...]:
        """The measurable stages in Table 2 order (excluding BEST)."""
        return (
            cls.FFT_OPT,
            cls.FUSED_FFT_GEMM,
            cls.FUSED_GEMM_IFFT,
            cls.FUSED_ALL,
        )


_DESCRIPTIONS = {
    FusionStage.PYTORCH: "cuFFT + memcpy + cuBLAS + memcpy + cuFFT baseline",
    FusionStage.FFT_OPT: "built-in FFT truncation, zero-padding and pruning",
    FusionStage.FUSED_FFT_GEMM: "FFT opt + FFT-CGEMM fused into one kernel",
    FusionStage.FUSED_GEMM_IFFT: "FFT opt + CGEMM-iFFT fused into one kernel",
    FusionStage.FUSED_ALL: "fully fused FFT-CGEMM-iFFT kernel",
    FusionStage.BEST: "best-performing TurboFNO stage per problem size",
}
