"""Problem descriptions and the TurboFNO configuration.

:class:`FNO1DProblem` / :class:`FNO2DProblem` describe one Fourier layer's
shape in the paper's vocabulary (hidden dimension K, spatial FFT sizes,
kept modes, batch).  :class:`TurboFNOConfig` carries the kernel parameters
(Table 1) and the execution-model penalty knobs with their paper
citations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fft.stockham import is_power_of_two
from repro.gemm.params import GemmParams, TABLE1_CGEMM

__all__ = ["FNO1DProblem", "FNO2DProblem", "TurboFNOConfig"]


@dataclass(frozen=True)
class FNO1DProblem:
    """One 1-D Fourier-layer workload.

    Parameters
    ----------
    batch:
        Number of signals (the paper's BS; each signal has ``hidden``
        channels of length ``dim_x``).
    hidden:
        Hidden/channel dimension K (the GEMM reduction dim).
    dim_x:
        Spatial length = FFT size (128 or 256 in the paper).
    modes:
        Kept low-frequency bins (the paper's filter size N: 64 or 128).
    out_dim:
        Output channels (defaults to ``hidden`` — square spectral weights).
    """

    batch: int
    hidden: int
    dim_x: int
    modes: int
    out_dim: int | None = None

    def __post_init__(self) -> None:
        if self.batch <= 0 or self.hidden <= 0:
            raise ValueError("batch and hidden must be positive")
        if not is_power_of_two(self.dim_x):
            raise ValueError(f"dim_x must be a power of two, got {self.dim_x}")
        if not is_power_of_two(self.modes) or self.modes > self.dim_x:
            raise ValueError(
                f"modes must be a power of two <= dim_x, got {self.modes}"
            )
        if self.out_dim is not None and self.out_dim <= 0:
            raise ValueError("out_dim must be positive")

    @property
    def ndim(self) -> int:
        """Spatial dimensionality (1) — the :class:`repro.api.Problem` axis."""
        return 1

    @property
    def spatial_shape(self) -> tuple[int, ...]:
        """FFT extents, outermost first."""
        return (self.dim_x,)

    @property
    def modes_shape(self) -> tuple[int, ...]:
        """Kept low-frequency bins along each spatial axis."""
        return (self.modes,)

    @property
    def n_out(self) -> int:
        return self.out_dim if self.out_dim is not None else self.hidden

    @property
    def m_spatial(self) -> int:
        """The paper's M = batch x dim_x (Fig. 14's y axis)."""
        return self.batch * self.dim_x

    @property
    def gemm_m(self) -> int:
        """GEMM row count: truncated spatial size x batch."""
        return self.batch * self.modes

    @classmethod
    def from_m_spatial(
        cls, m_spatial: int, hidden: int, dim_x: int, modes: int
    ) -> "FNO1DProblem":
        """Build a problem from the paper's M = batch * dim_x sweep value."""
        if m_spatial % dim_x:
            raise ValueError(f"m_spatial={m_spatial} not divisible by dim_x={dim_x}")
        return cls(batch=m_spatial // dim_x, hidden=hidden, dim_x=dim_x, modes=modes)


@dataclass(frozen=True)
class FNO2DProblem:
    """One 2-D Fourier-layer workload on a ``dim_x x dim_y`` grid."""

    batch: int
    hidden: int
    dim_x: int
    dim_y: int
    modes_x: int
    modes_y: int
    out_dim: int | None = None

    def __post_init__(self) -> None:
        if self.batch <= 0 or self.hidden <= 0:
            raise ValueError("batch and hidden must be positive")
        for n, name in ((self.dim_x, "dim_x"), (self.dim_y, "dim_y")):
            if not is_power_of_two(n):
                raise ValueError(f"{name} must be a power of two, got {n}")
        if not is_power_of_two(self.modes_x) or self.modes_x > self.dim_x:
            raise ValueError("modes_x must be a power of two <= dim_x")
        if not is_power_of_two(self.modes_y) or self.modes_y > self.dim_y:
            raise ValueError("modes_y must be a power of two <= dim_y")
        if self.out_dim is not None and self.out_dim <= 0:
            raise ValueError("out_dim must be positive")

    @property
    def ndim(self) -> int:
        """Spatial dimensionality (2) — the :class:`repro.api.Problem` axis."""
        return 2

    @property
    def spatial_shape(self) -> tuple[int, ...]:
        """FFT extents, outermost first."""
        return (self.dim_x, self.dim_y)

    @property
    def modes_shape(self) -> tuple[int, ...]:
        """Kept low-frequency bins along each spatial axis."""
        return (self.modes_x, self.modes_y)

    @property
    def n_out(self) -> int:
        return self.out_dim if self.out_dim is not None else self.hidden

    @property
    def gemm_m(self) -> int:
        """GEMM row count: truncated grid x batch."""
        return self.batch * self.modes_x * self.modes_y


@dataclass(frozen=True)
class TurboFNOConfig:
    """Kernel parameters and execution-model knobs.

    Parameters
    ----------
    gemm:
        Tiling of the standalone CGEMM (Table 1 default).
    fused_n_tb:
        N-tile of the fused kernels.  The fused grid's N extent governs how
        often each thread block re-computes the forward FFT of its
        k-slices, so the fused kernels widen the N tile (the §5.1 A.3
        configuration uses N_tb = 128); 64 balances re-compute against
        occupancy and puts the fusion-win/loss crossover at K > 64, where
        the paper observes it.
    fft_per_thread:
        Per-thread FFT size (Table 1: 8 for N=128, 16 for N=256 — chosen
        automatically when left at 0).
    signals_per_block:
        FFT signals per thread block (Table 1 ``bs`` = 8 = ``k_tb``).
    kloop_memory_derate:
        DRAM derate of the hidden-dim-iterating FFT variant.  §5.1 (A.1):
        changing the access pattern from (X, Y) to (Y, HiddenDim) "reduces
        L1 cache locality across thread blocks ... causes minor performance
        degradation".
    epilogue_bank_utilization / forward_bank_utilization:
        Shared-memory bank utilization of the GEMM->iFFT and FFT->GEMM
        hand-offs.  1.0 with TurboFNO's swizzles (Figs. 7-8); setting 0.25
        reproduces the naive/VkFFT layouts for ablations.
    """

    gemm: GemmParams = TABLE1_CGEMM
    fused_n_tb: int = 64
    fft_per_thread: int = 0
    signals_per_block: int = 8
    kloop_memory_derate: float = 1.10
    epilogue_bank_utilization: float = 1.0
    forward_bank_utilization: float = 1.0

    def __post_init__(self) -> None:
        if self.kloop_memory_derate < 1.0:
            raise ValueError("kloop_memory_derate must be >= 1.0")
        for name in ("epilogue_bank_utilization", "forward_bank_utilization"):
            v = getattr(self, name)
            if not (0.0 < v <= 1.0):
                raise ValueError(f"{name} must be in (0, 1], got {v}")
        if self.fft_per_thread and not is_power_of_two(self.fft_per_thread):
            raise ValueError("fft_per_thread must be a power of two (or 0 = auto)")
        if self.signals_per_block <= 0:
            raise ValueError("signals_per_block must be positive")

    def per_thread_for(self, n: int) -> int:
        """Per-thread FFT size for a length-``n`` transform (Table 1 picks
        8 for N=128 and 16 for N=256; auto mode scales as n/16)."""
        if self.fft_per_thread:
            return min(self.fft_per_thread, n)
        return max(2, min(16, n // 16))

    def fused_gemm(self, modes: int) -> GemmParams:
        """Tiling for the fused kernels (stages B, C and D).

        Two constraints raise the tile sizes above Table 1's standalone
        kernel: the in-kernel FFT/iFFT needs every kept frequency bin of a
        signal resident in one thread block (``m_tb >= modes``, the §5.1
        A.3 configuration uses m_tb = 64 for N = 64), and a wide ``n_tb``
        limits the per-block FFT recompute (see ``fused_n_tb``).
        """
        m_tb = max(self.gemm.m_tb, modes)
        return GemmParams(
            m_tb=m_tb,
            n_tb=max(self.fused_n_tb, self.gemm.n_tb),
            k_tb=self.gemm.k_tb,
            m_w=self.gemm.m_w,
            n_w=self.gemm.n_w,
            m_t=self.gemm.m_t,
            n_t=self.gemm.n_t,
        )
