"""Compile Fourier-layer implementations into kernel pipelines.

This module is where the paper's execution strategies become concrete
kernel sequences against :mod:`repro.gpu`:

* the **PyTorch baseline**: cuFFT + truncation copy + cuBLAS + padding
  copy + cuFFT (5 kernels in 1D, 7 in 2D);
* **stage A** (Fig. 10/15): TurboFNO's FFT kernels with built-in
  truncation, zero-padding and butterfly pruning — the copies disappear
  and the FFT stages shrink;
* **stage B** (Fig. 11/16): the forward FFT folded into the CGEMM k-loop.
  The A operand never touches DRAM, but each (m, n) thread block
  re-computes the FFT of its k-slices, so the FFT work and raw-input reads
  multiply by the number of covering blocks — the mechanism behind the
  paper's observation that fusion benefits shrink (and eventually invert)
  as the hidden dimension K grows;
* **stage C** (Fig. 12/17): the inverse FFT as the CGEMM epilogue.  The
  iFFT needs every kept bin of a signal in one block, so the epilogue
  tiling raises ``m_tb`` to the mode count (§5.1 A.3's 64x128 config);
* **stage D** (Fig. 13/18): single fully fused FFT-CGEMM-iFFT kernel;
* **stage E** (Fig. 14/19): per-problem best of A-D.

All byte/FLOP counts are exact consequences of the layer geometry and the
Table 1 kernel parameters; the only free knobs are the documented penalty
terms in :class:`repro.core.config.TurboFNOConfig`.
"""

from __future__ import annotations

from repro.core.config import FNO1DProblem, FNO2DProblem, TurboFNOConfig
from repro.core.stages import FusionStage
from repro.baselines.cublas import cublas_cgemm_kernel
from repro.baselines.cufft import cufft_kernel
from repro.baselines.memcpy import memcpy_kernel
from repro.fft.opcount import census, fft_flops
from repro.fft.plan import FFTPlan
from repro.gemm.params import GemmParams
from repro.gemm.traffic import gemm_counters
from repro.gpu.counters import PerfCounters
from repro.gpu.device import A100_SPEC, DeviceSpec
from repro.gpu.kernel import KernelSpec, LaunchConfig
from repro.gpu.timeline import Pipeline

__all__ = [
    "turbo_fft_kernel",
    "fused_kernel",
    "build_pipeline_1d",
    "build_pipeline_2d",
    "best_stage_1d",
    "best_stage_2d",
]

_C64 = 8  # bytes per complex64
_SMEM_TXN = 128  # bytes per 32-bank shared-memory transaction
_TRIVIAL_WEIGHT = 0.5  # cost of a copy/scale op relative to a butterfly


def _prune_fraction(n: int, keep: int | None, live: int | None) -> float:
    return census(
        n,
        keep_out=keep if keep is not None and keep < n else None,
        nonzero_in=live if live is not None and live < n else None,
    ).weighted_fraction(_TRIVIAL_WEIGHT)


def turbo_fft_kernel(
    plan: FFTPlan,
    cfg: TurboFNOConfig,
    name: str,
    kloop: bool = False,
    input_intermediate: bool = False,
    output_intermediate: bool = False,
) -> KernelSpec:
    """TurboFNO's standalone FFT kernel with built-in truncation/padding.

    Reads only the live inputs, writes only the kept outputs, executes only
    the censused butterfly work.  ``kloop=True`` marks the hidden-dim
    iterating variant (stage-2 FFT aligned with the GEMM k-loop), which
    pays the §5.1(A.1) locality derate.  The ``*_intermediate`` flags mark
    operands as inter-stage data eligible for L2 residence.
    """
    frac = _prune_fraction(plan.n, plan.keep, plan.live)
    flops = fft_flops(plan.n, plan.batch, frac)
    # Butterfly shuffles: every surviving element crosses shared memory
    # roughly twice per kernel (load + swizzled store), conflict-free
    # thanks to the Fig. 7(b/c) tid-offset swizzle.
    smem_bytes = 2.0 * plan.batch * plan.n * frac * _C64
    ideal = smem_bytes / _SMEM_TXN
    reads = plan.global_bytes_read()
    writes = plan.global_bytes_written()
    l2_candidate = reads * int(input_intermediate) + writes * int(output_intermediate)
    return KernelSpec(
        name=name,
        launch=LaunchConfig(
            blocks=plan.blocks,
            threads_per_block=plan.threads_per_block,
            smem_per_block_bytes=plan.smem_bytes_per_block,
        ),
        counters=PerfCounters(
            flops=flops,
            global_bytes_read=reads,
            global_bytes_written=writes,
            smem_transactions=ideal,
            smem_ideal_transactions=ideal,
            syncthreads=float(plan.blocks) * max(1, (plan.n - 1).bit_length() // 2),
            l2_candidate_bytes=l2_candidate,
        ),
        memory_derate=cfg.kloop_memory_derate if kloop else 1.0,
    )


def fused_kernel(
    name: str,
    n_signals: int,
    hidden: int,
    out_dim: int,
    dim_fft: int,
    modes: int,
    cfg: TurboFNOConfig,
    include_fft: bool,
    include_ifft: bool,
    input_intermediate: bool = False,
    output_intermediate: bool = False,
) -> KernelSpec:
    """The fused FFT-CGEMM(-iFFT) kernel of §4.

    ``n_signals`` is the number of spatial pencils entering the fused FFT
    (1D: the batch; 2D: batch x kept-x-modes).  The GEMM sees
    ``M = n_signals * modes`` rows.

    Cost structure (§4.1-4.3):

    * forward FFT (if fused): every thread block re-reads and re-transforms
      the raw k-slice signals it needs — a recompute factor of
      ``blocks_n x blocks-per-signal`` relative to a standalone FFT.  This
      trades DRAM round trips for redundant FLOPs/reads, which pays off
      while the grid's N extent is one block (small K) and inverts for
      large K, exactly the trend of Figs. 11/13(b-d).
    * CGEMM: A arrives via shared memory when the FFT is fused (no DRAM
      leg); C never leaves shared memory when the iFFT is fused.
    * inverse FFT (if fused): performed in-block on the C tile, so the
      epilogue tiling must hold all ``modes`` bins of a signal
      (``m_tb >= modes``); output written zero-padded to full length.
    """
    if not (include_fft or include_ifft):
        raise ValueError("a fused kernel must fuse at least one FFT side")
    params: GemmParams = cfg.fused_gemm(modes)
    gemm_m = n_signals * modes
    blocks_m = -(-gemm_m // params.m_tb)
    blocks_n = -(-out_dim // params.n_tb)
    blocks = blocks_m * blocks_n
    k_iters = params.k_iterations(hidden)

    phases: list[PerfCounters] = []

    if include_fft:
        # Every covering block re-reads and re-transforms its k-slice
        # signals; with m_tb >= modes only the grid's N extent multiplies.
        m_blocks_per_signal = -(-modes // params.m_tb)
        recompute = blocks_n * m_blocks_per_signal
        transforms = float(n_signals * hidden) * recompute
        frac = _prune_fraction(dim_fft, modes, None)
        fft_smem = 2.0 * transforms * dim_fft * frac * _C64 / _SMEM_TXN
        fft_reads = transforms * dim_fft * _C64
        phases.append(
            PerfCounters(
                flops=fft_flops(dim_fft, transforms, frac),
                global_bytes_read=fft_reads,
                smem_transactions=fft_smem / cfg.forward_bank_utilization,
                smem_ideal_transactions=fft_smem,
                # One extra barrier per k-tile: the FFT(A, As) of Fig. 9.
                syncthreads=float(blocks * k_iters),
                # The first pass over the input is cold unless the input is
                # itself an inter-stage intermediate (2-D: the truncated
                # width-FFT output); recompute re-reads are always
                # L2-servable when the input fits.
                l2_candidate_bytes=(
                    fft_reads
                    if input_intermediate
                    else fft_reads * (recompute - 1) / recompute
                ),
            )
        )

    bank_util = min(
        cfg.forward_bank_utilization if include_fft else 1.0,
        cfg.epilogue_bank_utilization if include_ifft else 1.0,
    )
    phases.append(
        gemm_counters(
            gemm_m,
            out_dim,
            hidden,
            params=params,
            read_a_from_global=not include_fft,
            write_c_to_global=not include_ifft,
            bank_utilization=bank_util,
            a_l2_candidate=not include_fft,
            c_l2_candidate=not include_ifft,
        )
    )

    if include_ifft:
        transforms_out = float(n_signals * out_dim)
        frac = _prune_fraction(dim_fft, None, modes)
        ifft_smem = 2.0 * transforms_out * dim_fft * frac * _C64 / _SMEM_TXN
        epi_smem = transforms_out * modes * _C64 / _SMEM_TXN  # Cres -> sFFT
        ifft_writes = transforms_out * dim_fft * _C64
        phases.append(
            PerfCounters(
                flops=fft_flops(dim_fft, transforms_out, frac),
                global_bytes_written=ifft_writes,
                smem_transactions=ifft_smem
                + epi_smem / cfg.epilogue_bank_utilization,
                smem_ideal_transactions=ifft_smem + epi_smem,
                syncthreads=float(blocks) * (-(-out_dim // params.n_tb)),
                l2_candidate_bytes=ifft_writes * int(output_intermediate),
            )
        )

    totals = PerfCounters()
    for ph in phases:
        totals += ph

    smem_per_block = (
        # B tiles double buffered; A tile single buffered (§3.1: FFT sync
        # already serialises the A side); sFFT staging buffer (Fig. 9).
        2 * params.k_tb * params.n_tb * _C64
        + params.m_tb * params.k_tb * _C64
        + params.k_tb * dim_fft * _C64
    )
    return KernelSpec(
        name=name,
        launch=LaunchConfig(
            blocks=blocks,
            threads_per_block=params.threads_per_block,
            smem_per_block_bytes=smem_per_block,
        ),
        counters=totals,
        memory_derate=cfg.kloop_memory_derate if include_fft else 1.0,
        phases=tuple(phases),
    )


# ---------------------------------------------------------------------------
# 1-D pipelines
# ---------------------------------------------------------------------------

def build_pipeline_1d(
    problem: FNO1DProblem,
    stage: FusionStage,
    cfg: TurboFNOConfig | None = None,
) -> Pipeline:
    """Kernel pipeline of one 1-D Fourier layer under ``stage``."""
    cfg = cfg or TurboFNOConfig()
    p = problem
    n_out = p.n_out
    fwd_batch = p.batch * p.hidden
    inv_batch = p.batch * n_out
    pt = cfg.per_thread_for(p.dim_x)

    if stage is FusionStage.PYTORCH:
        pipe = Pipeline("pytorch-1d")
        pipe.add(
            cufft_kernel(p.dim_x, fwd_batch, name="cufft_fwd",
                         output_intermediate=True)
        )
        pipe.add(
            memcpy_kernel(
                fwd_batch * p.modes, fwd_batch * p.modes, name="truncate_copy"
            )
        )
        pipe.add(cublas_cgemm_kernel(p.gemm_m, n_out, p.hidden, params=cfg.gemm))
        pipe.add(
            memcpy_kernel(
                inv_batch * p.modes, inv_batch * p.dim_x, name="pad_copy"
            )
        )
        pipe.add(
            cufft_kernel(p.dim_x, inv_batch, inverse=True, name="cufft_inv",
                         input_intermediate=True)
        )
        return pipe

    if stage is FusionStage.BEST:
        raise ValueError("use best_stage_1d() to resolve stage E")

    fft_plan = FFTPlan(
        n=p.dim_x,
        batch=fwd_batch,
        n_keep=p.modes,
        per_thread=pt,
        signals_per_block=cfg.signals_per_block,
        kloop_hidden=p.hidden,
    )
    ifft_plan = FFTPlan(
        n=p.dim_x,
        batch=inv_batch,
        n_live=p.modes,
        per_thread=pt,
        signals_per_block=cfg.signals_per_block,
        inverse=True,
        kloop_hidden=n_out,
    )

    if stage is FusionStage.FFT_OPT:
        pipe = Pipeline("turbofno-1d-A")
        pipe.add(turbo_fft_kernel(fft_plan, cfg, "turbo_fft_trunc", kloop=True,
                                  output_intermediate=True))
        pipe.add(cublas_cgemm_kernel(p.gemm_m, n_out, p.hidden, params=cfg.gemm,
                                     name="turbo_cgemm"))
        pipe.add(turbo_fft_kernel(ifft_plan, cfg, "turbo_ifft_pad", kloop=True,
                                  input_intermediate=True))
        return pipe

    if stage is FusionStage.FUSED_FFT_GEMM:
        pipe = Pipeline("turbofno-1d-B")
        pipe.add(
            fused_kernel(
                "fused_fft_cgemm",
                n_signals=p.batch,
                hidden=p.hidden,
                out_dim=n_out,
                dim_fft=p.dim_x,
                modes=p.modes,
                cfg=cfg,
                include_fft=True,
                include_ifft=False,
            )
        )
        pipe.add(turbo_fft_kernel(ifft_plan, cfg, "turbo_ifft_pad", kloop=True,
                                  input_intermediate=True))
        return pipe

    if stage is FusionStage.FUSED_GEMM_IFFT:
        pipe = Pipeline("turbofno-1d-C")
        pipe.add(turbo_fft_kernel(fft_plan, cfg, "turbo_fft_trunc", kloop=True,
                                  output_intermediate=True))
        pipe.add(
            fused_kernel(
                "fused_cgemm_ifft",
                n_signals=p.batch,
                hidden=p.hidden,
                out_dim=n_out,
                dim_fft=p.dim_x,
                modes=p.modes,
                cfg=cfg,
                include_fft=False,
                include_ifft=True,
            )
        )
        return pipe

    if stage is FusionStage.FUSED_ALL:
        pipe = Pipeline("turbofno-1d-D")
        pipe.add(
            fused_kernel(
                "fused_fft_cgemm_ifft",
                n_signals=p.batch,
                hidden=p.hidden,
                out_dim=n_out,
                dim_fft=p.dim_x,
                modes=p.modes,
                cfg=cfg,
                include_fft=True,
                include_ifft=True,
            )
        )
        return pipe

    raise ValueError(f"unhandled stage {stage}")


def best_stage_1d(
    problem: FNO1DProblem,
    cfg: TurboFNOConfig | None = None,
    device: DeviceSpec = A100_SPEC,
) -> tuple[FusionStage, float]:
    """Stage E: the fastest of A-D for this problem (stage, model time)."""
    cfg = cfg or TurboFNOConfig()
    best: tuple[FusionStage, float] | None = None
    for stage in FusionStage.ladder():
        t = build_pipeline_1d(problem, stage, cfg).total_time(device)
        if best is None or t < best[1]:
            best = (stage, t)
    if best is None:
        raise RuntimeError("FusionStage.ladder() is empty")
    return best


# ---------------------------------------------------------------------------
# 2-D pipelines
# ---------------------------------------------------------------------------

def build_pipeline_2d(
    problem: FNO2DProblem,
    stage: FusionStage,
    cfg: TurboFNOConfig | None = None,
) -> Pipeline:
    """Kernel pipeline of one 2-D Fourier layer under ``stage``.

    The first FFT stage runs along the width (DimX) with built-in
    truncation; the second stage (along DimY, re-interpreted over the
    hidden dimension) is the one that fuses with CGEMM (§3.3, Fig. 6).
    """
    cfg = cfg or TurboFNOConfig()
    p = problem
    n_out = p.n_out
    pt_x = cfg.per_thread_for(p.dim_x)
    pt_y = cfg.per_thread_for(p.dim_y)

    if stage is FusionStage.PYTORCH:
        pipe = Pipeline("pytorch-2d")
        pipe.add(cufft_kernel(p.dim_x, p.batch * p.hidden * p.dim_y, name="cufft_x",
                              output_intermediate=True))
        pipe.add(cufft_kernel(p.dim_y, p.batch * p.hidden * p.dim_x, name="cufft_y",
                              input_intermediate=True, output_intermediate=True))
        trunc_elems = p.batch * p.hidden * p.modes_x * p.modes_y
        pipe.add(memcpy_kernel(trunc_elems, trunc_elems, name="truncate_copy"))
        pipe.add(cublas_cgemm_kernel(p.gemm_m, n_out, p.hidden, params=cfg.gemm))
        pad_in = p.batch * n_out * p.modes_x * p.modes_y
        pad_out = p.batch * n_out * p.dim_x * p.dim_y
        pipe.add(memcpy_kernel(pad_in, pad_out, name="pad_copy"))
        pipe.add(
            cufft_kernel(p.dim_y, p.batch * n_out * p.dim_x, inverse=True,
                         name="cufft_inv_y",
                         input_intermediate=True, output_intermediate=True)
        )
        pipe.add(
            cufft_kernel(p.dim_x, p.batch * n_out * p.dim_y, inverse=True,
                         name="cufft_inv_x", input_intermediate=True)
        )
        return pipe

    if stage is FusionStage.BEST:
        raise ValueError("use best_stage_2d() to resolve stage E")

    # Outer (width) stages: always standalone TurboFNO kernels.
    fft_x = FFTPlan(
        n=p.dim_x, batch=p.batch * p.hidden * p.dim_y, n_keep=p.modes_x,
        per_thread=pt_x, signals_per_block=cfg.signals_per_block,
    )
    ifft_x = FFTPlan(
        n=p.dim_x, batch=p.batch * n_out * p.dim_y, n_live=p.modes_x,
        per_thread=pt_x, signals_per_block=cfg.signals_per_block, inverse=True,
    )
    # Inner (height) stages on the truncated x rows only.
    fft_y = FFTPlan(
        n=p.dim_y, batch=p.batch * p.hidden * p.modes_x, n_keep=p.modes_y,
        per_thread=pt_y, signals_per_block=cfg.signals_per_block,
        kloop_hidden=p.hidden,
    )
    ifft_y = FFTPlan(
        n=p.dim_y, batch=p.batch * n_out * p.modes_x, n_live=p.modes_y,
        per_thread=pt_y, signals_per_block=cfg.signals_per_block, inverse=True,
        kloop_hidden=n_out,
    )
    n_signals = p.batch * p.modes_x  # pencils entering the fused stage

    pipe = Pipeline(f"turbofno-2d-{stage.value}")
    pipe.add(turbo_fft_kernel(fft_x, cfg, "turbo_fft_x_trunc",
                              output_intermediate=True))

    if stage is FusionStage.FFT_OPT:
        pipe.add(turbo_fft_kernel(fft_y, cfg, "turbo_fft_y_trunc", kloop=True,
                                  input_intermediate=True,
                                  output_intermediate=True))
        pipe.add(cublas_cgemm_kernel(p.gemm_m, n_out, p.hidden, params=cfg.gemm,
                                     name="turbo_cgemm"))
        pipe.add(turbo_fft_kernel(ifft_y, cfg, "turbo_ifft_y_pad", kloop=True,
                                  input_intermediate=True,
                                  output_intermediate=True))
    elif stage is FusionStage.FUSED_FFT_GEMM:
        pipe.add(
            fused_kernel(
                "fused_fft_cgemm", n_signals, p.hidden, n_out, p.dim_y,
                p.modes_y, cfg, include_fft=True, include_ifft=False,
                input_intermediate=True,
            )
        )
        pipe.add(turbo_fft_kernel(ifft_y, cfg, "turbo_ifft_y_pad", kloop=True,
                                  input_intermediate=True,
                                  output_intermediate=True))
    elif stage is FusionStage.FUSED_GEMM_IFFT:
        pipe.add(turbo_fft_kernel(fft_y, cfg, "turbo_fft_y_trunc", kloop=True,
                                  input_intermediate=True,
                                  output_intermediate=True))
        pipe.add(
            fused_kernel(
                "fused_cgemm_ifft", n_signals, p.hidden, n_out, p.dim_y,
                p.modes_y, cfg, include_fft=False, include_ifft=True,
                output_intermediate=True,
            )
        )
    elif stage is FusionStage.FUSED_ALL:
        pipe.add(
            fused_kernel(
                "fused_fft_cgemm_ifft", n_signals, p.hidden, n_out, p.dim_y,
                p.modes_y, cfg, include_fft=True, include_ifft=True,
                input_intermediate=True, output_intermediate=True,
            )
        )
    else:
        raise ValueError(f"unhandled stage {stage}")

    pipe.add(turbo_fft_kernel(ifft_x, cfg, "turbo_ifft_x_pad",
                              input_intermediate=True))
    return pipe


def best_stage_2d(
    problem: FNO2DProblem,
    cfg: TurboFNOConfig | None = None,
    device: DeviceSpec = A100_SPEC,
) -> tuple[FusionStage, float]:
    """Stage E: the fastest of A-D for this problem (stage, model time)."""
    cfg = cfg or TurboFNOConfig()
    best: tuple[FusionStage, float] | None = None
    for stage in FusionStage.ladder():
        t = build_pipeline_2d(problem, stage, cfg).total_time(device)
        if best is None or t < best[1]:
            best = (stage, t)
    if best is None:
        raise RuntimeError("FusionStage.ladder() is empty")
    return best
