"""Plan-time tile autotuning for the compiled spectral-conv executors.

The compiled executors inherited the legacy loops' fixed tiling —
``signal_tile=16`` signals per tile, ``k_tb=8`` channels per
accumulation panel — but the measured contraction throughput depends on
the geometry: small-channel serving workloads want large signal tiles
(Python/ctypes dispatch amortisation), large accumulators want small
ones (the ``(signal_tile, C_out, modes)`` C tile must stay cache
resident), and multi-panel weights want wider *staging* blocks (one
gather/FFT/decomposition pass feeding several accumulation panels).
This is the CPU-substrate mirror of the paper's shared-memory occupancy
reasoning — a tile is fast when its working set fits the staging memory
— and of cuFFT/FFTW plan-time autotuning: measure a small grid of
candidates once, remember the winner.

Crucially the search is **free of correctness risk**: every candidate
this module proposes changes only *where* operands live, never one
floating-point operation.  Signal/batch tiles partition row-independent
work, and the staging ``k_tb`` is constrained to whole multiples of the
executor's accumulation width, so the ``panel_contract`` accumulation
order — the only tiling-sensitive arithmetic in the stack — is replayed
verbatim.  Autotuned executors are byte-identical to the default-tile
executors and the :mod:`repro.core.legacy` oracle (property-tested in
``tests/test_autotune_differential.py``).

Pieces
------
:class:`Tiles`
    One candidate: ``(signal_tile, k_tb)``.  ``signal_tile`` is the
    batch-tile in signals (``0`` = untiled, the symmetric executors'
    default); ``k_tb`` is the *staging* block in channels, a whole
    multiple of the accumulation panel width.
:func:`candidate_tiles`
    The search grid for one geometry, ordered by
    :func:`predicted_cost` — an analytic cache-footprint model built on
    :class:`repro.gpu.sharedmem.StagingOccupancy` — so measurement
    visits the most promising candidates first.
:class:`TuneStore`
    The persistent winner cache: one versioned JSON file under
    ``~/.cache/repro`` (override with ``REPRO_TUNE_CACHE``).  Corrupt
    files, version mismatches and malformed entries are silently
    ignored; unwritable locations degrade to in-memory storage.
:class:`Tuner`
    The in-session front end: memoises winners per tune key, counts
    hits/misses (surfaced by :meth:`repro.api.Session.stats`), and runs
    the timed search on a miss.

Executors consult a tuner when built with ``tiles="auto"``
(:mod:`repro.core.compiled`); a :class:`repro.api.Session` created with
``autotune=True`` owns one tuner for all its pooled executors, and the
``python -m repro tune`` command warms the persistent store offline.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import Callable, NamedTuple, Sequence

import numpy as np

from repro.gpu.sharedmem import StagingOccupancy

__all__ = [
    "TUNE_STORE_VERSION",
    "Tiles",
    "TuneKey",
    "TuneStore",
    "Tuner",
    "batch_bucket",
    "candidate_tiles",
    "default_tune_store",
    "default_tuner",
    "predicted_cost",
    "tune_store_path",
]

#: Store-format version; bumped whenever the meaning of a stored entry
#: changes.  Entries written by any other version are ignored (stale).
TUNE_STORE_VERSION = 1

#: Cache budget (bytes) the analytic model assumes one tile's working
#: set should fit in.  CPython gives no portable cache introspection;
#: 1 MiB is a conservative per-core L2 figure and only *orders* the
#: candidate grid — measurement always has the final word.
CACHE_BUDGET_BYTES = 1 << 20

#: Signal-tile candidates (filtered to the batch bucket per geometry).
SIGNAL_TILE_CANDIDATES = (4, 8, 16, 32, 64, 128)

#: Staging-block multipliers of the accumulation panel width.
K_BLOCK_MULTIPLIERS = (1, 2, 4, 8)

#: Candidates measured per tune (the model-ordered grid is truncated to
#: this; the default tiles are always kept as the safety baseline).
MAX_MEASURED_CANDIDATES = 10

#: Probe batches are capped here: beyond it, larger signal tiles are
#: indistinguishable while probe cost and memory keep growing.
PROBE_BATCH_CAP = 128

#: Timing repeats per candidate (min-of); the probe runs once extra to
#: warm lazily-staged workspaces before the clock starts.
MEASURE_REPEATS = 2


class Tiles(NamedTuple):
    """One tiling configuration of a compiled executor.

    ``signal_tile``: signals per batch tile (``0`` = whole batch, the
    symmetric executors' untiled default).  ``k_tb``: channels staged
    per gather/FFT pass — for the fused executors a whole multiple of
    the accumulation panel width, so accumulation order (and therefore
    every output bit) is independent of the choice.
    """

    signal_tile: int
    k_tb: int


def batch_bucket(batch: int) -> int:
    """Coarse batch class a tune result is keyed on.

    Winners depend on the batch only through "how many signal tiles fit"
    — bucketing to the next power of two (floor 32, cap 256) keeps one
    serving stream from re-tuning per micro-batch size while still
    separating small-batch from large-batch regimes.
    """
    if batch < 1:
        raise ValueError(f"batch must be positive, got {batch}")
    bucket = 32
    while bucket < batch and bucket < 256:
        bucket *= 2
    return bucket


def bucket_ladder(batch: int) -> list[int]:
    """Every batch bucket a workload of up to ``batch`` signals can
    resolve to — what :meth:`repro.api.Session.warmup` pre-tunes, so a
    serving stream whose micro-batches are *smaller* than the warmed
    problem batch still never searches inline."""
    top = batch_bucket(batch)
    ladder, bucket = [], 32
    while bucket <= top:
        ladder.append(bucket)
        bucket *= 2
    return ladder


@dataclass(frozen=True)
class TuneKey:
    """Everything a tile winner is allowed to depend on.

    ``kind`` names the executor dataflow (``"fused1d"`` — also the 2-D
    executor's per-pencil fused stage — ``"sym1d"``, ``"sym2d"``);
    ``k_tb`` is the executor's *accumulation* panel width (winners are
    measured under one accumulation grouping and constrain the staging
    width to its multiples — executors with different ``k_tb`` must
    never share a winner); ``backend`` is the *resolved* substrate
    (``"ckernels"``/``"numpy"``, never ``"auto"``), because the two
    substrates have different dispatch costs and therefore different
    winners.
    """

    kind: str
    spatial: tuple[int, ...]
    modes: tuple[int, ...]
    c_in: int
    c_out: int
    k_tb: int
    batch_bucket: int
    dtype: str
    backend: str

    def as_string(self) -> str:
        """The store key: stable, human-readable, one line."""
        return "|".join((
            self.kind,
            "x".join(map(str, self.spatial)),
            "m" + "x".join(map(str, self.modes)),
            f"cin{self.c_in}",
            f"cout{self.c_out}",
            f"ktb{self.k_tb}",
            f"b{self.batch_bucket}",
            self.dtype,
            self.backend,
        ))


# ---------------------------------------------------------------------------
# The analytic seed model
# ---------------------------------------------------------------------------

def _working_set_bytes(tiles: Tiles, *, c_in: int, c_out: int, modes: int,
                       p: int, itemsize: int) -> int:
    """Bytes live across one signal tile of the fused dataflow.

    Mirrors ``_StagedFused1D``'s staging exactly: the gather/FFT
    ping-pong pair sized for the wider of the staging block and the
    epilogue, the C accumulator, the decomposition buffer, and the
    pre-cast weight panels (all panels are touched every tile).
    """
    st = max(tiles.signal_tile, 1)
    rows = st * max(tiles.k_tb, c_out) * p
    gather_pair = 2 * rows * modes * itemsize
    acc = st * c_out * modes * itemsize
    dec = st * tiles.k_tb * modes * itemsize if p > 1 else 0
    panels = c_in * c_out * itemsize
    return gather_pair + acc + dec + panels


def predicted_cost(tiles: Tiles, *, batch: int, c_in: int, c_out: int,
                   modes: int, p: int = 1, itemsize: int = 8,
                   cache_bytes: int = CACHE_BUDGET_BYTES) -> float:
    """Analytic cost proxy used to *order* the candidate grid.

    Two competing terms, the same trade the paper's shared-memory
    occupancy analysis balances on the GPU:

    * **dispatch** — every signal tile pays a fixed Python/ctypes
      dispatch cost per staged pass (gather, FFT, decomposition) and per
      accumulation panel; fewer, larger tiles amortise it;
    * **spill** — the per-tile traffic is inflated by
      :meth:`StagingOccupancy.spill_factor` once the tile's working set
      exceeds the cache budget, so oversized tiles lose what they saved
      on dispatch.

    The absolute value is meaningless; only the ordering is consumed
    (measurement decides the winner).
    """
    st = max(tiles.signal_tile, 1) or 1
    n_tiles = -(-batch // st)
    n_panels = max(1, -(-c_in // 8))  # panel count is k_tb-invariant
    n_groups = max(1, -(-(c_in) // max(tiles.k_tb, 1)))
    dispatch = n_tiles * (3.0 * n_groups + 1.0 * n_panels + 2.0)
    traffic = float(
        batch * (c_in + 2 * c_out) * modes * p * itemsize
    )
    occupancy = StagingOccupancy(cache_bytes)
    spill = occupancy.spill_factor(_working_set_bytes(
        tiles, c_in=c_in, c_out=c_out, modes=modes, p=p, itemsize=itemsize
    ))
    # One dispatch unit ~ the traffic of a few cache lines; the constant
    # only balances the two terms' scales for ordering purposes.
    return dispatch * 4096.0 + traffic * spill


def candidate_tiles(*, batch: int, c_in: int, c_out: int, modes: int,
                    p: int = 1, k_tb: int = 8, itemsize: int = 8,
                    allow_untiled: bool = False,
                    k_multipliers: Sequence[int] = K_BLOCK_MULTIPLIERS,
                    max_candidates: int = MAX_MEASURED_CANDIDATES,
                    default: Tiles | None = None) -> list[Tiles]:
    """The model-ordered candidate grid for one geometry.

    ``k_tb`` is the executor's accumulation panel width: staging-block
    candidates are its whole multiples (clamped to the panel-covering
    width of ``c_in``), so every candidate is bit-identical by
    construction.  ``allow_untiled`` adds ``signal_tile=0`` (the
    symmetric executors' whole-batch default).  ``default`` (when given)
    always survives the truncation, as the measured safety baseline.
    """
    if k_tb < 1:
        raise ValueError(f"k_tb must be positive, got {k_tb}")
    covering = -(-max(c_in, 1) // k_tb) * k_tb
    k_cands = sorted({
        min(k_tb * mult, covering) for mult in k_multipliers
    })
    st_cands = [st for st in SIGNAL_TILE_CANDIDATES if st <= max(batch, 1)]
    if not st_cands:
        st_cands = [1]
    if allow_untiled:
        st_cands = [0] + st_cands
    grid = {Tiles(st, kb) for st in st_cands for kb in k_cands}
    if default is not None:
        grid.add(default)
    ordered = sorted(
        grid,
        key=lambda t: (predicted_cost(
            t, batch=batch, c_in=c_in, c_out=c_out, modes=modes, p=p,
            itemsize=itemsize,
        ), t),
    )
    if max_candidates is not None and len(ordered) > max_candidates:
        kept = ordered[:max_candidates]
        if default is not None and default not in kept:
            kept[-1] = default
        ordered = kept
    return ordered


# ---------------------------------------------------------------------------
# The persistent store
# ---------------------------------------------------------------------------

def tune_store_path() -> pathlib.Path:
    """Where the persistent tune store lives.

    ``REPRO_TUNE_CACHE`` overrides (a file path, or a directory to hold
    the default file name); otherwise ``~/.cache/repro/autotune.json``.
    Resolved per call, so tests and deployments can redirect it at any
    time.
    """
    override = os.environ.get("REPRO_TUNE_CACHE")
    if override:
        path = pathlib.Path(override)
        if path.is_dir():
            return path / "autotune.json"
        return path
    return pathlib.Path.home() / ".cache" / "repro" / "autotune.json"


def _valid_entry(entry) -> Tiles | None:
    """Parse one stored entry; None for anything malformed."""
    if not isinstance(entry, dict):
        return None
    st, ktb = entry.get("signal_tile"), entry.get("k_tb")
    if isinstance(st, bool) or isinstance(ktb, bool):
        return None
    if not isinstance(st, int) or not isinstance(ktb, int):
        return None
    if st < 0 or ktb < 1:
        return None
    return Tiles(st, ktb)


class TuneStore:
    """The on-disk winner cache: one versioned JSON file.

    Robustness contract (property-tested): a corrupt file, a version
    mismatch, or a malformed entry reads as *empty* — never an
    exception; an unwritable path degrades writes to in-memory storage
    (the session keeps its winners, the disk is left alone).  Writes are
    atomic (tempfile + rename) so concurrent processes can share one
    store without torn files.
    """

    def __init__(self, path: str | os.PathLike | None = None):
        self._fixed_path = pathlib.Path(path) if path is not None else None
        self._lock = threading.Lock()
        self._mem: dict[str, dict] = {}

    @property
    def path(self) -> pathlib.Path:
        return (self._fixed_path if self._fixed_path is not None
                else tune_store_path())

    def _read_entries(self) -> dict:
        try:
            raw = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return {}
        if not isinstance(raw, dict):
            return {}
        if raw.get("version") != TUNE_STORE_VERSION:
            return {}  # stale format: ignored wholesale
        entries = raw.get("entries")
        return entries if isinstance(entries, dict) else {}

    def get(self, key: str) -> Tiles | None:
        """The stored winner for ``key`` (None: absent or malformed).
        Entries whose disk write failed are served from memory."""
        with self._lock:
            entry = self._read_entries().get(key)
            if entry is None:
                entry = self._mem.get(key)
        return _valid_entry(entry)

    def put(self, key: str, tiles: Tiles, extra: dict | None = None) -> None:
        """Record a winner.  Disk failures are absorbed: the entry stays
        readable from this store instance either way."""
        entry = {"signal_tile": int(tiles.signal_tile),
                 "k_tb": int(tiles.k_tb)}
        if extra:
            entry.update(extra)
        with self._lock:
            self._mem[key] = entry
            entries = self._read_entries()
            entries.update(self._mem)
            payload = json.dumps(
                {"version": TUNE_STORE_VERSION, "entries": entries},
                indent=2, sort_keys=True,
            )
            try:
                path = self.path
                path.parent.mkdir(parents=True, exist_ok=True)
                fd, tmp = tempfile.mkstemp(
                    dir=str(path.parent), prefix=path.name, suffix=".tmp"
                )
                try:
                    with os.fdopen(fd, "w") as fh:
                        fh.write(payload + "\n")
                    os.replace(tmp, path)
                except BaseException:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                    raise
            except OSError:
                return  # read-only location: in-memory fallback
            # Flushed to disk: the memory copy would otherwise shadow
            # the file if the store path is later redirected.
            self._mem.clear()

    def entries(self) -> dict[str, Tiles]:
        """Every valid entry visible to this store (disk + memory)."""
        with self._lock:
            merged = self._read_entries()
            merged.update(self._mem)
        out = {}
        for key, entry in merged.items():
            tiles = _valid_entry(entry)
            if tiles is not None:
                out[key] = tiles
        return out


_default_store = TuneStore()


def default_tune_store() -> TuneStore:
    """The process-wide persistent store (path resolved per access)."""
    return _default_store


# ---------------------------------------------------------------------------
# The tuner
# ---------------------------------------------------------------------------

class Tuner:
    """Resolves tile winners: memo -> persistent store -> timed search.

    Thread-safe; every :meth:`tiles_for` call counts exactly one hit
    (memo or store, including threads that waited out another thread's
    in-flight search of the same key) or one miss (this call ran a
    search).  The lock guards only the bookkeeping — the timed search
    itself runs *outside* it behind a per-key in-flight guard, so a
    cold geometry being tuned never stalls hot geometries resolving
    their memoised winners.  A session owns one tuner so its serving
    stats stay per-session; standalone ``tiles="auto"`` executors share
    :func:`default_tuner`.
    """

    def __init__(self, store: TuneStore | None = None):
        self.store = store if store is not None else default_tune_store()
        self._lock = threading.Lock()
        self._memo: dict[str, Tiles] = {}
        self._pending: dict[str, threading.Event] = {}
        self._hits = 0
        self._misses = 0

    def tiles_for(
        self,
        key: TuneKey,
        default: Tiles,
        candidates: Sequence[Tiles],
        measure: Callable[[Tiles], float],
        is_valid: Callable[[Tiles], bool] | None = None,
        retune: bool = False,
    ) -> Tiles:
        """The winning tiles for ``key``.

        ``measure`` times one candidate (seconds, lower is better) and
        runs only on a miss.  ``is_valid`` guards entries recalled from
        the memo/store against a caller whose constraints changed (an
        incompatible recalled entry is treated as a miss and re-tuned).
        ``retune`` forces a fresh search, overwriting the stored winner
        (a search another thread has in flight satisfies it).
        """
        ks = key.as_string()
        ok = is_valid if is_valid is not None else (lambda _t: True)
        while True:
            check_store = False
            with self._lock:
                if not retune:
                    tiles = self._memo.get(ks)
                    if tiles is not None and ok(tiles):
                        self._hits += 1
                        return tiles
                    check_store = tiles is None
            if check_store:
                tiles = self.store.get(ks)
                if tiles is not None and ok(tiles):
                    with self._lock:
                        self._memo[ks] = tiles
                        self._hits += 1
                    return tiles
            with self._lock:
                if not retune:
                    # another thread may have finished while we read
                    # the store
                    tiles = self._memo.get(ks)
                    if tiles is not None and ok(tiles):
                        self._hits += 1
                        return tiles
                pending = self._pending.get(ks)
                if pending is None:
                    pending = self._pending[ks] = threading.Event()
                    self._misses += 1
                    break  # this call owns the search
            # Wait out the in-flight search, then re-resolve from the
            # memo (counted as a hit; also satisfies a retune request).
            pending.wait()
            retune = False
        try:
            best, best_t, default_t = default, None, None
            for cand in candidates:
                if not ok(cand):
                    continue
                seconds = measure(cand)
                if cand == default:
                    default_t = seconds
                if best_t is None or seconds < best_t:
                    best, best_t = cand, seconds
            with self._lock:
                self._memo[ks] = best
            extra = {}
            if best_t is not None:
                extra["ms"] = round(best_t * 1e3, 4)
            if default_t is not None:
                extra["default_ms"] = round(default_t * 1e3, 4)
            self.store.put(ks, best, extra)
            return best
        finally:
            with self._lock:
                self._pending.pop(ks, None)
            pending.set()

    def clear_memo(self) -> None:
        """Evict every in-session winner (the persistent store stays)."""
        with self._lock:
            self._memo.clear()

    def stats(self) -> dict:
        """JSON-ready counters: hits, misses, memoised entries."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "entries": len(self._memo),
            }


_default_tuner: Tuner | None = None
_default_tuner_lock = threading.Lock()


def default_tuner() -> Tuner:
    """The process-wide tuner behind standalone ``tiles="auto"``
    executors (sessions own their own)."""
    global _default_tuner
    if _default_tuner is None:
        with _default_tuner_lock:
            if _default_tuner is None:
                _default_tuner = Tuner()
    return _default_tuner


# ---------------------------------------------------------------------------
# Measurement helpers (shared by executors, the CLI and the benchmark)
# ---------------------------------------------------------------------------

def measure_seconds(fn: Callable[[], object],
                    repeats: int = MEASURE_REPEATS) -> float:
    """Min-of-``repeats`` wall-clock seconds of ``fn()`` after one
    untimed warmup call (lazy staging must not bill the first
    candidate)."""
    fn()
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def probe_batch(bucket: int) -> int:
    """Synthetic probe batch for one tune: the batch bucket, capped."""
    return min(bucket, PROBE_BATCH_CAP)


def probe_signal(shape: tuple[int, ...], dtype: np.dtype) -> np.ndarray:
    """A deterministic synthetic probe input (values are irrelevant to
    timing; determinism keeps tune results reproducible)."""
    rng = np.random.default_rng(0)
    dtype = np.dtype(dtype)
    if dtype.kind == "c":
        real = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
        return real.astype(dtype)
    return rng.standard_normal(shape).astype(dtype)
