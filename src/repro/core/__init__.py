"""TurboFNO core: the paper's contribution.

* :mod:`repro.core.config` — problem descriptions (1D/2D Fourier layers)
  and the TurboFNO configuration (truncation, kernel parameters, fusion
  stage, model penalties).
* :mod:`repro.core.stages` — the optimization ladder of Table 2
  (A: FFT pruning/truncation/padding, B: +fused FFT-CGEMM, C: +fused
  CGEMM-iFFT, D: fully fused FFT-CGEMM-iFFT, E: best-of).
* :mod:`repro.core.fft_variant` — the k-loop FFT variant: the second FFT
  stage re-interpreted along the hidden dimension so a thread block's
  iteration order matches CGEMM's k-loop (Figure 6).
* :mod:`repro.core.fused` — numerically exact fused operators (NumPy
  execution of the single-kernel dataflow).
* :mod:`repro.core.compiled` — build-once/execute-many spectral-conv
  executors over the compiled FFT plan layer (byte-identical to the
  functional path; :mod:`repro.core.legacy` preserves the original
  loops as oracle and benchmark baseline).
* :mod:`repro.core.autotune` — plan-time tile autotuning for the
  compiled executors (candidate grids seeded by an analytic
  cache-footprint model, a persistent versioned tune store, and the
  in-session :class:`~repro.core.autotune.Tuner`).
* :mod:`repro.core.dtypes` — the shared complex-precision policy.
* :mod:`repro.core.spectral` — the public spectral-convolution API with
  selectable engine.
* :mod:`repro.core.pipeline_model` — compiles every stage (and the
  PyTorch baseline) into :class:`repro.gpu.timeline.Pipeline` kernel
  sequences; this is what regenerates the paper's figures.
"""

from repro.core.autotune import Tiles, Tuner, TuneStore, default_tuner
from repro.core.compiled import (
    CompiledSpectralConv1D,
    CompiledSpectralConv2D,
    compile_spectral_conv,
)
from repro.core.config import FNO1DProblem, FNO2DProblem, TurboFNOConfig
from repro.core.dtypes import complex_dtype_for
from repro.core.fused import (
    fused_fft_gemm_ifft_1d,
    fused_fft_gemm_ifft_2d,
)
from repro.core.pipeline_model import build_pipeline_1d, build_pipeline_2d
from repro.core.spectral import spectral_conv_1d, spectral_conv_2d
from repro.core.stages import FusionStage

__all__ = [
    "FNO1DProblem",
    "FNO2DProblem",
    "TurboFNOConfig",
    "FusionStage",
    "spectral_conv_1d",
    "spectral_conv_2d",
    "fused_fft_gemm_ifft_1d",
    "fused_fft_gemm_ifft_2d",
    "CompiledSpectralConv1D",
    "CompiledSpectralConv2D",
    "compile_spectral_conv",
    "Tiles",
    "Tuner",
    "TuneStore",
    "default_tuner",
    "complex_dtype_for",
    "build_pipeline_1d",
    "build_pipeline_2d",
]
