"""Public spectral-convolution operators.

The operator both engines compute is the paper's Fourier layer
(Figure 1a): FFT -> keep the first ``modes`` low-frequency bins -> complex
channel mixing with a shared ``(C_in, C_out)`` matrix -> zero-pad -> iFFT.

``engine`` selects the execution strategy:

* ``"turbo"`` — the fused TurboFNO dataflow (:mod:`repro.core.fused`),
  executed by the compiled plan layer: pruned transforms, no
  materialised full spectrum, single pass, all per-call setup amortised
  in the global plan caches.  For repeated application of one weight
  matrix, build a :func:`repro.core.compiled.compile_spectral_conv`
  executor (byte-identical output, staging paid once).
* ``"reference"`` — staged execution on this package's Stockham FFT.
* ``"pytorch"`` — staged execution on ``numpy.fft`` with explicit
  truncation/padding copies (the baseline of §5).

All engines agree to floating-point tolerance; tests enforce it.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.pytorch_fno import (
    pytorch_like_spectral_conv_1d,
    pytorch_like_spectral_conv_2d,
)
from repro.core.fused import fused_fft_gemm_ifft_1d, fused_fft_gemm_ifft_2d
from repro.fft.stockham import fft, fft2, ifft, ifft2

__all__ = ["spectral_conv_1d", "spectral_conv_2d", "ENGINES"]

ENGINES = ("turbo", "reference", "pytorch")


def _reference_1d(x: np.ndarray, weight: np.ndarray, modes: int) -> np.ndarray:
    xk = fft(x, axis=-1)[:, :, :modes]
    yk_low = np.einsum("bix,io->box", xk, weight)
    yk = np.zeros((x.shape[0], weight.shape[1], x.shape[2]), dtype=yk_low.dtype)
    yk[:, :, :modes] = yk_low
    return ifft(yk, axis=-1)


def _reference_2d(
    x: np.ndarray, weight: np.ndarray, modes_x: int, modes_y: int
) -> np.ndarray:
    xk = fft2(x, axes=(-2, -1))[:, :, :modes_x, :modes_y]
    yk_low = np.einsum("bixy,io->boxy", xk, weight)
    yk = np.zeros(
        (x.shape[0], weight.shape[1], x.shape[2], x.shape[3]), dtype=yk_low.dtype
    )
    yk[:, :, :modes_x, :modes_y] = yk_low
    return ifft2(yk, axes=(-2, -1))


def spectral_conv_1d(
    x: np.ndarray,
    weight: np.ndarray,
    modes: int,
    engine: str = "turbo",
) -> np.ndarray:
    """1-D Fourier layer on ``(batch, C_in, X)``; returns
    ``(batch, C_out, X)`` complex.

    Parameters
    ----------
    x:
        Input features (real or complex; complex64/float32 stays single
        precision).
    weight:
        Complex ``(C_in, C_out)`` spectral weights shared across modes.
    modes:
        Kept low-frequency bins (power of two dividing X for the turbo
        engine's pruned transforms).
    engine:
        One of ``"turbo" | "reference" | "pytorch"``.
    """
    if engine == "turbo":
        return fused_fft_gemm_ifft_1d(x, weight, modes)
    if engine == "reference":
        return _reference_1d(np.asarray(x), np.asarray(weight), modes)
    if engine == "pytorch":
        return pytorch_like_spectral_conv_1d(x, weight, modes)
    raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")


def spectral_conv_2d(
    x: np.ndarray,
    weight: np.ndarray,
    modes_x: int,
    modes_y: int,
    engine: str = "turbo",
) -> np.ndarray:
    """2-D Fourier layer on ``(batch, C_in, X, Y)``; returns
    ``(batch, C_out, X, Y)`` complex.  See :func:`spectral_conv_1d`."""
    if engine == "turbo":
        return fused_fft_gemm_ifft_2d(x, weight, modes_x, modes_y)
    if engine == "reference":
        return _reference_2d(np.asarray(x), np.asarray(weight), modes_x, modes_y)
    if engine == "pytorch":
        return pytorch_like_spectral_conv_2d(x, weight, modes_x, modes_y)
    raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
