"""Frozen pre-compiled-layer fused operators (the seed code).

The original loop implementations of :mod:`repro.core.fused`, kept
verbatim — including the per-tile, per-k-iteration ``astype`` of the
weight panel that the compiled executors hoist — as

* the **benchmark baseline** for ``benchmarks/bench_compiled_vs_legacy.py``,
* the **bit-exactness oracle** for the executor property tests.

They run on :mod:`repro.fft.legacy` (the frozen per-call transforms), so
this module exercises none of the compiled plan layer.  Do not optimise
it — its value is that it does *not* change.
"""

from __future__ import annotations

import numpy as np

from repro.core.dtypes import complex_dtype_for
from repro.fft.legacy import truncated_fft, truncated_ifft

__all__ = [
    "fused_fft_gemm_1d",
    "fused_gemm_ifft_1d",
    "fused_fft_gemm_ifft_1d",
    "fused_fft_gemm_ifft_2d",
]

_DEFAULT_K_TB = 8
_DEFAULT_SIGNAL_TILE = 16


def _check_inputs(x: np.ndarray, weight: np.ndarray, ndim: int) -> None:
    if x.ndim != ndim:
        raise ValueError(f"expected {ndim}-D input, got shape {x.shape}")
    if weight.ndim != 2:
        raise ValueError(f"weight must be (C_in, C_out), got {weight.shape}")
    if weight.shape[0] != x.shape[1]:
        raise ValueError(
            f"weight C_in={weight.shape[0]} != input channels {x.shape[1]}"
        )


def fused_fft_gemm_1d(
    x: np.ndarray,
    weight: np.ndarray,
    modes: int,
    k_tb: int = _DEFAULT_K_TB,
) -> np.ndarray:
    """Stage B dataflow, legacy execution (see :mod:`repro.core.fused`)."""
    x = np.asarray(x)
    weight = np.asarray(weight)
    _check_inputs(x, weight, 3)
    batch, c_in, _ = x.shape
    c_out = weight.shape[1]
    dtype = complex_dtype_for(x.dtype)
    acc = np.zeros((batch, c_out, modes), dtype=dtype)
    for k0 in range(0, c_in, k_tb):
        k1 = min(k0 + k_tb, c_in)
        a = truncated_fft(x[:, k0:k1, :], modes, axis=-1)  # (b, kt, modes)
        acc += np.einsum("bkm,ko->bom", a, weight[k0:k1].astype(dtype))
    return acc


def fused_gemm_ifft_1d(
    xk_low: np.ndarray,
    weight: np.ndarray,
    dim_x: int,
    k_tb: int = _DEFAULT_K_TB,
) -> np.ndarray:
    """Stage C dataflow, legacy execution (see :mod:`repro.core.fused`)."""
    xk_low = np.asarray(xk_low)
    weight = np.asarray(weight)
    _check_inputs(xk_low, weight, 3)
    batch, c_in, modes = xk_low.shape
    c_out = weight.shape[1]
    dtype = complex_dtype_for(xk_low.dtype)
    acc = np.zeros((batch, c_out, modes), dtype=dtype)
    for k0 in range(0, c_in, k_tb):
        k1 = min(k0 + k_tb, c_in)
        acc += np.einsum(
            "bkm,ko->bom", xk_low[:, k0:k1, :], weight[k0:k1].astype(dtype)
        )
    return truncated_ifft(acc, dim_x, axis=-1)


def fused_fft_gemm_ifft_1d(
    x: np.ndarray,
    weight: np.ndarray,
    modes: int,
    k_tb: int = _DEFAULT_K_TB,
    signal_tile: int = _DEFAULT_SIGNAL_TILE,
) -> np.ndarray:
    """Stage D dataflow, legacy execution (see :mod:`repro.core.fused`).

    Note the per-tile, per-panel ``weight[k0:k1].astype(dtype)`` — the
    redundant re-cast the compiled executors stage once at plan time.
    """
    x = np.asarray(x)
    weight = np.asarray(weight)
    _check_inputs(x, weight, 3)
    batch, c_in, dim_x = x.shape
    if not (1 <= modes <= dim_x):
        raise ValueError(f"modes must be in [1, {dim_x}], got {modes}")
    c_out = weight.shape[1]
    dtype = complex_dtype_for(x.dtype)
    out = np.empty((batch, c_out, dim_x), dtype=dtype)
    for b0 in range(0, batch, signal_tile):
        b1 = min(b0 + signal_tile, batch)
        acc = np.zeros((b1 - b0, c_out, modes), dtype=dtype)
        for k0 in range(0, c_in, k_tb):
            k1 = min(k0 + k_tb, c_in)
            a = truncated_fft(x[b0:b1, k0:k1, :], modes, axis=-1)
            acc += np.einsum("bkm,ko->bom", a, weight[k0:k1].astype(dtype))
        out[b0:b1] = truncated_ifft(acc, dim_x, axis=-1)
    return out


def fused_fft_gemm_ifft_2d(
    x: np.ndarray,
    weight: np.ndarray,
    modes_x: int,
    modes_y: int,
    k_tb: int = _DEFAULT_K_TB,
    signal_tile: int = _DEFAULT_SIGNAL_TILE,
) -> np.ndarray:
    """2-D stage D dataflow, legacy execution (see :mod:`repro.core.fused`)."""
    x = np.asarray(x)
    weight = np.asarray(weight)
    _check_inputs(x, weight, 4)
    batch, c_in, dim_x, dim_y = x.shape
    if not (1 <= modes_x <= dim_x) or not (1 <= modes_y <= dim_y):
        raise ValueError(
            f"modes ({modes_x}, {modes_y}) out of range for ({dim_x}, {dim_y})"
        )
    c_out = weight.shape[1]
    dtype = complex_dtype_for(x.dtype)

    xk_x = truncated_fft(x.astype(dtype, copy=False), modes_x, axis=2)

    pencils = xk_x.transpose(0, 2, 1, 3).reshape(batch * modes_x, c_in, dim_y)
    out_pencils = np.empty((batch * modes_x, c_out, dim_y), dtype=dtype)
    for b0 in range(0, pencils.shape[0], signal_tile):
        b1 = min(b0 + signal_tile, pencils.shape[0])
        acc = np.zeros((b1 - b0, c_out, modes_y), dtype=dtype)
        for k0 in range(0, c_in, k_tb):
            k1 = min(k0 + k_tb, c_in)
            a = truncated_fft(pencils[b0:b1, k0:k1, :], modes_y, axis=-1)
            acc += np.einsum("bkm,ko->bom", a, weight[k0:k1].astype(dtype))
        out_pencils[b0:b1] = truncated_ifft(acc, dim_y, axis=-1)

    yk_x = out_pencils.reshape(batch, modes_x, c_out, dim_y).transpose(0, 2, 1, 3)
    return truncated_ifft(yk_x, dim_x, axis=2)
