"""Numerically exact execution of the fused FFT-CGEMM-iFFT dataflow.

These functions walk the *single-kernel* dataflow of Figure 9 — tile the
output, iterate the hidden dimension as a k-loop, transform each k-slice
with the built-in-truncated FFT, accumulate the CGEMM fragments, and run
the inverse FFT as the epilogue — using NumPy arrays in place of shared
memory.  They produce bit-for-bit the same mathematics as the staged
PyTorch pipeline (:mod:`repro.baselines.pytorch_fno`), which is exactly
the claim the paper's fused kernel makes: same operator, one kernel.

Since the compiled-executor refactor they are thin wrappers over
:mod:`repro.core.compiled`: each call stages the weight panels once
(the cast is hoisted out of the k-loops) and executes through the global
FFT plan cache, producing byte-identical output to the frozen legacy
loops in :mod:`repro.core.legacy`.  Hold a
:class:`~repro.core.compiled.CompiledSpectralConv1D` /
``...2D`` executor to amortise the staging itself across calls.

The pruned transforms (:mod:`repro.fft.pruned`) mean no full-length
spectrum is ever materialised, mirroring the kernel's property that
truncated frequencies never exist anywhere.
"""

from __future__ import annotations

import numpy as np

from repro.core.compiled import (
    CompiledSpectralConv1D,
    CompiledSpectralConv2D,
    _StagedFused1D,
)
from repro.core.dtypes import complex_dtype_for
from repro.fft.compiled import panel_contract
from repro.fft.pruned import truncated_ifft

__all__ = [
    "fused_fft_gemm_1d",
    "fused_gemm_ifft_1d",
    "fused_fft_gemm_ifft_1d",
    "fused_fft_gemm_ifft_2d",
]

_DEFAULT_K_TB = 8
_DEFAULT_SIGNAL_TILE = 16


def _check_inputs(x: np.ndarray, weight: np.ndarray, ndim: int) -> None:
    if x.ndim != ndim:
        raise ValueError(f"expected {ndim}-D input, got shape {x.shape}")
    if weight.ndim != 2:
        raise ValueError(f"weight must be (C_in, C_out), got {weight.shape}")
    if weight.shape[0] != x.shape[1]:
        raise ValueError(
            f"weight C_in={weight.shape[0]} != input channels {x.shape[1]}"
        )


def fused_fft_gemm_1d(
    x: np.ndarray,
    weight: np.ndarray,
    modes: int,
    k_tb: int = _DEFAULT_K_TB,
) -> np.ndarray:
    """Stage B dataflow: FFT fused into the CGEMM k-loop.

    Input ``(batch, C_in, X)``; returns the truncated-frequency product
    ``(batch, C_out, modes)`` — what the fused kernel would hand to a
    separate iFFT kernel.
    """
    x = np.asarray(x)
    weight = np.asarray(weight)
    _check_inputs(x, weight, 3)
    staged = _StagedFused1D(
        weight, modes, x.shape[2], k_tb, _DEFAULT_SIGNAL_TILE,
        complex_dtype_for(x.dtype),
    )
    return staged.run_fft_gemm(x)


def fused_gemm_ifft_1d(
    xk_low: np.ndarray,
    weight: np.ndarray,
    dim_x: int,
    k_tb: int = _DEFAULT_K_TB,
) -> np.ndarray:
    """Stage C dataflow: iFFT as the CGEMM epilogue.

    Input is the already-truncated spectrum ``(batch, C_in, modes)``;
    returns the spatial output ``(batch, C_out, X)``.  The zero-padding
    never materialises: the epilogue's pruned inverse transform consumes
    the C tile straight from "shared memory".
    """
    xk_low = np.asarray(xk_low)
    weight = np.asarray(weight)
    _check_inputs(xk_low, weight, 3)
    batch, c_in, modes = xk_low.shape
    c_out = weight.shape[1]
    dtype = complex_dtype_for(xk_low.dtype)
    wc = weight.astype(dtype)  # hoisted out of the k-loop
    acc = np.zeros((batch, c_out, modes), dtype=dtype)
    for k0 in range(0, c_in, k_tb):
        k1 = min(k0 + k_tb, c_in)
        a = np.ascontiguousarray(xk_low[:, k0:k1, :], dtype=dtype)
        panel_contract(a, np.ascontiguousarray(wc[k0:k1]), acc)
    return truncated_ifft(acc, dim_x, axis=-1)


def fused_fft_gemm_ifft_1d(
    x: np.ndarray,
    weight: np.ndarray,
    modes: int,
    k_tb: int = _DEFAULT_K_TB,
    signal_tile: int = _DEFAULT_SIGNAL_TILE,
) -> np.ndarray:
    """Stage D dataflow: the fully fused 1-D spectral convolution.

    Input ``(batch, C_in, X)``; returns ``(batch, C_out, X)`` complex.
    ``signal_tile`` plays the role of the grid's M tiling: each tile of
    signals runs the complete k-loop + epilogue before the next starts,
    exactly one "thread block" at a time.
    """
    x = np.asarray(x)
    weight = np.asarray(weight)
    _check_inputs(x, weight, 3)
    dim_x = x.shape[2]
    if not (1 <= modes <= dim_x):
        raise ValueError(f"modes must be in [1, {dim_x}], got {modes}")
    conv = CompiledSpectralConv1D(weight, modes, k_tb, signal_tile)
    return conv(x)


def fused_fft_gemm_ifft_2d(
    x: np.ndarray,
    weight: np.ndarray,
    modes_x: int,
    modes_y: int,
    k_tb: int = _DEFAULT_K_TB,
    signal_tile: int = _DEFAULT_SIGNAL_TILE,
) -> np.ndarray:
    """Fully fused 2-D spectral convolution (Figure 6 dataflow).

    The width FFT runs first with built-in truncation (standalone kernel);
    the height FFT + CGEMM + height iFFT execute fused over the truncated
    rows; the width iFFT reconstructs the full grid.  Input
    ``(batch, C_in, X, Y)``; returns ``(batch, C_out, X, Y)`` complex.
    """
    x = np.asarray(x)
    weight = np.asarray(weight)
    _check_inputs(x, weight, 4)
    batch, c_in, dim_x, dim_y = x.shape
    if not (1 <= modes_x <= dim_x) or not (1 <= modes_y <= dim_y):
        raise ValueError(
            f"modes ({modes_x}, {modes_y}) out of range for ({dim_x}, {dim_y})"
        )
    conv = CompiledSpectralConv2D(weight, modes_x, modes_y, k_tb, signal_tile)
    return conv(x)
