"""Compiled spectral-convolution executors: build once, execute many.

The legacy fused loops (:mod:`repro.core.legacy`) re-cast the same
weight panel on every tile of every signal block and re-staged their FFT
setup per call.  A :class:`CompiledSpectralConv1D` /
:class:`CompiledSpectralConv2D` executor does all of that at *build*
time — weights cast once and pre-sliced into contiguous k-panels, FFT
plans resolved from the global cache (:mod:`repro.fft.compiled`),
decomposition twiddles pre-cast, tile workspaces allocated — so each
execution runs only the k-loop arithmetic.  Outputs are byte-identical
to the legacy loops (property-tested): the executors replay the same
tile/panel accumulation order, so not a single floating-point operation
changes, only where the operands live.

The functional API (:mod:`repro.core.fused`) builds a throwaway executor
per call, which still hoists every redundant cast out of the loops; hold
an executor (or get one from ``repro.api.plan(...).compile_executor``)
to amortise the staging across calls.

Executors own mutable tile workspaces and are **not** thread-safe; share
one per thread (the plan caches underneath serialise themselves).

Every executor resolves its FFT/rfft plans from one
:class:`repro.fft.compiled.PlanCaches` set — the one passed as
``plans=``, else the set active on the building thread
(:func:`repro.fft.compiled.current_plan_caches`).  A
:class:`repro.api.Session` passes its own set, so pooled executors
carry the session's backend and never share workspaces with other
sessions; staging captures the set once per geometry.
"""

from __future__ import annotations

import numpy as np

from repro.core.autotune import (
    Tiles,
    TuneKey,
    Tuner,
    batch_bucket,
    bucket_ladder,
    candidate_tiles,
    default_tuner,
    measure_seconds,
    probe_batch,
    probe_signal,
)
from repro.core.dtypes import complex_dtype_for
from repro.fft.compiled import (
    PlanCaches,
    PrunedPartMismatchError,
    current_plan_caches,
    decomp_reduce,
    expand_mul,
    panel_contract,
)
from repro.fft.pruned import (
    _validate_split,
    padded_ifft_auto,
    truncated_fft,
    truncated_fft_auto,
    truncated_ifft,
)
from repro.fft.stockham import _check_length
from repro.fft.twiddle import decomposition_twiddles

__all__ = [
    "CompiledSpectralConv1D",
    "CompiledSpectralConv2D",
    "compile_spectral_conv",
]

_DEFAULT_K_TB = 8
_DEFAULT_SIGNAL_TILE = 16

#: ``tiles=`` spellings accepted by the executors (besides a concrete
#: ``(signal_tile, k_tb)`` pair).
TILE_MODES = ("default", "auto")


def _check_inputs(x: np.ndarray, weight: np.ndarray, ndim: int) -> None:
    if x.ndim != ndim:
        raise ValueError(f"expected {ndim}-D input, got shape {x.shape}")
    if weight.ndim != 2:
        raise ValueError(f"weight must be (C_in, C_out), got {weight.shape}")
    if weight.shape[0] != x.shape[1]:
        raise ValueError(
            f"weight C_in={weight.shape[0]} != input channels {x.shape[1]}"
        )


class _StagedFused1D:
    """Everything a fused 1-D pass needs, staged for one (dtype, dim_x).

    Replays the exact legacy dataflow (tile loop -> k-loop -> epilogue)
    with all per-call setup hoisted: pre-cast weight panels, cached FFT
    plans for the kept-mode length, pre-cast decomposition twiddles, and
    tile-sized reusable workspaces.

    ``k_block`` widens the *staging* granularity without touching the
    arithmetic: up to ``k_block`` channels (a whole multiple of the
    accumulation width ``k_tb``) are gathered, transformed and
    decomposition-reduced in one pass, then contracted panel-by-panel in
    the canonical ``k_tb`` order.  The FFT and the decomposition reduce
    are row-independent, so any legal ``k_block`` produces byte-identical
    output — only the dispatch count and the staging working set change.
    """

    def __init__(self, weight: np.ndarray, modes: int, dim_x: int,
                 k_tb: int, signal_tile: int, dtype: np.dtype,
                 plans: PlanCaches | None = None,
                 k_block: int | None = None):
        # Same split validation (and messages) the first inner
        # truncated_fft of the legacy loop would have raised.
        if modes == dim_x:
            _check_length(dim_x)
        else:
            _validate_split(dim_x, modes, "n_keep")
        if signal_tile < 1:
            raise ValueError(
                f"signal_tile must be positive, got {signal_tile}"
            )
        c_in, c_out = weight.shape
        self.modes = modes
        self.dim_x = dim_x
        self.k_tb = k_tb
        kb = k_tb if k_block is None else k_block
        if kb < k_tb or kb % k_tb != 0:
            raise ValueError(
                f"k_block must be a whole multiple of k_tb={k_tb}, got {kb}"
            )
        self.k_block = kb
        self.signal_tile = signal_tile
        self.dtype = dtype
        self.c_in = c_in
        self.c_out = c_out
        self.p = dim_x // modes
        self.plans = plans if plans is not None else current_plan_caches()
        # the hoisted weight cast: once at staging, not per tile
        self.panels = _weight_panels(weight, k_tb, dtype)
        # Consecutive same-width panels grouped per staging pass.  Only
        # the last panel can be ragged, so it always forms its own
        # (singleton) group and every other group is uniform-width.
        self.groups = _panel_groups(self.panels, kb // k_tb)
        self.fwd = self.plans.fft(modes, dtype, inverse=False)
        if self.p > 1:
            self.wd_f = np.ascontiguousarray(
                decomposition_twiddles(dim_x, self.p, modes).astype(dtype)
            )
        else:
            self.wd_f = None
        # The inverse side and the tile workspaces are staged lazily:
        # the forward-only stage-B pass never touches them.
        self.inv = None
        self.wd_i = None
        self._gather = None

    def _ensure_tiles(self) -> None:
        """Stage the epilogue tables and per-tile workspaces (lazily:
        only the fully fused pass needs them)."""
        if self._gather is not None:
            return
        dtype, modes = self.dtype, self.modes
        self.inv = self.plans.fft(modes, dtype, inverse=True)
        if self.p > 1:
            self.wd_i = np.ascontiguousarray(
                decomposition_twiddles(
                    self.dim_x, self.p, modes, inverse=True
                ).astype(dtype)
            )
        # Reusable ping-pong workspaces, sized for one signal tile.
        rows = self.signal_tile * max(self.k_block, self.c_out) * self.p
        self._gather = np.empty((rows, modes), dtype)
        self._fftbuf = np.empty((rows, modes), dtype)
        self._acc = np.empty((self.signal_tile, self.c_out, modes), dtype)
        self._dec = np.empty(self.signal_tile * self.k_block * modes, dtype)

    # -- one signal tile ------------------------------------------------

    def _forward_group(self, x, b0, b1, group):
        """Truncated FFT of one (tile, panel-group) slice.

        Returns ``(nsub, bt, kt, modes)`` — one contiguous slab per
        accumulation panel in the group.  One gather, one FFT execution
        and one decomposition reduce cover the whole group; all three
        are row-independent, so the per-panel slabs hold exactly the
        values the panel-at-a-time path would have produced.
        """
        bt = b1 - b0
        k0, k1 = group[0][0], group[-1][1]
        nsub = len(group)
        kt = group[0][1] - group[0][0]
        p, modes = self.p, self.modes
        rows = bt * nsub * kt * p
        gat = self._gather[:rows]
        if p > 1:
            src = x[b0:b1, k0:k1, :].reshape(bt, nsub, kt, modes, p)
            gat.reshape(nsub, bt, kt, p, modes)[...] = (
                src.transpose(1, 0, 2, 4, 3)
            )
        else:
            src = x[b0:b1, k0:k1, :].reshape(bt, nsub, kt, modes)
            gat.reshape(nsub, bt, kt, modes)[...] = src.transpose(1, 0, 2, 3)
        fbuf = self._fftbuf[:rows]
        self.fwd.execute(gat, out=fbuf)
        if p > 1:
            dec = self._dec[: bt * nsub * kt * modes]
            decomp_reduce(fbuf.reshape(bt * nsub * kt, p, modes), self.wd_f,
                          dec.reshape(bt * nsub * kt, modes),
                          kernels=self.plans.kernels())
            return dec.reshape(nsub, bt, kt, modes)
        return fbuf.reshape(nsub, bt, kt, modes)

    def _epilogue(self, acc, out, b0, b1):
        """Pruned inverse transform of the accumulated C tile."""
        bt = b1 - b0
        p, modes, c_out = self.p, self.modes, self.c_out
        rows = bt * c_out * p
        if p > 1:
            sc = self._gather[:rows]
            expand_mul(acc.reshape(bt * c_out, modes), self.wd_i,
                       sc.reshape(bt * c_out, p, modes),
                       kernels=self.plans.kernels())
            y = self._fftbuf[:rows]
            self.inv.execute(sc, out=y, div_by=float(modes),
                             mul_by=float(modes / self.dim_x))
            out[b0:b1].reshape(bt, c_out, modes, p)[...] = (
                y.reshape(bt, c_out, p, modes).transpose(0, 1, 3, 2)
            )
        else:
            sc = self._gather[:rows]
            sc.reshape(bt, c_out, modes)[...] = acc
            self.inv.execute(
                sc, out=out[b0:b1].reshape(rows, modes),
                div_by=float(modes),
            )

    # -- whole passes ---------------------------------------------------

    def run_fused(self, x: np.ndarray) -> np.ndarray:
        """Stage D: the fully fused FFT -> CGEMM -> iFFT pass."""
        self._ensure_tiles()
        batch = x.shape[0]
        out = np.empty((batch, self.c_out, self.dim_x), self.dtype)
        for b0 in range(0, batch, self.signal_tile):
            b1 = min(b0 + self.signal_tile, batch)
            acc = self._acc[: b1 - b0]
            acc[...] = 0
            for group in self.groups:
                a = self._forward_group(x, b0, b1, group)
                for s, (k0, k1, wp) in enumerate(group):
                    panel_contract(a[s], wp, acc,
                                   kernels=self.plans.kernels())
            self._epilogue(acc, out, b0, b1)
        return out

    def run_fft_gemm(self, x: np.ndarray) -> np.ndarray:
        """Stage B: FFT fused into the k-loop, full batch per panel."""
        batch = x.shape[0]
        acc = np.zeros((batch, self.c_out, self.modes), self.dtype)
        p, modes = self.p, self.modes
        for (k0, k1, wp) in self.panels:
            kt = k1 - k0
            rows = batch * kt * p
            gat = np.empty((rows, modes), self.dtype)
            if p > 1:
                src = x[:, k0:k1, :].reshape(batch, kt, modes, p)
                gat.reshape(batch, kt, p, modes)[...] = src.transpose(0, 1, 3, 2)
            else:
                gat.reshape(batch, kt, modes)[...] = x[:, k0:k1, :]
            fbuf = self.fwd.execute(gat)
            if p > 1:
                a = np.empty((batch, kt, modes), self.dtype)
                decomp_reduce(fbuf.reshape(batch * kt, p, modes), self.wd_f,
                              a.reshape(batch * kt, modes),
                              kernels=self.plans.kernels())
            else:
                a = fbuf.reshape(batch, kt, modes)
            panel_contract(a, wp, acc, kernels=self.plans.kernels())
        return acc

def _project_dc_real(sk: np.ndarray) -> np.ndarray:
    """The half-spectrum irfft->rfft round trip, as a spectrum-resident
    map: a real signal's DC bin is real, so re-analysing the synthesised
    signal projects ``Im(DC)`` away and leaves every other kept bin
    untouched (kept modes never reach the Nyquist bin)."""
    sk = sk.copy()
    sk[..., 0] = sk[..., 0].real
    return sk


def _project_herm_x(sk: np.ndarray, dim_x: int) -> np.ndarray:
    """The symmetric-2D inverse/forward round trip on the kept corner.

    Along Y the C2R/R2C pair projects the y-DC plane; re-analysing that
    now-real plane along X (the first-bins C2C filter) Hermitian-
    symmetrises its X-spectrum — ``v[k] -> (v[k] + conj(v[(N-k) % N]))
    / 2`` over the padded length before truncating back to the kept
    bins.  Every ``my > 0`` bin passes through untouched.
    """
    sk = sk.copy()
    col = sk[..., 0]
    mx = col.shape[-1]
    full = np.zeros(col.shape[:-1] + (dim_x,), dtype=sk.dtype)
    full[..., :mx] = col
    herm = 0.5 * (full + np.conj(np.roll(full[..., ::-1], 1, axis=-1)))
    sk[..., 0] = herm[..., :mx]
    return sk


def _weight_panels(weight: np.ndarray, k_tb: int, dtype: np.dtype):
    """Pre-cast contiguous k-panels of a (C_in, C_out) weight matrix."""
    c_in = weight.shape[0]
    wc = weight.astype(dtype)
    return [
        (k0, min(k0 + k_tb, c_in),
         np.ascontiguousarray(wc[k0:min(k0 + k_tb, c_in)]))
        for k0 in range(0, c_in, k_tb)
    ]


def _panel_groups(panels, panels_per_group: int):
    """Chunk consecutive *same-width* panels into staging groups.

    Groups never mix widths (the single possibly-ragged tail panel ends
    up alone), so one gather/FFT pass per group can view its slab as a
    uniform ``(nsub, bt, kt, ...)`` block.
    """
    groups: list[list] = []
    cur: list = []
    for panel in panels:
        width = panel[1] - panel[0]
        if cur and (
            len(cur) >= panels_per_group
            or width != cur[0][1] - cur[0][0]
        ):
            groups.append(cur)
            cur = []
        cur.append(panel)
    if cur:
        groups.append(cur)
    return groups


def _require_part(plan, modes: int, what: str) -> None:
    """Typed guard: a staged pruned real plan must truncate to exactly
    the executor's kept modes — a disagreement means the truncation the
    CGEMM assumes and the truncation the transform performs have
    drifted apart, which the old slice-after-transform path could only
    mis-slice silently."""
    if plan.part != modes:
        raise PrunedPartMismatchError(
            f"{what}: staged plan truncates to part={plan.part} but the "
            f"executor keeps modes={modes}"
        )


class _StagedSymmetric1D:
    """Everything a symmetric (rfft/irfft) 1-D pass needs, staged once.

    The original-FNO filter convention on real input: truncated half
    spectrum straight from the cached pruned-R2C plan (truncation fused
    into the packed-real decomposition — the discarded bins are never
    recombined), one shared CGEMM over the kept modes (the same
    ``panel_contract`` k-panel accumulation the fused path uses), then
    the pruned C2R plan synthesising from exactly those modes — the
    half spectrum is consumed end-to-end, never Hermitian-completed and
    never materialised beyond the kept bins.
    """

    def __init__(self, weight: np.ndarray, modes: int, dim_x: int,
                 k_tb: int, dtype: np.dtype,
                 plans: PlanCaches | None = None,
                 batch_tile: int = 0):
        _check_length(dim_x)
        if modes > dim_x // 2:
            raise ValueError(
                f"symmetric filtering needs modes <= X/2, got {modes} "
                f"on a length-{dim_x} grid"
            )
        if batch_tile < 0:
            raise ValueError(
                f"batch_tile must be >= 0, got {batch_tile}"
            )
        self.modes = modes
        self.dim_x = dim_x
        self.dtype = dtype
        self.batch_tile = batch_tile  # 0 = whole batch (the default)
        self.c_in, self.c_out = weight.shape
        self.plans = plans if plans is not None else current_plan_caches()
        self.panels = _weight_panels(weight, k_tb, dtype)
        self.rfft = self.plans.pruned_rfft(dim_x, modes, dtype)
        self.irfft = self.plans.pruned_irfft(dim_x, modes, dtype)
        _require_part(self.rfft, modes, "symmetric 1-D forward")
        _require_part(self.irfft, modes, "symmetric 1-D inverse")

    def run(self, x: np.ndarray,
            xk_trunc: np.ndarray | None = None) -> np.ndarray:
        batch, c_in, n = x.shape
        if xk_trunc is not None and xk_trunc.shape[-1] != self.rfft.part:
            raise PrunedPartMismatchError(
                f"xk_trunc carries {xk_trunc.shape[-1]} bins but the "
                f"staged plans truncate to part={self.rfft.part}"
            )
        if xk_trunc is not None and xk_trunc.shape != (
            batch, c_in, self.modes
        ):
            raise ValueError(
                f"xk_trunc must have shape {(batch, c_in, self.modes)}, "
                f"got {xk_trunc.shape}"
            )
        tile = self.batch_tile
        if not tile or tile >= batch:
            return self._run_block(x, xk_trunc)
        # Every stage is row-independent along the batch axis, so batch
        # tiling is a pure working-set knob: the output bits match the
        # untiled pass exactly.
        out = np.empty((batch, self.c_out, n), self.rfft.real_dtype)
        for b0 in range(0, batch, tile):
            b1 = min(b0 + tile, batch)
            out[b0:b1] = self._run_block(
                x[b0:b1],
                None if xk_trunc is None else xk_trunc[b0:b1],
            )
        return out

    def _run_block(self, x: np.ndarray,
                   xk_trunc: np.ndarray | None) -> np.ndarray:
        batch, c_in, n = x.shape
        m = self.modes
        if xk_trunc is None:
            flat = np.ascontiguousarray(
                x, dtype=self.rfft.real_dtype
            ).reshape(batch * c_in, n)
            xk_trunc = self.rfft.execute(flat).reshape(batch, c_in, m)
        acc = np.zeros((batch, self.c_out, m), self.dtype)
        for (k0, k1, wp) in self.panels:
            a = np.ascontiguousarray(
                xk_trunc[:, k0:k1, :m], dtype=self.dtype
            )
            panel_contract(a, wp, acc, kernels=self.plans.kernels())
        out = self.irfft.execute(acc.reshape(batch * self.c_out, m))
        return out.reshape(batch, self.c_out, n)


class _StagedSymmetric2D:
    """Symmetric 2-D pass: pruned R2C along Y (truncation fused into
    the packed-real decomposition), pruned C2C along X, one shared
    CGEMM over the kept corner, then the inverse chain (pruned C2C
    inverse along X, pruned C2R along Y — synthesised straight from the
    kept modes, no Hermitian-half zero-pad)."""

    def __init__(self, weight: np.ndarray, modes_x: int, modes_y: int,
                 dim_x: int, dim_y: int, k_tb: int, dtype: np.dtype,
                 plans: PlanCaches | None = None,
                 batch_tile: int = 0):
        _check_length(dim_x)
        _check_length(dim_y)
        if modes_x > dim_x:
            raise ValueError(
                f"modes_x={modes_x} exceeds spatial size {dim_x}"
            )
        if modes_y > dim_y // 2:
            raise ValueError(
                f"symmetric filtering needs modes_y <= Y/2, got {modes_y} "
                f"on a length-{dim_y} grid"
            )
        if batch_tile < 0:
            raise ValueError(
                f"batch_tile must be >= 0, got {batch_tile}"
            )
        self.modes_x = modes_x
        self.modes_y = modes_y
        self.dim_x = dim_x
        self.dim_y = dim_y
        self.dtype = dtype
        self.batch_tile = batch_tile  # 0 = whole batch (the default)
        self.c_in, self.c_out = weight.shape
        self.plans = plans if plans is not None else current_plan_caches()
        self.panels = _weight_panels(weight, k_tb, dtype)
        self.rfft = self.plans.pruned_rfft(dim_y, modes_y, dtype)
        self.irfft = self.plans.pruned_irfft(dim_y, modes_y, dtype)
        _require_part(self.rfft, modes_y, "symmetric 2-D forward")
        _require_part(self.irfft, modes_y, "symmetric 2-D inverse")

    def run(self, x: np.ndarray,
            xk_trunc: np.ndarray | None = None) -> np.ndarray:
        batch, c_in = x.shape[:2]
        if xk_trunc is not None and xk_trunc.shape[-1] != self.rfft.part:
            raise PrunedPartMismatchError(
                f"xk_trunc carries {xk_trunc.shape[-1]} bins but the "
                f"staged plans truncate to part={self.rfft.part}"
            )
        if xk_trunc is not None and xk_trunc.shape != (
            batch, c_in, self.modes_x, self.modes_y
        ):
            raise ValueError(
                f"xk_trunc must have shape "
                f"{(batch, c_in, self.modes_x, self.modes_y)}, "
                f"got {xk_trunc.shape}"
            )
        tile = self.batch_tile
        if not tile or tile >= batch:
            return self._run_block(x, xk_trunc)
        # Row-independent along the batch axis: tiling changes the
        # working set, never the bits.
        out = np.empty(
            (batch, self.c_out, x.shape[2], x.shape[3]),
            self.rfft.real_dtype,
        )
        for b0 in range(0, batch, tile):
            b1 = min(b0 + tile, batch)
            out[b0:b1] = self._run_block(
                x[b0:b1],
                None if xk_trunc is None else xk_trunc[b0:b1],
            )
        return out

    def _run_block(self, x: np.ndarray,
                   xk_trunc: np.ndarray | None) -> np.ndarray:
        batch, c_in, dim_x, dim_y = x.shape
        mx, my = self.modes_x, self.modes_y
        if xk_trunc is None:
            flat = np.ascontiguousarray(
                x, dtype=self.rfft.real_dtype
            ).reshape(batch * c_in * dim_x, dim_y)
            xk_y = self.rfft.execute(flat).reshape(batch, c_in, dim_x, my)
            xk_trunc = truncated_fft_auto(
                xk_y, mx, axis=2, caches=self.plans,
            )
        a_full = np.ascontiguousarray(
            xk_trunc, dtype=self.dtype
        ).reshape(batch, c_in, mx * my)
        acc = np.zeros((batch, self.c_out, mx * my), self.dtype)
        for (k0, k1, wp) in self.panels:
            a = np.ascontiguousarray(a_full[:, k0:k1])
            panel_contract(a, wp, acc, kernels=self.plans.kernels())
        yk = acc.reshape(batch, self.c_out, mx, my)
        y_x = padded_ifft_auto(yk, dim_x, axis=2, caches=self.plans)
        out = self.irfft.execute(
            np.ascontiguousarray(y_x, dtype=self.dtype).reshape(
                batch * self.c_out * dim_x, my
            )
        )
        return out.reshape(batch, self.c_out, dim_x, dim_y)


# ---------------------------------------------------------------------------
# Tile resolution (the autotune front end of the executors)
# ---------------------------------------------------------------------------

def _resolved_backend(plans: PlanCaches) -> str:
    """The substrate a tune result is keyed on (never ``"auto"``)."""
    return "ckernels" if plans.kernels() is not None else "numpy"


def _normalise_tiles(tiles, k_tb: int, symmetric: bool):
    """Validate a ``tiles=`` argument at construction time.

    Returns ``"default"``, ``"auto"`` or a concrete :class:`Tiles`.
    Concrete pairs are constrained to the bit-identical search space:
    the staging ``k_tb`` must be a whole multiple of the accumulation
    width (symmetric executors fix it there), and only the symmetric
    executors accept ``signal_tile=0`` (whole batch).
    """
    if isinstance(tiles, str):
        if tiles not in TILE_MODES:
            raise ValueError(
                f"unknown tiles mode {tiles!r}; expected one of "
                f"{TILE_MODES} or a (signal_tile, k_tb) pair"
            )
        return tiles
    if isinstance(tiles, (tuple, list)) and len(tiles) == 2:
        st, ktb = int(tiles[0]), int(tiles[1])
        if symmetric:
            if st < 0:
                raise ValueError(
                    f"signal_tile must be >= 0, got {st}"
                )
            if ktb != k_tb:
                raise ValueError(
                    f"symmetric executors accumulate at k_tb={k_tb}; "
                    f"tiles k_tb={ktb} would change the accumulation "
                    f"order (and the bits)"
                )
        else:
            if st < 1:
                raise ValueError(
                    f"signal_tile must be positive, got {st}"
                )
            if ktb < k_tb or ktb % k_tb != 0:
                raise ValueError(
                    f"tiles k_tb={ktb} must be a whole multiple of the "
                    f"accumulation width k_tb={k_tb} (anything else "
                    f"would change the accumulation order and the bits)"
                )
        return Tiles(st, ktb)
    raise ValueError(
        f"tiles must be 'default', 'auto' or a (signal_tile, k_tb) "
        f"pair, got {tiles!r}"
    )


def _autotune_fused_tiles(weight, modes, dim_x, k_tb, default, dtype,
                          plans, tuner, batch, retune=False) -> Tiles:
    """Resolve (tuning on a miss) the fused-dataflow tiles for one
    geometry.  Shared by the 1-D executor and the 2-D executor's
    per-pencil fused stage (which is the same computation on a
    ``batch * modes_x`` pencil batch)."""
    c_in, c_out = weight.shape
    p = dim_x // modes
    dtype = np.dtype(dtype)
    bucket = batch_bucket(batch)
    key = TuneKey("fused1d", (dim_x,), (modes,), c_in, c_out, k_tb,
                  bucket, dtype.name, _resolved_backend(plans))
    cands = candidate_tiles(
        batch=bucket, c_in=c_in, c_out=c_out, modes=modes, p=p,
        k_tb=k_tb, itemsize=dtype.itemsize, default=default,
    )
    pb = probe_batch(bucket)
    probe: dict = {}

    def measure(tiles: Tiles) -> float:
        if "x" not in probe:  # built once, only if a search runs
            probe["x"] = probe_signal((pb, c_in, dim_x), dtype)
        staged = _StagedFused1D(
            weight, modes, dim_x, k_tb, tiles.signal_tile, dtype,
            plans=plans, k_block=tiles.k_tb,
        )
        return measure_seconds(lambda: staged.run_fused(probe["x"]))

    return tuner.tiles_for(
        key, default, cands, measure,
        is_valid=lambda t: (
            t.signal_tile >= 1 and t.k_tb >= k_tb and t.k_tb % k_tb == 0
        ),
        retune=retune,
    )


def _autotune_symmetric_tiles(kind, weight, modes, spatial, k_tb, dtype,
                              plans, tuner, batch, build,
                              retune=False) -> Tiles:
    """Resolve the batch tile for a symmetric (half-spectrum) executor.

    Only ``signal_tile`` is searched (0 = whole batch, the seed
    behaviour); the accumulation width is pinned, so every candidate is
    byte-identical.  ``build(batch_tile)`` constructs the staged pass to
    time; the probe input is real, matching the symmetric contract.
    """
    c_in, c_out = weight.shape
    dtype = np.dtype(dtype)
    bucket = batch_bucket(batch)
    key = TuneKey(kind, tuple(spatial), tuple(modes), c_in, c_out,
                  k_tb, bucket, dtype.name, _resolved_backend(plans))
    eff_modes = 1
    for m in modes:
        eff_modes *= m
    cands = candidate_tiles(
        batch=bucket, c_in=c_in, c_out=c_out, modes=eff_modes, p=1,
        k_tb=k_tb, itemsize=dtype.itemsize, allow_untiled=True,
        k_multipliers=(1,), default=Tiles(0, k_tb),
    )
    pb = probe_batch(bucket)
    probe: dict = {}

    def measure(tiles: Tiles) -> float:
        if "x" not in probe:
            real = np.dtype(np.float32 if dtype == np.complex64
                            else np.float64)
            probe["x"] = probe_signal((pb, c_in, *spatial), real)
        staged = build(tiles.signal_tile)
        return measure_seconds(lambda: staged.run(probe["x"]))

    return tuner.tiles_for(
        key, Tiles(0, k_tb), cands, measure,
        is_valid=lambda t: t.signal_tile >= 0 and t.k_tb == k_tb,
        retune=retune,
    )


class CompiledSpectralConv1D:
    """Reusable executor for the fused 1-D spectral convolution.

    Build once per weight matrix; call with any ``(batch, C_in, X)``
    input.  Staging (weight casts, FFT plans, workspaces) is cached per
    (working dtype, X); outputs are byte-identical to
    :func:`repro.core.legacy.fused_fft_gemm_ifft_1d`.

    ``symmetric=True`` selects the original FNO's rfft/irfft filter
    convention instead of the paper's first-bins C2C filter: real input,
    half spectrum via the cached packed-real plans, Hermitian-mirrored
    kept modes — a genuine real->real low-pass operator returning a real
    array.  Requires ``modes <= X/2``.

    ``tiles`` selects the tiling: ``"default"`` (the constructor's
    ``signal_tile``/``k_tb``, the seed behaviour), a concrete
    ``(signal_tile, k_tb)`` pair, or ``"auto"`` — resolve the tiles per
    (geometry, dtype, backend, batch bucket) through ``tuner`` (the
    process default when None), timing a small candidate grid on first
    use and recalling the winner from the in-memory/persistent tune
    stores afterwards.  Every legal tiling is **byte-identical**: tiles
    move operands, never arithmetic.
    """

    ndim = 1

    def __init__(self, weight: np.ndarray, modes: int,
                 k_tb: int = _DEFAULT_K_TB,
                 signal_tile: int = _DEFAULT_SIGNAL_TILE,
                 symmetric: bool = False,
                 plans: PlanCaches | None = None,
                 tiles="default",
                 tuner: Tuner | None = None):
        weight = np.asarray(weight)
        if weight.ndim != 2:
            raise ValueError(
                f"weight must be (C_in, C_out), got {weight.shape}"
            )
        if modes < 1:
            raise ValueError(f"modes must be positive, got {modes}")
        self.weight = weight
        self.modes = modes
        self.k_tb = k_tb
        self.signal_tile = signal_tile
        self.symmetric = symmetric
        self.tiles = _normalise_tiles(tiles, k_tb, symmetric)
        self._tuner = tuner
        self._plans = plans
        self._staged: dict[tuple, object] = {}
        self._spec_panels: dict = {}

    def _plan_caches(self) -> PlanCaches:
        return self._plans if self._plans is not None else current_plan_caches()

    def _spectrum_panels(self, dtype: np.dtype):
        panels = self._spec_panels.get(dtype)
        if panels is None:
            panels = _weight_panels(self.weight, self.k_tb, dtype)
            self._spec_panels[dtype] = panels
        return panels

    # -- spectrum-in / spectrum-out entry points (rollout serving) ------

    def forward_spectrum(self, x: np.ndarray) -> np.ndarray:
        """Truncated spectrum of ``x`` — the state a spectrum-resident
        rollout (:meth:`repro.api.Session.rollout`) keeps between steps.

        ``inverse_spectrum(step_spectrum(forward_spectrum(x)), X)``
        computes the same convolution as ``self(x)`` without paying the
        inverse/forward transform pair between consecutive steps.
        """
        x = np.asarray(x)
        _check_inputs(x, self.weight, 3)
        dim_x = x.shape[2]
        if not (1 <= self.modes <= dim_x):
            raise ValueError(
                f"modes must be in [1, {dim_x}], got {self.modes}"
            )
        dtype = complex_dtype_for(x.dtype)
        plans = self._plan_caches()
        if self.symmetric:
            if np.iscomplexobj(x):
                raise ValueError("symmetric executor expects real input")
            batch, c_in, n = x.shape
            rfft = plans.pruned_rfft(dim_x, self.modes, dtype)
            flat = np.ascontiguousarray(
                x, dtype=rfft.real_dtype
            ).reshape(batch * c_in, n)
            return rfft.execute(flat).reshape(batch, c_in, self.modes)
        return truncated_fft_auto(
            x.astype(dtype, copy=False), self.modes, axis=2, caches=plans
        )

    def step_spectrum(self, sk: np.ndarray) -> np.ndarray:
        """One spectral-conv application entirely in the spectrum: the
        k-panel CGEMM over the kept modes, no transforms.

        ``sk`` is a ``(batch, C_in, modes)`` truncated spectrum; returns
        the ``(batch, C_out, modes)`` spectrum of the convolved signal —
        exactly the quantity the fused pass accumulates before its
        inverse transform.
        """
        sk = np.asarray(sk)
        c_in, c_out = self.weight.shape
        if sk.ndim != 3 or sk.shape[1] != c_in or sk.shape[2] != self.modes:
            raise ValueError(
                f"expected spectrum of shape (batch, {c_in}, "
                f"{self.modes}), got {sk.shape}"
            )
        dtype = complex_dtype_for(sk.dtype)
        plans = self._plan_caches()
        acc = np.zeros((sk.shape[0], c_out, self.modes), dtype)
        for (k0, k1, wp) in self._spectrum_panels(dtype):
            a = np.ascontiguousarray(sk[:, k0:k1], dtype=dtype)
            panel_contract(a, wp, acc, kernels=plans.kernels())
        return acc

    def inverse_spectrum(self, sk: np.ndarray, spatial) -> np.ndarray:
        """Spatial-domain signal of a spectral state: the pruned
        zero-padded inverse (complex output, like the fused pass), or —
        symmetric — the C2R half-spectrum inverse (real output)."""
        sk = np.asarray(sk)
        dim_x = (int(spatial[0]) if isinstance(spatial, (tuple, list))
                 else int(spatial))
        dtype = complex_dtype_for(sk.dtype)
        plans = self._plan_caches()
        if self.symmetric:
            if self.modes > dim_x // 2:
                raise ValueError(
                    f"symmetric filtering needs modes <= X/2, got "
                    f"{self.modes} on a length-{dim_x} grid"
                )
            batch, c = sk.shape[0], sk.shape[1]
            irfft = plans.pruned_irfft(dim_x, self.modes, dtype)
            flat = np.ascontiguousarray(sk, dtype=dtype).reshape(
                batch * c, sk.shape[2]
            )
            out = irfft.execute(flat)
            return out.reshape(batch, c, dim_x)
        return padded_ifft_auto(
            sk.astype(dtype, copy=False), dim_x, axis=2, caches=plans
        )

    def reanalyze_spectrum(self, sk: np.ndarray, spatial=None) -> np.ndarray:
        """The output spectrum as the *next* step's forward analysis
        would see it — the exact linear map the skipped inverse/forward
        transform pair applies between rollout steps.  Identity for the
        paper's C2C convention (complex output, nothing discarded); the
        symmetric convention projects the DC bin real."""
        if not self.symmetric:
            return sk
        return _project_dc_real(np.asarray(sk))

    def _tiles_for(self, dtype: np.dtype, dim_x: int, batch: int,
                   retune: bool = False) -> Tiles:
        if self.tiles == "default":
            return (Tiles(0, self.k_tb) if self.symmetric
                    else Tiles(self.signal_tile, self.k_tb))
        if isinstance(self.tiles, Tiles):
            return self.tiles
        tuner = self._tuner if self._tuner is not None else default_tuner()
        plans = self._plan_caches()
        if self.symmetric:
            return _autotune_symmetric_tiles(
                "sym1d", self.weight, (self.modes,), (dim_x,), self.k_tb,
                dtype, plans, tuner, batch,
                build=lambda bt: _StagedSymmetric1D(
                    self.weight, self.modes, dim_x, self.k_tb, dtype,
                    plans=plans, batch_tile=bt,
                ),
                retune=retune,
            )
        return _autotune_fused_tiles(
            self.weight, self.modes, dim_x, self.k_tb,
            Tiles(self.signal_tile, self.k_tb), dtype, plans, tuner, batch,
            retune=retune,
        )

    def resolve_tiles(self, batch: int, spatial,
                      dtype=np.float32, retune: bool = False) -> Tiles:
        """Resolve (and for ``tiles="auto"`` tune, on a miss) the tiling
        this executor will use for one ``(batch, C_in, X)`` geometry —
        the warmup hook :meth:`repro.api.Session.warmup` calls so
        serving never pays the tune inline.  ``retune`` forces a fresh
        timed search, overwriting memo and store."""
        dim_x = spatial[0] if isinstance(spatial, (tuple, list)) else spatial
        return self._tiles_for(
            complex_dtype_for(dtype), int(dim_x), batch, retune=retune
        )

    def warm_tiles(self, batch: int, spatial, dtype=np.float32) -> int:
        """Pre-tune *every* batch bucket a stream of up to ``batch``
        signals can resolve to (micro-batching serves smaller
        concatenations than the nominal problem batch), so no serving
        call ever runs the timed search inline.  Returns the number of
        resolutions; 0 unless ``tiles="auto"``."""
        if self.tiles != "auto":
            return 0
        dim_x = spatial[0] if isinstance(spatial, (tuple, list)) else spatial
        cdt = complex_dtype_for(dtype)
        buckets = bucket_ladder(batch)
        for bucket in buckets:
            self._tiles_for(cdt, int(dim_x), bucket)
        return len(buckets)

    def _stage_for(self, dtype: np.dtype, dim_x: int, tiles: Tiles):
        key = (dtype, dim_x, tiles)
        staged = self._staged.get(key)
        if staged is None:
            if self.symmetric:
                staged = _StagedSymmetric1D(
                    self.weight, self.modes, dim_x, self.k_tb, dtype,
                    plans=self._plan_caches(),
                    batch_tile=tiles.signal_tile,
                )
            else:
                staged = _StagedFused1D(
                    self.weight, self.modes, dim_x,
                    self.k_tb, tiles.signal_tile, dtype,
                    plans=self._plan_caches(), k_block=tiles.k_tb,
                )
            self._staged[key] = staged
        return staged

    def __call__(self, x: np.ndarray,
                 xk_trunc: np.ndarray | None = None) -> np.ndarray:
        """Run the convolution.  ``xk_trunc`` (symmetric mode only) is an
        optional precomputed truncated half spectrum ``(batch, C_in,
        modes)`` — callers that already hold it (the training layers
        cache it for backward) skip the forward R2C pass."""
        x = np.asarray(x)
        _check_inputs(x, self.weight, 3)
        dim_x = x.shape[2]
        if not (1 <= self.modes <= dim_x):
            raise ValueError(
                f"modes must be in [1, {dim_x}], got {self.modes}"
            )
        if self.symmetric and np.iscomplexobj(x):
            raise ValueError("symmetric executor expects real input")
        if xk_trunc is not None and not self.symmetric:
            raise ValueError("xk_trunc applies to symmetric executors only")
        dtype = complex_dtype_for(x.dtype)
        tiles = self._tiles_for(dtype, dim_x, max(x.shape[0], 1))
        staged = self._stage_for(dtype, dim_x, tiles)
        if self.symmetric:
            return staged.run(x, xk_trunc)
        return staged.run_fused(x)


class CompiledSpectralConv2D:
    """Reusable executor for the fused 2-D spectral convolution.

    The width FFT and width inverse run through the cached pruned plans;
    the fused height pass reuses the 1-D tile machinery over the
    (batch x kept-row) pencils.  Byte-identical to
    :func:`repro.core.legacy.fused_fft_gemm_ifft_2d`.

    ``symmetric=True`` selects the half-spectrum convention on real
    input: R2C along Y (packed-real plans), the paper's first-bins C2C
    filter along X, and a real-valued output via the C2R inverse.
    Requires ``modes_y <= Y/2``.

    ``tiles`` works exactly as on :class:`CompiledSpectralConv1D`; the
    fused (non-symmetric) dataflow applies it to the per-pencil fused
    stage along Y (a ``batch * modes_x`` pencil batch of the 1-D
    computation, sharing its tune entries), the symmetric dataflow to
    the whole-pass batch tile.
    """

    ndim = 2

    def __init__(self, weight: np.ndarray, modes_x: int, modes_y: int,
                 k_tb: int = _DEFAULT_K_TB,
                 signal_tile: int = _DEFAULT_SIGNAL_TILE,
                 symmetric: bool = False,
                 plans: PlanCaches | None = None,
                 tiles="default",
                 tuner: Tuner | None = None):
        weight = np.asarray(weight)
        if weight.ndim != 2:
            raise ValueError(
                f"weight must be (C_in, C_out), got {weight.shape}"
            )
        if modes_x < 1 or modes_y < 1:
            raise ValueError(
                f"modes must be positive, got ({modes_x}, {modes_y})"
            )
        self.weight = weight
        self.modes_x = modes_x
        self.modes_y = modes_y
        self.k_tb = k_tb
        self.signal_tile = signal_tile
        self.symmetric = symmetric
        self.tiles = _normalise_tiles(tiles, k_tb, symmetric)
        self._tuner = tuner
        self._plans = plans
        self._staged: dict[tuple, object] = {}
        self._spec_panels: dict = {}

    def _plan_caches(self) -> PlanCaches:
        return self._plans if self._plans is not None else current_plan_caches()

    def _spectrum_panels(self, dtype: np.dtype):
        panels = self._spec_panels.get(dtype)
        if panels is None:
            panels = _weight_panels(self.weight, self.k_tb, dtype)
            self._spec_panels[dtype] = panels
        return panels

    # -- spectrum-in / spectrum-out entry points (rollout serving) ------

    def forward_spectrum(self, x: np.ndarray) -> np.ndarray:
        """Truncated ``(batch, C_in, modes_x, modes_y)`` spectrum corner
        of ``x`` — the rollout state (see
        :meth:`CompiledSpectralConv1D.forward_spectrum`)."""
        x = np.asarray(x)
        _check_inputs(x, self.weight, 4)
        batch, c_in, dim_x, dim_y = x.shape
        if not (1 <= self.modes_x <= dim_x) or not (
            1 <= self.modes_y <= dim_y
        ):
            raise ValueError(
                f"modes ({self.modes_x}, {self.modes_y}) out of range "
                f"for ({dim_x}, {dim_y})"
            )
        dtype = complex_dtype_for(x.dtype)
        plans = self._plan_caches()
        if self.symmetric:
            if np.iscomplexobj(x):
                raise ValueError("symmetric executor expects real input")
            rfft = plans.pruned_rfft(dim_y, self.modes_y, dtype)
            flat = np.ascontiguousarray(
                x, dtype=rfft.real_dtype
            ).reshape(batch * c_in * dim_x, dim_y)
            xk_y = rfft.execute(flat).reshape(
                batch, c_in, dim_x, self.modes_y
            )
            return truncated_fft_auto(
                xk_y, self.modes_x, axis=2, caches=plans,
            )
        xk_x = truncated_fft_auto(
            x.astype(dtype, copy=False), self.modes_x, axis=2, caches=plans
        )
        return truncated_fft_auto(
            xk_x, self.modes_y, axis=3, caches=plans
        )

    def step_spectrum(self, sk: np.ndarray) -> np.ndarray:
        """One spectral-conv application entirely in the spectrum: the
        shared CGEMM over the flattened kept corner, no transforms."""
        sk = np.asarray(sk)
        c_in, c_out = self.weight.shape
        if sk.ndim != 4 or sk.shape[1:] != (
            c_in, self.modes_x, self.modes_y
        ):
            raise ValueError(
                f"expected spectrum of shape (batch, {c_in}, "
                f"{self.modes_x}, {self.modes_y}), got {sk.shape}"
            )
        dtype = complex_dtype_for(sk.dtype)
        plans = self._plan_caches()
        batch = sk.shape[0]
        m = self.modes_x * self.modes_y
        flat = np.ascontiguousarray(sk, dtype=dtype).reshape(batch, c_in, m)
        acc = np.zeros((batch, c_out, m), dtype)
        for (k0, k1, wp) in self._spectrum_panels(dtype):
            a = np.ascontiguousarray(flat[:, k0:k1])
            panel_contract(a, wp, acc, kernels=plans.kernels())
        return acc.reshape(batch, c_out, self.modes_x, self.modes_y)

    def inverse_spectrum(self, sk: np.ndarray, spatial) -> np.ndarray:
        """Spatial-domain signal of a spectral state (complex output;
        symmetric executors return the real C2R inverse)."""
        sk = np.asarray(sk)
        dim_x, dim_y = int(spatial[0]), int(spatial[1])
        dtype = complex_dtype_for(sk.dtype)
        plans = self._plan_caches()
        if self.symmetric:
            if self.modes_y > dim_y // 2:
                raise ValueError(
                    f"symmetric filtering needs modes_y <= Y/2, got "
                    f"{self.modes_y} on a length-{dim_y} grid"
                )
            batch, c = sk.shape[0], sk.shape[1]
            y_x = padded_ifft_auto(
                np.ascontiguousarray(sk, dtype=dtype), dim_x, axis=2,
                caches=plans,
            )
            irfft = plans.pruned_irfft(dim_y, self.modes_y, dtype)
            out = irfft.execute(
                np.ascontiguousarray(y_x, dtype=dtype).reshape(
                    batch * c * dim_x, y_x.shape[-1]
                )
            )
            return out.reshape(batch, c, dim_x, dim_y)
        y_y = padded_ifft_auto(
            sk.astype(dtype, copy=False), dim_y, axis=3, caches=plans
        )
        return padded_ifft_auto(y_y, dim_x, axis=2, caches=plans)

    def reanalyze_spectrum(self, sk: np.ndarray, spatial=None) -> np.ndarray:
        """The output spectrum as the next step's forward analysis would
        see it (see :meth:`CompiledSpectralConv1D.reanalyze_spectrum`).
        The symmetric convention needs ``spatial`` — the Hermitian
        projection of the y-DC column depends on the padded X length."""
        if not self.symmetric:
            return sk
        if spatial is None:
            raise ValueError(
                "symmetric reanalysis needs the spatial shape (dim_x, dim_y)"
            )
        return _project_herm_x(np.asarray(sk), int(spatial[0]))

    def _tiles_for(self, dtype: np.dtype, dim_x: int, dim_y: int,
                   batch: int, retune: bool = False) -> Tiles:
        if self.tiles == "default":
            return (Tiles(0, self.k_tb) if self.symmetric
                    else Tiles(self.signal_tile, self.k_tb))
        if isinstance(self.tiles, Tiles):
            return self.tiles
        tuner = self._tuner if self._tuner is not None else default_tuner()
        plans = self._plan_caches()
        if self.symmetric:
            return _autotune_symmetric_tiles(
                "sym2d", self.weight, (self.modes_x, self.modes_y),
                (dim_x, dim_y), self.k_tb, dtype, plans, tuner, batch,
                build=lambda bt: _StagedSymmetric2D(
                    self.weight, self.modes_x, self.modes_y,
                    dim_x, dim_y, self.k_tb, dtype, plans=plans,
                    batch_tile=bt,
                ),
                retune=retune,
            )
        # The fused stage runs along Y over (batch * modes_x) pencils —
        # tune exactly that 1-D computation.
        return _autotune_fused_tiles(
            self.weight, self.modes_y, dim_y, self.k_tb,
            Tiles(self.signal_tile, self.k_tb), dtype, plans, tuner,
            batch * self.modes_x,
            retune=retune,
        )

    def resolve_tiles(self, batch: int, spatial,
                      dtype=np.float32, retune: bool = False) -> Tiles:
        """Resolve (and for ``tiles="auto"`` tune, on a miss) the tiling
        for one ``(batch, C_in, X, Y)`` geometry — the
        :meth:`repro.api.Session.warmup` hook.  ``retune`` forces a
        fresh timed search."""
        dim_x, dim_y = (int(spatial[0]), int(spatial[1]))
        return self._tiles_for(
            complex_dtype_for(dtype), dim_x, dim_y, batch, retune=retune
        )

    def warm_tiles(self, batch: int, spatial, dtype=np.float32) -> int:
        """Pre-tune every batch bucket reachable by a stream of up to
        ``batch`` requests (see :meth:`CompiledSpectralConv1D.warm_tiles`).
        The fused dataflow enumerates *pencil*-batch buckets — the fused
        stage runs over ``batch * modes_x`` pencils, and smaller
        micro-batches land in smaller pencil buckets."""
        if self.tiles != "auto":
            return 0
        dim_x, dim_y = (int(spatial[0]), int(spatial[1]))
        cdt = complex_dtype_for(dtype)
        if self.symmetric:
            buckets = bucket_ladder(batch)
            for bucket in buckets:
                self._tiles_for(cdt, dim_x, dim_y, bucket)
            return len(buckets)
        tuner = self._tuner if self._tuner is not None else default_tuner()
        plans = self._plan_caches()
        buckets = bucket_ladder(batch * self.modes_x)
        for bucket in buckets:
            _autotune_fused_tiles(
                self.weight, self.modes_y, dim_y, self.k_tb,
                Tiles(self.signal_tile, self.k_tb), cdt, plans, tuner,
                bucket,
            )
        return len(buckets)

    def _stage_for(self, dtype: np.dtype, dim_y: int,
                   tiles: Tiles) -> _StagedFused1D:
        key = (dtype, dim_y, tiles)
        staged = self._staged.get(key)
        if staged is None:
            staged = _StagedFused1D(
                self.weight, self.modes_y, dim_y,
                self.k_tb, tiles.signal_tile, dtype,
                plans=self._plan_caches(), k_block=tiles.k_tb,
            )
            self._staged[key] = staged
        return staged

    def _stage_symmetric(self, dtype: np.dtype, dim_x: int,
                         dim_y: int, tiles: Tiles) -> _StagedSymmetric2D:
        key = (dtype, dim_x, dim_y, tiles, "sym")
        staged = self._staged.get(key)
        if staged is None:
            staged = _StagedSymmetric2D(
                self.weight, self.modes_x, self.modes_y,
                dim_x, dim_y, self.k_tb, dtype,
                plans=self._plan_caches(),
                batch_tile=tiles.signal_tile,
            )
            self._staged[key] = staged
        return staged

    def __call__(self, x: np.ndarray,
                 xk_trunc: np.ndarray | None = None) -> np.ndarray:
        """Run the convolution.  ``xk_trunc`` (symmetric mode only) is an
        optional precomputed truncated spectrum corner ``(batch, C_in,
        modes_x, modes_y)``; callers that already hold it skip the
        forward transforms."""
        x = np.asarray(x)
        _check_inputs(x, self.weight, 4)
        batch, c_in, dim_x, dim_y = x.shape
        if not (1 <= self.modes_x <= dim_x) or not (1 <= self.modes_y <= dim_y):
            raise ValueError(
                f"modes ({self.modes_x}, {self.modes_y}) out of range for "
                f"({dim_x}, {dim_y})"
            )
        if xk_trunc is not None and not self.symmetric:
            raise ValueError("xk_trunc applies to symmetric executors only")
        dtype = complex_dtype_for(x.dtype)
        tiles = self._tiles_for(dtype, dim_x, dim_y, max(batch, 1))
        if self.symmetric:
            if np.iscomplexobj(x):
                raise ValueError("symmetric executor expects real input")
            return self._stage_symmetric(
                dtype, dim_x, dim_y, tiles
            ).run(x, xk_trunc)
        c_out = self.weight.shape[1]
        plans = self._plan_caches()

        # Stage 1: width FFT with built-in truncation.
        xk_x = truncated_fft(
            x.astype(dtype, copy=False), self.modes_x, axis=2, caches=plans
        )

        # Fused stage along Y over (batch, kept-x-row) pencils.
        pencils = xk_x.transpose(0, 2, 1, 3).reshape(
            batch * self.modes_x, c_in, dim_y
        )
        staged = self._stage_for(dtype, dim_y, tiles)
        out_pencils = staged.run_fused(pencils)

        yk_x = out_pencils.reshape(
            batch, self.modes_x, c_out, dim_y
        ).transpose(0, 2, 1, 3)
        # Final stage: width iFFT with built-in zero padding.
        return truncated_ifft(yk_x, dim_x, axis=2, caches=plans)


def compile_spectral_conv(
    weight: np.ndarray,
    modes: int | tuple[int, ...],
    k_tb: int = _DEFAULT_K_TB,
    signal_tile: int = _DEFAULT_SIGNAL_TILE,
    symmetric: bool = False,
    plans: PlanCaches | None = None,
    tiles="default",
    tuner: Tuner | None = None,
):
    """Build the executor matching ``modes``' dimensionality.

    An int (or 1-tuple) of kept modes gives a
    :class:`CompiledSpectralConv1D`; a 2-tuple gives a
    :class:`CompiledSpectralConv2D`.  ``symmetric=True`` selects the
    rfft/irfft half-spectrum convention (real input, real output).
    ``plans`` pins the executor to one plan-cache set (a session's);
    ``None`` resolves the set active on the staging thread.
    ``tiles``/``tuner`` select the tiling (``"auto"`` autotunes per
    geometry — byte-identical output, see
    :mod:`repro.core.autotune`).
    """
    if isinstance(modes, tuple):
        if len(modes) == 1:
            return CompiledSpectralConv1D(
                weight, modes[0], k_tb, signal_tile, symmetric=symmetric,
                plans=plans, tiles=tiles, tuner=tuner,
            )
        if len(modes) == 2:
            return CompiledSpectralConv2D(
                weight, modes[0], modes[1], k_tb, signal_tile,
                symmetric=symmetric, plans=plans, tiles=tiles, tuner=tuner,
            )
        raise ValueError(
            f"modes must have 1 or 2 entries, got {len(modes)}"
        )
    return CompiledSpectralConv1D(
        weight, int(modes), k_tb, signal_tile, symmetric=symmetric,
        plans=plans, tiles=tiles, tuner=tuner,
    )
