"""Compiled spectral-convolution executors: build once, execute many.

The legacy fused loops (:mod:`repro.core.legacy`) re-cast the same
weight panel on every tile of every signal block and re-staged their FFT
setup per call.  A :class:`CompiledSpectralConv1D` /
:class:`CompiledSpectralConv2D` executor does all of that at *build*
time — weights cast once and pre-sliced into contiguous k-panels, FFT
plans resolved from the global cache (:mod:`repro.fft.compiled`),
decomposition twiddles pre-cast, tile workspaces allocated — so each
execution runs only the k-loop arithmetic.  Outputs are byte-identical
to the legacy loops (property-tested): the executors replay the same
tile/panel accumulation order, so not a single floating-point operation
changes, only where the operands live.

The functional API (:mod:`repro.core.fused`) builds a throwaway executor
per call, which still hoists every redundant cast out of the loops; hold
an executor (or get one from ``repro.api.plan(...).compile_executor``)
to amortise the staging across calls.

Executors own mutable tile workspaces and are **not** thread-safe; share
one per thread (the plan caches underneath serialise themselves).

Every executor resolves its FFT/rfft plans from one
:class:`repro.fft.compiled.PlanCaches` set — the one passed as
``plans=``, else the set active on the building thread
(:func:`repro.fft.compiled.current_plan_caches`).  A
:class:`repro.api.Session` passes its own set, so pooled executors
carry the session's backend and never share workspaces with other
sessions; staging captures the set once per geometry.
"""

from __future__ import annotations

import numpy as np

from repro.core.dtypes import complex_dtype_for
from repro.fft.compiled import (
    PlanCaches,
    current_plan_caches,
    decomp_reduce,
    expand_mul,
    panel_contract,
)
from repro.fft.pruned import (
    _validate_split,
    padded_ifft_auto,
    truncated_fft,
    truncated_fft_auto,
    truncated_ifft,
)
from repro.fft.stockham import _check_length
from repro.fft.twiddle import decomposition_twiddles

__all__ = [
    "CompiledSpectralConv1D",
    "CompiledSpectralConv2D",
    "compile_spectral_conv",
]

_DEFAULT_K_TB = 8
_DEFAULT_SIGNAL_TILE = 16


def _check_inputs(x: np.ndarray, weight: np.ndarray, ndim: int) -> None:
    if x.ndim != ndim:
        raise ValueError(f"expected {ndim}-D input, got shape {x.shape}")
    if weight.ndim != 2:
        raise ValueError(f"weight must be (C_in, C_out), got {weight.shape}")
    if weight.shape[0] != x.shape[1]:
        raise ValueError(
            f"weight C_in={weight.shape[0]} != input channels {x.shape[1]}"
        )


class _StagedFused1D:
    """Everything a fused 1-D pass needs, staged for one (dtype, dim_x).

    Replays the exact legacy dataflow (tile loop -> k-loop -> epilogue)
    with all per-call setup hoisted: pre-cast weight panels, cached FFT
    plans for the kept-mode length, pre-cast decomposition twiddles, and
    tile-sized reusable workspaces.
    """

    def __init__(self, weight: np.ndarray, modes: int, dim_x: int,
                 k_tb: int, signal_tile: int, dtype: np.dtype,
                 plans: PlanCaches | None = None):
        # Same split validation (and messages) the first inner
        # truncated_fft of the legacy loop would have raised.
        if modes == dim_x:
            _check_length(dim_x)
        else:
            _validate_split(dim_x, modes, "n_keep")
        c_in, c_out = weight.shape
        self.modes = modes
        self.dim_x = dim_x
        self.k_tb = k_tb
        self.signal_tile = signal_tile
        self.dtype = dtype
        self.c_in = c_in
        self.c_out = c_out
        self.p = dim_x // modes
        self.plans = plans if plans is not None else current_plan_caches()
        # the hoisted weight cast: once at staging, not per tile
        self.panels = _weight_panels(weight, k_tb, dtype)
        self.fwd = self.plans.fft(modes, dtype, inverse=False)
        if self.p > 1:
            self.wd_f = np.ascontiguousarray(
                decomposition_twiddles(dim_x, self.p, modes).astype(dtype)
            )
        else:
            self.wd_f = None
        # The inverse side and the tile workspaces are staged lazily:
        # the forward-only stage-B pass never touches them.
        self.inv = None
        self.wd_i = None
        self._gather = None

    def _ensure_tiles(self) -> None:
        """Stage the epilogue tables and per-tile workspaces (lazily:
        only the fully fused pass needs them)."""
        if self._gather is not None:
            return
        dtype, modes = self.dtype, self.modes
        self.inv = self.plans.fft(modes, dtype, inverse=True)
        if self.p > 1:
            self.wd_i = np.ascontiguousarray(
                decomposition_twiddles(
                    self.dim_x, self.p, modes, inverse=True
                ).astype(dtype)
            )
        # Reusable ping-pong workspaces, sized for one signal tile.
        rows = self.signal_tile * max(self.k_tb, self.c_out) * self.p
        self._gather = np.empty((rows, modes), dtype)
        self._fftbuf = np.empty((rows, modes), dtype)
        self._acc = np.empty((self.signal_tile, self.c_out, modes), dtype)
        self._dec = np.empty(self.signal_tile * self.k_tb * modes, dtype)

    # -- one signal tile ------------------------------------------------

    def _forward_panel(self, x, b0, b1, k0, k1, kt):
        """Truncated FFT of one (tile, panel) slice -> (bt, kt, modes)."""
        bt = b1 - b0
        p, modes = self.p, self.modes
        rows = bt * kt * p
        gat = self._gather[:rows]
        if p > 1:
            src = x[b0:b1, k0:k1, :].reshape(bt, kt, modes, p)
            gat.reshape(bt, kt, p, modes)[...] = src.transpose(0, 1, 3, 2)
        else:
            gat.reshape(bt, kt, modes)[...] = x[b0:b1, k0:k1, :]
        fbuf = self._fftbuf[:rows]
        self.fwd.execute(gat, out=fbuf)
        if p > 1:
            dec = self._dec[: bt * kt * modes].reshape(bt, kt, modes)
            decomp_reduce(fbuf.reshape(bt * kt, p, modes), self.wd_f,
                          dec.reshape(bt * kt, modes),
                          kernels=self.plans.kernels())
            return dec
        return fbuf.reshape(bt, kt, modes)

    def _epilogue(self, acc, out, b0, b1):
        """Pruned inverse transform of the accumulated C tile."""
        bt = b1 - b0
        p, modes, c_out = self.p, self.modes, self.c_out
        rows = bt * c_out * p
        if p > 1:
            sc = self._gather[:rows]
            expand_mul(acc.reshape(bt * c_out, modes), self.wd_i,
                       sc.reshape(bt * c_out, p, modes),
                       kernels=self.plans.kernels())
            y = self._fftbuf[:rows]
            self.inv.execute(sc, out=y, div_by=float(modes),
                             mul_by=float(modes / self.dim_x))
            out[b0:b1].reshape(bt, c_out, modes, p)[...] = (
                y.reshape(bt, c_out, p, modes).transpose(0, 1, 3, 2)
            )
        else:
            sc = self._gather[:rows]
            sc.reshape(bt, c_out, modes)[...] = acc
            self.inv.execute(
                sc, out=out[b0:b1].reshape(rows, modes),
                div_by=float(modes),
            )

    # -- whole passes ---------------------------------------------------

    def run_fused(self, x: np.ndarray) -> np.ndarray:
        """Stage D: the fully fused FFT -> CGEMM -> iFFT pass."""
        self._ensure_tiles()
        batch = x.shape[0]
        out = np.empty((batch, self.c_out, self.dim_x), self.dtype)
        for b0 in range(0, batch, self.signal_tile):
            b1 = min(b0 + self.signal_tile, batch)
            acc = self._acc[: b1 - b0]
            acc[...] = 0
            for (k0, k1, wp) in self.panels:
                a = self._forward_panel(x, b0, b1, k0, k1, k1 - k0)
                panel_contract(a, wp, acc, kernels=self.plans.kernels())
            self._epilogue(acc, out, b0, b1)
        return out

    def run_fft_gemm(self, x: np.ndarray) -> np.ndarray:
        """Stage B: FFT fused into the k-loop, full batch per panel."""
        batch = x.shape[0]
        acc = np.zeros((batch, self.c_out, self.modes), self.dtype)
        p, modes = self.p, self.modes
        for (k0, k1, wp) in self.panels:
            kt = k1 - k0
            rows = batch * kt * p
            gat = np.empty((rows, modes), self.dtype)
            if p > 1:
                src = x[:, k0:k1, :].reshape(batch, kt, modes, p)
                gat.reshape(batch, kt, p, modes)[...] = src.transpose(0, 1, 3, 2)
            else:
                gat.reshape(batch, kt, modes)[...] = x[:, k0:k1, :]
            fbuf = self.fwd.execute(gat)
            if p > 1:
                a = np.empty((batch, kt, modes), self.dtype)
                decomp_reduce(fbuf.reshape(batch * kt, p, modes), self.wd_f,
                              a.reshape(batch * kt, modes),
                              kernels=self.plans.kernels())
            else:
                a = fbuf.reshape(batch, kt, modes)
            panel_contract(a, wp, acc, kernels=self.plans.kernels())
        return acc

def _weight_panels(weight: np.ndarray, k_tb: int, dtype: np.dtype):
    """Pre-cast contiguous k-panels of a (C_in, C_out) weight matrix."""
    c_in = weight.shape[0]
    wc = weight.astype(dtype)
    return [
        (k0, min(k0 + k_tb, c_in),
         np.ascontiguousarray(wc[k0:min(k0 + k_tb, c_in)]))
        for k0 in range(0, c_in, k_tb)
    ]


class _StagedSymmetric1D:
    """Everything a symmetric (rfft/irfft) 1-D pass needs, staged once.

    The original-FNO filter convention on real input: half spectrum via
    the cached packed-real R2C plan, one shared CGEMM over the kept
    modes (the same ``panel_contract`` k-panel accumulation the fused
    path uses), then the C2R plan — the half spectrum is consumed
    end-to-end, never Hermitian-completed.
    """

    def __init__(self, weight: np.ndarray, modes: int, dim_x: int,
                 k_tb: int, dtype: np.dtype,
                 plans: PlanCaches | None = None):
        _check_length(dim_x)
        if modes > dim_x // 2:
            raise ValueError(
                f"symmetric filtering needs modes <= X/2, got {modes} "
                f"on a length-{dim_x} grid"
            )
        self.modes = modes
        self.dim_x = dim_x
        self.dtype = dtype
        self.c_in, self.c_out = weight.shape
        self.plans = plans if plans is not None else current_plan_caches()
        self.panels = _weight_panels(weight, k_tb, dtype)
        self.rfft = self.plans.rfft(dim_x, dtype)
        self.irfft = self.plans.irfft(dim_x, dtype)

    def run(self, x: np.ndarray,
            xk_trunc: np.ndarray | None = None) -> np.ndarray:
        batch, c_in, n = x.shape
        h = n // 2
        m = self.modes
        if xk_trunc is None:
            flat = np.ascontiguousarray(
                x, dtype=self.rfft.real_dtype
            ).reshape(batch * c_in, n)
            xk_trunc = self.rfft.execute(flat).reshape(
                batch, c_in, h + 1
            )[..., :m]
        elif xk_trunc.shape != (batch, c_in, m):
            raise ValueError(
                f"xk_trunc must have shape {(batch, c_in, m)}, "
                f"got {xk_trunc.shape}"
            )
        acc = np.zeros((batch, self.c_out, m), self.dtype)
        for (k0, k1, wp) in self.panels:
            a = np.ascontiguousarray(
                xk_trunc[:, k0:k1, :m], dtype=self.dtype
            )
            panel_contract(a, wp, acc, kernels=self.plans.kernels())
        pad = np.zeros((batch, self.c_out, h + 1), self.dtype)
        pad[..., :m] = acc
        out = self.irfft.execute(pad.reshape(batch * self.c_out, h + 1))
        return out.reshape(batch, self.c_out, n)


class _StagedSymmetric2D:
    """Symmetric 2-D pass: R2C along Y, pruned C2C along X, one shared
    CGEMM over the kept corner, then the inverse chain (pruned C2C
    inverse along X, C2R along Y)."""

    def __init__(self, weight: np.ndarray, modes_x: int, modes_y: int,
                 dim_x: int, dim_y: int, k_tb: int, dtype: np.dtype,
                 plans: PlanCaches | None = None):
        _check_length(dim_x)
        _check_length(dim_y)
        if modes_x > dim_x:
            raise ValueError(
                f"modes_x={modes_x} exceeds spatial size {dim_x}"
            )
        if modes_y > dim_y // 2:
            raise ValueError(
                f"symmetric filtering needs modes_y <= Y/2, got {modes_y} "
                f"on a length-{dim_y} grid"
            )
        self.modes_x = modes_x
        self.modes_y = modes_y
        self.dim_x = dim_x
        self.dim_y = dim_y
        self.dtype = dtype
        self.c_in, self.c_out = weight.shape
        self.plans = plans if plans is not None else current_plan_caches()
        self.panels = _weight_panels(weight, k_tb, dtype)
        self.rfft = self.plans.rfft(dim_y, dtype)
        self.irfft = self.plans.irfft(dim_y, dtype)

    def run(self, x: np.ndarray,
            xk_trunc: np.ndarray | None = None) -> np.ndarray:
        batch, c_in, dim_x, dim_y = x.shape
        h = dim_y // 2
        mx, my = self.modes_x, self.modes_y
        if xk_trunc is None:
            flat = np.ascontiguousarray(
                x, dtype=self.rfft.real_dtype
            ).reshape(batch * c_in * dim_x, dim_y)
            xk_y = self.rfft.execute(flat).reshape(
                batch, c_in, dim_x, h + 1
            )
            xk_trunc = truncated_fft_auto(
                np.ascontiguousarray(xk_y[..., :my]), mx, axis=2,
                caches=self.plans,
            )
        elif xk_trunc.shape != (batch, c_in, mx, my):
            raise ValueError(
                f"xk_trunc must have shape {(batch, c_in, mx, my)}, "
                f"got {xk_trunc.shape}"
            )
        a_full = np.ascontiguousarray(
            xk_trunc, dtype=self.dtype
        ).reshape(batch, c_in, mx * my)
        acc = np.zeros((batch, self.c_out, mx * my), self.dtype)
        for (k0, k1, wp) in self.panels:
            a = np.ascontiguousarray(a_full[:, k0:k1])
            panel_contract(a, wp, acc, kernels=self.plans.kernels())
        yk = acc.reshape(batch, self.c_out, mx, my)
        y_x = padded_ifft_auto(yk, dim_x, axis=2, caches=self.plans)
        pad = np.zeros((batch, self.c_out, dim_x, h + 1), self.dtype)
        pad[..., :my] = y_x
        out = self.irfft.execute(
            pad.reshape(batch * self.c_out * dim_x, h + 1)
        )
        return out.reshape(batch, self.c_out, dim_x, dim_y)


class CompiledSpectralConv1D:
    """Reusable executor for the fused 1-D spectral convolution.

    Build once per weight matrix; call with any ``(batch, C_in, X)``
    input.  Staging (weight casts, FFT plans, workspaces) is cached per
    (working dtype, X); outputs are byte-identical to
    :func:`repro.core.legacy.fused_fft_gemm_ifft_1d`.

    ``symmetric=True`` selects the original FNO's rfft/irfft filter
    convention instead of the paper's first-bins C2C filter: real input,
    half spectrum via the cached packed-real plans, Hermitian-mirrored
    kept modes — a genuine real->real low-pass operator returning a real
    array.  Requires ``modes <= X/2``.
    """

    ndim = 1

    def __init__(self, weight: np.ndarray, modes: int,
                 k_tb: int = _DEFAULT_K_TB,
                 signal_tile: int = _DEFAULT_SIGNAL_TILE,
                 symmetric: bool = False,
                 plans: PlanCaches | None = None):
        weight = np.asarray(weight)
        if weight.ndim != 2:
            raise ValueError(
                f"weight must be (C_in, C_out), got {weight.shape}"
            )
        if modes < 1:
            raise ValueError(f"modes must be positive, got {modes}")
        self.weight = weight
        self.modes = modes
        self.k_tb = k_tb
        self.signal_tile = signal_tile
        self.symmetric = symmetric
        self._plans = plans
        self._staged: dict[tuple, object] = {}

    def _plan_caches(self) -> PlanCaches:
        return self._plans if self._plans is not None else current_plan_caches()

    def _stage_for(self, dtype: np.dtype, dim_x: int):
        key = (dtype, dim_x)
        staged = self._staged.get(key)
        if staged is None:
            if self.symmetric:
                staged = _StagedSymmetric1D(
                    self.weight, self.modes, dim_x, self.k_tb, dtype,
                    plans=self._plan_caches(),
                )
            else:
                staged = _StagedFused1D(
                    self.weight, self.modes, dim_x,
                    self.k_tb, self.signal_tile, dtype,
                    plans=self._plan_caches(),
                )
            self._staged[key] = staged
        return staged

    def __call__(self, x: np.ndarray,
                 xk_trunc: np.ndarray | None = None) -> np.ndarray:
        """Run the convolution.  ``xk_trunc`` (symmetric mode only) is an
        optional precomputed truncated half spectrum ``(batch, C_in,
        modes)`` — callers that already hold it (the training layers
        cache it for backward) skip the forward R2C pass."""
        x = np.asarray(x)
        _check_inputs(x, self.weight, 3)
        dim_x = x.shape[2]
        if not (1 <= self.modes <= dim_x):
            raise ValueError(
                f"modes must be in [1, {dim_x}], got {self.modes}"
            )
        if self.symmetric and np.iscomplexobj(x):
            raise ValueError("symmetric executor expects real input")
        if xk_trunc is not None and not self.symmetric:
            raise ValueError("xk_trunc applies to symmetric executors only")
        staged = self._stage_for(complex_dtype_for(x.dtype), dim_x)
        if self.symmetric:
            return staged.run(x, xk_trunc)
        return staged.run_fused(x)


class CompiledSpectralConv2D:
    """Reusable executor for the fused 2-D spectral convolution.

    The width FFT and width inverse run through the cached pruned plans;
    the fused height pass reuses the 1-D tile machinery over the
    (batch x kept-row) pencils.  Byte-identical to
    :func:`repro.core.legacy.fused_fft_gemm_ifft_2d`.

    ``symmetric=True`` selects the half-spectrum convention on real
    input: R2C along Y (packed-real plans), the paper's first-bins C2C
    filter along X, and a real-valued output via the C2R inverse.
    Requires ``modes_y <= Y/2``.
    """

    ndim = 2

    def __init__(self, weight: np.ndarray, modes_x: int, modes_y: int,
                 k_tb: int = _DEFAULT_K_TB,
                 signal_tile: int = _DEFAULT_SIGNAL_TILE,
                 symmetric: bool = False,
                 plans: PlanCaches | None = None):
        weight = np.asarray(weight)
        if weight.ndim != 2:
            raise ValueError(
                f"weight must be (C_in, C_out), got {weight.shape}"
            )
        if modes_x < 1 or modes_y < 1:
            raise ValueError(
                f"modes must be positive, got ({modes_x}, {modes_y})"
            )
        self.weight = weight
        self.modes_x = modes_x
        self.modes_y = modes_y
        self.k_tb = k_tb
        self.signal_tile = signal_tile
        self.symmetric = symmetric
        self._plans = plans
        self._staged: dict[tuple, object] = {}

    def _plan_caches(self) -> PlanCaches:
        return self._plans if self._plans is not None else current_plan_caches()

    def _stage_for(self, dtype: np.dtype, dim_y: int) -> _StagedFused1D:
        key = (dtype, dim_y)
        staged = self._staged.get(key)
        if staged is None:
            staged = _StagedFused1D(
                self.weight, self.modes_y, dim_y,
                self.k_tb, self.signal_tile, dtype,
                plans=self._plan_caches(),
            )
            self._staged[key] = staged
        return staged

    def _stage_symmetric(self, dtype: np.dtype, dim_x: int,
                         dim_y: int) -> _StagedSymmetric2D:
        key = (dtype, dim_x, dim_y, "sym")
        staged = self._staged.get(key)
        if staged is None:
            staged = _StagedSymmetric2D(
                self.weight, self.modes_x, self.modes_y,
                dim_x, dim_y, self.k_tb, dtype,
                plans=self._plan_caches(),
            )
            self._staged[key] = staged
        return staged

    def __call__(self, x: np.ndarray,
                 xk_trunc: np.ndarray | None = None) -> np.ndarray:
        """Run the convolution.  ``xk_trunc`` (symmetric mode only) is an
        optional precomputed truncated spectrum corner ``(batch, C_in,
        modes_x, modes_y)``; callers that already hold it skip the
        forward transforms."""
        x = np.asarray(x)
        _check_inputs(x, self.weight, 4)
        batch, c_in, dim_x, dim_y = x.shape
        if not (1 <= self.modes_x <= dim_x) or not (1 <= self.modes_y <= dim_y):
            raise ValueError(
                f"modes ({self.modes_x}, {self.modes_y}) out of range for "
                f"({dim_x}, {dim_y})"
            )
        if xk_trunc is not None and not self.symmetric:
            raise ValueError("xk_trunc applies to symmetric executors only")
        dtype = complex_dtype_for(x.dtype)
        if self.symmetric:
            if np.iscomplexobj(x):
                raise ValueError("symmetric executor expects real input")
            return self._stage_symmetric(dtype, dim_x, dim_y).run(x, xk_trunc)
        c_out = self.weight.shape[1]
        plans = self._plan_caches()

        # Stage 1: width FFT with built-in truncation.
        xk_x = truncated_fft(
            x.astype(dtype, copy=False), self.modes_x, axis=2, caches=plans
        )

        # Fused stage along Y over (batch, kept-x-row) pencils.
        pencils = xk_x.transpose(0, 2, 1, 3).reshape(
            batch * self.modes_x, c_in, dim_y
        )
        staged = self._stage_for(dtype, dim_y)
        out_pencils = staged.run_fused(pencils)

        yk_x = out_pencils.reshape(
            batch, self.modes_x, c_out, dim_y
        ).transpose(0, 2, 1, 3)
        # Final stage: width iFFT with built-in zero padding.
        return truncated_ifft(yk_x, dim_x, axis=2, caches=plans)


def compile_spectral_conv(
    weight: np.ndarray,
    modes: int | tuple[int, ...],
    k_tb: int = _DEFAULT_K_TB,
    signal_tile: int = _DEFAULT_SIGNAL_TILE,
    symmetric: bool = False,
    plans: PlanCaches | None = None,
):
    """Build the executor matching ``modes``' dimensionality.

    An int (or 1-tuple) of kept modes gives a
    :class:`CompiledSpectralConv1D`; a 2-tuple gives a
    :class:`CompiledSpectralConv2D`.  ``symmetric=True`` selects the
    rfft/irfft half-spectrum convention (real input, real output).
    ``plans`` pins the executor to one plan-cache set (a session's);
    ``None`` resolves the set active on the staging thread.
    """
    if isinstance(modes, tuple):
        if len(modes) == 1:
            return CompiledSpectralConv1D(
                weight, modes[0], k_tb, signal_tile, symmetric=symmetric,
                plans=plans,
            )
        if len(modes) == 2:
            return CompiledSpectralConv2D(
                weight, modes[0], modes[1], k_tb, signal_tile,
                symmetric=symmetric, plans=plans,
            )
        raise ValueError(
            f"modes must have 1 or 2 entries, got {len(modes)}"
        )
    return CompiledSpectralConv1D(
        weight, int(modes), k_tb, signal_tile, symmetric=symmetric,
        plans=plans,
    )
