"""Sensitivity analysis: are the paper's conclusions model-robust?

The execution model has a handful of calibrated parameters (efficiencies,
launch overhead, the k-loop locality derate).  A reproduction built on a
model is only credible if its *conclusions* — fusion wins at the reference
size, the B-vs-A crossover exists, the blue region sits at small batch —
survive perturbing those parameters.  :func:`sensitivity_study` sweeps each
knob over a band and reports whether each qualitative conclusion holds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.api.planner import plan
from repro.core.config import FNO1DProblem, TurboFNOConfig
from repro.core.stages import FusionStage
from repro.gpu.device import A100_SPEC, DeviceSpec

__all__ = ["Conclusion", "CONCLUSIONS", "sensitivity_study"]

_REFERENCE = FNO1DProblem.from_m_spatial(2**20, hidden=64, dim_x=128, modes=64)
_LARGE_K = FNO1DProblem.from_m_spatial(2**20, hidden=136, dim_x=128, modes=64)
_SMALL_BATCH = FNO1DProblem(batch=2, hidden=104, dim_x=128, modes=64)


def _time(problem: FNO1DProblem, stage: FusionStage, device: DeviceSpec,
          cfg: TurboFNOConfig) -> float:
    return plan(problem, stage, cfg, device).total_time


@dataclass(frozen=True)
class Conclusion:
    """One qualitative paper claim, evaluable under any device model."""

    name: str
    check: Callable[[DeviceSpec, TurboFNOConfig], bool]


def _fusion_wins(device: DeviceSpec, cfg: TurboFNOConfig) -> bool:
    base = _time(_REFERENCE, FusionStage.PYTORCH, device, cfg)
    fused = _time(_REFERENCE, FusionStage.FUSED_ALL, device, cfg)
    return fused < base


def _crossover_exists(device: DeviceSpec, cfg: TurboFNOConfig) -> bool:
    a = _time(_LARGE_K, FusionStage.FFT_OPT, device, cfg)
    b = _time(_LARGE_K, FusionStage.FUSED_FFT_GEMM, device, cfg)
    return b > a  # forward fusion loses at K = 136


def _blue_region(device: DeviceSpec, cfg: TurboFNOConfig) -> bool:
    base = _time(_SMALL_BATCH, FusionStage.PYTORCH, device, cfg)
    best = min(
        _time(_SMALL_BATCH, s, device, cfg) for s in FusionStage.ladder()
    )
    return best > base  # TurboFNO loses at tiny batch x large K


CONCLUSIONS = (
    Conclusion("fusion_wins_at_reference_size", _fusion_wins),
    Conclusion("forward_fusion_crossover_at_large_k", _crossover_exists),
    Conclusion("blue_region_at_small_batch", _blue_region),
)

#: Parameter bands swept by the study: (attribute, values).
_DEVICE_BANDS = {
    "dram_efficiency": (0.7, 0.85, 0.95),
    "flop_efficiency": (0.6, 0.8, 0.95),
    "kernel_launch_overhead_s": (2e-6, 4e-6, 8e-6),
    "l2_bandwidth_ratio": (2.0, 4.0, 8.0),
    "single_block_sm_efficiency": (0.5, 0.7, 0.9),
}
_CONFIG_BANDS = {
    "kloop_memory_derate": (1.0, 1.1, 1.25),
}


def sensitivity_study() -> dict[str, dict[str, bool]]:
    """Evaluate every conclusion across every parameter band.

    Returns ``{conclusion: {"param=value": held?}}``.  The benchmark
    harness asserts that the headline conclusions hold at *every* point.
    """
    results: dict[str, dict[str, bool]] = {c.name: {} for c in CONCLUSIONS}
    base_cfg = TurboFNOConfig()
    for attr, values in _DEVICE_BANDS.items():
        for v in values:
            device = A100_SPEC.with_(**{attr: v})
            for c in CONCLUSIONS:
                results[c.name][f"{attr}={v}"] = c.check(device, base_cfg)
    for attr, values in _CONFIG_BANDS.items():
        for v in values:
            cfg = replace(base_cfg, **{attr: v})
            for c in CONCLUSIONS:
                results[c.name][f"{attr}={v}"] = c.check(A100_SPEC, cfg)
    return results
