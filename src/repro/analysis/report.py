"""ASCII rendering of sweep series and heatmaps."""

from __future__ import annotations

import numpy as np

from repro.analysis.sweeps import HeatmapResult, SweepSeries
from repro.core.stages import FusionStage

__all__ = ["render_series", "render_heatmap", "summarize"]


def render_series(sweep: SweepSeries) -> str:
    """Tabulate one sweep panel: x values down, stages across."""
    stages = list(sweep.series.keys())
    header = [f"{sweep.x_label:>8s}"] + [f"{s.value:>9s}" for s in stages]
    lines = [sweep.title, " ".join(header)]
    for i, x in enumerate(sweep.x):
        row = [f"{x:>8.0f}"] + [
            f"{sweep.series[s][i]:>+8.1f}%" for s in stages
        ]
        lines.append(" ".join(row))
    return "\n".join(lines)


def render_heatmap(hm: HeatmapResult, cell_width: int = 6) -> str:
    """Render a heatmap as a signed-percent grid (negative = blue region)."""
    lines = [hm.title, f"rows: {hm.row_label}, cols: {hm.col_label}"]
    header = " " * 8 + "".join(f"{c:>{cell_width}.0f}" for c in hm.cols)
    lines.append(header)
    for r, row in zip(hm.rows, hm.values):
        cells = "".join(f"{v:>+{cell_width}.0f}" for v in row)
        lines.append(f"{r:>7.0f} {cells}")
    lines.append(
        f"mean {hm.mean:+.1f}%  max {hm.max:+.1f}%  min {hm.min:+.1f}%  "
        f"negative cells {hm.negative_fraction():.1%}"
    )
    return "\n".join(lines)


def summarize(panels: list[SweepSeries], stage: FusionStage) -> dict[str, float]:
    """Aggregate statistics of one stage across several panels."""
    values = np.concatenate([np.asarray(p.series[stage]) for p in panels])
    return {
        "mean": float(values.mean()),
        "max": float(values.max()),
        "min": float(values.min()),
        "negative_fraction": float(np.mean(values < 0.0)),
    }
