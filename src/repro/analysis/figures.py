"""One builder per paper artifact.

Each ``figNN`` function regenerates the data behind the corresponding
figure of the paper on the execution model, using the same parameter grids
the paper sweeps (Table 2 maps figures to stages).  The benchmark harness
in ``benchmarks/`` calls these and prints/records the series.

Paper grids:

* 1-D K sweeps: K = 16..136 step 8 at M = 2^20 (Figs. 10-13a).
* 1-D BS sweeps: BS = 64, 256, 1024, 4096 at K = 32/64/128 (Figs. 10-13b-d).
* Fig. 14 heatmaps: K = 8..120 step 16, log2(M) = 7..20, FFT size
  128/256, filter N = 64/128.
* 2-D K sweeps: K = 16..136 step 8 at BS = 8 (Figs. 15-18a) on a 256x128
  grid with a 64x64 filter.
* 2-D BS sweeps: BS = 48..144 step 16 at K = 32/64/128 (Figs. 15-18b-d).
* Fig. 19 heatmaps: K = 8..120 step 16, BS = 1..128, grids 256x128 and
  256x256, filter N = 64/128.

The default sweeps below thin the densest grids (every other K, coarser
heatmaps) to keep a full-figure regeneration interactive; pass
``dense=True`` for the paper's full resolution.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.analysis.sweeps import (
    HeatmapResult,
    SweepSeries,
    heatmap_1d,
    heatmap_2d,
    sweep,
)
from repro.api.planner import plan
from repro.core.config import FNO1DProblem, FNO2DProblem, TurboFNOConfig
from repro.core.stages import FusionStage
from repro.fft.opcount import butterfly_ops, census
from repro.gpu.swizzle import (
    analyze_fft_to_gemm_forward,
    analyze_fft_writeback,
    analyze_gemm_to_ifft_epilogue,
)
from repro.gpu.timeline import PipelineReport

__all__ = [
    "fig01c",
    "fig05",
    "fig07",
    "fig08",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "STAGES_BY_FIGURE",
]

#: Table 2: which stages each figure compares (beyond the baseline).
STAGES_BY_FIGURE = {
    10: (FusionStage.FFT_OPT,),
    11: (FusionStage.FFT_OPT, FusionStage.FUSED_FFT_GEMM),
    12: (
        FusionStage.FFT_OPT,
        FusionStage.FUSED_FFT_GEMM,
        FusionStage.FUSED_GEMM_IFFT,
    ),
    13: (
        FusionStage.FFT_OPT,
        FusionStage.FUSED_FFT_GEMM,
        FusionStage.FUSED_GEMM_IFFT,
        FusionStage.FUSED_ALL,
    ),
}
STAGES_BY_FIGURE[15] = STAGES_BY_FIGURE[10]
STAGES_BY_FIGURE[16] = STAGES_BY_FIGURE[11]
STAGES_BY_FIGURE[17] = STAGES_BY_FIGURE[12]
STAGES_BY_FIGURE[18] = STAGES_BY_FIGURE[13]


def _k_values(dense: bool) -> list[int]:
    return list(range(16, 137, 8)) if dense else list(range(16, 137, 16))


def _env_workers() -> int | None:
    """Heatmap process-pool width when the environment asks for one.

    ``REPRO_WORKERS > 1`` makes the dense heatmap figures shard their
    grids over a process pool by default (the CI figures path sets it);
    unset, or ``1``, keeps the serial path.  Parsing lives in
    :func:`repro.api.runner.default_workers` — the single source of
    truth for that variable, shared with ``repro.api.serve``.
    """
    if os.environ.get("REPRO_WORKERS") is None:
        return None
    from repro.api.runner import default_workers

    workers = default_workers()
    return workers if workers > 1 else None


# ---------------------------------------------------------------------------
# Fig. 1(c): fusion time breakdown
# ---------------------------------------------------------------------------

@dataclass
class BreakdownResult:
    """PyTorch per-kernel breakdown vs the single fused kernel."""

    pytorch: PipelineReport
    turbo: PipelineReport

    @property
    def speedup_percent(self) -> float:
        return (self.pytorch.total_time / self.turbo.total_time - 1.0) * 100.0


def fig01c(
    problem: FNO1DProblem | None = None, cfg: TurboFNOConfig | None = None,
    session=None,
) -> BreakdownResult:
    """The motivating bar chart: 5 separate kernels vs 1 fused kernel."""
    problem = problem or FNO1DProblem.from_m_spatial(
        2**20, hidden=64, dim_x=128, modes=64
    )
    plan_fn = session.plan if session is not None else plan
    base = plan_fn(problem, FusionStage.PYTORCH, cfg).report()
    turbo = plan_fn(problem, FusionStage.FUSED_ALL, cfg).report()
    return BreakdownResult(base, turbo)


# ---------------------------------------------------------------------------
# Fig. 5: FFT pruning op counts
# ---------------------------------------------------------------------------

@dataclass
class PruneRow:
    n: int
    keep: int
    ops: int
    total_ops: int

    @property
    def fraction(self) -> float:
        return self.ops / self.total_ops


def fig05(extra_sizes: tuple[int, ...] = (128, 256)) -> list[PruneRow]:
    """The 4-point example of Figure 5 plus the paper's eval FFT sizes."""
    rows = []
    for n in (4, *extra_sizes):
        for ratio in (4, 2):  # 25 % and 50 % truncation
            keep = max(1, n // ratio)
            c = census(n, keep_out=keep)
            rows.append(PruneRow(n, keep, c.ops, butterfly_ops(n)))
    return rows


# ---------------------------------------------------------------------------
# Figs. 7 / 8: shared-memory bank utilization
# ---------------------------------------------------------------------------

def fig07() -> dict[str, float]:
    """Bank utilization of the FFT->CGEMM layouts and butterfly swizzles."""
    return {
        "forward_vkfft": analyze_fft_to_gemm_forward("vkfft").utilization,
        "forward_turbofno": analyze_fft_to_gemm_forward("turbofno").utilization,
        "writeback_16pt_naive": analyze_fft_writeback("16pt", False).utilization,
        "writeback_16pt_swizzled": analyze_fft_writeback("16pt", True).utilization,
        "writeback_8pt_naive": analyze_fft_writeback("8pt", False).utilization,
        "writeback_8pt_swizzled": analyze_fft_writeback("8pt", True).utilization,
    }


def fig08() -> dict[str, float]:
    """Bank utilization of the CGEMM->iFFT epilogue write (Fig. 8a vs 8b)."""
    return {
        "epilogue_naive": analyze_gemm_to_ifft_epilogue(False).utilization,
        "epilogue_swizzled": analyze_gemm_to_ifft_epilogue(True).utilization,
    }


# ---------------------------------------------------------------------------
# Figs. 10-13: 1-D sweeps
# ---------------------------------------------------------------------------

def _fig_1d(
    fig: int,
    dense: bool,
    cfg: TurboFNOConfig | None,
    dim_x: int = 128,
    modes: int = 64,
    session=None,
) -> list[SweepSeries]:
    stages = STAGES_BY_FIGURE[fig]
    panels = [
        sweep(
            f"fig{fig}(a) K sweep, M=2^20, {dim_x}-pt FFT, N={modes}",
            "K",
            [
                (k, FNO1DProblem.from_m_spatial(2**20, k, dim_x, modes))
                for k in _k_values(dense)
            ],
            stages,
            cfg,
            session=session,
        )
    ]
    bs_values = [64, 256, 1024, 4096] if fig > 10 else [
        64, 256, 1024, 4096, 16384, 65536, 262144
    ]
    for panel, k in zip("bcd", (32, 64, 128)):
        panels.append(
            sweep(
                f"fig{fig}({panel}) BS sweep, K={k}, {dim_x}-pt FFT, N={modes}",
                "BS",
                [
                    (bs, FNO1DProblem(batch=bs, hidden=k, dim_x=dim_x, modes=modes))
                    for bs in bs_values
                ],
                stages,
                cfg,
                session=session,
            )
        )
    return panels


def fig10(dense: bool = False, cfg: TurboFNOConfig | None = None,
          session=None) -> list[SweepSeries]:
    """1-D FFT pruning/truncation/zero-padding (stage A)."""
    return _fig_1d(10, dense, cfg, session=session)


def fig11(dense: bool = False, cfg: TurboFNOConfig | None = None,
          session=None) -> list[SweepSeries]:
    """1-D fused FFT-CGEMM (stage B vs A)."""
    return _fig_1d(11, dense, cfg, session=session)


def fig12(dense: bool = False, cfg: TurboFNOConfig | None = None,
          session=None) -> list[SweepSeries]:
    """1-D fused CGEMM-iFFT (stage C vs A, B)."""
    return _fig_1d(12, dense, cfg, session=session)


def fig13(dense: bool = False, cfg: TurboFNOConfig | None = None,
          session=None) -> list[SweepSeries]:
    """1-D fully fused FFT-CGEMM-iFFT (stage D vs all)."""
    return _fig_1d(13, dense, cfg, session=session)


def fig14(
    dense: bool = False,
    cfg: TurboFNOConfig | None = None,
    workers: int | None = None,
    session=None,
) -> list[HeatmapResult]:
    """1-D best-of heatmaps over K x log2(M), four (FFT size, N) panels.

    ``workers`` shards each panel's grid over a process pool; ``None``
    defaults from ``REPRO_WORKERS`` (serial when unset or 1).
    """
    if workers is None:
        workers = _env_workers()
    ks = list(range(8, 121, 16)) if dense else list(range(8, 121, 32))
    log2_ms = list(range(7, 21, 1 if dense else 2))
    panels = []
    for dim_x in (128, 256):
        for modes in (64, 128):
            panels.append(
                heatmap_1d(
                    f"fig14 {dim_x}-pt FFT, N={modes}",
                    dim_x, modes, ks, log2_ms, cfg, workers=workers,
                    session=session,
                )
            )
    return panels


# ---------------------------------------------------------------------------
# Figs. 15-18: 2-D sweeps
# ---------------------------------------------------------------------------

def _fig_2d(
    fig: int,
    dense: bool,
    cfg: TurboFNOConfig | None,
    dim_x: int = 256,
    dim_y: int = 128,
    modes: int = 64,
    session=None,
) -> list[SweepSeries]:
    stages = STAGES_BY_FIGURE[fig]

    def prob(bs: int, k: int) -> FNO2DProblem:
        return FNO2DProblem(batch=bs, hidden=k, dim_x=dim_x, dim_y=dim_y,
                            modes_x=modes, modes_y=modes)

    panels = [
        sweep(
            f"fig{fig}(a) K sweep, BS=8, {dim_x}x{dim_y} FFT, N={modes}",
            "K",
            [(k, prob(8, k)) for k in _k_values(dense)],
            stages,
            cfg,
            session=session,
        )
    ]
    bs_values = list(range(48, 145, 16)) if fig == 15 else [48, 64, 80, 96]
    for panel, k in zip("bcd", (32, 64, 128)):
        panels.append(
            sweep(
                f"fig{fig}({panel}) BS sweep, K={k}, {dim_x}x{dim_y} FFT, N={modes}",
                "BS",
                [(bs, prob(bs, k)) for bs in bs_values],
                stages,
                cfg,
                session=session,
            )
        )
    return panels


def fig15(dense: bool = False, cfg: TurboFNOConfig | None = None,
          session=None) -> list[SweepSeries]:
    """2-D FFT pruning/truncation/zero-padding (stage A)."""
    return _fig_2d(15, dense, cfg, session=session)


def fig16(dense: bool = False, cfg: TurboFNOConfig | None = None,
          session=None) -> list[SweepSeries]:
    """2-D fused FFT-CGEMM (stage B vs A)."""
    return _fig_2d(16, dense, cfg, session=session)


def fig17(dense: bool = False, cfg: TurboFNOConfig | None = None,
          session=None) -> list[SweepSeries]:
    """2-D fused CGEMM-iFFT (stage C vs A, B)."""
    return _fig_2d(17, dense, cfg, session=session)


def fig18(dense: bool = False, cfg: TurboFNOConfig | None = None,
          session=None) -> list[SweepSeries]:
    """2-D fully fused FFT-CGEMM-iFFT (stage D vs all)."""
    return _fig_2d(18, dense, cfg, session=session)


def fig19(
    dense: bool = False,
    cfg: TurboFNOConfig | None = None,
    workers: int | None = None,
    session=None,
) -> list[HeatmapResult]:
    """2-D best-of heatmaps over K x batch, four (grid, N) panels.

    ``workers`` shards each panel's grid over a process pool; ``None``
    defaults from ``REPRO_WORKERS`` (serial when unset or 1).
    """
    if workers is None:
        workers = _env_workers()
    ks = list(range(8, 121, 16)) if dense else list(range(8, 121, 32))
    batches = (
        [1, 16, 32, 48, 64, 80, 96, 112, 128]
        if dense
        else [1, 32, 64, 128]
    )
    panels = []
    for dim_y in (128, 256):
        for modes in (64, 128):
            panels.append(
                heatmap_2d(
                    f"fig19 256x{dim_y} 2DFFT, N={modes}",
                    256, dim_y, modes, ks, batches, cfg, workers=workers,
                    session=session,
                )
            )
    return panels
