"""Sweep drivers and result containers for figure regeneration.

Every driver here is a thin shaping layer over :class:`repro.api.Runner`:
the runner maps (problem, stage) pairs through the shared plan cache, so
dense figure grids — and the heavy overlap between consecutive figures
(Figs. 11-13 sweep the same problems with growing stage sets) — stop
rebuilding identical pipelines.  Each driver accepts ``session=``: the
sweep then plans through that :class:`repro.api.Session`'s cache
(injected), falling back to the process-default session otherwise.

The dimension-suffixed drivers (``ladder_speedups_1d``/``_2d``,
``sweep_1d``/``_2d``) are kept as conveniences; they share one generic
implementation and produce numerically identical output to the pre-facade
code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.api.runner import Runner
from repro.core.config import FNO1DProblem, FNO2DProblem, TurboFNOConfig
from repro.core.stages import FusionStage
from repro.gpu.device import A100_SPEC, DeviceSpec

__all__ = [
    "SweepSeries",
    "HeatmapResult",
    "ladder_speedups",
    "ladder_speedups_1d",
    "ladder_speedups_2d",
    "sweep",
    "sweep_1d",
    "sweep_2d",
    "heatmap_1d",
    "heatmap_2d",
]


@dataclass
class SweepSeries:
    """One figure panel: speedup-vs-PyTorch series per stage.

    ``series[stage]`` holds one speedup (percent, 0 = parity) per x value.
    """

    title: str
    x_label: str
    x: list[float]
    series: dict[FusionStage, list[float]] = field(default_factory=dict)

    def stage(self, stage: FusionStage) -> list[float]:
        return self.series[stage]

    def mean(self, stage: FusionStage) -> float:
        return float(np.mean(self.series[stage]))

    def max(self, stage: FusionStage) -> float:
        return float(np.max(self.series[stage]))


@dataclass
class HeatmapResult:
    """One heatmap panel: stage-E speedup over a (row, col) grid."""

    title: str
    row_label: str
    col_label: str
    rows: list[float]
    cols: list[float]
    values: np.ndarray  # (len(rows), len(cols)) speedup percent

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def max(self) -> float:
        return float(np.max(self.values))

    @property
    def min(self) -> float:
        return float(np.min(self.values))

    def negative_fraction(self) -> float:
        """Fraction of the grid where TurboFNO loses (the blue region)."""
        return float(np.mean(self.values < 0.0))


def ladder_speedups(
    problem,
    stages: Sequence[FusionStage],
    cfg: TurboFNOConfig | None = None,
    device: DeviceSpec = A100_SPEC,
    session=None,
) -> dict[FusionStage, float]:
    """Speedup of each requested stage over the PyTorch baseline.

    Dimension-agnostic: ``problem`` may be any :class:`repro.api.Problem`.
    """
    return Runner(config=cfg, device=device, session=session).ladder(
        problem, stages
    )


def ladder_speedups_1d(
    problem: FNO1DProblem,
    stages: Sequence[FusionStage],
    cfg: TurboFNOConfig | None = None,
    device: DeviceSpec = A100_SPEC,
) -> dict[FusionStage, float]:
    """1-D convenience wrapper over :func:`ladder_speedups`."""
    return ladder_speedups(problem, stages, cfg, device)


def ladder_speedups_2d(
    problem: FNO2DProblem,
    stages: Sequence[FusionStage],
    cfg: TurboFNOConfig | None = None,
    device: DeviceSpec = A100_SPEC,
) -> dict[FusionStage, float]:
    """2-D convenience wrapper over :func:`ladder_speedups`."""
    return ladder_speedups(problem, stages, cfg, device)


def sweep(
    title: str,
    x_label: str,
    problems: Sequence[tuple[float, object]],
    stages: Sequence[FusionStage],
    cfg: TurboFNOConfig | None = None,
    device: DeviceSpec = A100_SPEC,
    session=None,
) -> SweepSeries:
    """Run the stage ladder over a sequence of (x, problem) pairs.

    Dimension-agnostic: each problem dispatches through the facade's
    pipeline-builder registry, so 1-D and 2-D (and future) workloads can
    even be mixed in one series.  ``session`` routes planning through a
    specific :class:`repro.api.Session`'s cache.
    """
    runner = Runner(config=cfg, device=device, session=session)
    return SweepSeries(
        title,
        x_label,
        [x for x, _ in problems],
        runner.sweep([p for _, p in problems], stages),
    )


def sweep_1d(
    title: str,
    x_label: str,
    problems: Sequence[tuple[float, FNO1DProblem]],
    stages: Sequence[FusionStage],
    cfg: TurboFNOConfig | None = None,
) -> SweepSeries:
    """1-D convenience wrapper over :func:`sweep`."""
    return sweep(title, x_label, problems, stages, cfg)


def sweep_2d(
    title: str,
    x_label: str,
    problems: Sequence[tuple[float, FNO2DProblem]],
    stages: Sequence[FusionStage],
    cfg: TurboFNOConfig | None = None,
) -> SweepSeries:
    """2-D convenience wrapper over :func:`sweep`."""
    return sweep(title, x_label, problems, stages, cfg)


def heatmap_1d(
    title: str,
    dim_x: int,
    modes: int,
    ks: Sequence[int],
    log2_ms: Sequence[int],
    cfg: TurboFNOConfig | None = None,
    workers: int | None = None,
    session=None,
) -> HeatmapResult:
    """Fig. 14-style heatmap: stage-E speedup over K x log2(M).

    ``workers`` shards the grid over a process pool (identical values;
    see :meth:`repro.api.Runner.map_speedups`).
    """
    runner = Runner(config=cfg, session=session)
    problems = [
        FNO1DProblem.from_m_spatial(max(2**lm, dim_x), k, dim_x, modes)
        for lm in log2_ms
        for k in ks
    ]
    speeds = runner.map_speedups(problems, FusionStage.BEST, workers=workers)
    values = np.asarray(speeds).reshape(len(log2_ms), len(ks))
    return HeatmapResult(title, "log2(M)", "K", list(map(float, log2_ms)),
                         list(map(float, ks)), values)


def heatmap_2d(
    title: str,
    dim_x: int,
    dim_y: int,
    modes: int,
    ks: Sequence[int],
    batches: Sequence[int],
    cfg: TurboFNOConfig | None = None,
    workers: int | None = None,
    session=None,
) -> HeatmapResult:
    """Fig. 19-style heatmap: stage-E speedup over K x batch size.

    ``workers`` shards the grid over a process pool (identical values).
    """
    runner = Runner(config=cfg, session=session)
    problems = [
        FNO2DProblem(
            batch=bs, hidden=k, dim_x=dim_x, dim_y=dim_y,
            modes_x=min(modes, dim_x), modes_y=min(modes, dim_y),
        )
        for bs in batches
        for k in ks
    ]
    speeds = runner.map_speedups(problems, FusionStage.BEST, workers=workers)
    values = np.asarray(speeds).reshape(len(batches), len(ks))
    return HeatmapResult(title, "batch", "K", list(map(float, batches)),
                         list(map(float, ks)), values)
