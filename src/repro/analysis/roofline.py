"""Roofline analysis of modelled kernels.

The paper's performance story is a roofline story: the Fourier layer's
kernels sit left of the A100's ridge point (memory-bound), so eliminating
DRAM transactions — not FLOPs — is what fusion buys.  This module computes
per-kernel arithmetic intensity, the binding resource, and the achieved
fraction of the binding peak, for any pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.device import A100_SPEC, DeviceSpec
from repro.gpu.kernel import kernel_time
from repro.gpu.timeline import Pipeline

__all__ = ["KernelRoofline", "ridge_point", "pipeline_roofline"]


@dataclass(frozen=True)
class KernelRoofline:
    """Roofline placement of one kernel."""

    name: str
    arithmetic_intensity: float  # flops per DRAM byte
    bound: str                   # "compute" | "memory" | "shared-memory"
    achieved_fraction: float     # time of binding leg / total steady time

    def describe(self) -> str:
        ai = ("inf" if self.arithmetic_intensity == float("inf")
              else f"{self.arithmetic_intensity:6.2f}")
        return (f"{self.name:<28s} AI={ai} flop/B  {self.bound}-bound "
                f"({self.achieved_fraction:.0%} of steady time)")


def ridge_point(device: DeviceSpec = A100_SPEC) -> float:
    """Arithmetic intensity (flop/byte) where compute and DRAM balance."""
    return device.effective_flops() / device.effective_bandwidth()


def pipeline_roofline(
    pipeline: Pipeline, device: DeviceSpec = A100_SPEC
) -> list[KernelRoofline]:
    """Classify every kernel of a pipeline on the device's roofline."""
    out = []
    for spec in pipeline.kernels:
        t = kernel_time(spec, device)
        legs = {
            "compute": t.compute_time,
            "memory": t.dram_time,
            "shared-memory": t.smem_time,
        }
        bound = max(legs, key=legs.get)
        steady = max(t.steady_time, 1e-30)
        out.append(
            KernelRoofline(
                name=spec.name,
                arithmetic_intensity=spec.counters.arithmetic_intensity,
                bound=bound,
                achieved_fraction=min(1.0, legs[bound] / steady),
            )
        )
    return out
