"""Figure and table regeneration.

* :mod:`repro.analysis.sweeps` — result containers and sweep drivers,
  routed through :mod:`repro.api` so repeated geometries hit the plan
  cache.
* :mod:`repro.analysis.figures` — one builder per paper artifact
  (``fig01c`` through ``fig19``), each returning the series/heatmap the
  corresponding benchmark prints.
* :mod:`repro.analysis.report` — ASCII rendering of series tables and
  heatmaps plus summary statistics.
"""

from repro.analysis.sweeps import HeatmapResult, SweepSeries
from repro.analysis import figures
from repro.analysis.report import render_heatmap, render_series, summarize
from repro.analysis.roofline import pipeline_roofline, ridge_point

__all__ = [
    "SweepSeries",
    "HeatmapResult",
    "figures",
    "render_series",
    "render_heatmap",
    "summarize",
    "pipeline_roofline",
    "ridge_point",
]
