"""1-D viscous Burgers equation: ``u_t + u u_x = nu u_xx`` (periodic).

Pseudo-spectral solver with an integrating factor for the stiff diffusion
term and RK4 for the nonlinear term, 2/3-rule dealiased.  This is the
data-generating process of the FNO paper's Burgers benchmark: the operator
learned is ``u(x, 0) -> u(x, T)``.
"""

from __future__ import annotations

import numpy as np

from repro.fft.stockham import fft, ifft, is_power_of_two
from repro.pde.grf import grf_1d

__all__ = ["solve_burgers", "burgers_dataset"]


def _dealias_mask(n: int) -> np.ndarray:
    k = np.abs(np.fft.fftfreq(n, d=1.0 / n))
    return (k <= n // 3).astype(float)


def solve_burgers(
    u0: np.ndarray,
    t_final: float = 1.0,
    nu: float = 0.01,
    n_steps: int | None = None,
) -> np.ndarray:
    """Advance periodic Burgers from ``u0`` (shape ``(..., n)``) to ``t_final``.

    The domain is the unit interval.  ``n_steps`` defaults to a CFL-safe
    value based on the maximum initial velocity.
    """
    u0 = np.asarray(u0, dtype=np.float64)
    n = u0.shape[-1]
    if not is_power_of_two(n):
        raise ValueError(f"grid size must be a power of two, got {n}")
    if t_final <= 0 or nu <= 0:
        raise ValueError("t_final and nu must be positive")
    if n_steps is None:
        umax = float(np.max(np.abs(u0))) + 1e-9
        dt_cfl = 0.5 / (n * umax)
        n_steps = max(32, int(np.ceil(t_final / dt_cfl)))
    dt = t_final / n_steps

    k = 2.0 * np.pi * np.fft.fftfreq(n, d=1.0 / n)  # angular wavenumbers
    ik = 1j * k
    mask = _dealias_mask(n)
    # Integrating factor for the diffusion term over dt and dt/2.
    e_full = np.exp(-nu * k**2 * dt)
    e_half = np.exp(-nu * k**2 * dt / 2.0)

    def nonlinear(v_hat: np.ndarray) -> np.ndarray:
        """-FFT(u u_x), dealiased."""
        v = ifft(v_hat, axis=-1).real
        vx = ifft(ik * v_hat, axis=-1).real
        return -fft(v * vx, axis=-1) * mask

    v_hat = fft(u0, axis=-1) * mask
    for _ in range(n_steps):
        # RK4 with integrating factor (exact diffusion between substeps).
        k1 = nonlinear(v_hat)
        k2 = nonlinear(e_half * (v_hat + 0.5 * dt * k1))
        k3 = nonlinear(e_half * v_hat + 0.5 * dt * k2)
        k4 = nonlinear(e_full * v_hat + dt * e_half * k3)
        v_hat = (
            e_full * v_hat
            + dt / 6.0 * (e_full * k1 + 2.0 * e_half * (k2 + k3) + k4)
        )
    return ifft(v_hat, axis=-1).real


def burgers_dataset(
    n_samples: int,
    n: int = 128,
    t_final: float = 1.0,
    nu: float = 0.01,
    seed: int = 0,
    n_steps: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate ``(u0, uT)`` pairs, each of shape ``(n_samples, n)``.

    Initial conditions are GRF draws (the FNO paper's
    ``N(0, 625(-Delta + 25 I)^{-2})``).
    """
    rng = np.random.default_rng(seed)
    u0 = grf_1d(n_samples, n, alpha=2.0, tau=5.0, sigma=25.0, rng=rng)
    ut = solve_burgers(u0, t_final=t_final, nu=nu, n_steps=n_steps)
    return u0, ut
