"""2-D incompressible Navier-Stokes in vorticity form (periodic torus).

``w_t + u . grad(w) = nu Lap(w) + f`` with ``u = grad^perp(psi)``,
``Lap(psi) = -w`` — the data-generating process of the FNO paper's
turbulence benchmark (and of FourCastNet-style weather surrogates the
paper cites).  Pseudo-spectral with 2/3 dealiasing; diffusion handled
exactly by an integrating factor, advection by Heun's method.
"""

from __future__ import annotations

import numpy as np

from repro.fft.stockham import fft, ifft, is_power_of_two
from repro.pde.grf import grf_2d

__all__ = ["solve_navier_stokes", "navier_stokes_dataset", "default_forcing"]


def default_forcing(n: int) -> np.ndarray:
    """The FNO paper's fixed forcing:
    ``0.1 (sin(2 pi (x + y)) + cos(2 pi (x + y)))``."""
    xs = (np.arange(n) + 0.5) / n
    grid = xs[:, None] + xs[None, :]
    return 0.1 * (np.sin(2.0 * np.pi * grid) + np.cos(2.0 * np.pi * grid))


def _fft2(x: np.ndarray) -> np.ndarray:
    return fft(fft(x, axis=-1), axis=-2)


def _ifft2(x: np.ndarray) -> np.ndarray:
    return ifft(ifft(x, axis=-1), axis=-2)


def solve_navier_stokes(
    w0: np.ndarray,
    t_final: float = 1.0,
    nu: float = 1e-3,
    n_steps: int | None = None,
    forcing: np.ndarray | None = None,
) -> np.ndarray:
    """Advance vorticity ``w0`` (shape ``(..., n, n)``) to ``t_final``."""
    w0 = np.asarray(w0, dtype=np.float64)
    n = w0.shape[-1]
    if w0.shape[-2] != n or not is_power_of_two(n):
        raise ValueError(f"grid must be a square power of two, got {w0.shape[-2:]}")
    if t_final <= 0 or nu <= 0:
        raise ValueError("t_final and nu must be positive")
    if n_steps is None:
        n_steps = max(64, int(np.ceil(t_final * n * 4)))
    dt = t_final / n_steps

    k = 2.0 * np.pi * np.fft.fftfreq(n, d=1.0 / n)
    kx = k[:, None]
    ky = k[None, :]
    k_sq = kx**2 + ky**2
    inv_k_sq = np.where(k_sq > 0, 1.0 / np.where(k_sq > 0, k_sq, 1.0), 0.0)
    kk = np.abs(np.fft.fftfreq(n, d=1.0 / n))
    mask = ((kk[:, None] <= n // 3) & (kk[None, :] <= n // 3)).astype(float)
    e_full = np.exp(-nu * k_sq * dt)

    f_hat = _fft2(forcing if forcing is not None else default_forcing(n)) * mask

    def rhs(w_hat: np.ndarray) -> np.ndarray:
        """Nonlinear advection + forcing in spectral space, dealiased."""
        psi_hat = w_hat * inv_k_sq  # Lap(psi) = -w => psi_hat = w_hat/|k|^2
        ux = _ifft2(1j * ky * psi_hat).real  # u = d(psi)/dy
        uy = _ifft2(-1j * kx * psi_hat).real  # v = -d(psi)/dx
        wx = _ifft2(1j * kx * w_hat).real
        wy = _ifft2(1j * ky * w_hat).real
        adv = _fft2(ux * wx + uy * wy) * mask
        return -adv + f_hat

    w_hat = _fft2(w0) * mask
    for _ in range(n_steps):
        # Heun (RK2) with exact diffusion via integrating factor.
        k1 = rhs(w_hat)
        pred = e_full * (w_hat + dt * k1)
        k2 = rhs(pred)
        w_hat = e_full * w_hat + 0.5 * dt * (e_full * k1 + k2)
    return _ifft2(w_hat).real


def navier_stokes_dataset(
    n_samples: int,
    n: int = 32,
    t_final: float = 1.0,
    nu: float = 1e-3,
    seed: int = 0,
    n_steps: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate ``(w0, wT)`` pairs of shape ``(n_samples, n, n)``.

    Initial vorticity follows the FNO paper's
    ``N(0, 7^{3/2} (-Delta + 49 I)^{-2.5})``.
    """
    rng = np.random.default_rng(seed)
    w0 = grf_2d(n_samples, n, n, alpha=2.5, tau=7.0, sigma=7.0**1.5, rng=rng)
    wt = solve_navier_stokes(w0, t_final=t_final, nu=nu, n_steps=n_steps)
    return w0, wt
