"""2-D Darcy flow: ``-div(a(x) grad u) = f`` on the unit square, ``u=0``
on the boundary.

The coefficient field ``a`` is a thresholded GRF (the FNO paper's
piecewise-constant 12/3 medium), the forcing is constant, and the solve is
a five-point finite-volume discretisation with harmonic face averaging
(the standard scheme for discontinuous coefficients) through
``scipy.sparse.linalg.spsolve``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.pde.grf import grf_2d

__all__ = ["solve_darcy", "darcy_dataset", "threshold_coefficient"]


def threshold_coefficient(
    field: np.ndarray, hi: float = 12.0, lo: float = 3.0
) -> np.ndarray:
    """Push a GRF through the FNO paper's binary medium map."""
    if hi <= 0 or lo <= 0:
        raise ValueError("coefficient values must be positive (ellipticity)")
    return np.where(field >= 0.0, hi, lo)


def _harmonic(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return 2.0 * a * b / (a + b)


def solve_darcy(a: np.ndarray, f: float | np.ndarray = 1.0) -> np.ndarray:
    """Solve one Darcy problem on an ``(n, n)`` coefficient grid.

    Cell-centred grid on the unit square, homogeneous Dirichlet boundary.
    Returns ``u`` of shape ``(n, n)``.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"coefficient must be square 2-D, got {a.shape}")
    if np.any(a <= 0):
        raise ValueError("coefficient must be strictly positive")
    n = a.shape[0]
    h = 1.0 / n

    # Face transmissibilities (harmonic averages; boundary faces use the
    # cell value itself, consistent with a ghost cell holding u = 0).
    tx = np.zeros((n + 1, n))  # vertical faces between (i-1, j) and (i, j)
    tx[1:n, :] = _harmonic(a[: n - 1, :], a[1:, :])
    tx[0, :] = 2.0 * a[0, :]
    tx[n, :] = 2.0 * a[n - 1, :]
    ty = np.zeros((n, n + 1))
    ty[:, 1:n] = _harmonic(a[:, : n - 1], a[:, 1:])
    ty[:, 0] = 2.0 * a[:, 0]
    ty[:, n] = 2.0 * a[:, n - 1]

    idx = np.arange(n * n).reshape(n, n)
    diag = (tx[:n, :] + tx[1:, :] + ty[:, :n] + ty[:, 1:]).ravel()
    rows = [idx.ravel()]
    cols = [idx.ravel()]
    vals = [diag]
    # west/east neighbours (i direction)
    rows.append(idx[1:, :].ravel()); cols.append(idx[:-1, :].ravel())
    vals.append(-tx[1:n, :].ravel())
    rows.append(idx[:-1, :].ravel()); cols.append(idx[1:, :].ravel())
    vals.append(-tx[1:n, :].ravel())
    # south/north neighbours (j direction)
    rows.append(idx[:, 1:].ravel()); cols.append(idx[:, :-1].ravel())
    vals.append(-ty[:, 1:n].ravel())
    rows.append(idx[:, :-1].ravel()); cols.append(idx[:, 1:].ravel())
    vals.append(-ty[:, 1:n].ravel())

    mat = sp.csr_matrix(
        (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
        shape=(n * n, n * n),
    )
    rhs = np.full(n * n, np.asarray(f, dtype=np.float64).mean() * h * h) \
        if np.isscalar(f) or np.asarray(f).ndim == 0 \
        else np.asarray(f, dtype=np.float64).ravel() * h * h
    u = spla.spsolve(mat, rhs)
    return u.reshape(n, n)


def darcy_dataset(
    n_samples: int,
    n: int = 32,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate ``(a, u)`` pairs of shape ``(n_samples, n, n)``."""
    rng = np.random.default_rng(seed)
    fields = grf_2d(n_samples, n, n, alpha=2.0, tau=3.0, rng=rng)
    coeffs = threshold_coefficient(fields)
    sols = np.stack([solve_darcy(coeffs[i]) for i in range(n_samples)])
    return coeffs, sols
