"""Periodic Gaussian random fields with Matérn-like spectra.

Samples from ``N(0, sigma^2 (-Delta + tau^2 I)^(-alpha))`` on the periodic
unit interval/torus — the distribution the FNO paper draws its Burgers
initial conditions and Darcy coefficients from.  Sampling is spectral:
i.i.d. complex Gaussians per wavenumber, scaled by the square-root
eigenvalues of the covariance, inverse-transformed with this package's
own FFT.
"""

from __future__ import annotations

import numpy as np

from repro.fft.stockham import ifft, is_power_of_two

__all__ = ["grf_1d", "grf_2d"]


def _spectral_scale(k_sq: np.ndarray, alpha: float, tau: float,
                    sigma: float) -> np.ndarray:
    """Square-root eigenvalues of sigma^2 (4 pi^2 |k|^2 + tau^2)^(-alpha)."""
    return sigma * (4.0 * np.pi**2 * k_sq + tau**2) ** (-alpha / 2.0)


def grf_1d(
    n_samples: int,
    n: int,
    alpha: float = 2.0,
    tau: float = 5.0,
    sigma: float | None = None,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Sample ``(n_samples, n)`` real periodic 1-D GRFs.

    ``sigma`` defaults to ``tau^(alpha - 1/2)``, the FNO paper's scaling
    (which keeps the marginal variance O(1) as ``tau`` varies).
    """
    if not is_power_of_two(n):
        raise ValueError(f"n must be a power of two, got {n}")
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    if alpha <= 0.5:
        raise ValueError("alpha must exceed 1/2 for a valid 1-D covariance")
    if rng is None:
        rng = np.random.default_rng()
    if sigma is None:
        sigma = tau ** (alpha - 0.5)
    k = np.fft.fftfreq(n, d=1.0 / n)  # integer wavenumbers
    scale = _spectral_scale(k**2, alpha, tau, sigma)
    scale[0] = 0.0  # zero-mean field
    noise = rng.standard_normal((n_samples, n)) + 1j * rng.standard_normal(
        (n_samples, n)
    )
    coeffs = noise * scale * n  # unnormalised-FFT convention
    field = ifft(coeffs, axis=-1).real
    # Using the real part of an iFFT of non-symmetric coefficients halves
    # the variance; compensate so the marginal std matches the covariance.
    return field * np.sqrt(2.0)


def grf_2d(
    n_samples: int,
    nx: int,
    ny: int,
    alpha: float = 2.0,
    tau: float = 3.0,
    sigma: float | None = None,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Sample ``(n_samples, nx, ny)`` real periodic 2-D GRFs."""
    if not (is_power_of_two(nx) and is_power_of_two(ny)):
        raise ValueError(f"grid must be powers of two, got {nx}x{ny}")
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    if alpha <= 1.0:
        raise ValueError("alpha must exceed 1 for a valid 2-D covariance")
    if rng is None:
        rng = np.random.default_rng()
    if sigma is None:
        sigma = tau ** (alpha - 1.0)
    kx = np.fft.fftfreq(nx, d=1.0 / nx)[:, None]
    ky = np.fft.fftfreq(ny, d=1.0 / ny)[None, :]
    scale = _spectral_scale(kx**2 + ky**2, alpha, tau, sigma)
    scale[0, 0] = 0.0
    noise = rng.standard_normal((n_samples, nx, ny)) + 1j * rng.standard_normal(
        (n_samples, nx, ny)
    )
    coeffs = noise * scale * (nx * ny)
    field = ifft(ifft(coeffs, axis=-1), axis=-2).real
    return field * np.sqrt(2.0)
