"""PDE workload generators.

The paper's introduction motivates FNO with "fluid dynamics, weather
forecasting, and quantum mechanics"; its benchmark shapes (hidden dim
64-128, grids 128-256) come from exactly the canonical FNO datasets.
This package generates those datasets from scratch:

* :mod:`repro.pde.grf` — periodic Gaussian random fields with Matérn-like
  spectra (the initial-condition/coefficient distributions of the FNO
  paper).
* :mod:`repro.pde.burgers` — 1-D viscous Burgers via a pseudo-spectral
  integrating-factor RK4 solver.
* :mod:`repro.pde.darcy` — 2-D Darcy flow via a finite-volume discretisation
  and a sparse direct solve.
* :mod:`repro.pde.navier_stokes` — 2-D incompressible Navier-Stokes in
  vorticity form via a pseudo-spectral solver.

All solvers use this package's own FFTs (:mod:`repro.fft`), so the data
generation itself exercises the substrate.
"""

from repro.pde.burgers import burgers_dataset, solve_burgers
from repro.pde.darcy import darcy_dataset, solve_darcy
from repro.pde.grf import grf_1d, grf_2d
from repro.pde.navier_stokes import navier_stokes_dataset, solve_navier_stokes

__all__ = [
    "grf_1d",
    "grf_2d",
    "solve_burgers",
    "burgers_dataset",
    "solve_darcy",
    "darcy_dataset",
    "solve_navier_stokes",
    "navier_stokes_dataset",
]
