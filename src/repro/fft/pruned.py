"""Output-truncated and input-zero-padded FFTs via transform decomposition.

cuFFT cannot skip work: PyTorch's FNO computes a full FFT, then a memcpy
kernel extracts the kept low frequencies, and a second memcpy re-inserts
zero padding before the inverse transform (§1, limitations 1–2).
TurboFNO's kernel instead *never computes* the discarded work.  These
functions are the NumPy analogue, built on the classic transform
decomposition (a.k.a. FFT pruning):

* ``truncated_fft``: with ``N = P*Q`` and ``Q`` kept outputs,
  ``X[k] = sum_p W_N^{pk} * FFT_Q(x[p::P])[k]`` for ``k < Q`` —
  ``P`` FFTs of length ``Q`` plus a twiddle-weighted reduction, instead of
  one length-``N`` FFT plus a slice.
* ``zero_padded_fft``: with ``L`` live inputs and ``N = S*L``,
  ``X[s + S*t] = FFT_L(x * W_N^{s*n})[t]`` — ``S`` FFTs of length ``L``.
* ``truncated_ifft``: the inverse-side dual (zero-padded spectrum in,
  full-length signal out), which is exactly FNO's Step 4+5.

Each (length, split, dtype) decomposition is served by a cached
:class:`repro.fft.compiled.CompiledPrunedPlan` holding the pre-cast
decomposition twiddles and reusable gather/expand workspaces — the
legacy per-call path re-cast the tables on every invocation.  Outputs
are byte-identical to it (property-tested against
:mod:`repro.fft.legacy`), while doing the reduced work the paper's
pruning strategy claims.
"""

from __future__ import annotations

import numpy as np

from repro.fft.compiled import execute_pruned
from repro.fft.stockham import fft, ifft, is_power_of_two

__all__ = [
    "truncated_fft",
    "zero_padded_fft",
    "truncated_ifft",
    "truncated_fft_auto",
    "padded_ifft_auto",
]


def _validate_split(n: int, part: int, what: str) -> None:
    if not is_power_of_two(n):
        raise ValueError(f"transform length must be a power of two, got {n}")
    if not is_power_of_two(part):
        raise ValueError(f"{what} must be a power of two, got {part}")
    if not (1 <= part <= n):
        raise ValueError(f"{what} must be in [1, {n}], got {part}")


def truncated_fft(x: np.ndarray, n_keep: int, axis: int = -1,
                  caches=None) -> np.ndarray:
    """First ``n_keep`` outputs of the FFT of ``x`` along ``axis``.

    Equivalent to ``fft(x, axis)[..., :n_keep]`` but computes only the
    surviving work.  ``n_keep`` must be a power of two dividing the length.
    ``caches`` pins the plan lookups to one explicit
    :class:`repro.fft.compiled.PlanCaches` set (default: the current
    thread's) — how session-pooled executors keep their transforms in
    their own caches.
    """
    x = np.asarray(x)
    n = x.shape[axis]
    _validate_split(n, n_keep, "n_keep")
    if n_keep == n:
        return fft(x, axis=axis, caches=caches)
    return execute_pruned(x, n, n_keep, axis, "trunc", caches=caches)


def zero_padded_fft(x: np.ndarray, n_out: int, axis: int = -1,
                    caches=None) -> np.ndarray:
    """FFT of ``x`` zero-padded (on the right) to length ``n_out``.

    Equivalent to padding then ``fft`` but never touches the zeros.  The
    live length must be a power of two dividing ``n_out``.
    """
    x = np.asarray(x)
    n_live = x.shape[axis]
    _validate_split(n_out, n_live, "input length")
    if n_live == n_out:
        return fft(x, axis=axis, caches=caches)
    return execute_pruned(x, n_out, n_live, axis, "pad", caches=caches)


def truncated_fft_auto(x: np.ndarray, modes: int, axis: int = -1,
                       caches=None) -> np.ndarray:
    """First ``modes`` FFT outputs, pruned when the split applies.

    Falls back to the full transform plus a slice when ``modes`` is not a
    power of two dividing the length — numerically identical, just
    without the work savings.  The one truncation helper shared by the
    spectral layers (:mod:`repro.nn.modules`) and the compiled executors
    (:mod:`repro.core.compiled`).
    """
    if is_power_of_two(modes) and modes <= x.shape[axis]:
        return truncated_fft(x, modes, axis=axis, caches=caches)
    sl = [slice(None)] * x.ndim
    sl[axis] = slice(0, modes)
    return fft(x, axis=axis, caches=caches)[tuple(sl)]


def padded_ifft_auto(xk: np.ndarray, n_out: int, axis: int = -1,
                     caches=None) -> np.ndarray:
    """Zero-padded inverse FFT, pruned when the split applies.

    Falls back to an explicit pad plus the full inverse when the live
    length is not a power of two dividing ``n_out``.
    """
    if is_power_of_two(xk.shape[axis]) and xk.shape[axis] <= n_out:
        return truncated_ifft(xk, n_out, axis=axis, caches=caches)
    shape = list(xk.shape)
    shape[axis] = n_out
    padded = np.zeros(shape, dtype=xk.dtype)
    sl = [slice(None)] * xk.ndim
    sl[axis] = slice(0, xk.shape[axis])
    padded[tuple(sl)] = xk
    return ifft(padded, axis=axis, caches=caches)


def truncated_ifft(xk: np.ndarray, n_out: int, axis: int = -1,
                   caches=None) -> np.ndarray:
    """Inverse FFT of a truncated spectrum, zero-padded to ``n_out``.

    Input holds the first ``L`` frequency bins; output is the length
    ``n_out`` signal ``ifft(pad(xk, n_out))``.  This is FNO's Step 4
    (zero padding) + Step 5 (iFFT) in one pruned transform.
    """
    xk = np.asarray(xk)
    n_live = xk.shape[axis]
    _validate_split(n_out, n_live, "spectrum length")
    if n_live == n_out:
        return ifft(xk, axis=axis, caches=caches)
    return execute_pruned(xk, n_out, n_live, axis, "itrunc", caches=caches)
