"""Compiled FFT plan executors: the package's analogue of cuFFT plans.

cuFFT amortises setup by splitting work into *plan creation* (twiddle
tables, workspace sizing, kernel selection — paid once) and *execution*
(paid per call).  The legacy functional path here paid everything per
call: every ``fft()`` re-cast its twiddle tables to the working dtype,
allocated a fresh ping-pong buffer per Stockham stage, and every pruned
transform re-cast its decomposition tables.  This module introduces the
same plan/execute split for the NumPy substrate:

:class:`CompiledFFTPlan`
    Keyed on ``(length, dtype, direction)``.  Owns the pre-cast,
    concatenated stage-twiddle table and reusable ping-pong workspaces,
    and executes the whole Stockham stage loop in one call — through the
    C executor kernels (:mod:`repro.fft._ckernels`) when a host compiler
    is available, through a buffered NumPy loop otherwise.

:class:`CompiledPrunedPlan`
    Keyed on ``(length, split, dtype, kind)`` for the three transform-
    decomposition variants (output truncation, input zero-padding, and
    the padded inverse).  Owns the pre-cast decomposition twiddles, the
    gather/expand workspaces, and the sub-transform's
    :class:`CompiledFFTPlan`.

:class:`CompiledRFFTPlan` / :class:`CompiledIRFFTPlan`
    Keyed on ``(length, dtype, direction)`` for real-input (R2C) and
    real-output (C2R) transforms.  Both use the packed-real trick: a
    real length-``n`` signal is viewed as a length-``n/2`` complex
    array, one *half-length* Stockham transform runs through the cached
    :class:`CompiledFFTPlan` machinery (same twiddle tables, ping-pong
    workspaces and optional C kernels), and a single Hermitian
    recombination stage produces the ``n/2 + 1`` non-redundant bins —
    half the butterfly work of the full C2C transform the legacy path
    computed, with no full Hermitian spectrum ever materialised.

:class:`CompiledPrunedRFFTPlan` / :class:`CompiledPrunedIRFFTPlan`
    Keyed on ``(length, part, dtype, direction)``: the compounding of
    the two families above.  Spectrum truncation (``part`` kept bins of
    the ``n/2 + 1``) is fused *into* the half-length packed-real
    decomposition, so the forward path runs sub-transforms of length
    ``q = next_pow2(part)`` and recombines only the kept bins, and the
    C2R adjoint synthesises a real signal from the truncated half
    spectrum without ever materialising the full Hermitian half.
    ``part == n//2 + 1`` degenerates to the plain packed-real plans
    (bit-exact alias); ``part > n//4`` falls back to transform-then-
    slice (bit-exact vs :class:`CompiledRFFTPlan` plus a slice), since
    the decomposition only saves work once a whole sub-transform stage
    can be dropped.

Plans live in :class:`PlanCaches` — an *instantiable* set of the four
caches bound to one executor backend (``"auto"`` picks the C kernels
when available, ``"numpy"`` forces the fallback, ``"ckernels"``
requires the C layer).  A process-wide default set backs the
module-level getters (:func:`get_fft_plan`, :func:`get_pruned_plan`,
:func:`get_rfft_plan`, :func:`get_irfft_plan`): two requests with the
same key return the *same plan object*, so workspaces and tables are
shared exactly like cuFFT plan handles.  The functional API
(:mod:`repro.fft.stockham`, :mod:`repro.fft.pruned`,
:mod:`repro.fft.real`) is a thin wrapper over these caches, and an
execution context (:class:`repro.api.Session`) can install its own set
for the current thread with :func:`plan_cache_scope` — distinct cache
sets never share plans or workspaces.

Everything produced by a compiled plan is **byte-identical** to the
legacy per-call path (:mod:`repro.fft.legacy`): the C kernels replay
NumPy's exact floating-point recurrences (see ``_kernels.c``) and are
self-checked against NumPy at load time.  Property tests enforce the
bit-equality across dtypes, axes, layouts and truncation splits.

Plans serialise their execution with an internal lock (the C kernels
release the GIL), so sharing the global caches across threads is safe,
if not parallel.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from functools import lru_cache

import numpy as np

from repro.core.dtypes import complex_dtype_for
from repro.fft._ckernels import build_info, get_kernels, kernels_available
from repro.fft.twiddle import decomposition_twiddles, stage_twiddles

__all__ = [
    "BACKENDS",
    "CompiledFFTPlan",
    "CompiledPrunedPlan",
    "CompiledRFFTPlan",
    "CompiledIRFFTPlan",
    "CompiledPrunedRFFTPlan",
    "CompiledPrunedIRFFTPlan",
    "PrunedPartMismatchError",
    "PlanCaches",
    "current_plan_caches",
    "default_plan_caches",
    "plan_cache_scope",
    "get_fft_plan",
    "get_pruned_plan",
    "get_rfft_plan",
    "get_irfft_plan",
    "get_pruned_rfft_plan",
    "get_pruned_irfft_plan",
    "fft_plan_cache_info",
    "clear_fft_plan_cache",
    "kernels_available",
    "resolve_backend_kernels",
    "panel_contract",
    "decomp_reduce",
    "expand_mul",
    "workspace_empty",
    "workspace_zeros",
]

#: Executor-backend spellings accepted everywhere a ``backend`` is taken.
BACKENDS = ("auto", "ckernels", "numpy")

#: Cached plans per (n, dtype, direction) / (n, part, dtype, kind).  A
#: full figure sweep touches a handful of lengths; 256 is generous.
FFT_PLAN_CACHE_SIZE = 256

#: Largest per-buffer workspace (bytes) a cached plan will *retain*.
#: Plans live in process-wide caches, so their workspaces outlive calls;
#: batches needing more than this get a fresh temporary instead, keeping
#: resident memory bounded no matter how large one call was.
WORKSPACE_RETAIN_BYTES = 64 * 1024 * 1024


def _is_power_of_two(n: int) -> bool:
    return n >= 1 and (n & (n - 1)) == 0


# ---------------------------------------------------------------------------
# Kernel helpers with bit-exact NumPy fallbacks
# ---------------------------------------------------------------------------

def resolve_backend_kernels(backend: str):
    """Validate a backend spelling; return its pinned kernels (or None).

    ``"numpy"`` pins the pure-NumPy substrate (returns ``None``) and
    ``"ckernels"`` requires the C layer (returns it, or raises
    :class:`RuntimeError` when it cannot be loaded).  ``"auto"`` returns
    ``None`` *without* touching the kernel loader — auto resolution
    happens lazily at execution time (:meth:`PlanCaches.kernels`), so
    validating an auto backend (e.g. at ``import repro``) never invokes
    the C compiler.  Both substrates produce identical bits; the
    spelling only pins *which* one runs.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend in ("numpy", "auto"):
        return None
    kernels = get_kernels()
    if kernels is None:
        raise RuntimeError(
            f"backend='ckernels' requested but the C executor kernels are "
            f"unavailable ({build_info()})"
        )
    return kernels


#: Sentinel: helpers resolve kernels from the current plan-cache scope.
_SCOPED = object()


def _scoped_kernels():
    return current_plan_caches().kernels()


def panel_contract(
    a: np.ndarray, w: np.ndarray, acc: np.ndarray, kernels=_SCOPED
) -> None:
    """``acc += einsum("bkm,ko->bom", a, w)`` (contiguous operands)."""
    k = _scoped_kernels() if kernels is _SCOPED else kernels
    bt, kt, m = a.shape
    o = w.shape[1]
    if k is not None:
        k.panel_contract(a, w, acc, bt, kt, m, o)
    else:
        acc += np.einsum("bkm,ko->bom", a, w)


def decomp_reduce(
    y: np.ndarray, wd: np.ndarray, out: np.ndarray, kernels=_SCOPED
) -> None:
    """``out[...] = einsum("bpk,pk->bk", y, wd)`` (contiguous operands)."""
    k = _scoped_kernels() if kernels is _SCOPED else kernels
    batch, p, q = y.shape
    if k is not None:
        k.decomp_reduce(y, wd, out, batch, p, q)
    else:
        np.einsum("bpk,pk->bk", y, wd, out=out)


def expand_mul(
    x: np.ndarray, wd: np.ndarray, out: np.ndarray, kernels=_SCOPED
) -> None:
    """``out[...] = x[:, None, :] * wd`` (contiguous operands)."""
    k = _scoped_kernels() if kernels is _SCOPED else kernels
    batch, q = x.shape
    s = wd.shape[0]
    if k is not None:
        k.expand_mul(x, wd, out, batch, s, q)
    else:
        np.multiply(x[:, None, :], wd, out=out)


# ---------------------------------------------------------------------------
# FFT plans
# ---------------------------------------------------------------------------

class _WorkspaceOwner:
    """Named, grow-only per-plan workspaces of the plan's dtype.

    Buffers are retained across calls only below
    :data:`WORKSPACE_RETAIN_BYTES` (plans live in process-wide caches,
    so retained workspaces outlive calls); larger requests get one-shot
    temporaries.  Subclasses call :meth:`_init_workspaces` after setting
    ``self.dtype``.
    """

    def _init_workspaces(self) -> None:
        self._lock = threading.Lock()
        self._buffers: dict[str, np.ndarray] = {}

    def _ws(self, name: str, size: int) -> np.ndarray:
        buf = self._buffers.get(name)
        if buf is None or buf.size < size:
            buf = np.empty(size, self.dtype)
            if size * self.dtype.itemsize <= WORKSPACE_RETAIN_BYTES:
                self._buffers[name] = buf  # else: one-shot temporary
        return buf


class CompiledFFTPlan:
    """One direction of one transform length in one precision.

    Execution operates on a C-contiguous ``(rows, n)`` array of the
    plan's dtype and returns a new (or caller-provided) array of the
    same shape.  ``div_by``/``mul_by`` chain the inverse normalisation
    and the pruned-inverse rescale into the final stage — the same two
    roundings the legacy path applied in separate passes.
    """

    def __init__(self, n: int, dtype: np.dtype, inverse: bool,
                 backend: str = "auto"):
        if not _is_power_of_two(n):
            raise ValueError(f"n must be a power of two, got {n}")
        resolve_backend_kernels(backend)  # validate (and require ckernels)
        self.n = n
        self.dtype = np.dtype(dtype)
        self.inverse = inverse
        self.backend = backend
        # Per-stage tables (NumPy path) and their concatenation (C path),
        # pre-cast once at plan time.
        self._stage_tw: list[np.ndarray] = []
        span = 2
        while span <= n:
            w = stage_twiddles(span, inverse=inverse).astype(self.dtype)
            w.setflags(write=False)
            self._stage_tw.append(w)
            span *= 2
        if self._stage_tw:
            self._tw_concat = np.ascontiguousarray(
                np.concatenate(self._stage_tw)
            )
        else:  # n == 1
            self._tw_concat = np.zeros(0, self.dtype)
        self._lock = threading.Lock()
        self._scratch = np.zeros(0, self.dtype)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        d = "ifft" if self.inverse else "fft"
        return f"CompiledFFTPlan({d}, n={self.n}, {self.dtype.name})"

    def _scratch_for(self, size: int) -> np.ndarray:
        if self._scratch.size < size:
            if size * self.dtype.itemsize > WORKSPACE_RETAIN_BYTES:
                return np.empty(size, self.dtype)  # too big to keep
            self._scratch = np.empty(size, self.dtype)
        return self._scratch

    def execute(
        self,
        flat: np.ndarray,
        out: np.ndarray | None = None,
        div_by: float | None = None,
        mul_by: float | None = None,
    ) -> np.ndarray:
        """Transform every row of a contiguous ``(rows, n)`` array."""
        rows, n = flat.shape
        if out is None:
            out = np.empty((rows, n), self.dtype)
        with self._lock:
            kernels = None if self.backend == "numpy" else get_kernels()
            if kernels is not None:
                scratch = self._scratch_for(rows * n)
                kernels.stockham(
                    flat, out, scratch, self._tw_concat, rows, n,
                    div_by, mul_by,
                )
            else:
                self._execute_numpy(flat, out, div_by, mul_by)
        return out

    def _execute_numpy(self, flat, out, div_by, mul_by) -> None:
        """Buffered NumPy stage loop (bit-identical to the legacy path,
        minus the per-call twiddle casts and buffer churn)."""
        rows, n = flat.shape
        if n == 1:
            np.copyto(out, flat)
        else:
            cur = flat
            for s, w in enumerate(self._stage_tw):
                span = 2 << s
                half = span // 2
                r = n // span
                a = cur[:, : n // 2].reshape(rows, r, half)
                b = cur[:, n // 2 :].reshape(rows, r, half)
                wb = w * b
                nxt = out if s == len(self._stage_tw) - 1 else np.empty(
                    (rows, n), self.dtype
                )
                nv = nxt.reshape(rows, r, span)
                np.add(a, wb, out=nv[:, :, :half])
                np.subtract(a, wb, out=nv[:, :, half:])
                cur = nxt
        if div_by is not None:
            out /= div_by
        if mul_by is not None:
            out *= mul_by


# ---------------------------------------------------------------------------
# Pruned-transform plans
# ---------------------------------------------------------------------------

class CompiledPrunedPlan(_WorkspaceOwner):
    """One transform-decomposition split in one precision.

    ``kind`` selects the dataflow: ``"trunc"`` (first ``part`` outputs),
    ``"pad"`` (``part`` live inputs, zero-padded to ``n``) or
    ``"itrunc"`` (``part`` spectrum bins in, length-``n`` signal out).
    ``part == n`` degenerates to the plain transform.

    ``caches`` names the owning :class:`PlanCaches`: the sub-transform's
    plan is resolved from the same set (so a private cache set never
    leaks plans into — or out of — the process-wide default), and the
    helper kernels follow that set's backend.
    """

    def __init__(self, n: int, part: int, dtype: np.dtype, kind: str,
                 caches: "PlanCaches | None" = None):
        if kind not in ("trunc", "pad", "itrunc"):
            raise ValueError(f"unknown pruned-plan kind {kind!r}")
        self.n = n
        self.part = part
        self.dtype = np.dtype(dtype)
        self.kind = kind
        self.split = n // part  # P (trunc) or S (pad/itrunc)
        self._caches = caches
        inverse = kind == "itrunc"
        fft_lookup = caches.fft if caches is not None else get_fft_plan
        self._fft = fft_lookup(part, dtype, inverse)
        if part < n:
            wd = decomposition_twiddles(n, self.split, part, inverse=inverse)
            self._wd = np.ascontiguousarray(wd.astype(self.dtype))
            self._wd.setflags(write=False)
        else:
            self._wd = None
        self._init_workspaces()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledPrunedPlan({self.kind}, n={self.n}, part={self.part}, "
            f"{self.dtype.name})"
        )

    def _kernels(self):
        if self._caches is not None:
            return self._caches.kernels()
        return _scoped_kernels()

    # -- axis-last entry point (callers have already done moveaxis) ----

    def apply(self, moved: np.ndarray) -> np.ndarray:
        """Run the pruned transform over the last axis of ``moved``."""
        lead = moved.shape[:-1]
        batch = 1
        for d in lead:
            batch *= d
        if self.kind == "trunc":
            out = self._trunc(moved, lead, batch)
        elif self.kind == "pad":
            out = self._pad(moved, lead, batch)
        else:
            out = self._itrunc(moved, lead, batch)
        return out

    def _full_flat(self, moved, batch, n):
        """Gather+cast an arbitrary-layout (..., n) array to (batch, n)."""
        buf = self._ws("gather", batch * n)[: batch * n]
        view = buf.reshape(*moved.shape[:-1], n)
        view[...] = moved
        return buf.reshape(batch, n)

    def _trunc(self, moved, lead, batch):
        n, q, p = self.n, self.part, self.split
        if p == 1:
            flat = self._full_flat(moved, batch, n)
            with self._lock:
                out = self._fft.execute(flat)
            return out.reshape(*lead, n)
        with self._lock:
            # Gather the P subsequences: buf[b, p, k] = moved[b, k*P + p].
            buf = self._ws("gather", batch * n)
            bview = buf[: batch * n].reshape(*lead, p, q)
            bview[...] = np.swapaxes(moved.reshape(*lead, q, p), -1, -2)
            fbuf = self._ws("fft", batch * n)[: batch * n].reshape(-1, q)
            self._fft.execute(buf[: batch * n].reshape(batch * p, q), out=fbuf)
            out = np.empty((batch, q), self.dtype)
            decomp_reduce(fbuf.reshape(batch, p, q), self._wd, out,
                          kernels=self._kernels())
        return out.reshape(*lead, q)

    def _pad(self, moved, lead, batch):
        n, live, s = self.n, self.part, self.split
        if s == 1:
            flat = self._full_flat(moved, batch, n)
            with self._lock:
                out = self._fft.execute(flat)
            return out.reshape(*lead, n)
        with self._lock:
            flat = self._full_flat(moved, batch, live)
            sc = self._ws("scaled", batch * n)[: batch * n]
            expand_mul(flat, self._wd, sc.reshape(batch, s, live),
                       kernels=self._kernels())
            y = self._fft.execute(sc.reshape(batch * s, live))
        out = np.empty((*lead, n), self.dtype)
        # Interleave: out[..., ss + s*t] = y[..., ss, t].
        out.reshape(*lead, live, s)[...] = np.swapaxes(
            y.reshape(*lead, s, live), -1, -2
        )
        return out

    def _itrunc(self, moved, lead, batch):
        n, live, s = self.n, self.part, self.split
        if s == 1:
            flat = self._full_flat(moved, batch, n)
            with self._lock:
                out = self._fft.execute(flat, div_by=float(n))
            return out.reshape(*lead, n)
        with self._lock:
            flat = self._full_flat(moved, batch, live)
            sc = self._ws("scaled", batch * n)[: batch * n]
            expand_mul(flat, self._wd, sc.reshape(batch, s, live),
                       kernels=self._kernels())
            y = self._fft.execute(
                sc.reshape(batch * s, live),
                div_by=float(live),
                mul_by=float(live / n),
            )
        out = np.empty((*lead, n), self.dtype)
        out.reshape(*lead, live, s)[...] = np.swapaxes(
            y.reshape(*lead, s, live), -1, -2
        )
        return out


# ---------------------------------------------------------------------------
# Real-input / real-output plans (the packed-real trick)
# ---------------------------------------------------------------------------

def _real_dtype_of(cdtype: np.dtype) -> np.dtype:
    return np.dtype(np.float32 if np.dtype(cdtype) == np.complex64
                    else np.float64)


class CompiledRFFTPlan(_WorkspaceOwner):
    """R2C transform of one length in one precision.

    A real length-``n`` row is *viewed* as ``n/2`` complex samples
    ``z[m] = x[2m] + i x[2m+1]`` (a free reinterpretation of the
    contiguous buffer), one half-length forward transform runs through
    the cached :class:`CompiledFFTPlan`, and the Hermitian recombination

    ``X[k] = (Z[k] + conj(Z[h-k]))/2 - (i/2) W_n^k (Z[k] - conj(Z[h-k]))``

    (indices mod ``h = n/2``) yields the ``h + 1`` non-redundant bins.
    The recombination runs in NumPy under both executor backends, so
    outputs are bit-identical across the C-kernel and fallback paths
    (the sub-transform already is).
    """

    def __init__(self, n: int, dtype: np.dtype,
                 caches: "PlanCaches | None" = None):
        if not _is_power_of_two(n):
            raise ValueError(f"n must be a power of two, got {n}")
        self.n = n
        self.dtype = np.dtype(dtype)
        self.real_dtype = _real_dtype_of(self.dtype)
        self.half = n // 2
        fft_lookup = caches.fft if caches is not None else get_fft_plan
        if n > 1:
            self._sub = fft_lookup(self.half, self.dtype, inverse=False)
            k = np.arange(self.half + 1)
            # W_n^k pre-folded with the -i/2 of the odd-part term.
            wm = (-0.5j * np.exp(-2j * np.pi * k / n)).astype(self.dtype)
            wm.setflags(write=False)
            self._wm = wm
            self._idx = k % self.half            # Z[k mod h]
            self._ridx = (self.half - k) % self.half  # Z[(h-k) mod h]
        self._init_workspaces()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledRFFTPlan(n={self.n}, {self.real_dtype.name})"

    def execute(self, flat: np.ndarray) -> np.ndarray:
        """Half spectrum of every row of a contiguous real ``(rows, n)``
        array; returns a new ``(rows, n//2 + 1)`` complex array."""
        rows, n = flat.shape
        if n != self.n:
            raise ValueError(f"expected rows of length {self.n}, got {n}")
        if flat.dtype != self.real_dtype or not flat.flags.c_contiguous:
            raise ValueError(
                f"expected contiguous {self.real_dtype.name} rows, "
                f"got {flat.dtype.name}"
            )
        if n == 1:
            return flat.astype(self.dtype)
        h = self.half
        with self._lock:
            z = flat.view(self.dtype)  # free (rows, h) packing
            zf = self._ws("fft", rows * h)[: rows * h].reshape(rows, h)
            self._sub.execute(z, out=zf)
            a = np.take(zf, self._idx, axis=1)
            b = np.conj(np.take(zf, self._ridx, axis=1))
            out = np.empty((rows, h + 1), self.dtype)
            np.add(a, b, out=out)
            out *= 0.5
            np.subtract(a, b, out=a)
            a *= self._wm
            out += a
        return out


class CompiledIRFFTPlan(_WorkspaceOwner):
    """C2R transform of one length in one precision.

    The adjoint of :class:`CompiledRFFTPlan`'s recombination rebuilds
    the packed half-length spectrum ``Z`` from the ``h + 1`` input bins,
    one half-length *inverse* transform (with its ``1/h`` normalisation
    chained into the final stage) recovers ``z``, and the real/imag
    parts interleave straight into the even/odd output samples — the
    full Hermitian spectrum the legacy ``hermitian_pad`` path built is
    never materialised.  The imaginary parts of the DC and Nyquist bins
    are discarded, matching ``numpy.fft.irfft`` and the legacy
    take-the-real-part semantics.
    """

    def __init__(self, n: int, dtype: np.dtype,
                 caches: "PlanCaches | None" = None):
        if not _is_power_of_two(n):
            raise ValueError(f"n must be a power of two, got {n}")
        self.n = n
        self.dtype = np.dtype(dtype)
        self.real_dtype = _real_dtype_of(self.dtype)
        self.half = n // 2
        fft_lookup = caches.fft if caches is not None else get_fft_plan
        if n > 1:
            self._sub = fft_lookup(self.half, self.dtype, inverse=True)
            k = np.arange(self.half)
            # conj(W_n^k) pre-folded with the +i/2 of the odd-part term.
            wj = (0.5j * np.exp(+2j * np.pi * k / n)).astype(self.dtype)
            wj.setflags(write=False)
            self._wj = wj
        self._init_workspaces()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledIRFFTPlan(n={self.n}, {self.real_dtype.name})"

    def execute(self, flat: np.ndarray) -> np.ndarray:
        """Real signal of every row of a contiguous ``(rows, n//2 + 1)``
        complex array; returns a new real ``(rows, n)`` array."""
        rows, bins = flat.shape
        if bins != self.half + 1:
            raise ValueError(
                f"expected {self.half + 1} half-spectrum bins, got {bins}"
            )
        if flat.dtype != self.dtype:
            raise ValueError(
                f"expected {self.dtype.name} bins, got {flat.dtype.name}"
            )
        if self.n == 1:
            return np.ascontiguousarray(flat.real.astype(self.real_dtype))
        h = self.half
        with self._lock:
            a = np.array(flat[:, :h])
            a[:, 0] = flat[:, 0].real  # drop Im(DC)
            b = np.conj(flat[:, h:0:-1])
            b[:, 0] = flat[:, h].real  # drop Im(Nyquist)
            zk = a + b
            zk *= 0.5
            d = a - b
            d *= self._wj
            zk += d
            zbuf = self._ws("fft", rows * h)[: rows * h].reshape(rows, h)
            self._sub.execute(zk, out=zbuf, div_by=float(h))
            out = np.empty((rows, self.n), self.real_dtype)
            out.view(self.dtype)[...] = zbuf  # unpack: even=Re, odd=Im
        return out


# ---------------------------------------------------------------------------
# Pruned real-transform plans (truncation fused into the packed-real trick)
# ---------------------------------------------------------------------------

class PrunedPartMismatchError(ValueError):
    """A truncated half spectrum's bin count disagrees with the plan's
    ``part``.

    Raised by the pruned-R2C/C2R plans when an executed array does not
    carry exactly ``part`` bins, and by the symmetric spectral-conv
    executors when a caller-supplied truncation width disagrees with
    the plan they staged — the typed replacement for what was
    previously an unchecked slice-after-transform assumption.
    """


def _next_pow2(m: int) -> int:
    return 1 << (max(int(m), 1) - 1).bit_length()


def _validate_rfft_part(n: int, part: int) -> int:
    if not _is_power_of_two(n):
        raise ValueError(f"n must be a power of two, got {n}")
    bins = n // 2 + 1
    if not 1 <= part <= bins:
        raise ValueError(
            f"part must be in [1, {bins}] (the non-redundant half-"
            f"spectrum bins of n={n}), got {part}"
        )
    return bins


class CompiledPrunedRFFTPlan(_WorkspaceOwner):
    """R2C transform keeping only the first ``part`` half-spectrum bins.

    The packed-real trick needs *two* spectra of the length-``h = n/2``
    packing ``z[m] = x[2m] + i x[2m+1]``: ``Z[k]`` and the reversed
    conjugate ``conj(Z[(h-k) mod h])``.  Both come from one shared set
    of Sorensen sub-transforms — with ``q = next_pow2(part)`` and
    ``P = h/q``, the length-``q`` spectra ``Y[p] = FFT_q(z[p::P])``
    give ``Z[k] = sum_p W_h^{pk} Y[p, k]`` and (because
    ``conj(Z[(h-k) mod h]) = FFT_h(conj z)[k]``) the mirror series
    ``sum_p W_h^{pk} conj(Y[p, (q-k) mod q])``.  Folding the Hermitian
    recombination weights into the decomposition twiddles turns the
    whole forward path into one gather, one half-length-``q`` Stockham
    batch, and two ``decomp_reduce`` contractions:

    ``X[k] = sum_p U[p,k] Y[p,k] + sum_p V[p,k] conj(Y[p,(q-k)%q])``

    with ``U = W_h^{pk} (1/2 + w_m[k])``, ``V = W_h^{pk} (1/2 - w_m[k])``
    and ``w_m[k] = -(i/2) W_n^k`` — only the kept bins are ever
    recombined, and the sub-transforms stop ``log2(h/q)`` stages early.

    ``part == n//2 + 1`` delegates to the plain
    :class:`CompiledRFFTPlan` (bit-exact alias); ``q > h/2`` (no whole
    stage to drop) falls back to transform-then-slice, bit-exact versus
    the full plan plus a slice.  Outputs are bit-identical across
    executor backends and repeat executions; versus the full transform
    the decomposition reassociates, so equality with ``rfft`` + slice
    is to working precision (like every pruned family).
    """

    def __init__(self, n: int, part: int, dtype: np.dtype,
                 caches: "PlanCaches | None" = None):
        bins = _validate_rfft_part(n, part)
        self.n = n
        self.part = part
        self.dtype = np.dtype(dtype)
        self.real_dtype = _real_dtype_of(self.dtype)
        self.half = n // 2
        self._caches = caches
        h = self.half
        real_lookup = caches.rfft if caches is not None else get_rfft_plan
        fft_lookup = caches.fft if caches is not None else get_fft_plan
        self._full = None
        self._sub = None
        if part == bins or n == 1:
            self._strategy = "full"
            self._full = real_lookup(n, self.dtype)
        elif _next_pow2(part) > h // 2:
            self._strategy = "slice"
            self._full = real_lookup(n, self.dtype)
        else:
            self._strategy = "decomp"
            q = _next_pow2(part)
            p = h // q
            self._q = q
            self._split = p
            self._sub = fft_lookup(q, self.dtype, inverse=False)
            wd = decomposition_twiddles(h, p, q, inverse=False)
            k = np.arange(q)
            wm = -0.5j * np.exp(-2j * np.pi * k / n)
            u = np.ascontiguousarray((wd * (0.5 + wm)).astype(self.dtype))
            v = np.ascontiguousarray((wd * (0.5 - wm)).astype(self.dtype))
            u.setflags(write=False)
            v.setflags(write=False)
            self._u = u
            self._v = v
            self._ridx = (q - k) % q  # Y[(q-k) mod q] gather
        self._init_workspaces()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledPrunedRFFTPlan(n={self.n}, part={self.part}, "
            f"{self.real_dtype.name}, {self._strategy})"
        )

    def _kernels(self):
        if self._caches is not None:
            return self._caches.kernels()
        return _scoped_kernels()

    def execute(self, flat: np.ndarray) -> np.ndarray:
        """First ``part`` half-spectrum bins of every row of a
        contiguous real ``(rows, n)`` array; returns a new
        ``(rows, part)`` complex array."""
        rows, n = flat.shape
        if n != self.n:
            raise ValueError(f"expected rows of length {self.n}, got {n}")
        if self._strategy == "full":
            return self._full.execute(flat)
        if self._strategy == "slice":
            full = self._full.execute(flat)
            return np.ascontiguousarray(full[:, : self.part])
        if flat.dtype != self.real_dtype or not flat.flags.c_contiguous:
            raise ValueError(
                f"expected contiguous {self.real_dtype.name} rows, "
                f"got {flat.dtype.name}"
            )
        h, q, p, m = self.half, self._q, self._split, self.part
        with self._lock:
            z = flat.view(self.dtype)  # free (rows, h) packing
            # Gather the P subsequences: g[b, p, t] = z[b, t*P + p].
            g = self._ws("gather", rows * h)[: rows * h]
            gv = g.reshape(rows, p, q)
            gv[...] = np.swapaxes(z.reshape(rows, q, p), -1, -2)
            y = self._ws("fft", rows * h)[: rows * h].reshape(rows * p, q)
            self._sub.execute(g.reshape(rows * p, q), out=y)
            yv = y.reshape(rows, p, q)
            # Mirror spectra: yr[b, p, k] = conj(Y[b, p, (q-k) mod q]).
            yr = self._ws("rev", rows * h)[: rows * h].reshape(rows, p, q)
            np.take(yv, self._ridx, axis=2, out=yr)
            np.conjugate(yr, out=yr)
            acc = np.empty((rows, q), self.dtype)
            decomp_reduce(yv, self._u, acc, kernels=self._kernels())
            acc2 = self._ws("acc", rows * q)[: rows * q].reshape(rows, q)
            decomp_reduce(yr, self._v, acc2, kernels=self._kernels())
            acc += acc2
            out = np.ascontiguousarray(acc[:, :m]) if m < q else acc
        return out


class CompiledPrunedIRFFTPlan(_WorkspaceOwner):
    """C2R transform synthesising from ``part`` half-spectrum bins.

    The adjoint of :class:`CompiledPrunedRFFTPlan`: the packed spectrum
    ``Z`` rebuilt from a truncated half spectrum is supported on just
    two blocks — ``Z[j] = (1/2 + w_j[j]) X[j]`` for ``j < part`` (head)
    and ``Z[h-r] = (1/2 - w_j[h-r]) conj(X[r])`` for ``0 < r < part``
    (tail), with ``w_j[j] = (i/2) W_n^{-j}`` and Im(DC) dropped — so
    the input-pruned inverse decomposition scatters those ``2*part - 1``
    live bins into ``S = h/q`` weighted length-``q`` rows
    (two ``expand_mul`` passes: ``W_h^{+s t}`` for the head,
    ``W_h^{+s (t - q)}`` for the tail aliases), runs the sub-inverse
    batch with the ``1/h`` normalisation chained in, interleaves, and
    unpacks even=Re / odd=Im into the real output.  The full Hermitian
    half is never materialised and the inverse butterflies stop
    ``log2(h/q)`` stages early.

    Degenerate/fallback strategies and the bit-identity contract mirror
    the forward plan (``part == n//2 + 1`` aliases
    :class:`CompiledIRFFTPlan` bit-exactly; large ``part`` falls back
    to zero-pad + full C2R, bit-exact versus that composition).
    """

    def __init__(self, n: int, part: int, dtype: np.dtype,
                 caches: "PlanCaches | None" = None):
        bins = _validate_rfft_part(n, part)
        self.n = n
        self.part = part
        self.dtype = np.dtype(dtype)
        self.real_dtype = _real_dtype_of(self.dtype)
        self.half = n // 2
        self._caches = caches
        h = self.half
        real_lookup = caches.irfft if caches is not None else get_irfft_plan
        fft_lookup = caches.fft if caches is not None else get_fft_plan
        self._full = None
        self._sub = None
        if part == bins or n == 1:
            self._strategy = "full"
            self._full = real_lookup(n, self.dtype)
        elif _next_pow2(part) > h // 2:
            self._strategy = "pad"
            self._full = real_lookup(n, self.dtype)
        else:
            self._strategy = "decomp"
            q = _next_pow2(part)
            s = h // q
            self._q = q
            self._split = s
            self._sub = fft_lookup(q, self.dtype, inverse=True)
            j = np.arange(part)
            wj = 0.5j * np.exp(+2j * np.pi * j / n)
            ch = (0.5 + wj).astype(self.dtype)       # head: Z[j] = ch[j] X[j]
            r = np.arange(1, part)
            wjt = 0.5j * np.exp(+2j * np.pi * (h - r) / n)
            ct = (0.5 - wjt).astype(self.dtype)  # tail: Z[h-r] = ct conj(X[r])
            ch.setflags(write=False)
            ct.setflags(write=False)
            self._ch = ch
            self._ct = ct
            self._tidx = q - r  # tail alias t = (h - r) mod q = q - r
            ss, t = np.ogrid[0:s, 0:q]
            wdh = np.exp(+2j * np.pi * ss * t / h)
            wdt = np.exp(+2j * np.pi * ss * (t - q) / h)
            self._wdh = np.ascontiguousarray(wdh.astype(self.dtype))
            self._wdt = np.ascontiguousarray(wdt.astype(self.dtype))
            self._wdh.setflags(write=False)
            self._wdt.setflags(write=False)
        self._init_workspaces()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledPrunedIRFFTPlan(n={self.n}, part={self.part}, "
            f"{self.real_dtype.name}, {self._strategy})"
        )

    def _kernels(self):
        if self._caches is not None:
            return self._caches.kernels()
        return _scoped_kernels()

    def _check_bins(self, flat: np.ndarray) -> None:
        rows, bins = flat.shape
        if bins != self.part:
            raise PrunedPartMismatchError(
                f"expected {self.part} truncated half-spectrum bins, "
                f"got {bins}"
            )
        if flat.dtype != self.dtype:
            raise ValueError(
                f"expected {self.dtype.name} bins, got {flat.dtype.name}"
            )

    def _padded_full(self, flat: np.ndarray) -> np.ndarray:
        rows = flat.shape[0]
        pad = np.zeros((rows, self.half + 1), self.dtype)
        pad[:, : self.part] = flat
        return self._full.execute(pad)

    def execute(self, flat: np.ndarray) -> np.ndarray:
        """Real signal of every row of a ``(rows, part)`` truncated
        half spectrum (bins ``part..n//2`` implicitly zero); returns a
        new real ``(rows, n)`` array."""
        self._check_bins(flat)
        if self._strategy == "full":
            return self._full.execute(flat)
        if self._strategy == "pad":
            return self._padded_full(flat)
        rows = flat.shape[0]
        h, q, s, m = self.half, self._q, self._split, self.part
        with self._lock:
            # Head block: hb[b, t] = ch[t] X[b, t] for t < part (Im(DC)
            # dropped), zero-padded to the q sub-transform bins.
            hb = self._ws("head", rows * q)[: rows * q].reshape(rows, q)
            hb[:, m:] = 0
            np.multiply(flat, self._ch, out=hb[:, :m])
            hb[:, 0] = flat[:, 0].real * self._ch[0]
            # Tail block: tb[b, q-r] = ct[r] conj(X[b, r]), r in [1, part).
            tb = self._ws("tail", rows * q)[: rows * q].reshape(rows, q)
            tb[...] = 0
            if m > 1:
                tb[:, self._tidx] = np.conj(flat[:, 1:m]) * self._ct
            # Scatter both blocks into the S weighted sub-rows.
            sc = self._ws("scaled", rows * h)[: rows * h]
            scv = sc.reshape(rows, s, q)
            sc2 = self._ws("scaled2", rows * h)[: rows * h].reshape(rows, s, q)
            expand_mul(hb, self._wdh, scv, kernels=self._kernels())
            expand_mul(tb, self._wdt, sc2, kernels=self._kernels())
            scv += sc2
            y = self._ws("fft", rows * h)[: rows * h].reshape(rows * s, q)
            self._sub.execute(
                sc.reshape(rows * s, q), out=y,
                div_by=float(q), mul_by=float(q / h),
            )
            out = np.empty((rows, self.n), self.real_dtype)
            z = out.view(self.dtype)  # packed (rows, h): even=Re, odd=Im
            # Interleave: z[b, ss + S*t] = y[b, ss, t].
            z.reshape(rows, q, s)[...] = np.swapaxes(
                y.reshape(rows, s, q), -1, -2
            )
        return out


# ---------------------------------------------------------------------------
# Plan caches: one instantiable set per execution context
# ---------------------------------------------------------------------------

class PlanCaches:
    """One set of FFT/pruned/R2C/C2R/pruned-R2C plan caches bound to
    one backend.

    The cuFFT analogue of a *context*: plans requested through one set
    are private to it — sub-plans (a pruned plan's half-length
    transform, the packed-real plans' sub-FFT) resolve from the same
    set, so two sets never share plan objects or workspaces.  A
    process-wide default set (:func:`default_plan_caches`) backs the
    module-level getters; :class:`repro.api.Session` owns a set per
    session and installs it for the current thread with
    :func:`plan_cache_scope`.

    ``backend`` pins the executor substrate for every plan in the set:
    ``"auto"`` (C kernels when available), ``"ckernels"`` (required; a
    missing C layer raises at construction) or ``"numpy"`` (forced
    fallback).  Outputs are byte-identical across backends.
    """

    def __init__(self, backend: str = "auto",
                 maxsize: int = FFT_PLAN_CACHE_SIZE):
        resolve_backend_kernels(backend)  # validate spelling/availability
        self.backend = backend
        self._fft_cached = lru_cache(maxsize=maxsize)(self._build_fft)
        self._pruned_cached = lru_cache(maxsize=maxsize)(self._build_pruned)
        self._real_cached = lru_cache(maxsize=maxsize)(self._build_real)
        self._pruned_real_cached = lru_cache(maxsize=maxsize)(
            self._build_pruned_real
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PlanCaches(backend={self.backend!r})"

    # -- builders (one per cache; keys are already normalised) ----------

    def _build_fft(self, n, dtype, inverse) -> CompiledFFTPlan:
        return CompiledFFTPlan(n, dtype, inverse, backend=self.backend)

    def _build_pruned(self, n, part, dtype, kind) -> CompiledPrunedPlan:
        return CompiledPrunedPlan(n, part, dtype, kind, caches=self)

    def _build_real(self, n, dtype, inverse):
        cls = CompiledIRFFTPlan if inverse else CompiledRFFTPlan
        return cls(n, dtype, caches=self)

    def _build_pruned_real(self, n, part, dtype, inverse):
        cls = CompiledPrunedIRFFTPlan if inverse else CompiledPrunedRFFTPlan
        return cls(n, part, dtype, caches=self)

    # -- lookups --------------------------------------------------------

    def fft(self, n: int, dtype=np.complex64,
            inverse: bool = False) -> CompiledFFTPlan:
        """The cached plan for a length-``n`` transform (see
        :func:`get_fft_plan`)."""
        return self._fft_cached(int(n), complex_dtype_for(dtype), bool(inverse))

    def pruned(self, n: int, part: int, dtype=np.complex64,
               kind: str = "trunc") -> CompiledPrunedPlan:
        """The cached plan for one pruned-transform split."""
        return self._pruned_cached(
            int(n), int(part), complex_dtype_for(dtype), kind
        )

    def rfft(self, n: int, dtype=np.float32) -> CompiledRFFTPlan:
        """The cached R2C plan for a length-``n`` real transform."""
        return self._real_cached(int(n), complex_dtype_for(dtype), False)

    def irfft(self, n: int, dtype=np.complex64) -> CompiledIRFFTPlan:
        """The cached C2R plan for a length-``n`` real output."""
        return self._real_cached(int(n), complex_dtype_for(dtype), True)

    def pruned_rfft(self, n: int, part: int,
                    dtype=np.float32) -> CompiledPrunedRFFTPlan:
        """The cached truncated-R2C plan (first ``part`` bins)."""
        return self._pruned_real_cached(
            int(n), int(part), complex_dtype_for(dtype), False
        )

    def pruned_irfft(self, n: int, part: int,
                     dtype=np.complex64) -> CompiledPrunedIRFFTPlan:
        """The cached truncated-C2R plan (``part`` bins in)."""
        return self._pruned_real_cached(
            int(n), int(part), complex_dtype_for(dtype), True
        )

    def kernels(self):
        """The kernel bindings this set's backend resolves to (or None)."""
        if self.backend == "numpy":
            return None
        return get_kernels()

    # -- management -----------------------------------------------------

    def cache_info(self):
        """Cache statistics: (fft plans, pruned plans, r2c/c2r plans,
        pruned r2c/c2r plans)."""
        return (
            self._fft_cached.cache_info(),
            self._pruned_cached.cache_info(),
            self._real_cached.cache_info(),
            self._pruned_real_cached.cache_info(),
        )

    def clear(self) -> None:
        """Drop every cached plan and its workspaces."""
        self._fft_cached.cache_clear()
        self._pruned_cached.cache_clear()
        self._real_cached.cache_clear()
        self._pruned_real_cached.cache_clear()


#: The process-wide default set, shared by every caller that does not
#: install its own scope (the seed behaviour).
_DEFAULT_PLAN_CACHES = PlanCaches("auto")

_scope_tls = threading.local()


def default_plan_caches() -> PlanCaches:
    """The process-wide default plan-cache set."""
    return _DEFAULT_PLAN_CACHES


def current_plan_caches() -> PlanCaches:
    """The plan-cache set active on this thread.

    The innermost :func:`plan_cache_scope` wins; with no scope active
    this is :func:`default_plan_caches` — i.e. the seed behaviour.
    """
    stack = getattr(_scope_tls, "stack", None)
    return stack[-1] if stack else _DEFAULT_PLAN_CACHES


@contextmanager
def plan_cache_scope(caches: PlanCaches):
    """Route this thread's plan lookups through ``caches`` while active.

    Everything downstream of the module-level getters — the functional
    FFT API, the training layers, throwaway executors — resolves plans
    from the scoped set, which is how a :class:`repro.api.Session`
    injects its caches and backend without threading a parameter
    through every call site.  Scopes nest; each thread has its own
    stack.
    """
    stack = getattr(_scope_tls, "stack", None)
    if stack is None:
        stack = _scope_tls.stack = []
    stack.append(caches)
    try:
        yield caches
    finally:
        stack.pop()


def get_fft_plan(
    n: int, dtype=np.complex64, inverse: bool = False
) -> CompiledFFTPlan:
    """The cached plan for a length-``n`` transform.

    ``dtype`` may be any input dtype; it is normalised to the complex
    working precision, so e.g. float32 and complex64 share one plan.
    Served from the current thread's plan-cache set
    (:func:`current_plan_caches`).
    """
    return current_plan_caches().fft(n, dtype, inverse)


def get_pruned_plan(
    n: int, part: int, dtype=np.complex64, kind: str = "trunc"
) -> CompiledPrunedPlan:
    """The cached plan for one pruned-transform split (see class docs)."""
    return current_plan_caches().pruned(n, part, dtype, kind)


def get_rfft_plan(n: int, dtype=np.float32) -> CompiledRFFTPlan:
    """The cached R2C plan for a length-``n`` real transform.

    ``dtype`` may be real or complex; it is normalised to the working
    precision, so e.g. float32 and complex64 share one plan.
    """
    return current_plan_caches().rfft(n, dtype)


def get_irfft_plan(n: int, dtype=np.complex64) -> CompiledIRFFTPlan:
    """The cached C2R plan for a length-``n`` real output."""
    return current_plan_caches().irfft(n, dtype)


def get_pruned_rfft_plan(
    n: int, part: int, dtype=np.float32
) -> CompiledPrunedRFFTPlan:
    """The cached truncated-R2C plan: the first ``part`` of the
    ``n//2 + 1`` half-spectrum bins, truncation fused into the
    packed-real decomposition.  ``dtype`` may be real or complex; it is
    normalised to the working precision."""
    return current_plan_caches().pruned_rfft(n, part, dtype)


def get_pruned_irfft_plan(
    n: int, part: int, dtype=np.complex64
) -> CompiledPrunedIRFFTPlan:
    """The cached truncated-C2R plan: a real length-``n`` signal from
    ``part`` half-spectrum bins (the rest implicitly zero)."""
    return current_plan_caches().pruned_irfft(n, part, dtype)


def fft_plan_cache_info():
    """Cache statistics of the current set: (fft, pruned, r2c/c2r,
    pruned r2c/c2r)."""
    return current_plan_caches().cache_info()


def clear_fft_plan_cache() -> None:
    """Drop every plan (and workspace) of the current thread's set."""
    current_plan_caches().clear()


# ---------------------------------------------------------------------------
# Workspace arena (reusable scratch for staged pipelines)
# ---------------------------------------------------------------------------

#: Scratch buffers keyed on (shape, dtype), LRU-bounded and *per
#: thread* (so reentrant callers can never hand two threads the same
#: buffer).  For pipeline stages whose temporaries never escape (e.g.
#: the baseline's truncation copy and zero-pad buffer).  Buffers are
#: reused across calls: never return one to a caller and never hold one
#: across another request of the same key.
_ARENA_MAX_ENTRIES = 16
_arena_tls = threading.local()


def workspace_empty(tag: str, shape: tuple[int, ...], dtype) -> np.ndarray:
    """A reusable uninitialised buffer of the requested geometry.

    ``tag`` names the usage site: two buffers live simultaneously only
    if their tags differ, so every concurrent temporary of one pipeline
    needs its own tag.  Arenas are thread-local.
    """
    arena = getattr(_arena_tls, "bufs", None)
    if arena is None:
        arena = _arena_tls.bufs = {}
    key = (tag, tuple(shape), np.dtype(dtype))
    buf = arena.pop(key, None)
    if buf is None:
        buf = np.empty(key[1], key[2])
        if len(arena) >= _ARENA_MAX_ENTRIES:
            # Evict the stalest entry (insertion order = recency).
            arena.pop(next(iter(arena)), None)
    arena[key] = buf
    return buf


def workspace_zeros(tag: str, shape: tuple[int, ...], dtype) -> np.ndarray:
    """A reusable zero-filled buffer of the requested geometry."""
    buf = workspace_empty(tag, shape, dtype)
    buf[...] = 0
    return buf


# ---------------------------------------------------------------------------
# Functional execution (the bodies of repro.fft.stockham / .pruned)
# ---------------------------------------------------------------------------

def execute_fft(
    x: np.ndarray, axis: int, inverse: bool,
    caches: PlanCaches | None = None,
) -> np.ndarray:
    """Plan-backed ``fft``/``ifft`` along ``axis`` (validation upstream)."""
    plans = caches if caches is not None else current_plan_caches()
    n = x.shape[axis]
    dtype = complex_dtype_for(x.dtype)
    moved = np.moveaxis(x, axis, -1)
    flat = np.ascontiguousarray(moved.reshape(-1, n)).astype(dtype, copy=False)
    plan = plans.fft(n, dtype, inverse)
    out = plan.execute(flat, div_by=float(n) if inverse else None)
    return np.moveaxis(out.reshape(moved.shape), -1, axis)


def execute_pruned(
    x: np.ndarray, n: int, part: int, axis: int, kind: str,
    caches: PlanCaches | None = None,
) -> np.ndarray:
    """Plan-backed pruned transform along ``axis`` (validation upstream)."""
    plans = caches if caches is not None else current_plan_caches()
    plan = plans.pruned(n, part, x.dtype, kind)
    moved = np.moveaxis(x, axis, -1)
    out = plan.apply(moved)
    return np.moveaxis(out, -1, axis)


def execute_rfft(
    x: np.ndarray, axis: int, caches: PlanCaches | None = None
) -> np.ndarray:
    """Plan-backed ``rfft`` along ``axis`` (validation upstream)."""
    plans = caches if caches is not None else current_plan_caches()
    n = x.shape[axis]
    plan = plans.rfft(n, x.dtype)
    moved = np.moveaxis(x, axis, -1)
    flat = np.ascontiguousarray(moved, dtype=plan.real_dtype).reshape(-1, n)
    out = plan.execute(flat)
    return np.moveaxis(
        out.reshape(*moved.shape[:-1], n // 2 + 1), -1, axis
    )


def execute_irfft(
    xk: np.ndarray, n: int, axis: int, caches: PlanCaches | None = None
) -> np.ndarray:
    """Plan-backed ``irfft`` along ``axis`` (validation upstream)."""
    plans = caches if caches is not None else current_plan_caches()
    plan = plans.irfft(n, xk.dtype)
    moved = np.moveaxis(xk, axis, -1)
    flat = np.ascontiguousarray(moved, dtype=plan.dtype).reshape(
        -1, moved.shape[-1]
    )
    out = plan.execute(flat)
    return np.moveaxis(out.reshape(*moved.shape[:-1], n), -1, axis)


def execute_pruned_rfft(
    x: np.ndarray, part: int, axis: int, caches: PlanCaches | None = None
) -> np.ndarray:
    """Plan-backed truncated ``rfft`` along ``axis`` (validation
    upstream)."""
    plans = caches if caches is not None else current_plan_caches()
    n = x.shape[axis]
    plan = plans.pruned_rfft(n, part, x.dtype)
    moved = np.moveaxis(x, axis, -1)
    flat = np.ascontiguousarray(moved, dtype=plan.real_dtype).reshape(-1, n)
    out = plan.execute(flat)
    return np.moveaxis(out.reshape(*moved.shape[:-1], part), -1, axis)


def execute_pruned_irfft(
    xk: np.ndarray, n: int, axis: int, caches: PlanCaches | None = None
) -> np.ndarray:
    """Plan-backed truncated-half-spectrum ``irfft`` along ``axis``
    (validation upstream)."""
    plans = caches if caches is not None else current_plan_caches()
    moved = np.moveaxis(xk, axis, -1)
    part = moved.shape[-1]
    plan = plans.pruned_irfft(n, part, xk.dtype)
    flat = np.ascontiguousarray(moved, dtype=plan.dtype).reshape(-1, part)
    out = plan.execute(flat)
    return np.moveaxis(out.reshape(*moved.shape[:-1], n), -1, axis)
