"""Custom FFT substrate.

TurboFNO builds its own Stockham FFT rather than calling cuFFT, because the
closed library cannot truncate, zero-pad or prune.  This package is the
NumPy analogue of that kernel family:

* :mod:`repro.fft.reference` — naive O(N^2) DFT, the numerical oracle.
* :mod:`repro.fft.stockham` — vectorized iterative Stockham radix-2 FFT
  (the formulation the paper uses for coalesced global reads, §3.2).
* :mod:`repro.fft.pruned` — output-truncated and input-zero-padded
  transforms via transform decomposition: numerically *identical* to
  "full FFT then slice" / "pad then full FFT" but computing only the
  surviving work, mirroring the kernel's built-in truncation/padding.
* :mod:`repro.fft.real` — R2C/C2R transforms (``rfft``/``irfft``) via
  the packed-real trick: one *half-length* Stockham pass through the
  compiled plan caches plus a Hermitian recombination stage, halving
  the FFT work for the training-side (original-FNO convention) layers.
  ``truncated_rfft``/``padded_irfft`` compound this with transform
  decomposition — truncation fused *into* the half-length pass, so a
  ``modes << n/2`` symmetric layer never computes the bins it discards.
* :mod:`repro.fft.opcount` — exact butterfly-operation census over the
  Stockham dataflow graph, reproducing Figure 5's pruning ratios
  (37.5 % of ops at 25 % truncation, 75 % at 50 %).
* :mod:`repro.fft.twiddle` — cached twiddle-factor tables.
* :mod:`repro.fft.compiled` — compiled plan executors (the cuFFT-style
  plan/execute split): cached :class:`~repro.fft.compiled.CompiledFFTPlan`
  and :class:`~repro.fft.compiled.CompiledPrunedPlan` objects with
  pre-cast tables and reusable workspaces, optionally backed by
  self-verifying C kernels.  The functional API above is a thin wrapper
  over this layer; :mod:`repro.fft.legacy` preserves the original
  per-call path as the bit-exactness oracle.
* :mod:`repro.fft.plan` — FFT plan objects carrying the Table 1 kernel
  geometry (N1/N2 = 128/256, per-thread sizes 8/16, batch-per-block 8).
"""

from repro.fft.compiled import (
    clear_fft_plan_cache,
    fft_plan_cache_info,
    get_fft_plan,
    get_irfft_plan,
    get_pruned_irfft_plan,
    get_pruned_plan,
    get_pruned_rfft_plan,
    get_rfft_plan,
    kernels_available,
)
from repro.fft.opcount import butterfly_ops, pruned_fraction, PruneCensus
from repro.fft.plan import FFTPlan
from repro.fft.pruned import truncated_fft, truncated_ifft, zero_padded_fft
from repro.fft.radix import fft_radix4, ifft_radix4
from repro.fft.real import (
    hermitian_pad,
    irfft,
    padded_irfft,
    rfft,
    truncated_rfft,
)
from repro.fft.reference import dft, idft
from repro.fft.stockham import fft, fft2, ifft, ifft2

__all__ = [
    "dft",
    "idft",
    "fft",
    "ifft",
    "fft2",
    "ifft2",
    "fft_radix4",
    "ifft_radix4",
    "rfft",
    "irfft",
    "hermitian_pad",
    "truncated_rfft",
    "padded_irfft",
    "truncated_fft",
    "truncated_ifft",
    "zero_padded_fft",
    "butterfly_ops",
    "pruned_fraction",
    "PruneCensus",
    "FFTPlan",
    "get_fft_plan",
    "get_pruned_plan",
    "get_rfft_plan",
    "get_irfft_plan",
    "get_pruned_rfft_plan",
    "get_pruned_irfft_plan",
    "fft_plan_cache_info",
    "clear_fft_plan_cache",
    "kernels_available",
]
