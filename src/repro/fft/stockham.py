"""Vectorized iterative Stockham radix-2 FFT.

TurboFNO adopts the Stockham formulation "to support coalesced global
memory reads ... each thread reads data in a contiguous pattern" (§3.2).
The Stockham autosort network never materialises a bit-reversal
permutation: every stage reads two contiguous halves and writes an
interleaved, already-ordered array.  That property is what lets the fused
kernel hand its output tile straight to CGEMM.

This module is the NumPy analogue: the same stage loop, now executed by
the cached :class:`repro.fft.compiled.CompiledFFTPlan` for the requested
(length, dtype, direction) — pre-cast twiddle tables, reusable ping-pong
workspaces, and (when a host C compiler is available) a single-pass
compiled stage kernel.  Results are byte-identical to the legacy
per-call loop preserved in :mod:`repro.fft.legacy`.

Only power-of-two lengths are supported — the same restriction as the
paper's kernel (evaluated at N = 128/256 in 1D and 256x128/256x256 in 2D).
"""

from __future__ import annotations

import numpy as np

from repro.fft.compiled import execute_fft

__all__ = ["fft", "ifft", "fft2", "ifft2", "is_power_of_two"]


def is_power_of_two(n: int) -> bool:
    """True for n = 1, 2, 4, 8, ..."""
    return n >= 1 and (n & (n - 1)) == 0


def _check_length(n: int) -> None:
    if not is_power_of_two(n):
        raise ValueError(
            f"Stockham FFT requires a power-of-two length, got {n}; "
            "use repro.fft.reference.dft for arbitrary lengths"
        )


def fft(x: np.ndarray, axis: int = -1, caches=None) -> np.ndarray:
    """Forward FFT along ``axis`` (``numpy.fft.fft`` conventions).

    Accepts real or complex input of any shape; the transform axis must
    have power-of-two length.  float32/complex64 inputs stay in single
    precision (the paper's FP32 setting); other dtypes use complex128.
    ``caches`` pins the plan lookup to one explicit
    :class:`repro.fft.compiled.PlanCaches` set (default: the current
    thread's).
    """
    x = np.asarray(x)
    _check_length(x.shape[axis])
    return execute_fft(x, axis, inverse=False, caches=caches)


def ifft(x: np.ndarray, axis: int = -1, caches=None) -> np.ndarray:
    """Inverse FFT along ``axis`` (includes the ``1/N`` normalisation)."""
    x = np.asarray(x)
    _check_length(x.shape[axis])
    return execute_fft(x, axis, inverse=True, caches=caches)


def fft2(x: np.ndarray, axes: tuple[int, int] = (-2, -1)) -> np.ndarray:
    """2-D FFT as two 1-D Stockham stages (the paper's batched-2D layout:
    one pass along each axis, Figure 3 right)."""
    if len(axes) != 2 or axes[0] == axes[1]:
        raise ValueError(f"axes must be two distinct axes, got {axes}")
    return fft(fft(x, axis=axes[1]), axis=axes[0])


def ifft2(x: np.ndarray, axes: tuple[int, int] = (-2, -1)) -> np.ndarray:
    """2-D inverse FFT as two 1-D stages."""
    if len(axes) != 2 or axes[0] == axes[1]:
        raise ValueError(f"axes must be two distinct axes, got {axes}")
    return ifft(ifft(x, axis=axes[1]), axis=axes[0])
