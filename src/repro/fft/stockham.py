"""Vectorized iterative Stockham radix-2 FFT.

TurboFNO adopts the Stockham formulation "to support coalesced global
memory reads ... each thread reads data in a contiguous pattern" (§3.2).
The Stockham autosort network never materialises a bit-reversal
permutation: every stage reads two contiguous halves and writes an
interleaved, already-ordered array.  That property is what lets the fused
kernel hand its output tile straight to CGEMM.

This module is the NumPy analogue: the stage loop below walks exactly the
Stockham dataflow (same butterfly graph that :mod:`repro.fft.opcount`
censuses and the CUDA kernel would execute), with the batch dimension
vectorized the way a GPU would parallelise over signals.

Only power-of-two lengths are supported — the same restriction as the
paper's kernel (evaluated at N = 128/256 in 1D and 256x128/256x256 in 2D).
"""

from __future__ import annotations

import numpy as np

from repro.fft.twiddle import stage_twiddles

__all__ = ["fft", "ifft", "fft2", "ifft2", "is_power_of_two"]


def is_power_of_two(n: int) -> bool:
    """True for n = 1, 2, 4, 8, ..."""
    return n >= 1 and (n & (n - 1)) == 0


def _check_length(n: int) -> None:
    if not is_power_of_two(n):
        raise ValueError(
            f"Stockham FFT requires a power-of-two length, got {n}; "
            "use repro.fft.reference.dft for arbitrary lengths"
        )


def _result_dtype(dtype: np.dtype) -> np.dtype:
    """complex64 stays complex64 (the paper is single precision);
    everything else computes in complex128."""
    if dtype == np.complex64 or dtype == np.float32:
        return np.dtype(np.complex64)
    return np.dtype(np.complex128)


def _stockham_last_axis(x: np.ndarray, inverse: bool) -> np.ndarray:
    """Stockham FFT over the last axis of a 2-D ``(batch, N)`` array."""
    batch, n = x.shape
    if n == 1:
        return x.copy()
    out_dtype = x.dtype
    # Working array viewed as (batch, r, Ls) per stage.
    cur = x
    span = 2
    while span <= n:
        half = span // 2
        r = n // span
        w = stage_twiddles(span, inverse=inverse).astype(out_dtype)
        a = cur[:, : n // 2].reshape(batch, r, half)
        b = cur[:, n // 2 :].reshape(batch, r, half)
        wb = w * b
        nxt = np.empty((batch, r, span), dtype=out_dtype)
        nxt[:, :, :half] = a + wb
        nxt[:, :, half:] = a - wb
        cur = nxt.reshape(batch, n)
        span *= 2
    return cur


def fft(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Forward FFT along ``axis`` (``numpy.fft.fft`` conventions).

    Accepts real or complex input of any shape; the transform axis must
    have power-of-two length.  float32/complex64 inputs stay in single
    precision (the paper's FP32 setting); other dtypes use complex128.
    """
    x = np.asarray(x)
    n = x.shape[axis]
    _check_length(n)
    dtype = _result_dtype(x.dtype)
    moved = np.moveaxis(x, axis, -1)
    flat = np.ascontiguousarray(moved.reshape(-1, n)).astype(dtype, copy=False)
    out = _stockham_last_axis(flat, inverse=False)
    return np.moveaxis(out.reshape(moved.shape), -1, axis)


def ifft(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Inverse FFT along ``axis`` (includes the ``1/N`` normalisation)."""
    x = np.asarray(x)
    n = x.shape[axis]
    _check_length(n)
    dtype = _result_dtype(x.dtype)
    moved = np.moveaxis(x, axis, -1)
    flat = np.ascontiguousarray(moved.reshape(-1, n)).astype(dtype, copy=False)
    out = _stockham_last_axis(flat, inverse=True)
    out /= n
    return np.moveaxis(out.reshape(moved.shape), -1, axis)


def fft2(x: np.ndarray, axes: tuple[int, int] = (-2, -1)) -> np.ndarray:
    """2-D FFT as two 1-D Stockham stages (the paper's batched-2D layout:
    one pass along each axis, Figure 3 right)."""
    if len(axes) != 2 or axes[0] == axes[1]:
        raise ValueError(f"axes must be two distinct axes, got {axes}")
    return fft(fft(x, axis=axes[1]), axis=axes[0])


def ifft2(x: np.ndarray, axes: tuple[int, int] = (-2, -1)) -> np.ndarray:
    """2-D inverse FFT as two 1-D stages."""
    if len(axes) != 2 or axes[0] == axes[1]:
        raise ValueError(f"axes must be two distinct axes, got {axes}")
    return ifft(ifft(x, axis=axes[1]), axis=axes[0])
