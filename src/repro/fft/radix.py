"""Higher-radix Stockham variants.

GPU FFT kernels use radix-4/8/16 butterflies to cut shared-memory passes
and twiddle loads (the paper's per-thread FFT sizes of 8 and 16 in Table 1
imply radix >= 8 register-resident stages).  This module provides a
radix-4 Stockham (with one radix-2 clean-up stage for odd powers of two)
that matches the radix-2 implementation bit-for-bit in exact arithmetic
and is meaningfully faster in NumPy because it halves the number of
vectorized passes.

Stage counts are exposed (:func:`stage_counts`) so the execution model can
reason about synchronisation overhead per radix choice.
"""

from __future__ import annotations

import numpy as np

from repro.core.dtypes import complex_dtype_for
from repro.fft.stockham import is_power_of_two
from repro.fft.twiddle import twiddles

__all__ = ["fft_radix4", "ifft_radix4", "stage_counts"]


def stage_counts(n: int, radix: int = 4) -> tuple[int, int]:
    """(high-radix stages, radix-2 clean-up stages) for a length-n FFT."""
    if not is_power_of_two(n):
        raise ValueError(f"n must be a power of two, got {n}")
    if radix not in (2, 4):
        raise ValueError(f"supported radices are 2 and 4, got {radix}")
    log2n = (n - 1).bit_length() if n > 1 else 0
    if radix == 2:
        return log2n, 0
    return log2n // 2, log2n % 2


def _radix2_stage(cur: np.ndarray, span: int, n: int, sign: float) -> np.ndarray:
    batch = cur.shape[0]
    half = span // 2
    r = n // span
    k = np.arange(half)
    w = np.exp(sign * 2j * np.pi * k / span).astype(cur.dtype)
    a = cur[:, : n // 2].reshape(batch, r, half)
    b = cur[:, n // 2 :].reshape(batch, r, half)
    wb = w * b
    nxt = np.empty((batch, r, span), dtype=cur.dtype)
    nxt[:, :, :half] = a + wb
    nxt[:, :, half:] = a - wb
    return nxt.reshape(batch, n)


def _radix4_stage(cur: np.ndarray, span: int, n: int, sign: float) -> np.ndarray:
    """One radix-4 Stockham stage: combines four interleaved quarters.

    Derivation: splitting the DFT by input residue mod 4 gives
    ``X[k + j*span/4] = sum_q i^(sign*j*q) W_span^{qk} x_q[k]`` over the
    quarter transforms ``x_q``; Stockham's autosort keeps the quarters in
    contiguous blocks of the working array.
    """
    batch = cur.shape[0]
    quarter = span // 4
    r = n // span
    k = np.arange(quarter)
    w1 = np.exp(sign * 2j * np.pi * k / span).astype(cur.dtype)
    w2 = (w1 * w1).astype(cur.dtype)
    w3 = (w2 * w1).astype(cur.dtype)
    step = n // 4
    a = cur[:, 0 * step : 1 * step].reshape(batch, r, quarter)
    b = cur[:, 1 * step : 2 * step].reshape(batch, r, quarter) * w1
    c = cur[:, 2 * step : 3 * step].reshape(batch, r, quarter) * w2
    d = cur[:, 3 * step : 4 * step].reshape(batch, r, quarter) * w3
    j = (1j if sign > 0 else -1j)
    apc = a + c
    amc = a - c
    bpd = b + d
    bmd = (b - d) * j
    nxt = np.empty((batch, r, span), dtype=cur.dtype)
    nxt[:, :, 0 * quarter : 1 * quarter] = apc + bpd
    nxt[:, :, 1 * quarter : 2 * quarter] = amc + bmd
    nxt[:, :, 2 * quarter : 3 * quarter] = apc - bpd
    nxt[:, :, 3 * quarter : 4 * quarter] = amc - bmd
    return nxt.reshape(batch, n)


def _transform(x: np.ndarray, axis: int, inverse: bool) -> np.ndarray:
    x = np.asarray(x)
    n = x.shape[axis]
    if not is_power_of_two(n):
        raise ValueError(f"length must be a power of two, got {n}")
    dtype = complex_dtype_for(x.dtype)
    moved = np.moveaxis(x, axis, -1)
    cur = np.ascontiguousarray(moved.reshape(-1, n)).astype(dtype, copy=True)
    sign = +1.0 if inverse else -1.0
    if n > 1:
        r4_stages, r2_stages = stage_counts(n, radix=4)
        span = 1
        if r2_stages:
            span *= 2
            cur = _radix2_stage(cur, span, n, sign)
        for _ in range(r4_stages):
            span *= 4
            cur = _radix4_stage(cur, span, n, sign)
    if inverse:
        cur = cur / n
    return np.moveaxis(cur.reshape(moved.shape), -1, axis)


def fft_radix4(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Forward FFT via radix-4 Stockham stages (radix-2 clean-up first
    when log2(n) is odd)."""
    return _transform(x, axis, inverse=False)


def ifft_radix4(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Inverse FFT via radix-4 Stockham stages."""
    return _transform(x, axis, inverse=True)
