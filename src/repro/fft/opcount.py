"""Exact butterfly-operation census over the Stockham dataflow graph.

Figure 5 of the paper counts FFT "operations" as butterfly *outputs
computed*: a 4-point FFT has two stages of four outputs each — 8 ops.
Keeping only 25 % of the outputs makes 3 ops reachable (37.5 % of the
work); keeping 50 % makes 6 reachable (75 %).  TurboFNO's pruning skips
the unreachable ones.

This module replays the same radix-2 Stockham network as
:mod:`repro.fft.stockham` and counts, exactly:

* **backward reachability** from a kept-output set (output truncation),
* **forward non-triviality** from a nonzero-input set (input zero-padding:
  an output whose inputs are all structurally zero costs nothing, and one
  with a single nonzero input degrades from a butterfly to a copy/scale —
  counted separately as a *trivial* op),
* their combination (the fused kernel both pads and truncates).

The census feeds the execution model: FFT FLOPs are the textbook
``5 N log2 N`` scaled by the censused fraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.fft.stockham import is_power_of_two

__all__ = ["butterfly_ops", "PruneCensus", "census", "pruned_fraction", "fft_flops"]


def butterfly_ops(n: int) -> int:
    """Total butterfly outputs computed by a full n-point radix-2 FFT.

    ``n/2`` butterflies per stage, two outputs each, ``log2 n`` stages:
    ``n * log2(n)`` ops (8 for n=4, matching Figure 5c).
    """
    if not is_power_of_two(n):
        raise ValueError(f"n must be a power of two, got {n}")
    return n * (n - 1).bit_length() if n > 1 else 0


@dataclass(frozen=True)
class PruneCensus:
    """Result of one pruning census.

    Attributes
    ----------
    n:
        Transform length.
    total_ops:
        Ops of the unpruned FFT (``butterfly_ops(n)``).
    full_ops:
        Surviving ops whose both inputs carry data (genuine butterflies).
    trivial_ops:
        Surviving ops with exactly one live input (copy/scale, no add).
    per_stage:
        Surviving (full + trivial) ops per stage, first stage first.
    """

    n: int
    total_ops: int
    full_ops: int
    trivial_ops: int
    per_stage: tuple[int, ...]

    @property
    def ops(self) -> int:
        """All surviving ops (the quantity Figure 5 counts)."""
        return self.full_ops + self.trivial_ops

    @property
    def fraction(self) -> float:
        """Fraction of the full FFT's work that survives pruning."""
        if self.total_ops == 0:
            return 1.0
        return self.ops / self.total_ops

    def weighted_fraction(self, trivial_weight: float = 0.5) -> float:
        """Surviving work fraction with trivial ops discounted.

        A trivial op (single live input) degrades from a twiddle-multiply
        butterfly to a copy/scale — the paper's "replaced by simple
        additions" (§3.3).  ``trivial_weight`` is its cost relative to a
        full butterfly output.
        """
        if not (0.0 <= trivial_weight <= 1.0):
            raise ValueError("trivial_weight must be in [0, 1]")
        if self.total_ops == 0:
            return 1.0
        return (self.full_ops + trivial_weight * self.trivial_ops) / self.total_ops


def _stage_wiring(n: int, span: int) -> tuple[np.ndarray, np.ndarray]:
    """Input indices feeding each output position of one Stockham stage.

    Output position ``k*span + j`` (and ``k*span + j + span/2``) reads
    inputs ``k*(span/2) + j`` and ``k*(span/2) + j + n/2``.  Returns two
    int arrays ``(src_a, src_b)`` of length ``n`` indexed by output position.
    """
    half = span // 2
    out_pos = np.arange(n)
    k = out_pos // span
    j = out_pos % span % half
    src_a = k * half + j
    src_b = src_a + n // 2
    return src_a, src_b


@lru_cache(maxsize=4096)
def census(
    n: int,
    keep_out: int | None = None,
    nonzero_in: int | None = None,
) -> PruneCensus:
    """Census the surviving butterfly ops of an n-point Stockham FFT.

    The census is a pure function of ``(n, keep_out, nonzero_in)`` and a
    figure sweep asks for the same handful of truncation splits
    thousands of times, so results are cached — part of the compiled
    plan layer's "pay setup once" discipline.  :class:`PruneCensus` is
    frozen; treat cached instances as shared and immutable.

    Parameters
    ----------
    n:
        Power-of-two transform length.
    keep_out:
        Number of leading outputs required (the paper's low-frequency
        filter keeps the first ``dimX/DimX`` fraction).  ``None`` keeps all.
    nonzero_in:
        Number of leading inputs that are non-zero (the zero-padding case).
        ``None`` means all inputs live.
    """
    if not is_power_of_two(n):
        raise ValueError(f"n must be a power of two, got {n}")
    if keep_out is not None and not (1 <= keep_out <= n):
        raise ValueError(f"keep_out must be in [1, {n}], got {keep_out}")
    if nonzero_in is not None and not (1 <= nonzero_in <= n):
        raise ValueError(f"nonzero_in must be in [1, {n}], got {nonzero_in}")
    stages = (n - 1).bit_length() if n > 1 else 0
    spans = [2 << s for s in range(stages)]

    # Forward pass: which values are (structurally) non-zero at each stage
    # boundary.  live[s] is the mask *entering* stage s.
    live_masks: list[np.ndarray] = []
    live = np.zeros(n, dtype=bool)
    live[: (nonzero_in if nonzero_in is not None else n)] = True
    for span in spans:
        live_masks.append(live)
        src_a, src_b = _stage_wiring(n, span)
        live = live[src_a] | live[src_b]

    # Backward pass: which outputs of each stage are needed.
    needed = np.zeros(n, dtype=bool)
    needed[: (keep_out if keep_out is not None else n)] = True
    needed_out_per_stage: list[np.ndarray] = [np.empty(0)] * stages
    for s in range(stages - 1, -1, -1):
        needed_out_per_stage[s] = needed
        src_a, src_b = _stage_wiring(n, spans[s])
        prev = np.zeros(n, dtype=bool)
        np.logical_or.at(prev, src_a[needed], True)
        np.logical_or.at(prev, src_b[needed], True)
        needed = prev

    # An op survives if its output is needed AND at least one input is live;
    # it is "full" if both inputs are live.
    full = trivial = 0
    per_stage: list[int] = []
    for s, span in enumerate(spans):
        src_a, src_b = _stage_wiring(n, span)
        live_in = live_masks[s]
        a_live = live_in[src_a]
        b_live = live_in[src_b]
        out_needed = needed_out_per_stage[s]
        f = int(np.count_nonzero(out_needed & a_live & b_live))
        t = int(np.count_nonzero(out_needed & (a_live ^ b_live)))
        full += f
        trivial += t
        per_stage.append(f + t)

    return PruneCensus(
        n=n,
        total_ops=butterfly_ops(n),
        full_ops=full,
        trivial_ops=trivial,
        per_stage=tuple(per_stage),
    )


def pruned_fraction(n: int, keep_out: int | None = None,
                    nonzero_in: int | None = None) -> float:
    """Fraction of FFT work surviving truncation and/or zero-padding."""
    return census(n, keep_out=keep_out, nonzero_in=nonzero_in).fraction


def fft_flops(n: int, num_transforms: float = 1.0, fraction: float = 1.0) -> float:
    """Real FLOPs of ``num_transforms`` n-point FFTs, optionally pruned.

    Uses the standard ``5 n log2 n`` complex-FFT flop convention scaled by
    the censused surviving-work fraction.
    """
    if not is_power_of_two(n):
        raise ValueError(f"n must be a power of two, got {n}")
    if not (0.0 <= fraction <= 1.0):
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    log2n = (n - 1).bit_length() if n > 1 else 0
    return 5.0 * n * log2n * num_transforms * fraction
