"""Real-input (R2C) and real-output (C2R) transforms.

The paper benchmarks C2C (as does this reproduction), but the original FNO
code uses ``rfft``/``irfft``; these helpers provide that convention on top
of the Stockham substrate so the training-side layers can match the
upstream FNO exactly.

``rfft`` computes the full C2C transform and returns the non-redundant
half spectrum (``n//2 + 1`` bins); ``irfft`` reconstructs the Hermitian
completion explicitly and inverse-transforms.  Both match ``numpy.fft``
to working precision (tested).
"""

from __future__ import annotations

import numpy as np

from repro.fft.stockham import fft, ifft, is_power_of_two

__all__ = ["rfft", "irfft", "hermitian_pad"]


def rfft(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Half spectrum of a real signal (``numpy.fft.rfft`` conventions)."""
    x = np.asarray(x)
    if np.iscomplexobj(x):
        raise ValueError("rfft expects real input; use fft for complex data")
    n = x.shape[axis]
    full = fft(x, axis=axis)
    sl = [slice(None)] * full.ndim
    sl[axis] = slice(0, n // 2 + 1)
    return np.ascontiguousarray(full[tuple(sl)])


def hermitian_pad(xk_half: np.ndarray, n: int, axis: int = -1) -> np.ndarray:
    """Expand a half spectrum to the full Hermitian-symmetric spectrum.

    ``xk_half`` holds bins ``0 .. n//2``; the returned array has length
    ``n`` along ``axis`` with ``X[n - k] = conj(X[k])``.
    """
    xk_half = np.asarray(xk_half)
    if not is_power_of_two(n):
        raise ValueError(f"n must be a power of two, got {n}")
    half = n // 2 + 1
    if xk_half.shape[axis] != half:
        raise ValueError(
            f"expected {half} half-spectrum bins along axis {axis}, "
            f"got {xk_half.shape[axis]}"
        )
    moved = np.moveaxis(xk_half, axis, -1)
    out = np.empty((*moved.shape[:-1], n), dtype=moved.dtype)
    out[..., :half] = moved
    out[..., half:] = np.conj(moved[..., -2:0:-1])
    return np.moveaxis(out, -1, axis)


def irfft(xk_half: np.ndarray, n: int | None = None, axis: int = -1) -> np.ndarray:
    """Inverse of :func:`rfft` (returns a real array of length ``n``)."""
    xk_half = np.asarray(xk_half)
    if n is None:
        n = 2 * (xk_half.shape[axis] - 1)
    full = hermitian_pad(xk_half.astype(
        np.complex64 if xk_half.dtype == np.complex64 else np.complex128
    ), n, axis=axis)
    return ifft(full, axis=axis).real
