"""Real-input (R2C) and real-output (C2R) transforms.

The paper benchmarks C2C (as does this reproduction), but the original FNO
code uses ``rfft``/``irfft``; these helpers provide that convention for
the training-side layers so they can match the upstream FNO exactly.

Both directions are thin wrappers over the cached packed-real plans of
:mod:`repro.fft.compiled` (:func:`~repro.fft.compiled.get_rfft_plan` /
:func:`~repro.fft.compiled.get_irfft_plan`): the real length-``n`` signal
is reinterpreted as ``n/2`` complex samples, one *half-length* Stockham
transform runs through the compiled plan machinery (pre-cast twiddles,
reusable workspaces, optional C kernels), and a single Hermitian
recombination stage produces — or, inverted, consumes — the ``n//2 + 1``
non-redundant bins.  That is half the butterfly work of the legacy
strategy (full C2C transform, then slice the half spectrum; inverse via
an explicitly materialised Hermitian completion), which is preserved
verbatim in :mod:`repro.fft.legacy` as the benchmark baseline and
tolerance oracle.  Both directions match ``numpy.fft`` to working
precision and are bit-identical across the C-kernel and NumPy executor
backends (tested).

Outputs follow the package dtype policy (:mod:`repro.core.dtypes`):
float32/complex64 inputs stay in single precision, everything else
computes in double — ``irfft`` of a complex64 half spectrum returns
float32.
"""

from __future__ import annotations

import numpy as np

from repro.fft.compiled import (
    execute_irfft,
    execute_pruned_irfft,
    execute_pruned_rfft,
    execute_rfft,
)
from repro.fft.stockham import _check_length, is_power_of_two

__all__ = ["rfft", "irfft", "hermitian_pad", "truncated_rfft",
           "padded_irfft"]


def rfft(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Half spectrum of a real signal (``numpy.fft.rfft`` conventions).

    The result is C-contiguous for every ``axis`` (as the legacy
    slice-and-copy path guaranteed).
    """
    x = np.asarray(x)
    if np.iscomplexobj(x):
        raise ValueError("rfft expects real input; use fft for complex data")
    _check_length(x.shape[axis])
    return np.ascontiguousarray(execute_rfft(x, axis))


def hermitian_pad(xk_half: np.ndarray, n: int, axis: int = -1) -> np.ndarray:
    """Expand a half spectrum to the full Hermitian-symmetric spectrum.

    ``xk_half`` holds bins ``0 .. n//2``; the returned array has length
    ``n`` along ``axis`` with ``X[n - k] = conj(X[k])``.  The compiled
    C2R path never needs this — it is kept for callers that want the
    explicit completion (and for the legacy oracle's formulation).
    """
    xk_half = np.asarray(xk_half)
    if not is_power_of_two(n):
        raise ValueError(f"n must be a power of two, got {n}")
    half = n // 2 + 1
    if xk_half.shape[axis] != half:
        raise ValueError(
            f"expected {half} half-spectrum bins along axis {axis}, "
            f"got {xk_half.shape[axis]}"
        )
    moved = np.moveaxis(xk_half, axis, -1)
    out = np.empty((*moved.shape[:-1], n), dtype=moved.dtype)
    out[..., :half] = moved
    out[..., half:] = np.conj(moved[..., -2:0:-1])
    return np.moveaxis(out, -1, axis)


def irfft(xk_half: np.ndarray, n: int | None = None, axis: int = -1) -> np.ndarray:
    """Inverse of :func:`rfft` (returns a real array of length ``n``)."""
    xk_half = np.asarray(xk_half)
    if n is None:
        n = 2 * (xk_half.shape[axis] - 1)
    if not is_power_of_two(n):
        raise ValueError(f"n must be a power of two, got {n}")
    if xk_half.shape[axis] != n // 2 + 1:
        raise ValueError(
            f"expected {n // 2 + 1} half-spectrum bins along axis {axis}, "
            f"got {xk_half.shape[axis]}"
        )
    return execute_irfft(xk_half, n, axis)


def truncated_rfft(x: np.ndarray, modes: int, axis: int = -1) -> np.ndarray:
    """First ``modes`` half-spectrum bins of a real signal.

    Equal to ``rfft(x, axis)`` sliced to its first ``modes`` bins (to
    working precision — the truncation is fused into the packed-real
    decomposition, which reassociates), through the cached
    :class:`~repro.fft.compiled.CompiledPrunedRFFTPlan` family: only
    the kept bins are ever recombined.  ``modes == n//2 + 1`` is the
    degenerate prune and aliases :func:`rfft` bit-exactly.  The result
    is C-contiguous for every ``axis``.
    """
    x = np.asarray(x)
    if np.iscomplexobj(x):
        raise ValueError(
            "truncated_rfft expects real input; use truncated_fft for "
            "complex data"
        )
    n = x.shape[axis]
    _check_length(n)
    if not 1 <= modes <= n // 2 + 1:
        raise ValueError(
            f"modes must be in [1, {n // 2 + 1}], got {modes}"
        )
    return np.ascontiguousarray(execute_pruned_rfft(x, modes, axis))


def padded_irfft(yk: np.ndarray, n: int, axis: int = -1) -> np.ndarray:
    """Real length-``n`` signal from a *truncated* half spectrum.

    ``yk`` supplies the first bins of the ``n//2 + 1`` half spectrum
    (the rest implicitly zero).  Equal to zero-padding and calling
    :func:`irfft` (to working precision), through the cached
    :class:`~repro.fft.compiled.CompiledPrunedIRFFTPlan` family: the
    full Hermitian half is never materialised and the inverse
    butterflies prune to the live bins.
    """
    yk = np.asarray(yk)
    if not is_power_of_two(n):
        raise ValueError(f"n must be a power of two, got {n}")
    bins = yk.shape[axis]
    if not 1 <= bins <= n // 2 + 1:
        raise ValueError(
            f"expected at most {n // 2 + 1} truncated half-spectrum bins "
            f"along axis {axis}, got {bins}"
        )
    return execute_pruned_irfft(yk, n, axis)
