/* Compiled executors for the Stockham FFT plan layer.
 *
 * Every kernel here replays, operation for operation, the floating-point
 * recurrences NumPy executes on the legacy functional path, so compiled
 * plans produce byte-identical output while touching memory once per
 * stage instead of once per ufunc:
 *
 *   - complex multiply (ufunc) : re = fma(ar, br, -(ai*bi))
 *                                im = fma(ar, bi,   ai*br )
 *     (NumPy's SIMD complex-multiply loops contract the first product
 *     into an FMA; verified empirically for complex64 and complex128.)
 *   - einsum contractions      : naive rounded products, contracted
 *                                index summed sequentially from zero.
 *   - scalar /= and *=         : independent per-component ops.
 *
 * The file is compiled with -ffp-contract=off and WITHOUT -mfma: GCC's
 * vectorizer introduces FMAs into plain expressions whenever the FMA ISA
 * is enabled globally (even under -ffp-contract=off), which would break
 * the einsum replicas.  The kernels that *need* FMA semantics opt in
 * per-function via the target attribute when REPRO_TARGET_FMA is set.
 * repro.fft._ckernels self-checks every pattern against NumPy at load
 * time and refuses the library if the host toolchain deviates.
 */

#include <math.h>

#if defined(__x86_64__) && defined(REPRO_TARGET_FMA)
#define FMA_TARGET __attribute__((target("fma,avx2")))
#else
#define FMA_TARGET
#endif

/* ------------------------------------------------------------------ */
/* Stockham stage loop                                                 */
/* ------------------------------------------------------------------ */

/* Full radix-2 Stockham FFT over `rows` independent signals of length n
 * (power of two), complex interleaved.  tw holds the concatenated
 * per-stage half tables (n-1 complex entries, stage span 2 first).  The
 * final stage writes `out`; `scratch` is the other ping-pong buffer.
 * do_div/do_mul chain the legacy `out /= div_by` and `out *= mul_by`
 * passes into the last stage's store (same roundings, one less pass). */
#define STOCKHAM(NAME, T, FMAF)                                          \
FMA_TARGET void NAME(const T* x, T* out, T* scratch, const T* tw,        \
                     long rows, long n, int do_div, T div_by,            \
                     int do_mul, T mul_by) {                             \
    if (n == 1) {                                                        \
        for (long i = 0; i < 2*rows; i++) {                              \
            T v = x[i];                                                  \
            if (do_div) v = v / div_by;                                  \
            if (do_mul) v = v * mul_by;                                  \
            out[i] = v;                                                  \
        }                                                                \
        return;                                                          \
    }                                                                    \
    long nstages = 0;                                                    \
    for (long t = n; t > 1; t >>= 1) nstages++;                          \
    T* bufs[2];                                                          \
    if (nstages % 2 == 1) { bufs[0] = out; bufs[1] = scratch; }          \
    else                  { bufs[0] = scratch; bufs[1] = out; }          \
    const T* twp = tw;                                                   \
    for (long s = 0; s < nstages; s++) {                                 \
        long span = 2L << s;                                             \
        long half = span >> 1;                                           \
        long r = n / span;                                               \
        const T* cur = (s == 0) ? x : bufs[(s+1) % 2];                   \
        T* nxt = bufs[s % 2];                                            \
        int last = (s == nstages - 1);                                   \
        for (long row = 0; row < rows; row++) {                          \
            const T* arow = cur + 2*row*n;                               \
            const T* brow = cur + 2*row*n + n;                           \
            T* orow = nxt + 2*row*n;                                     \
            for (long rr = 0; rr < r; rr++) {                            \
                const T* ap = arow + 2*rr*half;                          \
                const T* bp = brow + 2*rr*half;                          \
                T* op0 = orow + 2*rr*span;                               \
                T* op1 = op0 + span;                                     \
                for (long j = 0; j < half; j++) {                        \
                    T wr = twp[2*j], wi = twp[2*j+1];                    \
                    T br = bp[2*j], bi = bp[2*j+1];                      \
                    T wbr = FMAF(wr, br, -(wi*bi));                      \
                    T wbi = FMAF(wr, bi, wi*br);                         \
                    T ar = ap[2*j], ai = ap[2*j+1];                      \
                    T pr = ar + wbr, pi = ai + wbi;                      \
                    T mr = ar - wbr, mi = ai - wbi;                      \
                    if (last) {                                          \
                        if (do_div) {                                    \
                            pr /= div_by; pi /= div_by;                  \
                            mr /= div_by; mi /= div_by;                  \
                        }                                                \
                        if (do_mul) {                                    \
                            pr *= mul_by; pi *= mul_by;                  \
                            mr *= mul_by; mi *= mul_by;                  \
                        }                                                \
                    }                                                    \
                    op0[2*j] = pr; op0[2*j+1] = pi;                      \
                    op1[2*j] = mr; op1[2*j+1] = mi;                      \
                }                                                        \
            }                                                            \
        }                                                                \
        twp += 2*half;                                                   \
    }                                                                    \
}

STOCKHAM(stockham_f32, float, fmaf)
STOCKHAM(stockham_f64, double, fma)

/* ------------------------------------------------------------------ */
/* einsum replicas (naive products, sequential contraction)            */
/* ------------------------------------------------------------------ */

/* acc[b,o,m] += sum_k a[b,k,m] * w[k,o]
 * == `acc += np.einsum("bkm,ko->bom", a, w)`: the panel sum is formed
 * from zero with naive rounded products, then added into acc. */
#define PANEL_CONTRACT(NAME, T)                                          \
void NAME(const T* a, const T* w, T* acc,                                \
          long bt, long kt, long m, long o) {                            \
    for (long b = 0; b < bt; b++) {                                      \
        const T* ab = a + 2*b*kt*m;                                      \
        T* accb = acc + 2*b*o*m;                                         \
        for (long oo = 0; oo < o; oo++) {                                \
            T* accp = accb + 2*oo*m;                                     \
            for (long mm = 0; mm < m; mm++) {                            \
                T tr = 0, ti = 0;                                        \
                for (long k = 0; k < kt; k++) {                          \
                    const T* ap = ab + 2*(k*m + mm);                     \
                    T wr = w[2*(k*o+oo)], wi = w[2*(k*o+oo)+1];          \
                    T ar = ap[0], ai = ap[1];                            \
                    tr += ar*wr - ai*wi;                                 \
                    ti += ar*wi + ai*wr;                                 \
                }                                                        \
                accp[2*mm]   += tr;                                      \
                accp[2*mm+1] += ti;                                      \
            }                                                            \
        }                                                                \
    }                                                                    \
}

PANEL_CONTRACT(panel_contract_f32, float)
PANEL_CONTRACT(panel_contract_f64, double)

/* out[B,q] = sum_p y[B,p,q] * wd[p,q]
 * == `np.einsum("...pk,pk->...k", y, wd)`. */
#define DECOMP_REDUCE(NAME, T)                                           \
void NAME(const T* y, const T* wd, T* out, long B, long p, long q) {     \
    for (long b = 0; b < B; b++) {                                       \
        const T* yb = y + 2*b*p*q;                                       \
        T* ob = out + 2*b*q;                                             \
        for (long k = 0; k < q; k++) {                                   \
            T tr = 0, ti = 0;                                            \
            for (long pp = 0; pp < p; pp++) {                            \
                T yr = yb[2*(pp*q+k)], yi = yb[2*(pp*q+k)+1];            \
                T wr = wd[2*(pp*q+k)], wi = wd[2*(pp*q+k)+1];            \
                tr += yr*wr - yi*wi;                                     \
                ti += yr*wi + yi*wr;                                     \
            }                                                            \
            ob[2*k] = tr; ob[2*k+1] = ti;                                \
        }                                                                \
    }                                                                    \
}

DECOMP_REDUCE(decomp_reduce_f32, float)
DECOMP_REDUCE(decomp_reduce_f64, double)

/* ------------------------------------------------------------------ */
/* Broadcast multiply (ufunc complex-multiply semantics)               */
/* ------------------------------------------------------------------ */

/* out[B,s,q] = x[B,q] * w[s,q] with x as the FIRST ufunc operand:
 * re = fma(xr, wr, -(xi*wi)), im = fma(xr, wi, xi*wr).  This is the
 * `moved[..., None, :] * w` expansion of the pruned transforms. */
#define EXPAND_MUL(NAME, T, FMAF)                                        \
FMA_TARGET void NAME(const T* x, const T* w, T* out,                     \
                     long B, long s, long q) {                           \
    for (long b = 0; b < B; b++) {                                       \
        const T* xb = x + 2*b*q;                                         \
        T* ob = out + 2*b*s*q;                                           \
        for (long ss = 0; ss < s; ss++) {                                \
            const T* wp = w + 2*ss*q;                                    \
            T* op = ob + 2*ss*q;                                         \
            for (long k = 0; k < q; k++) {                               \
                T xr = xb[2*k], xi = xb[2*k+1];                          \
                T wr = wp[2*k], wi = wp[2*k+1];                          \
                op[2*k]   = FMAF(xr, wr, -(xi*wi));                      \
                op[2*k+1] = FMAF(xr, wi, xi*wr);                         \
            }                                                            \
        }                                                                \
    }                                                                    \
}

EXPAND_MUL(expand_mul_f32, float, fmaf)
EXPAND_MUL(expand_mul_f64, double, fma)
