"""Cached twiddle-factor tables.

Twiddle factors ``W_N^k = exp(-2*pi*i*k / N)`` are pure functions of the
transform length, so every FFT variant in this package shares one
process-wide cache — the analogue of the constant-memory twiddle tables a
CUDA FFT kernel precomputes at plan time.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = ["twiddles", "stage_twiddles", "decomposition_twiddles"]


@lru_cache(maxsize=256)
def _twiddle_cache(n: int, half: bool, sign: float) -> np.ndarray:
    count = n // 2 if half else n
    k = np.arange(count)
    w = np.exp(sign * 2j * np.pi * k / n)
    w.setflags(write=False)
    return w


def twiddles(n: int, inverse: bool = False) -> np.ndarray:
    """Full table ``W_n^k`` for ``k in [0, n)`` (read-only, complex128)."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return _twiddle_cache(n, False, +1.0 if inverse else -1.0)


def stage_twiddles(span: int, inverse: bool = False) -> np.ndarray:
    """Half table ``W_span^k`` for ``k in [0, span/2)`` used by one
    radix-2 Stockham butterfly stage of span ``span``."""
    if span < 2 or span % 2:
        raise ValueError(f"stage span must be even and >= 2, got {span}")
    return _twiddle_cache(span, True, +1.0 if inverse else -1.0)


@lru_cache(maxsize=128)
def _decomp_cache(n: int, p: int, q: int, sign: float) -> np.ndarray:
    pk = np.outer(np.arange(p), np.arange(q))
    w = np.exp(sign * 2j * np.pi * pk / n)
    w.setflags(write=False)
    return w


def decomposition_twiddles(
    n: int, p: int, q: int, inverse: bool = False
) -> np.ndarray:
    """``(p, q)`` table ``W_n^{p*k}`` used by the transform-decomposition
    pruned FFTs (:mod:`repro.fft.pruned`)."""
    if p * q > n or n % (p if p else 1):
        # p*q == n in every decomposition we build; guard misuse.
        raise ValueError(f"invalid decomposition n={n}, p={p}, q={q}")
    return _decomp_cache(n, p, q, +1.0 if inverse else -1.0)
