"""FFT plans: transform geometry plus the Table 1 kernel parameters.

A plan bundles everything the execution model needs to cost one batched
FFT stage: length, truncation/padding, batch, and the thread-block
geometry of the paper's kernel (per-thread FFT size ``n_t`` and
signals-per-block ``bs``; Table 1 uses N1=128/n1=8, N2=256/n2=16, bs=8,
with bs chosen to match CGEMM's ``k_tb``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fft.opcount import census, fft_flops
from repro.fft.stockham import is_power_of_two

__all__ = ["FFTPlan"]

_COMPLEX64_BYTES = 8


@dataclass(frozen=True)
class FFTPlan:
    """Geometry of one batched 1-D FFT stage.

    Parameters
    ----------
    n:
        Transform length (power of two).
    batch:
        Number of independent transforms.
    n_keep:
        Outputs written (built-in truncation); defaults to ``n``.
    n_live:
        Non-zero inputs read (built-in zero-padding); defaults to ``n``.
    per_thread:
        Per-thread FFT size (Table 1 ``n_i``: 8 for N=128, 16 for N=256).
    signals_per_block:
        Signals processed by one thread block (Table 1 ``bs`` = 8,
        matching CGEMM's ``k_tb``).
    inverse:
        Direction (affects nothing in the cost model, kept for clarity).
    kloop_hidden:
        When set, this is the k-loop FFT variant (§3.2/Fig. 6c): one
        thread block *iterates* over the ``kloop_hidden`` channels of its
        spatial slot instead of spreading them over the grid, so the grid
        shrinks by that factor.  This is what makes TurboFNO's SM
        utilization collapse at small batch x large K (the Fig. 14/19
        blue region).
    """

    n: int
    batch: int
    n_keep: int | None = None
    n_live: int | None = None
    per_thread: int = 8
    signals_per_block: int = 8
    inverse: bool = False
    kloop_hidden: int | None = None

    def __post_init__(self) -> None:
        if not is_power_of_two(self.n):
            raise ValueError(f"n must be a power of two, got {self.n}")
        if self.batch <= 0:
            raise ValueError(f"batch must be positive, got {self.batch}")
        for name in ("n_keep", "n_live"):
            v = getattr(self, name)
            if v is not None:
                if not is_power_of_two(v) or not (1 <= v <= self.n):
                    raise ValueError(
                        f"{name} must be a power of two in [1, {self.n}], got {v}"
                    )
        if not is_power_of_two(self.per_thread) or self.per_thread > self.n:
            raise ValueError(
                f"per_thread must be a power of two <= n, got {self.per_thread}"
            )
        if self.signals_per_block <= 0:
            raise ValueError("signals_per_block must be positive")
        if self.kloop_hidden is not None and self.kloop_hidden <= 0:
            raise ValueError("kloop_hidden must be positive or None")

    # -- geometry ------------------------------------------------------------
    @property
    def keep(self) -> int:
        return self.n_keep if self.n_keep is not None else self.n

    @property
    def live(self) -> int:
        return self.n_live if self.n_live is not None else self.n

    @property
    def threads_per_signal(self) -> int:
        return self.n // self.per_thread

    @property
    def threads_per_block(self) -> int:
        return self.threads_per_signal * self.signals_per_block

    @property
    def blocks(self) -> int:
        if self.kloop_hidden is not None:
            # One block owns its spatial slot and *iterates* over all
            # hidden channels (the bs=8 signals it holds at any moment are
            # the current k_tb slice, not extra grid parallelism).
            return -(-self.batch // self.kloop_hidden)
        return -(-self.batch // self.signals_per_block)  # ceil

    @property
    def smem_bytes_per_block(self) -> int:
        """Shared memory holding ``signals_per_block`` full-length signals."""
        return self.signals_per_block * self.n * _COMPLEX64_BYTES

    # -- work ----------------------------------------------------------------
    def prune_fraction(self, trivial_weight: float = 0.5) -> float:
        """Surviving fraction of butterfly work under truncation/padding.

        Trivial ops (single live input — the zero-padding case) are
        discounted at ``trivial_weight``, matching the execution model.
        """
        return census(
            self.n,
            keep_out=self.keep if self.keep < self.n else None,
            nonzero_in=self.live if self.live < self.n else None,
        ).weighted_fraction(trivial_weight)

    def flops(self) -> float:
        """Pruned FLOPs for the whole batch."""
        return fft_flops(self.n, self.batch, self.prune_fraction())

    def global_bytes_read(self) -> float:
        """DRAM read with built-in zero-padding (only live inputs touched)."""
        return float(self.batch) * self.live * _COMPLEX64_BYTES

    def global_bytes_written(self) -> float:
        """DRAM write with built-in truncation (only kept outputs stored)."""
        return float(self.batch) * self.keep * _COMPLEX64_BYTES
