"""Frozen pre-compiled-layer FFT implementations (the seed code).

These are the original pure-NumPy functional paths, kept verbatim as

* the **benchmark baseline** for ``benchmarks/bench_compiled_vs_legacy.py``
  (the "before" series the compiled executors are measured against), and
* the **bit-exactness oracle** for the property tests: every compiled
  plan must reproduce these outputs byte for byte.

Do not optimise this module — its value is that it does *not* change.
The public API (:mod:`repro.fft.stockham`, :mod:`repro.fft.pruned`) is
now served by :mod:`repro.fft.compiled`; nothing outside benchmarks and
tests should import this module.
"""

from __future__ import annotations

import numpy as np

from repro.core.dtypes import complex_dtype_for
from repro.fft.twiddle import decomposition_twiddles, stage_twiddles

__all__ = [
    "fft",
    "ifft",
    "fft2",
    "ifft2",
    "truncated_fft",
    "zero_padded_fft",
    "truncated_ifft",
    "rfft",
    "irfft",
    "hermitian_pad",
]


def _is_power_of_two(n: int) -> bool:
    return n >= 1 and (n & (n - 1)) == 0


def _check_length(n: int) -> None:
    if not _is_power_of_two(n):
        raise ValueError(
            f"Stockham FFT requires a power-of-two length, got {n}; "
            "use repro.fft.reference.dft for arbitrary lengths"
        )


def _stockham_last_axis(x: np.ndarray, inverse: bool) -> np.ndarray:
    """Stockham FFT over the last axis of a 2-D ``(batch, N)`` array.

    One fresh ping-pong buffer and one freshly cast twiddle table per
    stage — exactly the per-call costs the compiled plans amortise.
    """
    batch, n = x.shape
    if n == 1:
        return x.copy()
    out_dtype = x.dtype
    cur = x
    span = 2
    while span <= n:
        half = span // 2
        r = n // span
        w = stage_twiddles(span, inverse=inverse).astype(out_dtype)
        a = cur[:, : n // 2].reshape(batch, r, half)
        b = cur[:, n // 2 :].reshape(batch, r, half)
        wb = w * b
        nxt = np.empty((batch, r, span), dtype=out_dtype)
        nxt[:, :, :half] = a + wb
        nxt[:, :, half:] = a - wb
        cur = nxt.reshape(batch, n)
        span *= 2
    return cur


def fft(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Forward FFT along ``axis`` (legacy per-call execution)."""
    x = np.asarray(x)
    n = x.shape[axis]
    _check_length(n)
    dtype = complex_dtype_for(x.dtype)
    moved = np.moveaxis(x, axis, -1)
    flat = np.ascontiguousarray(moved.reshape(-1, n)).astype(dtype, copy=False)
    out = _stockham_last_axis(flat, inverse=False)
    return np.moveaxis(out.reshape(moved.shape), -1, axis)


def ifft(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Inverse FFT along ``axis`` (includes the ``1/N`` normalisation)."""
    x = np.asarray(x)
    n = x.shape[axis]
    _check_length(n)
    dtype = complex_dtype_for(x.dtype)
    moved = np.moveaxis(x, axis, -1)
    flat = np.ascontiguousarray(moved.reshape(-1, n)).astype(dtype, copy=False)
    out = _stockham_last_axis(flat, inverse=True)
    out /= n
    return np.moveaxis(out.reshape(moved.shape), -1, axis)


def fft2(x: np.ndarray, axes: tuple[int, int] = (-2, -1)) -> np.ndarray:
    """2-D FFT as two 1-D Stockham stages."""
    if len(axes) != 2 or axes[0] == axes[1]:
        raise ValueError(f"axes must be two distinct axes, got {axes}")
    return fft(fft(x, axis=axes[1]), axis=axes[0])


def ifft2(x: np.ndarray, axes: tuple[int, int] = (-2, -1)) -> np.ndarray:
    """2-D inverse FFT as two 1-D stages."""
    if len(axes) != 2 or axes[0] == axes[1]:
        raise ValueError(f"axes must be two distinct axes, got {axes}")
    return ifft(ifft(x, axis=axes[1]), axis=axes[0])


def _validate_split(n: int, part: int, what: str) -> None:
    if not _is_power_of_two(n):
        raise ValueError(f"transform length must be a power of two, got {n}")
    if not _is_power_of_two(part):
        raise ValueError(f"{what} must be a power of two, got {part}")
    if not (1 <= part <= n):
        raise ValueError(f"{what} must be in [1, {n}], got {part}")


def truncated_fft(x: np.ndarray, n_keep: int, axis: int = -1) -> np.ndarray:
    """First ``n_keep`` FFT outputs via transform decomposition (legacy)."""
    x = np.asarray(x)
    n = x.shape[axis]
    _validate_split(n, n_keep, "n_keep")
    if n_keep == n:
        return fft(x, axis=axis)
    moved = np.moveaxis(x, axis, -1)
    p = n // n_keep
    sub = moved.reshape(*moved.shape[:-1], n_keep, p)
    sub = np.moveaxis(sub, -1, -2)  # (..., P, Q)
    y = fft(sub, axis=-1)
    w = decomposition_twiddles(n, p, n_keep).astype(y.dtype)
    out = np.einsum("...pk,pk->...k", y, w)
    return np.moveaxis(out, -1, axis)


def zero_padded_fft(x: np.ndarray, n_out: int, axis: int = -1) -> np.ndarray:
    """FFT of ``x`` zero-padded to ``n_out`` without touching zeros."""
    x = np.asarray(x)
    n_live = x.shape[axis]
    _validate_split(n_out, n_live, "input length")
    if n_live == n_out:
        return fft(x, axis=axis)
    moved = np.moveaxis(x, axis, -1)
    s = n_out // n_live
    w = decomposition_twiddles(n_out, s, n_live).astype(
        complex_dtype_for(moved.dtype)
    )
    scaled = moved[..., None, :] * w  # (..., S, L)
    y = fft(scaled, axis=-1)
    out = np.moveaxis(y, -2, -1).reshape(*moved.shape[:-1], n_out)
    return np.moveaxis(out, -1, axis)


def rfft(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Seed R2C strategy: full C2C transform, slice the half spectrum."""
    x = np.asarray(x)
    if np.iscomplexobj(x):
        raise ValueError("rfft expects real input; use fft for complex data")
    n = x.shape[axis]
    full = fft(x, axis=axis)
    sl = [slice(None)] * full.ndim
    sl[axis] = slice(0, n // 2 + 1)
    return np.ascontiguousarray(full[tuple(sl)])


def hermitian_pad(xk_half: np.ndarray, n: int, axis: int = -1) -> np.ndarray:
    """Seed Hermitian completion (full spectrum explicitly materialised)."""
    xk_half = np.asarray(xk_half)
    if not _is_power_of_two(n):
        raise ValueError(f"n must be a power of two, got {n}")
    half = n // 2 + 1
    if xk_half.shape[axis] != half:
        raise ValueError(
            f"expected {half} half-spectrum bins along axis {axis}, "
            f"got {xk_half.shape[axis]}"
        )
    moved = np.moveaxis(xk_half, axis, -1)
    out = np.empty((*moved.shape[:-1], n), dtype=moved.dtype)
    out[..., :half] = moved
    out[..., half:] = np.conj(moved[..., -2:0:-1])
    return np.moveaxis(out, -1, axis)


def irfft(xk_half: np.ndarray, n: int | None = None, axis: int = -1) -> np.ndarray:
    """Seed C2R strategy: Hermitian-complete, full inverse, take real.

    Keeps the seed's dtype promotion (real-valued half spectra compute in
    complex128) — the compiled path fixes that; this oracle must not.
    """
    xk_half = np.asarray(xk_half)
    if n is None:
        n = 2 * (xk_half.shape[axis] - 1)
    full = hermitian_pad(xk_half.astype(
        np.complex64 if xk_half.dtype == np.complex64 else np.complex128
    ), n, axis=axis)
    return ifft(full, axis=axis).real


def truncated_ifft(xk: np.ndarray, n_out: int, axis: int = -1) -> np.ndarray:
    """Inverse FFT of a truncated spectrum, zero-padded to ``n_out``."""
    xk = np.asarray(xk)
    n_live = xk.shape[axis]
    _validate_split(n_out, n_live, "spectrum length")
    if n_live == n_out:
        return ifft(xk, axis=axis)
    moved = np.moveaxis(xk, axis, -1)
    s = n_out // n_live
    w = decomposition_twiddles(n_out, s, n_live, inverse=True).astype(
        complex_dtype_for(moved.dtype)
    )
    scaled = moved[..., None, :] * w  # (..., S, L)
    y = ifft(scaled, axis=-1)  # includes 1/L; we need 1/n_out overall
    y *= n_live / n_out
    out = np.moveaxis(y, -2, -1).reshape(*moved.shape[:-1], n_out)
    return np.moveaxis(out, -1, axis)
