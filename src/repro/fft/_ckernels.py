"""Build and load the compiled FFT executor kernels.

The C kernels in ``_kernels.c`` are compiled on first use with the host C
compiler into a content-addressed cache directory and loaded via
:mod:`ctypes`.  Everything degrades gracefully: no compiler, a failed
build, or a host whose NumPy exhibits different floating-point semantics
all result in :func:`get_kernels` returning ``None`` and the plan layer
falling back to the pure-NumPy execution path (same bytes, less speed).

Because the kernels promise *byte-identical* results to the legacy NumPy
path, the loader validates them at load time: each floating-point
recurrence (FMA complex multiply, naive sequential einsum contraction,
chained scalar scaling) is checked against NumPy on probe data, and the
library is rejected on any mismatch.

Environment knobs
-----------------
``REPRO_NO_CKERNELS=1``
    Disable the C layer entirely (pure-NumPy fallback).
``REPRO_CKERNEL_DIR``
    Override the build cache directory (default: a per-user directory
    under the system temp dir).
``REPRO_CKERNELS_SANITIZE=1``
    Compile every flag variant with AddressSanitizer + UBSan and the
    full warning set promoted to errors (``-fsanitize=address,undefined
    -fno-sanitize-recover=all -Wall -Wextra -Werror``).  CI runs the
    FFT oracle suites under this mode so C-side memory bugs fail loudly
    instead of corrupting bits.  Loading an ASan-instrumented library
    into an uninstrumented Python requires the ASan runtime first in
    the process — run with ``LD_PRELOAD=$(gcc -print-file-name=
    libasan.so)`` (and typically ``ASAN_OPTIONS=detect_leaks=0``, since
    CPython itself is not leak-clean).  ASan *aborts the process* when
    it initialises late, so the loader refuses to even attempt the
    ``dlopen`` unless an ASan runtime is visible in ``LD_PRELOAD``; it
    falls back to NumPy instead — never to silently-unsanitized
    kernels.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
import tempfile

import numpy as np

__all__ = ["get_kernels", "kernels_available", "build_info"]

_SOURCE = os.path.join(os.path.dirname(__file__), "_kernels.c")

#: (extra cflags, description) variants tried in order.  The first set
#: enables the per-function FMA/AVX2 target attribute on x86-64; the
#: second compiles everything generically (explicit fma()/fmaf() calls
#: then go through libm, which is slower but bit-exact).
_FLAG_VARIANTS = [
    (["-DREPRO_TARGET_FMA", "-mavx2"], "fma-target"),
    ([], "generic"),
]
_BASE_CFLAGS = ["-O3", "-ffp-contract=off", "-shared", "-fPIC"]

#: The sanitized tier: ASan + UBSan with no recovery, full warnings as
#: errors, and debug info for usable reports.  ``-ffp-contract=off``
#: from the base flags still applies, so bit-identity holds under the
#: sanitizers too and the oracle suites can run unchanged.
_SANITIZE_CFLAGS = [
    "-fsanitize=address,undefined",
    "-fno-sanitize-recover=all",
    "-Wall",
    "-Wextra",
    "-Werror",
    "-g",
]


def _flag_variants() -> list[tuple[list[str], str]]:
    """The flag variants to try, honouring ``REPRO_CKERNELS_SANITIZE``.

    Sanitized builds get a distinct cache tag so a sanitize run never
    reuses (or poisons) the plain build cache.
    """
    if not os.environ.get("REPRO_CKERNELS_SANITIZE"):
        return _FLAG_VARIANTS
    return [
        (extra + _SANITIZE_CFLAGS, f"{tag}-sanitize")
        for extra, tag in _FLAG_VARIANTS
    ]

_state: dict = {"kernels": None, "tried": False, "info": "not loaded"}


def _cache_dir() -> str:
    override = os.environ.get("REPRO_CKERNEL_DIR")
    if override:
        return override
    uid = getattr(os, "getuid", lambda: "any")()
    return os.path.join(tempfile.gettempdir(), f"repro-ckernels-{uid}")


def _find_cc() -> str | None:
    for cc in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cc and shutil.which(cc):
            return cc
    return None


def _compile(cc: str, extra: list[str], tag: str) -> str | None:
    """Compile the kernel source; return the .so path or None."""
    with open(_SOURCE, "rb") as f:
        source = f.read()
    key = hashlib.sha256(
        source + " ".join(extra).encode() + cc.encode()
    ).hexdigest()[:16]
    cache = _cache_dir()
    lib_path = os.path.join(cache, f"repro_kernels_{tag}_{key}.so")
    if os.path.exists(lib_path):
        return lib_path
    try:
        os.makedirs(cache, exist_ok=True)
        tmp = lib_path + f".tmp{os.getpid()}"
        cmd = [cc, *_BASE_CFLAGS, *extra, "-o", tmp, _SOURCE]
        res = subprocess.run(
            cmd, capture_output=True, text=True, timeout=120
        )
        if res.returncode != 0:
            return None
        os.replace(tmp, lib_path)  # atomic vs concurrent builders
        return lib_path
    except (OSError, subprocess.SubprocessError):
        return None


class _Kernels:
    """ctypes bindings for one loaded kernel library."""

    def __init__(self, lib_path: str, variant: str):
        lib = ctypes.CDLL(lib_path)
        self.path = lib_path
        self.variant = variant
        self._fn = {}
        for suffix, ct in (("f32", ctypes.c_float), ("f64", ctypes.c_double)):
            ptr = ctypes.POINTER(ct)
            fn = getattr(lib, f"stockham_{suffix}")
            fn.argtypes = [ptr, ptr, ptr, ptr, ctypes.c_long, ctypes.c_long,
                           ctypes.c_int, ct, ctypes.c_int, ct]
            fn.restype = None
            self._fn["stockham", suffix] = (fn, ptr, ct)
            for name, nlong in (("panel_contract", 4), ("decomp_reduce", 3),
                                ("expand_mul", 3)):
                fn = getattr(lib, f"{name}_{suffix}")
                fn.argtypes = [ptr, ptr, ptr] + [ctypes.c_long] * nlong
                fn.restype = None
                self._fn[name, suffix] = (fn, ptr, ct)

    @staticmethod
    def _suffix(dtype: np.dtype) -> str:
        return "f32" if dtype == np.complex64 else "f64"

    def _p(self, arr: np.ndarray, ptr_type):
        return arr.ctypes.data_as(ptr_type)

    def stockham(self, x: np.ndarray, out: np.ndarray, scratch: np.ndarray,
                 tw: np.ndarray, rows: int, n: int,
                 div_by: float | None, mul_by: float | None) -> None:
        fn, ptr, ct = self._fn["stockham", self._suffix(x.dtype)]
        fn(self._p(x, ptr), self._p(out, ptr), self._p(scratch, ptr),
           self._p(tw, ptr), rows, n,
           int(div_by is not None), ct(div_by if div_by is not None else 0),
           int(mul_by is not None), ct(mul_by if mul_by is not None else 0))

    def panel_contract(self, a: np.ndarray, w: np.ndarray, acc: np.ndarray,
                       bt: int, kt: int, m: int, o: int) -> None:
        fn, ptr, _ = self._fn["panel_contract", self._suffix(a.dtype)]
        fn(self._p(a, ptr), self._p(w, ptr), self._p(acc, ptr), bt, kt, m, o)

    def decomp_reduce(self, y: np.ndarray, wd: np.ndarray, out: np.ndarray,
                      batch: int, p: int, q: int) -> None:
        fn, ptr, _ = self._fn["decomp_reduce", self._suffix(y.dtype)]
        fn(self._p(y, ptr), self._p(wd, ptr), self._p(out, ptr), batch, p, q)

    def expand_mul(self, x: np.ndarray, w: np.ndarray, out: np.ndarray,
                   batch: int, s: int, q: int) -> None:
        fn, ptr, _ = self._fn["expand_mul", self._suffix(x.dtype)]
        fn(self._p(x, ptr), self._p(w, ptr), self._p(out, ptr), batch, s, q)


def _self_check(k: _Kernels) -> bool:
    """Validate every kernel's FP semantics against NumPy on probe data.

    The promise of the compiled layer is byte identity with the NumPy
    path; any deviation (a toolchain that contracts differently, a NumPy
    build with different complex-multiply loops) must disable it.
    """
    rng = np.random.default_rng(0xC0FFEE)
    for dtype in (np.complex64, np.complex128):
        cplx = lambda *s: (
            rng.standard_normal(s) + 1j * rng.standard_normal(s)
        ).astype(dtype)
        # stockham: one span-4 stage of a 2-point pre-transformed array is
        # awkward to probe in isolation; instead run a full length-8 FFT
        # against the legacy NumPy stage loop.
        from repro.fft.legacy import _stockham_last_axis

        x = cplx(5, 8)
        ref = _stockham_last_axis(x, inverse=False)
        ref = ref / 8
        ref = ref * 0.5
        tw = np.concatenate(
            [np.exp(-2j * np.pi * np.arange(h) / (2 * h)).astype(dtype)
             for h in (1, 2, 4)]
        )
        # the forward reference above divides/multiplies after the loop,
        # matching the chained-scale path of the kernel
        out = np.empty_like(x)
        scratch = np.empty_like(x)
        k.stockham(x, out, scratch, np.ascontiguousarray(tw), 5, 8, 8.0, 0.5)
        if not np.array_equal(ref.view(ref.real.dtype), out.view(out.real.dtype)):
            return False
        # panel contract == acc += einsum
        a, w, acc0 = cplx(3, 4, 6), cplx(4, 5), cplx(3, 5, 6)
        ref = acc0 + np.einsum("bkm,ko->bom", a, w)
        got = acc0.copy()
        k.panel_contract(a, w, got, 3, 4, 6, 5)
        if not np.array_equal(ref.view(ref.real.dtype), got.view(got.real.dtype)):
            return False
        # decomp reduce == einsum "...pk,pk->...k"
        y, wd = cplx(4, 3, 6), cplx(3, 6)
        ref = np.einsum("...pk,pk->...k", y, wd)
        got = np.empty((4, 6), dtype)
        k.decomp_reduce(y, wd, got, 4, 3, 6)
        if not np.array_equal(ref.view(ref.real.dtype), got.view(got.real.dtype)):
            return False
        # expand mul == x[..., None, :] * w
        x2, w2 = cplx(4, 6), cplx(3, 6)
        ref = x2[..., None, :] * w2
        got = np.empty((4, 3, 6), dtype)
        k.expand_mul(x2, w2, got, 4, 3, 6)
        if not np.array_equal(ref.view(ref.real.dtype), got.view(got.real.dtype)):
            return False
    return True


def get_kernels() -> _Kernels | None:
    """The loaded, validated kernel bindings — or None (NumPy fallback)."""
    if _state["tried"]:
        return _state["kernels"]
    _state["tried"] = True
    if os.environ.get("REPRO_NO_CKERNELS"):
        _state["info"] = "disabled via REPRO_NO_CKERNELS"
        return None
    cc = _find_cc()
    if cc is None:
        _state["info"] = "no C compiler found"
        return None
    if os.environ.get("REPRO_CKERNELS_SANITIZE") and (
        "asan" not in os.environ.get("LD_PRELOAD", "")
    ):
        # dlopen-ing an ASan-instrumented library into a process whose
        # runtime initialised without ASan doesn't raise — ASan aborts
        # the whole interpreter.  Refuse up front and fall back to
        # NumPy (never to silently-unsanitized kernels).
        _state["info"] = (
            "REPRO_CKERNELS_SANITIZE=1 but no ASan runtime in LD_PRELOAD; "
            "run with LD_PRELOAD=$(gcc -print-file-name=libasan.so)"
        )
        return None
    for extra, tag in _flag_variants():
        lib_path = _compile(cc, extra, tag)
        if lib_path is None:
            continue
        try:
            kernels = _Kernels(lib_path, tag)
        except OSError:
            continue
        if _self_check(kernels):
            _state["kernels"] = kernels
            _state["info"] = f"loaded ({tag}) from {lib_path}"
            return kernels
        _state["info"] = f"variant {tag} failed the bit-exactness self-check"
    return _state["kernels"]


def kernels_available() -> bool:
    """True when the C executor layer is active."""
    return get_kernels() is not None


def build_info() -> str:
    """Human-readable status of the kernel build (for benchmarks/debug)."""
    get_kernels()
    return _state["info"]


def _reset_for_tests() -> None:
    """Forget the loaded state so tests can exercise both paths."""
    _state.update(kernels=None, tried=False, info="not loaded")
