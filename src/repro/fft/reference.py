"""Naive O(N^2) DFT — the numerical oracle for every FFT in this package.

Slow by construction and proud of it: the direct summation has no shared
structure with the Stockham/pruned implementations, so agreement between
them is strong evidence of correctness.
"""

from __future__ import annotations

import numpy as np

__all__ = ["dft", "idft", "dft_matrix"]


def dft_matrix(n: int, inverse: bool = False, dtype=np.complex128) -> np.ndarray:
    """Dense DFT matrix ``F[k, n] = W_n^{kn}`` (unnormalised forward;
    the inverse matrix includes the ``1/n`` factor)."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    k = np.arange(n)
    sign = +2j if inverse else -2j
    mat = np.exp(sign * np.pi * np.outer(k, k) / n).astype(dtype)
    if inverse:
        mat /= n
    return mat


def dft(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Direct DFT along ``axis`` (matches ``numpy.fft.fft`` conventions)."""
    x = np.asarray(x)
    n = x.shape[axis]
    mat = dft_matrix(n)
    moved = np.moveaxis(x, axis, -1)
    out = moved @ mat.T
    return np.moveaxis(out, -1, axis)


def idft(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Direct inverse DFT along ``axis`` (includes the ``1/n`` factor)."""
    x = np.asarray(x)
    n = x.shape[axis]
    mat = dft_matrix(n, inverse=True)
    moved = np.moveaxis(x, axis, -1)
    out = moved @ mat.T
    return np.moveaxis(out, -1, axis)
