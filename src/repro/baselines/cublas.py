"""cuBLAS-like CGEMM kernel model.

cuBLAS is modelled as the same blocked CGEMM TurboFNO implements (§3.1
reports the custom kernel "achieves performance comparable to cuBLAS
under large-batch workloads"), but as a black box: operands must come
from and return to global memory — no operand can be forwarded through
shared memory from a neighbouring stage.
"""

from __future__ import annotations

from repro.gemm.params import GemmParams, TABLE1_CGEMM
from repro.gemm.traffic import gemm_counters
from repro.gpu.kernel import KernelSpec, LaunchConfig

__all__ = ["cublas_cgemm_kernel"]


def cublas_cgemm_kernel(
    m: int,
    n: int,
    k: int,
    params: GemmParams = TABLE1_CGEMM,
    name: str = "cublas_cgemm",
    a_l2_candidate: bool = True,
    c_l2_candidate: bool = True,
) -> KernelSpec:
    """One cuBLAS-like CGEMM launch computing an ``m x n x k`` product.

    In the FNO pipeline both the A operand (truncated spectrum) and the C
    result (pre-padding product) are inter-stage intermediates, hence the
    default L2-candidate flags.
    """
    counters = gemm_counters(
        m, n, k, params=params,
        a_l2_candidate=a_l2_candidate, c_l2_candidate=c_l2_candidate,
    )
    return KernelSpec(
        name=name,
        launch=LaunchConfig(
            blocks=params.grid_blocks(m, n),
            threads_per_block=params.threads_per_block,
            smem_per_block_bytes=params.smem_bytes(double_buffered=True),
        ),
        counters=counters,
    )
