"""Truncation / zero-padding memory-copy kernel model.

Because cuFFT cannot trim or pad, PyTorch's FNO launches dedicated
memory-copy kernels to extract the kept low frequencies after the forward
FFT and to re-insert zero padding before the inverse FFT (§1 limitation 1,
Figure 1a steps 2 and 4).  These kernels do no arithmetic; they are pure
global-memory round trips plus a launch.
"""

from __future__ import annotations

from repro.gpu.counters import PerfCounters
from repro.gpu.kernel import KernelSpec, LaunchConfig

__all__ = ["memcpy_kernel"]

_COMPLEX64_BYTES = 8
_THREADS = 256
_ELEMS_PER_THREAD = 4


def memcpy_kernel(
    elements_read: float,
    elements_written: float,
    name: str = "memcpy",
) -> KernelSpec:
    """A copy kernel moving complex64 elements.

    For truncation, ``elements_read == elements_written`` (the kept
    subset).  For zero-padding, ``elements_written > elements_read``
    (zeros are written but never read).
    """
    if elements_read < 0 or elements_written <= 0:
        raise ValueError("copy kernels must write something")
    work_items = max(elements_read, elements_written)
    blocks = max(1, int(-(-work_items // (_THREADS * _ELEMS_PER_THREAD))))
    return KernelSpec(
        name=name,
        launch=LaunchConfig(blocks=blocks, threads_per_block=_THREADS),
        counters=PerfCounters(
            global_bytes_read=elements_read * _COMPLEX64_BYTES,
            global_bytes_written=elements_written * _COMPLEX64_BYTES,
            # Copies move inter-stage intermediates by definition.
            l2_candidate_bytes=(elements_read + elements_written) * _COMPLEX64_BYTES,
        ),
    )
