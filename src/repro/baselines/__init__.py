"""Closed-library baseline models.

The paper's comparison base is "the state-of-the-art Fourier neural
operator implementation in PyTorch, which [is] implemented with NVIDIA
closed-source library cuBLAS, cuFFT and PyTorch built-in memory kernel"
(§5).  This package models those components with their black-box
constraints:

* :mod:`repro.baselines.cufft` — cuFFT-like batched C2C FFT kernels: full
  length only, no truncation/padding/pruning (§1 limitation 2), always a
  full global-memory round trip.
* :mod:`repro.baselines.cublas` — cuBLAS-like CGEMM kernel.
* :mod:`repro.baselines.memcpy` — the extra truncation/zero-padding memory
  copy kernels PyTorch must launch (§1 limitation 1).
* :mod:`repro.baselines.pytorch_fno` — a numerically executable
  PyTorch-style spectral convolution (separate stages, materialised
  copies) used as the correctness reference and the wall-clock baseline.
"""

from repro.baselines.cublas import cublas_cgemm_kernel
from repro.baselines.cufft import cufft_kernel
from repro.baselines.memcpy import memcpy_kernel
from repro.baselines.pytorch_fno import (
    pytorch_like_spectral_conv_1d,
    pytorch_like_spectral_conv_2d,
)

__all__ = [
    "cufft_kernel",
    "cublas_cgemm_kernel",
    "memcpy_kernel",
    "pytorch_like_spectral_conv_1d",
    "pytorch_like_spectral_conv_2d",
]
