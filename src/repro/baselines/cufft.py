"""cuFFT-like kernel model: full-length batched C2C transforms only.

cuFFT is a black box: it "does not natively support frequency filtering"
and its closed-source design forecloses custom truncation (§1).  The model
therefore always reads and writes the *full* signal and performs the full
``5 N log2 N`` work — exactly the waste TurboFNO's built-in
truncation/padding/pruning removes.

Thread-block geometry follows the paper's description of a typical FFT
kernel ("a workload of size 2N x 8 per thread block", §1): a block
processes 8 signals with one thread per ``per_thread`` elements.
"""

from __future__ import annotations

from repro.fft.opcount import fft_flops
from repro.gpu.counters import PerfCounters
from repro.gpu.kernel import KernelSpec, LaunchConfig

__all__ = ["cufft_kernel"]

_COMPLEX64_BYTES = 8
_SMEM_TRANSACTION_BYTES = 128


def cufft_kernel(
    n: int,
    batch: int,
    inverse: bool = False,
    name: str | None = None,
    signals_per_block: int = 8,
    per_thread: int = 8,
    input_intermediate: bool = False,
    output_intermediate: bool = False,
) -> KernelSpec:
    """One cuFFT-like batched C2C launch of ``batch`` length-``n`` FFTs.

    ``input_intermediate`` / ``output_intermediate`` mark the operand as
    inter-stage data eligible for L2 residence (see
    :class:`repro.gpu.counters.PerfCounters`).
    """
    if n <= 1 or batch <= 0:
        raise ValueError(f"need n > 1 and batch > 0, got n={n}, batch={batch}")
    flops = fft_flops(n, batch)
    bytes_full = float(batch) * n * _COMPLEX64_BYTES
    l2_candidate = bytes_full * (int(input_intermediate) + int(output_intermediate))
    # In-kernel shuffle traffic: each element passes through shared memory
    # once per radix pass beyond the register-resident butterflies.
    smem_bytes = 2.0 * bytes_full
    ideal = smem_bytes / _SMEM_TRANSACTION_BYTES
    threads = max(32, (n // per_thread) * signals_per_block)
    blocks = -(-batch // signals_per_block)
    return KernelSpec(
        name=name or ("cufft_inv" if inverse else "cufft_fwd"),
        launch=LaunchConfig(
            blocks=blocks,
            threads_per_block=threads,
            smem_per_block_bytes=signals_per_block * n * _COMPLEX64_BYTES,
        ),
        counters=PerfCounters(
            flops=flops,
            global_bytes_read=bytes_full,
            global_bytes_written=bytes_full,
            smem_transactions=ideal,
            smem_ideal_transactions=ideal,
            syncthreads=float(blocks) * max(1, (n - 1).bit_length() // 2),
            l2_candidate_bytes=l2_candidate,
        ),
    )
