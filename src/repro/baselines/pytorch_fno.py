"""Numerically executable PyTorch-style spectral convolution.

This is the computational behaviour the paper's CUDA-C baseline replicates
(§5: separate cuFFT, memcpy, cuBLAS, memcpy, cuFFT invocations): every
stage materialises its full result before the next stage reads it.  We use
``numpy.fft`` as the stand-in for cuFFT and ``@`` (BLAS) for cuBLAS.

Conventions follow the paper, not the original FNO code: the frequency
filter keeps the *first* ``modes`` bins of the C2C transform, and a single
complex ``(C_in, C_out)`` weight matrix is shared across all kept modes
(§3.1: "M = BatchSize x DimX x DimY, N = OutputDim, K = HiddenDim" — one
tall-and-skinny CGEMM, not per-mode matrices).

These functions are the correctness oracle for :mod:`repro.core.fused`.
The stage temporaries the baseline is defined by (the truncation copy of
Step 2, the zero-pad buffer of Step 4) never escape a call, so they are
drawn from the compiled layer's workspace arena
(:func:`repro.fft.compiled.workspace_empty`) instead of being freshly
allocated each time — the numbers are unchanged, only the allocator
traffic goes away.
"""

from __future__ import annotations

import numpy as np

from repro.fft.compiled import workspace_empty, workspace_zeros

__all__ = ["pytorch_like_spectral_conv_1d", "pytorch_like_spectral_conv_2d"]


def _check_weight(weight: np.ndarray, c_in: int) -> None:
    if weight.ndim != 2:
        raise ValueError(f"weight must be (C_in, C_out), got shape {weight.shape}")
    if weight.shape[0] != c_in:
        raise ValueError(
            f"weight C_in={weight.shape[0]} does not match input channels {c_in}"
        )


def pytorch_like_spectral_conv_1d(
    x: np.ndarray, weight: np.ndarray, modes: int
) -> np.ndarray:
    """Spectral convolution on ``(batch, C_in, X)`` input, stage by stage.

    Steps 1-5 of Figure 1(a): full FFT along X, truncation copy to the
    first ``modes`` bins, complex channel mixing, zero-padding copy back to
    X, full inverse FFT.  Returns ``(batch, C_out, X)`` complex.
    """
    x = np.asarray(x)
    if x.ndim != 3:
        raise ValueError(f"expected (batch, C_in, X), got shape {x.shape}")
    batch, c_in, dim_x = x.shape
    _check_weight(weight, c_in)
    if not (1 <= modes <= dim_x):
        raise ValueError(f"modes must be in [1, {dim_x}], got {modes}")

    # Step 1: full-length FFT (cuFFT has no trimming).
    xk = np.fft.fft(x, axis=-1)
    # Step 2: truncation memcpy kernel.
    xk_low = workspace_empty("pt1d-trunc", (batch, c_in, modes), xk.dtype)
    xk_low[...] = xk[:, :, :modes]
    # Step 3: CGEMM along the hidden dimension.
    yk_low = np.einsum("bix,io->box", xk_low, weight)
    # Step 4: zero-padding memcpy kernel.
    yk = workspace_zeros(
        "pt1d-pad", (batch, weight.shape[1], dim_x), yk_low.dtype
    )
    yk[:, :, :modes] = yk_low
    # Step 5: full-length inverse FFT.
    return np.fft.ifft(yk, axis=-1)


def pytorch_like_spectral_conv_2d(
    x: np.ndarray, weight: np.ndarray, modes_x: int, modes_y: int
) -> np.ndarray:
    """Spectral convolution on ``(batch, C_in, X, Y)`` input, stage by stage.

    2-D analogue: full 2-D FFT, rectangular low-frequency truncation to
    ``modes_x x modes_y``, channel mixing, zero padding, full inverse 2-D
    FFT.  Returns ``(batch, C_out, X, Y)`` complex.
    """
    x = np.asarray(x)
    if x.ndim != 4:
        raise ValueError(f"expected (batch, C_in, X, Y), got shape {x.shape}")
    batch, c_in, dim_x, dim_y = x.shape
    _check_weight(weight, c_in)
    if not (1 <= modes_x <= dim_x) or not (1 <= modes_y <= dim_y):
        raise ValueError(
            f"modes ({modes_x}, {modes_y}) out of range for grid "
            f"({dim_x}, {dim_y})"
        )

    xk = np.fft.fft2(x, axes=(-2, -1))
    xk_low = workspace_empty(
        "pt2d-trunc", (batch, c_in, modes_x, modes_y), xk.dtype
    )
    xk_low[...] = xk[:, :, :modes_x, :modes_y]
    yk_low = np.einsum("bixy,io->boxy", xk_low, weight)
    yk = workspace_zeros(
        "pt2d-pad", (batch, weight.shape[1], dim_x, dim_y), yk_low.dtype
    )
    yk[:, :, :modes_x, :modes_y] = yk_low
    return np.fft.ifft2(yk, axes=(-2, -1))
