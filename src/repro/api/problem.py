"""The dimension-agnostic problem protocol.

:func:`repro.api.plan` accepts *any* object that looks like a Fourier-layer
workload — it never asks "1-D or 2-D?" itself.  A problem advertises its
spatial dimensionality through ``ndim`` and the planner dispatches through
the pipeline-builder registry (:mod:`repro.api.registry`), so adding a 3-D
workload is "register a builder for ``ndim == 3``", not "touch every
call site".

:class:`repro.core.config.FNO1DProblem` and
:class:`~repro.core.config.FNO2DProblem` implement the protocol; both are
frozen dataclasses, which also satisfies the hashability the plan cache
needs.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

__all__ = ["Problem", "describe_problem"]


@runtime_checkable
class Problem(Protocol):
    """Structural interface of one Fourier-layer workload.

    Required members (all present on ``FNO1DProblem`` / ``FNO2DProblem``):

    ``batch`` / ``hidden``
        The paper's BS and K.
    ``ndim``
        Spatial dimensionality; selects the registered pipeline builder.
    ``spatial_shape`` / ``modes_shape``
        Per-axis FFT extents and kept low-frequency bins, outermost first.
    ``n_out``
        Output channel count.
    ``gemm_m``
        Row count of the spectral GEMM (batch x kept modes).

    Problems must additionally be hashable (frozen dataclasses are) so
    :func:`repro.api.plan` can key its LRU cache on the geometry.
    """

    batch: int
    hidden: int

    @property
    def ndim(self) -> int: ...

    @property
    def spatial_shape(self) -> tuple[int, ...]: ...

    @property
    def modes_shape(self) -> tuple[int, ...]: ...

    @property
    def n_out(self) -> int: ...

    @property
    def gemm_m(self) -> int: ...


def describe_problem(problem: Problem) -> dict:
    """JSON-ready geometry summary of ``problem`` (used by ``--json``)."""
    return {
        "ndim": problem.ndim,
        "batch": problem.batch,
        "hidden": problem.hidden,
        # resolved output channels (n_out), not the raw out_dim field,
        # which may be None for square spectral weights
        "n_out": problem.n_out,
        "spatial_shape": list(problem.spatial_shape),
        "modes_shape": list(problem.modes_shape),
        "gemm_m": problem.gemm_m,
    }
