"""Shared-memory ring segments: zero-copy tensor transport.

Request and response tensors never traverse a pipe.  Each worker owns
two :class:`multiprocessing.shared_memory.SharedMemory` segments — a
request ring the parent writes into and the worker reads *in place*
(an ``np.ndarray`` view over the segment buffer, no deserialisation),
and a response ring the worker writes outputs into for the parent to
collect.  Only a small pickled header (geometry, dtype, segment
offsets) crosses the queue per request.

:class:`RingArena` is the allocator over one segment: first-fit over a
sorted allocation list with adjacent-free-block coalescing, 64-byte
aligned offsets, and *blocking* allocation — when the ring is full the
allocator waits for a free (bounded backlog is the backpressure story,
together with the bounded request queues), or raises
:class:`PoolSaturated` under the non-blocking policy.

Segment lifetime is bookkept explicitly: the parent creates every
segment, :class:`SegmentRegistry` records the names, and
``ServePool.close()`` closes **and unlinks** each one exactly once —
tests assert no segment survives a close.  Worker-side attaches go
through :func:`attach_segment`; because workers are ``multiprocessing``
children they share the parent's ``resource_tracker``, so the child
must *not* untrack the name (see the function docstring).
"""

from __future__ import annotations

import hashlib
import threading
from multiprocessing import shared_memory

__all__ = [
    "PoolSaturated",
    "RingArena",
    "SegmentRegistry",
    "attach_segment",
    "header_checksum",
    "DEFAULT_RING_BYTES",
]

#: Per-ring default capacity.  Backed by tmpfs pages that are only
#: committed on write, so an idle ring costs address space, not memory.
DEFAULT_RING_BYTES = 32 << 20

_ALIGN = 64  # cache-line aligned slabs


def header_checksum(fields: tuple) -> int:
    """A stable 64-bit checksum of one control-message header.

    Request and response headers carry slab offsets and shapes that the
    other side will *trust* to address shared memory — a corrupted
    header means reading (or writing) the wrong slab.  Every ``"req"``
    and ``"res"`` message therefore ends with this checksum over its
    payload fields, and the receiver rejects mismatches instead of
    dereferencing them (surfaced as ``CorruptedHeader``; the chaos
    layer injects exactly this corruption to prove the rejection path).

    blake2b over the ``repr`` of the field tuple — the same
    process-stable construction the geometry router uses, so checksums
    agree across fork/spawn and interpreter runs.
    """
    digest = hashlib.blake2b(repr(fields).encode("ascii"), digest_size=8)
    return int.from_bytes(digest.digest(), "big")


class PoolSaturated(RuntimeError):
    """The pool cannot admit this request right now.

    Raised when a worker's bounded request queue is full or its ring
    has no slab of the required size — under ``saturation="raise"``
    immediately, under ``saturation="block"`` only after the submit
    timeout (or for requests that could *never* fit the ring).
    """


class RingArena:
    """First-fit slab allocator over one shared-memory segment.

    Thread-safe; ``alloc(block=True)`` waits on a condition that every
    ``free`` notifies, so backpressured producers wake exactly when the
    consumer returns capacity.
    """

    def __init__(self, shm: shared_memory.SharedMemory) -> None:
        self.shm = shm
        self.capacity = shm.size
        self._cond = threading.Condition()
        self._allocs: list[tuple[int, int]] = []  # sorted (offset, size)

    def _find(self, size: int) -> int | None:
        """First offset with a ``size``-byte gap, or None."""
        cursor = 0
        for off, sz in self._allocs:
            if off - cursor >= size:
                return cursor
            cursor = max(cursor, off + sz)
        if self.capacity - cursor >= size:
            return cursor
        return None

    def alloc(
        self, nbytes: int, block: bool = True, timeout: float | None = None
    ) -> int:
        """Reserve an aligned slab; returns its offset into the segment."""
        size = max(_ALIGN, (int(nbytes) + _ALIGN - 1) // _ALIGN * _ALIGN)
        if size > self.capacity:
            raise PoolSaturated(
                f"request of {nbytes} bytes exceeds the {self.capacity}-byte "
                f"ring segment; raise ring_bytes"
            )
        with self._cond:
            while True:
                off = self._find(size)
                if off is not None:
                    self._allocs.append((off, size))
                    self._allocs.sort()
                    return off
                if not block:
                    raise PoolSaturated(
                        f"ring segment full ({self.used} of "
                        f"{self.capacity} bytes in flight)"
                    )
                if not self._cond.wait(timeout):
                    raise PoolSaturated(
                        f"ring segment still full after {timeout:.1f}s"
                    )

    def free(self, offset: int) -> None:
        """Return a slab (idempotent: unknown offsets are ignored)."""
        with self._cond:
            for i, (off, _) in enumerate(self._allocs):
                if off == offset:
                    del self._allocs[i]
                    self._cond.notify_all()
                    return

    def reset(self) -> None:
        """Drop every allocation (worker died: nothing reads the ring)."""
        with self._cond:
            self._allocs.clear()
            self._cond.notify_all()

    @property
    def used(self) -> int:
        with self._cond:
            return sum(sz for _, sz in self._allocs)

    @property
    def in_flight(self) -> int:
        with self._cond:
            return len(self._allocs)


class SegmentRegistry:
    """Every segment the pool ever created, closed/unlinked exactly once.

    ``names()`` is the leak-audit surface: after ``close_all()`` no name
    in it can be re-attached.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._released: set[str] = set()

    def create(self, nbytes: int) -> shared_memory.SharedMemory:
        shm = shared_memory.SharedMemory(create=True, size=int(nbytes))
        with self._lock:
            self._segments[shm.name] = shm
        return shm

    def names(self) -> list[str]:
        with self._lock:
            return sorted(set(self._segments) | self._released)

    def live_names(self) -> list[str]:
        with self._lock:
            return sorted(self._segments)

    def close_all(self) -> None:
        with self._lock:
            segments, self._segments = self._segments, {}
            self._released.update(segments)
        for shm in segments.values():
            try:
                shm.close()
            except BufferError:  # a straggling view; the unlink still lands
                pass
            try:
                shm.unlink()
            except FileNotFoundError:  # already gone: unlink stays idempotent
                pass


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Worker-side attach to a parent-owned segment.

    Workers are ``multiprocessing`` children, so they share the
    parent's resource tracker (the tracker fd is inherited under both
    fork and spawn): the child's attach registers into the same
    name-set the parent's create did, and the parent's single
    ``unlink()`` at ``pool.close()`` retires it.  Nothing to untrack
    here — a child-side unregister would steal the parent's
    registration instead.
    """
    return shared_memory.SharedMemory(name=name)
