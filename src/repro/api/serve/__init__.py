"""``repro.api.serve`` — shared-nothing multi-process serving.

The multi-core counterpart of :class:`repro.api.Session`'s in-process
serving path.  A :class:`ServePool` forks N worker processes, each
owning one warm session; requests route by a stable geometry hash so
every worker's plan/tune/executor caches stay hot, and tensors move
through shared-memory ring segments instead of pipes.

>>> from repro.api.serve import ServePool            # doctest: +SKIP
>>> with ServePool(workers=4, backend="auto") as pool:
...     ys = pool.infer_many(requests)   # bit-identical to one Session
...     pool.stats()["per_geometry"]     # each geometry: one worker

Failure semantics are first-class: per-request deadlines, heartbeat
monitoring with hung-worker escalation, per-shard circuit breakers
with an in-parent degraded fallback, checksummed control headers, and
a deterministic fault-injection layer that provokes every one of those
paths on schedule (``ServePool(faults=...)`` / ``REPRO_FAULTS`` /
``python -m repro chaos-soak``).

Modules
-------
:mod:`~repro.api.serve.router`
    Geometry key/hash and shard assignment (stable across processes),
    plus the degradation route table.
:mod:`~repro.api.serve.shm`
    Ring-segment allocator, backpressure, segment bookkeeping, header
    checksums.
:mod:`~repro.api.serve.worker`
    The worker-process body: one warm session, opportunistic
    micro-batching, warmup-handoff protocol, heartbeats, fault hooks.
:mod:`~repro.api.serve.health`
    Typed failure vocabulary, health monitor, circuit breaker.
:mod:`~repro.api.serve.faults`
    Scripted fault plans, the chaos injector, and the soak harness.
:mod:`~repro.api.serve.pool`
    :class:`ServePool` itself: routing, admission, lifecycle, stats.
"""

from repro.api.serve.faults import ChaosInjector, Fault, FaultPlan, run_soak
from repro.api.serve.health import (
    Cancelled,
    CircuitBreaker,
    CorruptedHeader,
    DeadlineExceeded,
    HealthPolicy,
    InfrastructureError,
    ResultTimeout,
)
from repro.api.serve.pool import (
    ServeError,
    ServeFuture,
    ServePool,
    WorkerCrashed,
)
from repro.api.serve.router import (
    FALLBACK,
    RouteTable,
    format_geometry,
    geometry_hash,
    geometry_key,
    shard_for,
)
from repro.api.serve.shm import (
    DEFAULT_RING_BYTES,
    PoolSaturated,
    header_checksum,
)

__all__ = [
    "ServePool",
    "ServeFuture",
    "ServeError",
    "WorkerCrashed",
    "DeadlineExceeded",
    "ResultTimeout",
    "Cancelled",
    "CorruptedHeader",
    "InfrastructureError",
    "PoolSaturated",
    "HealthPolicy",
    "CircuitBreaker",
    "Fault",
    "FaultPlan",
    "ChaosInjector",
    "run_soak",
    "DEFAULT_RING_BYTES",
    "geometry_key",
    "geometry_hash",
    "shard_for",
    "format_geometry",
    "FALLBACK",
    "RouteTable",
    "header_checksum",
]
