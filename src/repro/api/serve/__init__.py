"""``repro.api.serve`` — shared-nothing multi-process serving.

The multi-core counterpart of :class:`repro.api.Session`'s in-process
serving path.  A :class:`ServePool` forks N worker processes, each
owning one warm session; requests route by a stable geometry hash so
every worker's plan/tune/executor caches stay hot, and tensors move
through shared-memory ring segments instead of pipes.

>>> from repro.api.serve import ServePool            # doctest: +SKIP
>>> with ServePool(workers=4, backend="auto") as pool:
...     ys = pool.infer_many(requests)   # bit-identical to one Session
...     pool.stats()["per_geometry"]     # each geometry: one worker

Modules
-------
:mod:`~repro.api.serve.router`
    Geometry key/hash and shard assignment (stable across processes).
:mod:`~repro.api.serve.shm`
    Ring-segment allocator, backpressure, segment bookkeeping.
:mod:`~repro.api.serve.worker`
    The worker-process body: one warm session, opportunistic
    micro-batching, warmup-handoff protocol.
:mod:`~repro.api.serve.pool`
    :class:`ServePool` itself: routing, admission, lifecycle, stats.
"""

from repro.api.serve.pool import (
    ServeError,
    ServeFuture,
    ServePool,
    WorkerCrashed,
)
from repro.api.serve.router import (
    format_geometry,
    geometry_hash,
    geometry_key,
    shard_for,
)
from repro.api.serve.shm import DEFAULT_RING_BYTES, PoolSaturated

__all__ = [
    "ServePool",
    "ServeFuture",
    "ServeError",
    "WorkerCrashed",
    "PoolSaturated",
    "DEFAULT_RING_BYTES",
    "geometry_key",
    "geometry_hash",
    "shard_for",
    "format_geometry",
]
