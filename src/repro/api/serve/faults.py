"""Deterministic fault injection for the serving pool.

Every recovery path in :mod:`repro.api.serve` — crash retry, hung-worker
escalation, deadline expiry, ring backpressure, corrupted-header
rejection, circuit-breaker degradation — exists because serving heavy
traffic *will* hit those states.  Before this module, provoking them
meant ad-hoc signal games (``SIGSTOP``/``SIGKILL`` from tests) that are
racy, unportable, and can't reach worker-internal states at all.  A
:class:`FaultPlan` scripts faults at exact request indices instead, so
every failure scenario is **replayable**: the same plan against the
same request stream exercises the same recovery path, every run.

Fault kinds
-----------
``crash_before``   worker ``os._exit``\\ s before executing request *rid*
``crash_after``    worker executes *rid*, then exits before answering
                   (the retry must re-execute — and still be bit-equal)
``hang``           worker sleeps ``seconds`` (default: effectively
                   forever) before executing *rid* — the health
                   monitor's prey
``latency``        worker sleeps ``seconds`` before executing *rid*
``ring_fail``      the parent's ring allocation for *rid* fails
                   (:class:`~repro.api.serve.shm.PoolSaturated`)
``corrupt_header`` the worker's response header for *rid* is corrupted
                   (the checksum catches it parent-side)
``backend_fail``   the worker for shard ``shard`` fails its C-kernel
                   self-check at startup and must fall back to numpy

Faults fire **once** by default and only on first attempts
(``retries == 0``), so a retried request does not re-hit its fault and
recovery converges.  ``always=True`` (spelled ``!`` in the string form)
refires on every attempt — the crash-loop fuel for circuit-breaker
tests.

Activation: ``ServePool(faults=FaultPlan(...))``, or the
``REPRO_FAULTS`` environment variable (string grammar below) so a
deployed pool can be chaos-tested without code changes::

    REPRO_FAULTS="crash_before@3;hang@7;latency@5:0.05;corrupt_header@11!"

:func:`FaultPlan.chaos` builds a *seeded random* plan — random at plan
construction, fully scripted at run time — and :func:`run_soak` is the
harness around it: drive a mixed-geometry stream through a pool under a
chaos plan and verify that **no future is ever lost**, every failure is
typed, all shared-memory segments unlink at close, and every request
that succeeded is bit-identical to a serial one-worker session.
"""

from __future__ import annotations

import os
import threading

import numpy as np

__all__ = ["Fault", "FaultPlan", "ChaosInjector", "run_soak"]

#: Fault kinds that fire inside the worker process.
WORKER_KINDS = ("crash_before", "crash_after", "hang", "latency",
                "corrupt_header")
#: Fault kinds that fire in the parent.
PARENT_KINDS = ("ring_fail",)
#: Fault kinds that fire at worker startup (keyed on shard, not rid).
SPAWN_KINDS = ("backend_fail",)
KINDS = WORKER_KINDS + PARENT_KINDS + SPAWN_KINDS

#: Default hang duration: long enough that only the health monitor (or
#: pool teardown) ever ends it.
HANG_FOREVER = 3600.0


class Fault:
    """One scripted fault: ``kind`` at request index ``rid`` (or shard
    ``shard`` for spawn faults), with an optional duration."""

    __slots__ = ("kind", "rid", "shard", "seconds", "always")

    def __init__(self, kind: str, rid: int | None = None, *,
                 shard: int | None = None, seconds: float = 0.0,
                 always: bool = False) -> None:
        if kind not in KINDS:
            raise ValueError(f"unknown fault kind {kind!r}; expected one "
                             f"of {KINDS}")
        if kind in SPAWN_KINDS:
            if shard is None:
                raise ValueError(f"{kind} faults target a shard, not a rid")
        elif rid is None or rid < 0:
            raise ValueError(f"{kind} faults need a request index >= 0, "
                             f"got {rid!r}")
        if kind == "hang" and seconds == 0.0:
            seconds = HANG_FOREVER
        self.kind = kind
        self.rid = rid
        self.shard = shard
        self.seconds = float(seconds)
        self.always = bool(always)

    def __repr__(self) -> str:
        target = f"shard={self.shard}" if self.shard is not None else \
            f"rid={self.rid}"
        extra = f", seconds={self.seconds}" if self.seconds else ""
        extra += ", always=True" if self.always else ""
        return f"Fault({self.kind!r}, {target}{extra})"

    def spec(self) -> str:
        """The ``REPRO_FAULTS`` spelling of this fault."""
        at = self.shard if self.kind in SPAWN_KINDS else self.rid
        s = f"{self.kind}@{at}"
        if self.seconds and not (self.kind == "hang"
                                 and self.seconds == HANG_FOREVER):
            s += f":{self.seconds:g}"
        if self.always:
            s += "!"
        return s


class FaultPlan:
    """An immutable scripted fault schedule (picklable: it crosses the
    process boundary to workers at spawn).

    Lookup is by ``(kind, rid)`` / ``(kind, shard)``; at most one fault
    per pair (later entries win, so a chaos generator can overlay a
    hand-written override).
    """

    def __init__(self, faults=()) -> None:
        self.faults = tuple(faults)
        self._by_rid: dict[tuple[str, int], Fault] = {}
        self._by_shard: dict[tuple[str, int], Fault] = {}
        for f in self.faults:
            if f.kind in SPAWN_KINDS:
                self._by_shard[(f.kind, f.shard)] = f
            else:
                self._by_rid[(f.kind, f.rid)] = f

    def __len__(self) -> int:
        return len(self.faults)

    def __repr__(self) -> str:
        return f"FaultPlan({list(self.faults)!r})"

    def lookup(self, kind: str, rid: int) -> Fault | None:
        return self._by_rid.get((kind, rid))

    def lookup_spawn(self, kind: str, shard: int) -> Fault | None:
        return self._by_shard.get((kind, shard))

    def spec(self) -> str:
        """The ``REPRO_FAULTS`` string this plan round-trips through."""
        return ";".join(f.spec() for f in self.faults)

    # -- construction ---------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` grammar.

        Semicolon-separated ``kind@index[:seconds][!]`` entries;
        ``backend_fail@N`` targets shard N, every other kind targets
        request index N.  ``!`` marks the fault ``always`` (refires on
        retries).  Whitespace around entries is ignored; empty entries
        are allowed (trailing semicolons are harmless).
        """
        faults = []
        for entry in spec.split(";"):
            entry = entry.strip()
            if not entry:
                continue
            always = entry.endswith("!")
            if always:
                entry = entry[:-1]
            if "@" not in entry:
                raise ValueError(
                    f"bad fault entry {entry!r}: expected kind@index"
                    f"[:seconds][!]"
                )
            kind, _, at = entry.partition("@")
            kind = kind.strip()
            seconds = 0.0
            if ":" in at:
                at, _, secs = at.partition(":")
                seconds = float(secs)
            index = int(at)
            if kind in SPAWN_KINDS:
                faults.append(Fault(kind, shard=index, seconds=seconds,
                                    always=always))
            else:
                faults.append(Fault(kind, index, seconds=seconds,
                                    always=always))
        return cls(faults)

    @classmethod
    def from_env(cls, environ=None) -> "FaultPlan | None":
        """The plan ``REPRO_FAULTS`` names, or None when unset/empty."""
        spec = (environ if environ is not None else os.environ).get(
            "REPRO_FAULTS", ""
        ).strip()
        return cls.parse(spec) if spec else None

    @classmethod
    def chaos(
        cls,
        seed: int,
        requests: int,
        *,
        crash_rate: float = 0.02,
        hang_rate: float = 0.01,
        latency_rate: float = 0.05,
        ring_fail_rate: float = 0.01,
        corrupt_rate: float = 0.02,
        latency_seconds: float = 0.02,
    ) -> "FaultPlan":
        """A seeded random mix of faults over ``requests`` indices.

        Random only at construction: the returned plan is a fixed
        script, so a soak that fails replays exactly from its seed.
        Each index draws at most one fault (kinds are assigned in a
        fixed priority order), keeping the schedule unambiguous.
        """
        rng = np.random.default_rng(seed)
        draws = rng.random(requests)
        flavor = rng.random(requests)  # crash_before vs crash_after
        faults: list[Fault] = []
        edges = np.cumsum([crash_rate, hang_rate, latency_rate,
                           ring_fail_rate, corrupt_rate])
        for rid in range(requests):
            d = draws[rid]
            if d < edges[0]:
                kind = "crash_before" if flavor[rid] < 0.5 else "crash_after"
                faults.append(Fault(kind, rid))
            elif d < edges[1]:
                faults.append(Fault("hang", rid))
            elif d < edges[2]:
                faults.append(Fault("latency", rid,
                                    seconds=latency_seconds))
            elif d < edges[3]:
                faults.append(Fault("ring_fail", rid))
            elif d < edges[4]:
                faults.append(Fault("corrupt_header", rid))
        return cls(faults)


class ChaosInjector:
    """Runtime firing state around one :class:`FaultPlan`.

    One injector per process (parent and each worker build their own
    from the shared plan); ``fire`` marks one-shot faults as spent so a
    fault hits exactly once per process lifetime, and retried requests
    (``retries > 0``) skip non-``always`` faults entirely — recovery
    always converges unless a test explicitly asks for a crash loop.
    """

    def __init__(self, plan: FaultPlan | None) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._fired: set[tuple[str, int]] = set()

    def __bool__(self) -> bool:
        return self.plan is not None and len(self.plan) > 0

    def fire(self, kind: str, rid: int, retries: int = 0) -> Fault | None:
        """The fault to apply now, or None.  Marks one-shots as spent."""
        if self.plan is None:
            return None
        fault = self.plan.lookup(kind, rid)
        if fault is None:
            return None
        if retries > 0 and not fault.always:
            return None
        with self._lock:
            if (kind, rid) in self._fired and not fault.always:
                return None
            self._fired.add((kind, rid))
        return fault

    def spawn_fault(self, kind: str, shard: int) -> Fault | None:
        """Spawn-time faults (every spawn of the shard refires them:
        a replacement worker hits the same broken substrate)."""
        if self.plan is None:
            return None
        return self.plan.lookup_spawn(kind, shard)


# ---------------------------------------------------------------------------
# The chaos-soak harness (shared by the CLI, CI and the test suite)
# ---------------------------------------------------------------------------

def _soak_stream(seed: int, requests: int, hidden: int = 4):
    """A seeded mixed-geometry request stream (1-D x3 sizes + one 2-D)."""
    rng = np.random.default_rng(seed)
    weight = ((rng.standard_normal((hidden, hidden))
               + 1j * rng.standard_normal((hidden, hidden)))
              / hidden).astype(np.complex64)
    geometries = [((2, hidden, 128), 16), ((2, hidden, 256), 32),
                  ((2, hidden, 64), 16), ((2, hidden, 32, 32), (8, 8))]
    stream = []
    for i in range(requests):
        shape, modes = geometries[i % len(geometries)]
        x = (rng.standard_normal(shape)
             + 1j * rng.standard_normal(shape)).astype(np.complex64)
        stream.append(((weight, modes), x))
    return stream


def run_soak(
    requests: int = 300,
    workers: int = 4,
    seed: int = 0,
    backend: str = "numpy",
    hang_timeout: float = 2.0,
    deadline: float = 60.0,
    expired_every: int = 29,
    result_timeout: float = 180.0,
    plan: FaultPlan | None = None,
) -> dict:
    """Drive a seeded chaos soak through a :class:`ServePool`.

    Mixed-geometry traffic runs under a :func:`FaultPlan.chaos` schedule
    (crash + hang + latency + ring-failure + corrupt-header faults) with
    a short ``hang_timeout`` so hung workers are culled in-test, plus a
    scripted sprinkle of already-expired deadlines (every
    ``expired_every``-th request) to exercise both deadline paths.

    Returns a report dict whose ``violations`` list is empty iff the
    three acceptance invariants hold:

    1. **zero lost futures** — every submitted request resolves, with a
       result or a *typed* :class:`~repro.api.serve.health.ServeError`;
    2. **zero leaked segments** — every shared-memory segment the pool
       ever created is unlinked at close;
    3. **bit-identity** — every request that *succeeded* returned
       exactly the bytes a serial one-worker
       :class:`~repro.api.Session` returns for it.
    """
    from repro.api.serve.health import HealthPolicy, ResultTimeout, ServeError
    from repro.api.serve.pool import ServePool
    from repro.api.serve.shm import PoolSaturated
    from repro.api.session import Session

    if plan is None:
        plan = FaultPlan.chaos(seed, requests)
    stream = _soak_stream(seed, requests)

    serial = Session(backend=backend)
    try:
        refs = serial.infer_many(stream, max_batch=32)
    finally:
        serial.close()

    outcomes: list[tuple[str, object]] = []
    violations: list[str] = []
    pool = ServePool(
        workers=workers, backend=backend, faults=plan,
        health=HealthPolicy(hang_timeout=hang_timeout),
        queue_depth=16, on_crash="retry",
    )
    try:
        futures = []
        for i, (model, x) in enumerate(stream):
            d = 0.0 if (expired_every and i and i % expired_every == 0) \
                else deadline
            try:
                futures.append(pool.submit(model, x, deadline=d))
            except PoolSaturated as exc:  # injected ring_fail / saturation
                futures.append(None)
                outcomes.append(("rejected", exc))
        for i, fut in enumerate(futures):
            if fut is None:
                continue
            try:
                y = fut.result(result_timeout)
            except (ResultTimeout, TimeoutError) as exc:
                # A future still unresolved after the whole soak budget
                # is a LOST future: the hard invariant violation.
                outcomes.append(("LOST", exc))
                violations.append(
                    f"request {i} never resolved within {result_timeout}s"
                )
                continue
            except ServeError as exc:  # typed failure: an allowed outcome
                outcomes.append((type(exc).__name__, exc))
                continue
            outcomes.append(("ok", None))
            if not (y.dtype == refs[i].dtype and np.array_equal(y, refs[i])):
                violations.append(
                    f"request {i} succeeded but differs from the serial "
                    f"session result"
                )
        stats = pool.stats(timeout=10)
    finally:
        pool.close()
    leaked = pool.live_segment_names()
    if leaked:
        violations.append(f"leaked shared-memory segments: {leaked}")

    counts: dict[str, int] = {}
    for name, _ in outcomes:
        counts[name] = counts.get(name, 0) + 1
    counts.setdefault("ok", 0)
    return {
        "requests": requests,
        "workers": workers,
        "seed": seed,
        "backend": backend,
        "faults": {"planned": len(plan), "spec": plan.spec()},
        "outcomes": counts,
        "admission": stats["admission"],
        "degraded": stats["degraded"],
        "segments": {"created": len(pool.segment_names()),
                     "leaked": len(leaked)},
        "violations": violations,
        "ok": not violations,
    }
