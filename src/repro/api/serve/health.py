"""Health enforcement for the serving pool: the failure vocabulary,
the hung-worker monitor, and the per-shard circuit breaker.

PR 6's :class:`~repro.api.serve.pool.ServePool` only survived the one
failure it could *see*: a worker process that dies (EOF on the response
pipe -> replacement + retry-once).  A worker that is alive but stuck —
deadlocked, ``SIGSTOP``-ped, spinning in a runaway loop — left its
shard's requests in flight forever, and a shard that crash-looped kept
burning replacements with no way out.  This module closes both holes:

:class:`HealthPolicy` / :class:`HealthMonitor`
    Workers heartbeat over the existing control pipe
    (``("hb", served, busy_since)`` from a worker-side timer thread).
    The parent-side monitor thread tracks per-worker *progress* — a
    heartbeat only counts as progress while the worker is idle or its
    served count moved — and a worker that holds in-flight requests
    with no progress for ``hang_timeout`` seconds is escalated: killed,
    so the existing crash machinery (warmed replacement, deterministic
    retry-or-fail) takes over.  The same monitor tick sweeps
    **per-request deadlines**: a parent-side future whose deadline
    passed fails with :class:`DeadlineExceeded` immediately, without
    waiting for the worker (its ring slabs are reclaimed when the
    worker answers or dies — never while the worker might still write).

:class:`CircuitBreaker`
    A per-shard closed -> open -> half-open state machine.  After
    ``threshold`` *consecutive* crash/hang replacements the breaker
    opens: the shard stops taking pool traffic (no more crash-looping)
    and its geometries reroute to the in-parent fallback session —
    degraded throughput, identical bits.  After ``cooldown`` seconds
    one probe request is allowed through to the replacement worker;
    success closes the breaker, another death re-opens it.

Every terminal serving failure is **typed** (all subclass
:class:`ServeError`) so callers can tell retry-worthy infrastructure
failures from request-level ones:

=======================  ==================================================
:class:`WorkerCrashed`   worker died with the request in flight, policy
                         (or the retry budget) said fail
:class:`DeadlineExceeded`  the request outlived ``submit(deadline=)``
:class:`ResultTimeout`   ``result(timeout=)`` expired — the request is
                         *still in flight* (see ``ServeFuture.cancel``)
:class:`Cancelled`       ``ServeFuture.cancel()`` abandoned the request
:class:`CorruptedHeader`  a request/response header failed its checksum
                         and the retry budget is spent
:class:`InfrastructureError`  the worker hit a substrate fault (OOM, OS,
                         shared-memory buffer) executing the request —
                         retry-worthy, unlike a model error
=======================  ==================================================
"""

from __future__ import annotations

import threading
import time

__all__ = [
    "ServeError",
    "WorkerCrashed",
    "DeadlineExceeded",
    "ResultTimeout",
    "Cancelled",
    "CorruptedHeader",
    "InfrastructureError",
    "HealthPolicy",
    "HealthMonitor",
    "CircuitBreaker",
]


class ServeError(RuntimeError):
    """A request failed inside the serving stack; base of every typed
    serving failure."""


class WorkerCrashed(ServeError):
    """The worker died with this request in flight and the pool's
    ``on_crash`` policy (or the retry budget) said fail, not retry."""


class DeadlineExceeded(ServeError):
    """The request outlived its ``submit(deadline=)`` budget.

    Raised on the future whether the deadline expired parent-side (the
    monitor sweep) or worker-side (the worker skips requests whose
    deadline passed before execution) — the request is never executed
    late and then delivered.
    """


class ResultTimeout(ServeError, TimeoutError):
    """``ServeFuture.result(timeout=)`` expired.

    Unlike :class:`DeadlineExceeded` this is a statement about the
    *caller's* patience, not the request: the request is still in
    flight, still holds its ring slabs, and may yet complete.  Call
    ``ServeFuture.cancel()`` to abandon it and release the slabs, or
    ``result()`` again to keep waiting.  (Subclasses ``TimeoutError``
    for backward compatibility with PR 6 callers.)
    """


class Cancelled(ServeError):
    """The caller abandoned this request via ``ServeFuture.cancel()``."""


class CorruptedHeader(ServeError):
    """A request/response header failed its checksum and the retry
    budget is spent (checksummed headers are how a half-written or
    fault-injected control message is rejected instead of trusted)."""


class InfrastructureError(ServeError):
    """The worker hit a substrate fault (out-of-memory, OS error,
    shared-memory buffer failure) while executing this request.

    The failure is about the *worker's environment*, not the request:
    the same request may well succeed on another worker or after a
    recycle, where a model/geometry error (which arrives as a plain
    :class:`ServeError`) would fail identically everywhere.  Keeping
    the two distinguishable is the point of the typed taxonomy."""


class HealthPolicy:
    """Tunables of the health monitor (all seconds).

    ``heartbeat_interval``
        Worker-side beat period.  The monitor tolerates several missed
        beats; this mostly bounds detection latency.
    ``hang_timeout``
        A worker holding in-flight requests with no progress for this
        long is killed and replaced.  Must exceed the worst-case
        single-batch execution time — a legitimately slow batch is
        indistinguishable from a hang until it finishes.
    ``sweep_interval``
        Monitor tick period: bounds how late a parent-side
        :class:`DeadlineExceeded` can fire after the deadline.
    """

    __slots__ = ("heartbeat_interval", "hang_timeout", "sweep_interval")

    def __init__(
        self,
        heartbeat_interval: float = 0.25,
        hang_timeout: float = 30.0,
        sweep_interval: float = 0.05,
    ) -> None:
        if heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be > 0, got {heartbeat_interval}"
            )
        if hang_timeout <= 0:
            raise ValueError(f"hang_timeout must be > 0, got {hang_timeout}")
        if sweep_interval <= 0:
            raise ValueError(
                f"sweep_interval must be > 0, got {sweep_interval}"
            )
        self.heartbeat_interval = float(heartbeat_interval)
        self.hang_timeout = float(hang_timeout)
        self.sweep_interval = float(sweep_interval)

    def as_dict(self) -> dict:
        return {
            "heartbeat_interval": self.heartbeat_interval,
            "hang_timeout": self.hang_timeout,
            "sweep_interval": self.sweep_interval,
        }


class HealthMonitor:
    """Parent-side monitor thread: deadline sweep + hung-worker kill.

    Deliberately knows nothing about the pool's internals — it calls
    one injected ``tick()`` callback every ``policy.sweep_interval``
    seconds until stopped, and the pool's tick does the actual sweep
    under its own locks.  Keeping the loop here and the policy decisions
    in the pool makes the monitor trivially testable and keeps lock
    ordering in one file.
    """

    def __init__(self, policy: HealthPolicy, tick) -> None:
        self.policy = policy
        self._tick = tick
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        if self._thread is not None:  # pragma: no cover - defensive
            return
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-health", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.policy.sweep_interval):
            try:
                self._tick()
            except Exception:  # pragma: no cover - monitor must survive
                pass

    def stop(self, timeout: float = 1.0) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)


class CircuitBreaker:
    """Closed -> open -> half-open breaker for one shard.

    ``record_failure()`` is called once per crash/hang *replacement*;
    ``threshold`` consecutive failures open the breaker.  While open,
    ``allow_worker()`` answers ``False`` (route to the fallback) until
    ``cooldown`` seconds elapse, then exactly one call answers ``True``
    — the half-open probe.  ``record_success()`` while half-open closes
    the breaker; ``record_failure()`` re-opens it and restarts the
    cooldown.  Thread-safe; the clock is injectable for tests.
    """

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 30.0,
        clock=time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        self.threshold = int(threshold)
        self.cooldown = float(cooldown)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            if (
                self._state == self.OPEN
                and self._clock() - self._opened_at >= self.cooldown
            ):
                return self.HALF_OPEN  # would probe on the next allow
            return self._state

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._failures

    def allow_worker(self) -> bool:
        """May the next request for this shard go to its worker?"""
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if self._state == self.OPEN:
                if self._clock() - self._opened_at < self.cooldown:
                    return False
                self._state = self.HALF_OPEN
                self._probing = True
                return True  # this caller is the probe
            # HALF_OPEN: one probe at a time.
            if self._probing:
                return False
            self._probing = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._state = self.CLOSED
            self._probing = False

    def record_failure(self) -> bool:
        """Record one crash/hang replacement; True when this opened the
        breaker (closed/half-open -> open transition)."""
        with self._lock:
            self._failures += 1
            if self._state == self.HALF_OPEN or (
                self._state == self.CLOSED
                and self._failures >= self.threshold
            ):
                self._state = self.OPEN
                self._opened_at = self._clock()
                self._probing = False
                return True
            if self._state == self.OPEN:
                self._opened_at = self._clock()  # restart the cooldown
            return False

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._failures,
                "threshold": self.threshold,
                "cooldown": self.cooldown,
            }
