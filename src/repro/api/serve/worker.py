"""The worker-process body: one warm :class:`~repro.api.Session` per shard.

Shared-nothing by construction — a worker owns its session (plan cache,
FFT/rfft plan caches, compiled-executor pool, autotune memo) and shares
only the two ring segments and its request queue with the parent.  The
geometry-hash router guarantees every geometry this worker ever sees is
one it has served before, so after the first request (or a warmup
directive) every plan lookup is a cache hit for the life of the process.

Protocol (small pickled tuples; tensors stay in shared memory):

Parent -> worker, over the bounded request queue
    ``("model", mid, weight, modes, symmetric)``
        register one served model (weights cross once per worker).
    ``("req", rid, mid, shape, dtype, req_off, resp_off, resp_cap)``
        one inference request; the input lives at ``req_off`` in the
        request ring, the output must land at ``resp_off``.
    ``("warm", models, geometries)``
        warmup handoff: pre-build executors (and, on an autotune
        session, pre-tune tiles) for the geometries the predecessor
        served, *before* taking traffic.
    ``("stats", token)``
        snapshot request.
    ``None``
        drain and exit.

Worker -> parent, over the response pipe
    ``("ready", pid)`` | ``("res", rid, shape, dtype, nbytes)`` |
    ``("err", rid, message)`` | ``("warmed", count)`` |
    ``("stats", token, payload)``

Consecutive ``"req"`` messages are drained opportunistically (up to
``max_batch``) and flushed through ``session.infer_many`` — the same
deterministic geometry micro-batcher the in-process serving path uses,
so pooled results are bit-identical to a serial one-worker session no
matter how requests interleave.
"""

from __future__ import annotations

import os
import queue as queue_mod
import signal
import time

import numpy as np

__all__ = ["worker_main"]


def _probe_shape(shape: tuple) -> tuple:
    """A 1-row probe of a recorded request shape (warmup input)."""
    return (1,) + tuple(shape[1:])


class _WorkerBody:
    def __init__(self, session, models, req_shm, resp_shm, conn, max_batch):
        self.session = session
        self.models = models
        self.req_shm = req_shm
        self.resp_shm = resp_shm
        self.conn = conn
        self.max_batch = max_batch
        self.served = 0

    # -- request execution ---------------------------------------------

    def flush(self, batch: list[tuple]) -> None:
        """Run one drained micro-batch through the session."""
        if not batch:
            return
        pairs = []
        for _, rid, mid, shape, dtype, req_off, _, _ in batch:
            x = np.ndarray(
                shape, np.dtype(dtype), buffer=self.req_shm.buf, offset=req_off
            )
            pairs.append((self.models[mid], x))
        try:
            outs = self.session.infer_many(pairs, max_batch=self.max_batch)
        except Exception:
            # A poisoned micro-batch: fall back to per-request execution
            # so one bad geometry fails alone instead of failing its
            # whole batch.
            outs = []
            for model, x in pairs:
                try:
                    outs.append(self.session.infer(model, x))
                except Exception as exc:  # noqa: BLE001 - reported per-request
                    outs.append(exc)
        for header, out in zip(batch, outs):
            _, rid, _, _, _, _, resp_off, resp_cap = header
            if isinstance(out, Exception):
                self.conn.send(("err", rid, f"{type(out).__name__}: {out}"))
                continue
            if out.nbytes > resp_cap:
                self.conn.send((
                    "err", rid,
                    f"output of {out.nbytes} bytes overflows the "
                    f"{resp_cap}-byte response slab",
                ))
                continue
            view = np.ndarray(
                out.shape, out.dtype, buffer=self.resp_shm.buf, offset=resp_off
            )
            view[...] = out
            del view
            self.served += 1
            self.conn.send(
                ("res", rid, out.shape, str(out.dtype), out.nbytes)
            )
        del pairs  # release the request-ring views before the next drain

    # -- control messages ----------------------------------------------

    def warm(self, model_specs: list, geometries: list) -> None:
        """Warmup handoff: stage executors for the predecessor's traffic.

        Each (model, geometry, dtype) runs a 1-row probe through the
        pooled executor — staging weight panels, building the FFT/rfft
        plan family, and (on an ``autotune=True`` session) resolving the
        tuned tiles — without touching serving stats.
        """
        for mid, weight, modes, symmetric in model_specs:
            if mid not in self.models:
                from repro.api.session import SpectralModel

                self.models[mid] = SpectralModel(weight, modes, symmetric)
        count = 0
        for mid, shape, dtype in geometries:
            model = self.models.get(mid)
            if model is None:
                continue
            executor = self.session.executor(
                model.weight, model.modes, model.symmetric
            )
            executor(np.zeros(_probe_shape(shape), np.dtype(dtype)))
            count += 1
        self.conn.send(("warmed", count))

    def stats(self, token) -> None:
        self.conn.send((
            "stats",
            token,
            {
                "pid": os.getpid(),
                "served": self.served,
                "session": self.session.stats(),
            },
        ))


def worker_main(
    index: int,
    request_queue,
    conn,
    req_segment: str,
    resp_segment: str,
    backend: str,
    autotune: bool,
    dtype_policy: str,
    max_batch: int,
) -> None:
    """Process entry point (module-level: spawn-picklable)."""
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)  # parent owns Ctrl-C
    except (ValueError, OSError):  # pragma: no cover - exotic hosts
        pass
    # Imports happen here, not at module import: under the spawn start
    # method the child pays them once, and the parent's import of this
    # module stays light.
    from repro.api.serve.shm import attach_segment
    from repro.api.session import Session, SpectralModel

    req_shm = attach_segment(req_segment)
    resp_shm = attach_segment(resp_segment)
    session = Session(
        backend=backend, autotune=autotune, dtype_policy=dtype_policy
    )
    body = _WorkerBody(session, {}, req_shm, resp_shm, conn, max_batch)
    conn.send(("ready", os.getpid()))
    batch: list[tuple] = []
    try:
        while True:
            if batch:
                # Opportunistic micro-batching: drain whatever is
                # already queued before executing, up to max_batch.
                try:
                    msg = request_queue.get_nowait()
                except queue_mod.Empty:
                    body.flush(batch)
                    batch = []
                    continue
            else:
                msg = request_queue.get()
            if msg is None:
                body.flush(batch)
                batch = []
                break
            kind = msg[0]
            if kind == "req":
                batch.append(msg)
                if len(batch) >= max_batch:
                    body.flush(batch)
                    batch = []
            else:
                body.flush(batch)  # controls are barriers
                batch = []
                if kind == "model":
                    _, mid, weight, modes, symmetric = msg
                    body.models[mid] = SpectralModel(weight, modes, symmetric)
                elif kind == "warm":
                    body.warm(msg[1], msg[2])
                elif kind == "stats":
                    body.stats(msg[1])
    except (EOFError, OSError, KeyboardInterrupt):
        pass  # parent went away: nothing left to serve
    finally:
        try:
            session.close()
        except Exception:  # pragma: no cover - teardown best-effort
            pass
        time.sleep(0)  # let any exported views drop before unmapping
        for shm in (req_shm, resp_shm):
            try:
                shm.close()
            except BufferError:  # pragma: no cover - straggling view
                pass
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass
