"""The worker-process body: one warm :class:`~repro.api.Session` per shard.

Shared-nothing by construction — a worker owns its session (plan cache,
FFT/rfft plan caches, compiled-executor pool, autotune memo) and shares
only the two ring segments and its request queue with the parent.  The
geometry-hash router guarantees every geometry this worker ever sees is
one it has served before, so after the first request (or a warmup
directive) every plan lookup is a cache hit for the life of the process.

Protocol (small pickled tuples; tensors stay in shared memory):

Parent -> worker, over the request queue
    ``("model", mid, weight, modes, symmetric)``
        register one served model (weights cross once per worker).
    ``("req", rid, mid, shape, dtype, req_off, resp_off, resp_cap,
    deadline, retries, csum)``
        one inference request; the input lives at ``req_off`` in the
        request ring, the output must land at ``resp_off``.
        ``deadline`` is an absolute ``time.monotonic()`` instant (or
        None); requests already past it are *skipped*, not executed
        late.  ``csum`` is :func:`~repro.api.serve.shm.header_checksum`
        over every preceding field — a mismatched header is rejected,
        never dereferenced into the rings.
    ``("roll", rid, mid, shape, dtype, req_off, resp_off, resp_cap,
    steps, profile, deadline, retries, csum)``
        one autoregressive rollout stream: the initial state lives at
        ``req_off``, the *final* state (``keep="last"``) lands at
        ``resp_off``.  Consecutive ``"roll"`` headers with the same
        ``(steps, profile)`` drain into one
        :meth:`~repro.api.Session.rollout` call, which micro-batches
        the streams by geometry — the stepping loop stays warm and
        state stays resident for the whole stream.
    ``("warm", models, geometries)``
        warmup handoff: pre-build executors (and, on an autotune
        session, pre-tune tiles) for the geometries the predecessor
        served, *before* taking traffic.
    ``("stats", token)``
        snapshot request.
    ``None``
        drain and exit.

Worker -> parent, over the response pipe
    ``("ready", pid, backend)`` | ``("res", rid, shape, dtype, nbytes,
    csum)`` | ``("err", rid, exc_name, message)`` | ``("exp", rid)`` |
    ``("hb", served, busy_since)`` | ``("warmed", count)`` |
    ``("stats", token, payload)``

Health: a worker-side timer thread heartbeats ``("hb", served,
busy_since)`` every ``hb_interval`` seconds.  ``busy_since`` is the
``time.monotonic()`` instant the in-progress batch started (None when
idle) — the parent's monitor treats a *busy* worker whose served count
stops moving as hung and escalates it through the crash machinery, so a
deadlock, runaway loop or ``SIGSTOP`` (which silences the beats
entirely) is detected the same way.

Degradation: when the configured backend cannot come up (the C-kernel
self-check fails, or the chaos layer injects exactly that), the worker
falls back to the pure-NumPy substrate instead of crash-looping — bits
are identical by the load-time self-check contract, only throughput
changes — and reports its actual backend in ``"ready"``.

Fault injection: a :class:`~repro.api.serve.faults.FaultPlan` shipped
at spawn drives scripted crash/hang/latency/corruption at exact request
indices (see :mod:`repro.api.serve.faults`); a worker with no plan pays
one ``None`` check per request.

Consecutive ``"req"`` messages are drained opportunistically (up to
``max_batch``) and flushed through ``session.infer_many`` — the same
deterministic geometry micro-batcher the in-process serving path uses,
so pooled results are bit-identical to a serial one-worker session no
matter how requests interleave.
"""

from __future__ import annotations

import os
import queue as queue_mod
import signal
import threading
import time

import numpy as np

from repro.api.serve.faults import ChaosInjector
from repro.api.serve.health import InfrastructureError
from repro.api.serve.shm import header_checksum

__all__ = ["worker_main"]

#: Substrate failures: about the worker's environment, not the request.
#: Mapped to the typed ``InfrastructureError`` so the parent (and the
#: caller's future) can tell a retry-worthy fault from a model error.
_INFRA_ERRORS = (MemoryError, OSError, BufferError)


def _probe_shape(shape: tuple) -> tuple:
    """A 1-row probe of a recorded request shape (warmup input)."""
    return (1,) + tuple(shape[1:])


class _WorkerBody:
    def __init__(self, session, models, req_shm, resp_shm, conn, max_batch,
                 injector: ChaosInjector):
        self.session = session
        self.models = models
        self.req_shm = req_shm
        self.resp_shm = resp_shm
        self.conn = conn
        self.max_batch = max_batch
        self.injector = injector
        self.served = 0
        #: monotonic instant the in-progress batch started (None: idle).
        self.busy_since: float | None = None
        # The response pipe is written from two threads (the serve loop
        # and the heartbeat timer): serialise sends.
        self._conn_lock = threading.Lock()

    def send(self, msg: tuple) -> None:
        with self._conn_lock:
            self.conn.send(msg)

    # -- request execution ---------------------------------------------

    def flush(self, batch: list[tuple]) -> None:
        """Run one drained micro-batch through the session."""
        if not batch:
            return
        self.busy_since = time.monotonic()
        try:
            self._flush(batch)
        finally:
            self.busy_since = None

    def _admit(self, batch: list[tuple]) -> list[tuple]:
        """Checksum/deadline/fault gate: the headers that will execute.

        Layout-agnostic over ``"req"`` and ``"roll"`` headers: both end
        in ``(..., deadline, retries, csum)`` with the checksum taken
        over every field between the kind tag and itself.
        """
        live = []
        for msg in batch:
            rid = msg[1]
            deadline, retries, csum = msg[-3], msg[-2], msg[-1]
            if csum != header_checksum(msg[1:-1]):
                # Never dereference offsets from a corrupted header.
                self.send(("err", rid, "CorruptedHeader",
                           "request header failed its checksum"))
                continue
            if deadline is not None and time.monotonic() >= deadline:
                self.send(("exp", rid))  # expired: skip, don't serve late
                continue
            fault = self.injector.fire("crash_before", rid, retries)
            if fault is not None:
                os._exit(70)  # scripted pre-execution crash
            fault = self.injector.fire("hang", rid, retries)
            if fault is not None:
                # A hang the health monitor is expected to end; if it
                # doesn't (long hang_timeout), this degrades to latency.
                time.sleep(fault.seconds)
            fault = self.injector.fire("latency", rid, retries)
            if fault is not None:
                time.sleep(fault.seconds)
            live.append(msg)
        return live

    def _serve_one(self, fn):
        """Execute one request/stream, mapping failures to the typed
        taxonomy: substrate faults become :class:`InfrastructureError`;
        model/geometry errors are returned as-is (they would fail the
        same way on any worker, so they are not worth retrying)."""
        try:
            return fn()
        except _INFRA_ERRORS as exc:
            return InfrastructureError(f"{type(exc).__name__}: {exc}")
        except Exception as exc:  # noqa: BLE001 - per-request isolation
            return exc

    def _flush(self, batch: list[tuple]) -> None:
        batch = self._admit(batch)
        if not batch:
            return
        views = []
        for msg in batch:
            _, rid, mid, shape, dtype, req_off = msg[:6]
            x = np.ndarray(
                shape, np.dtype(dtype), buffer=self.req_shm.buf,
                offset=req_off,
            )
            views.append((self.models[mid], x))
        reqs = [i for i, msg in enumerate(batch) if msg[0] == "req"]
        outs: list = [None] * len(batch)
        if reqs:
            pairs = [views[i] for i in reqs]
            try:
                results = self.session.infer_many(
                    pairs, max_batch=self.max_batch
                )
            except _INFRA_ERRORS as exc:
                # A substrate fault (OOM, OS, shm buffer) poisons the
                # whole batch and retrying per-request would just repeat
                # it: fail every request with the typed error instead of
                # masking it as a per-request model error.
                err = InfrastructureError(f"{type(exc).__name__}: {exc}")
                results = [err] * len(pairs)
            except Exception:  # noqa: BLE001 - per-request fallback below
                # A poisoned micro-batch: fall back to per-request
                # execution so one bad geometry fails alone instead of
                # failing its whole batch.
                results = [
                    self._serve_one(
                        lambda m=model, a=x: self.session.infer(m, a)
                    )
                    for model, x in pairs
                ]
            for i, out in zip(reqs, results):
                outs[i] = out
        # Rollout streams: consecutive headers sharing (steps, profile)
        # drain into one session.rollout call — the same geometry
        # micro-batcher, state resident across the whole stream.
        groups: dict[tuple, list[int]] = {}
        for i, msg in enumerate(batch):
            if msg[0] == "roll":
                groups.setdefault((msg[8], msg[9]), []).append(i)
        for (steps, profile), idxs in groups.items():
            streams = [views[i] for i in idxs]
            try:
                results = self.session.rollout(
                    streams=streams, steps=steps, profile=profile,
                    max_batch=self.max_batch,
                )
            except _INFRA_ERRORS as exc:
                # Substrate fault: fail the whole stream group typed.
                err = InfrastructureError(f"{type(exc).__name__}: {exc}")
                results = [err] * len(streams)
            except Exception:  # noqa: BLE001 - per-stream fallback below
                # Per-stream fallback, mirroring the infer path.
                results = [
                    self._serve_one(
                        lambda m=model, a=x: self.session.rollout(
                            m, a, steps, profile=profile
                        )
                    )
                    for model, x in streams
                ]
            for i, out in zip(idxs, results):
                outs[i] = out
        for msg, out in zip(batch, outs):
            rid = msg[1]
            resp_off, resp_cap, retries = msg[6], msg[7], msg[-2]
            if isinstance(out, Exception):
                self.send(("err", rid, type(out).__name__, str(out)))
                continue
            if out.nbytes > resp_cap:
                self.send((
                    "err", rid, "ServeError",
                    f"output of {out.nbytes} bytes overflows the "
                    f"{resp_cap}-byte response slab",
                ))
                continue
            view = np.ndarray(
                out.shape, out.dtype, buffer=self.resp_shm.buf,
                offset=resp_off,
            )
            view[...] = out
            del view
            if self.injector.fire("crash_after", rid, retries) is not None:
                os._exit(71)  # scripted post-execution crash: result lost
            self.served += 1
            fields = (rid, out.shape, str(out.dtype), out.nbytes)
            if self.injector.fire("corrupt_header", rid, retries) is not None:
                # Corrupt the byte count but keep the checksum of the
                # true fields: the parent's verification must catch it.
                self.send(("res", rid, out.shape, str(out.dtype),
                           out.nbytes + 1, header_checksum(fields)))
            else:
                self.send(("res", *fields, header_checksum(fields)))
        del views  # release the request-ring views before the next drain

    # -- control messages ----------------------------------------------

    def warm(self, model_specs: list, geometries: list) -> None:
        """Warmup handoff: stage executors for the predecessor's traffic.

        Each (model, geometry, dtype) runs a 1-row probe through the
        pooled executor — staging weight panels, building the FFT/rfft
        plan family, and (on an ``autotune=True`` session) resolving the
        tuned tiles — without touching serving stats.
        """
        for mid, weight, modes, symmetric in model_specs:
            if mid not in self.models:
                from repro.api.session import SpectralModel

                self.models[mid] = SpectralModel(weight, modes, symmetric)
        count = 0
        for mid, shape, dtype in geometries:
            model = self.models.get(mid)
            if model is None:
                continue
            executor = self.session.executor(
                model.weight, model.modes, model.symmetric
            )
            executor(np.zeros(_probe_shape(shape), np.dtype(dtype)))
            count += 1
        self.send(("warmed", count))

    def stats(self, token) -> None:
        self.send((
            "stats",
            token,
            {
                "pid": os.getpid(),
                "served": self.served,
                "backend": self.session.backend,
                "session": self.session.stats(),
            },
        ))


def _make_session(index: int, backend: str, autotune, dtype_policy,
                  injector: ChaosInjector):
    """Build the worker's session, degrading ckernels -> numpy.

    The C kernels are rejected at load when their bit-identity
    self-check fails; a worker whose host can't produce verified
    kernels must not crash-loop its shard over it — the NumPy substrate
    serves the same bits.  The chaos layer's ``backend_fail`` fault
    simulates exactly that self-check failure.
    """
    from repro.api.session import Session

    inject = injector.spawn_fault("backend_fail", index) is not None
    if backend != "numpy":
        try:
            if inject:
                raise RuntimeError(
                    "injected backend_fail: C kernel self-check failed"
                )
            return Session(backend=backend, autotune=autotune,
                           dtype_policy=dtype_policy)
        except RuntimeError:
            pass  # fall through to the numpy substrate
    return Session(backend="numpy", autotune=autotune,
                   dtype_policy=dtype_policy)


def worker_main(
    index: int,
    request_queue,
    conn,
    req_segment: str,
    resp_segment: str,
    backend: str,
    autotune: bool,
    dtype_policy: str,
    max_batch: int,
    hb_interval: float = 0.25,
    fault_plan=None,
) -> None:
    """Process entry point (module-level: spawn-picklable)."""
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)  # parent owns Ctrl-C
    except (ValueError, OSError):  # pragma: no cover - exotic hosts
        pass
    # Imports happen here, not at module import: under the spawn start
    # method the child pays them once, and the parent's import of this
    # module stays light.
    from repro.api.serve.shm import attach_segment
    from repro.api.session import SpectralModel

    injector = ChaosInjector(fault_plan)
    req_shm = attach_segment(req_segment)
    resp_shm = attach_segment(resp_segment)
    session = _make_session(index, backend, autotune, dtype_policy, injector)
    body = _WorkerBody(session, {}, req_shm, resp_shm, conn, max_batch,
                       injector)
    body.send(("ready", os.getpid(), session.backend))

    hb_stop = threading.Event()

    def _heartbeat() -> None:
        while not hb_stop.wait(hb_interval):
            try:
                body.send(("hb", body.served, body.busy_since))
            except (OSError, ValueError, BrokenPipeError):
                return  # parent went away; the main loop will notice too

    hb_thread = threading.Thread(
        target=_heartbeat, name=f"repro-serve-hb-{index}", daemon=True
    )
    hb_thread.start()

    batch: list[tuple] = []
    try:
        while True:
            if batch:
                # Opportunistic micro-batching: drain whatever is
                # already queued before executing, up to max_batch.
                try:
                    msg = request_queue.get_nowait()
                except queue_mod.Empty:
                    body.flush(batch)
                    batch = []
                    continue
            else:
                msg = request_queue.get()
            if msg is None:
                body.flush(batch)
                batch = []
                break
            kind = msg[0]
            if kind in ("req", "roll"):
                batch.append(msg)
                if len(batch) >= max_batch:
                    body.flush(batch)
                    batch = []
            else:
                body.flush(batch)  # controls are barriers
                batch = []
                if kind == "model":
                    _, mid, weight, modes, symmetric = msg
                    body.models[mid] = SpectralModel(weight, modes, symmetric)
                elif kind == "warm":
                    body.warm(msg[1], msg[2])
                elif kind == "stats":
                    body.stats(msg[1])
    except (EOFError, OSError, KeyboardInterrupt):
        pass  # parent went away: nothing left to serve
    finally:
        hb_stop.set()
        try:
            session.close()
        except Exception:  # pragma: no cover - teardown best-effort
            pass
        time.sleep(0)  # let any exported views drop before unmapping
        for shm in (req_shm, resp_shm):
            try:
                shm.close()
            except BufferError:  # pragma: no cover - straggling view
                pass
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass
