"""``ServePool``: the shared-nothing multi-process serving front-end.

PR 4's ``Session.infer_many`` micro-batches inside one process — thread
drains under the GIL, so the compiled-kernel and autotune wins of PRs
2-5 never scale past one core at serve time.  A :class:`ServePool`
converts those per-core wins into multi-core throughput:

* **N worker processes, shared-nothing** — each worker owns one warm
  :class:`repro.api.Session` (plan cache, FFT/rfft plan caches,
  executor pool, autotune memo) and shares only its request queue and
  two ring segments with the parent;
* **geometry-hash sharding** — requests route by the stable hash of
  ``(ndim, spatial_shape, modes, dtype)`` (:mod:`repro.api.serve.router`),
  so a given geometry always lands on the same worker and that worker's
  caches stay hot for the life of the pool;
* **zero-copy tensors** — request/response arrays move through
  ``multiprocessing.shared_memory`` rings (:mod:`repro.api.serve.shm`):
  workers read input slabs and write outputs in place, only a small
  pickled header crosses the queue;
* **backpressure** — bounded per-worker queues and ring arenas;
  ``submit`` blocks (default) or raises :class:`PoolSaturated`
  (``saturation="raise"``);
* **graceful lifecycle** — workers recycle after
  ``max_requests_per_worker`` requests or on crash, and every
  replacement is *warmed first*: it pre-builds (and, with autotune,
  pre-tunes) the geometries its predecessor served before taking
  traffic.  In-flight requests on a crashed worker are retried once on
  the replacement (``on_crash="retry"``) or failed with
  :class:`WorkerCrashed` (``"fail"``) — deterministically either way.

Results are **bit-identical** to a serial one-worker
:class:`~repro.api.Session` on the same request set: workers execute
through the same session machinery, every operator is row-independent,
and sharding only changes *where* a request runs, never its arithmetic.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import queue as queue_mod
import threading
import time
import weakref

import numpy as np

from repro.api.runner import default_workers
from repro.api.serve.router import format_geometry, geometry_key, shard_for
from repro.api.serve.shm import (
    DEFAULT_RING_BYTES,
    PoolSaturated,
    RingArena,
    SegmentRegistry,
)
from repro.api.serve.worker import worker_main
from repro.api.session import DTYPE_POLICIES, SpectralModel, _as_spectral_model
from repro.core.dtypes import complex_dtype_for
from repro.fft.compiled import resolve_backend_kernels

__all__ = ["ServePool", "ServeFuture", "ServeError", "WorkerCrashed"]

#: How long the parent waits for a worker to come up / warm / drain.
_LIFECYCLE_TIMEOUT = 120.0


class ServeError(RuntimeError):
    """A request failed inside a worker (the worker itself survived)."""


class WorkerCrashed(ServeError):
    """The worker died with this request in flight and the pool's
    ``on_crash`` policy (or the retry budget) said fail, not retry."""


class _HandleDead(Exception):
    """Internal: dispatch raced a worker death; re-route and retry."""


class ServeFuture:
    """Handle to one in-flight request; ``result()`` blocks for it."""

    __slots__ = ("geometry", "worker", "_event", "_value", "_exc")

    def __init__(self, geometry: str, worker: int) -> None:
        self.geometry = geometry  #: formatted routing key
        self.worker = worker  #: shard index the geometry maps to
        self._event = threading.Event()
        self._value: np.ndarray | None = None
        self._exc: BaseException | None = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> np.ndarray:
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request on worker {self.worker} ({self.geometry}) still "
                f"in flight after {timeout}s"
            )
        if self._exc is not None:
            raise self._exc
        return self._value

    def _set_result(self, value: np.ndarray) -> None:
        self._value = value
        self._event.set()

    def _set_exception(self, exc: BaseException) -> None:
        self._exc = exc
        self._event.set()


class _Pending:
    """Parent-side record of one in-flight request (retry source of truth)."""

    __slots__ = (
        "rid", "spec", "mid", "x", "gkey", "shard", "future", "req_off",
        "resp_off", "resp_cap", "allocated", "t_submit", "retries",
    )

    def __init__(self, rid, spec, mid, x, gkey, shard, future):
        self.rid = rid
        self.spec = spec
        self.mid = mid
        self.x = x
        self.gkey = gkey
        self.shard = shard
        self.future = future
        self.req_off = self.resp_off = self.resp_cap = 0
        self.allocated = False  # slab offsets valid (crash path frees them)
        self.t_submit = time.perf_counter()
        self.retries = 0


class _GeoStats:
    """Parent-side per-geometry admission/latency counters."""

    __slots__ = ("worker", "requests", "seconds", "retried", "failed")

    def __init__(self, worker: int) -> None:
        self.worker = worker
        self.requests = 0
        self.seconds = 0.0
        self.retried = 0
        self.failed = 0

    def as_dict(self) -> dict:
        out = {
            "requests": self.requests,
            "seconds": self.seconds,
            "requests_per_s": (
                self.requests / self.seconds if self.seconds > 0 else None
            ),
            "worker": self.worker,
            "retried": self.retried,
            "failed": self.failed,
        }
        return out


class _WorkerHandle:
    """Everything the parent holds for one worker process."""

    def __init__(self, shard, process, queue, conn, rings):
        self.shard = shard
        self.process = process
        self.queue = queue
        self.conn = conn
        self.req_shm, self.req_arena, self.resp_shm, self.resp_arena = rings
        self.lock = threading.Lock()
        #: Signalled whenever in-flight count drops (admission waits here).
        self.depth = threading.Condition(self.lock)
        self.pending: dict[int, _Pending] = {}
        self.pushed: set[int] = set()
        self.completed = 0
        self.dead = False
        self.closing = False
        self.ready = threading.Event()
        self.warmed = threading.Event()
        self.pid: int | None = None
        #: What this worker has served — the warmup-handoff inventory
        #: its replacement is primed with before taking traffic.
        self.warm_models: dict[int, tuple] = {}
        self.warm_geoms: set[tuple] = set()
        self.stats_waiters: dict[int, tuple[threading.Event, list]] = {}
        self.collector: threading.Thread | None = None

    def rings(self) -> tuple:
        return (self.req_shm, self.req_arena, self.resp_shm, self.resp_arena)


class ServePool:
    """A pool of shared-nothing serving workers sharded by geometry.

    Parameters
    ----------
    workers:
        Worker-process count; ``None`` resolves through
        :func:`repro.api.runner.default_workers` (the single
        ``REPRO_WORKERS`` parser — serve does not re-implement it).
    backend, autotune, dtype_policy:
        Forwarded to each worker's :class:`~repro.api.Session`
        (validated up front in the parent).
    max_batch:
        Micro-batch budget per worker drain (the same deterministic
        grouping :meth:`Session.infer_many` applies in-process).
    queue_depth:
        Bound of each worker's request queue — with the ring arenas,
        the backpressure surface.
    saturation:
        ``"block"`` (default): ``submit`` waits for queue/ring capacity;
        ``"raise"``: a saturated shard raises :class:`PoolSaturated`
        immediately.
    max_requests_per_worker:
        Recycle budget: after this many completed requests a worker is
        replaced (between requests) by a freshly warmed successor.
        ``None`` disables recycling.
    on_crash:
        ``"retry"`` (default): in-flight requests of a crashed worker
        are re-executed on its warmed replacement (at most
        ``max_retries`` times each, then failed); ``"fail"``: they fail
        immediately with :class:`WorkerCrashed`.
    ring_bytes:
        Per-ring shared-memory capacity (two rings per worker).
    start_method:
        ``multiprocessing`` start method; default prefers ``"fork"``
        and falls back to ``"spawn"`` where fork is unavailable.
    """

    def __init__(
        self,
        workers: int | None = None,
        backend: str = "auto",
        autotune: bool | str = False,
        dtype_policy: str = "preserve",
        max_batch: int = 32,
        queue_depth: int = 8,
        saturation: str = "block",
        max_requests_per_worker: int | None = None,
        on_crash: str = "retry",
        max_retries: int = 1,
        ring_bytes: int = DEFAULT_RING_BYTES,
        start_method: str | None = None,
    ) -> None:
        resolve_backend_kernels(backend)  # fail in the parent, not N times
        if dtype_policy not in DTYPE_POLICIES:
            raise ValueError(
                f"unknown dtype_policy {dtype_policy!r}; expected one of "
                f"{DTYPE_POLICIES}"
            )
        if saturation not in ("block", "raise"):
            raise ValueError(
                f"unknown saturation policy {saturation!r}; expected "
                f"'block' or 'raise'"
            )
        if on_crash not in ("retry", "fail"):
            raise ValueError(
                f"unknown on_crash policy {on_crash!r}; expected 'retry' "
                f"or 'fail'"
            )
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        self.workers = int(workers) if workers is not None else default_workers()
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.backend = backend
        self.autotune = autotune
        self.dtype_policy = dtype_policy
        self.max_batch = int(max_batch)
        self.queue_depth = int(queue_depth)
        self.saturation = saturation
        self.max_requests_per_worker = max_requests_per_worker
        self.on_crash = on_crash
        self.max_retries = int(max_retries)
        self.ring_bytes = int(ring_bytes)
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = mp.get_context(start_method)
        self._registry = SegmentRegistry()
        self._lock = threading.RLock()
        self._stats_lock = threading.Lock()
        self._closed = False
        self._rid = itertools.count()
        self._stats_token = itertools.count()
        self._models: dict[tuple, tuple[int, SpectralModel]] = {}
        self._geo_stats: dict[tuple, _GeoStats] = {}
        self._admission = {
            "submitted": 0, "completed": 0, "failed": 0, "rejected": 0,
            "retried": 0, "crashes": 0, "recycles": 0,
        }
        self._handles: dict[int, _WorkerHandle] = {}
        # Fork every worker before any collector thread exists, then
        # start the collectors: forking a thread-free parent sidesteps
        # the usual fork-with-threads hazards for the initial fleet.
        try:
            handles = [self._spawn_handle(i) for i in range(self.workers)]
            for handle in handles:
                self._start_collector(handle)
                self._handles[handle.shard] = handle
            for handle in handles:
                self._await(handle.ready, f"worker {handle.shard} startup")
        except BaseException:
            self._closed = True
            self._teardown(list(self._handles.values()))
            raise
        self._finalizer = weakref.finalize(
            self, SegmentRegistry.close_all, self._registry
        )

    # -- lifecycle ------------------------------------------------------

    def __enter__(self) -> "ServePool":
        self._check_open()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return (
            f"ServePool(workers={self.workers}, backend={self.backend!r}, "
            f"{state})"
        )

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("serve pool is closed")

    @staticmethod
    def _await(event: threading.Event, what: str) -> None:
        if not event.wait(_LIFECYCLE_TIMEOUT):
            raise RuntimeError(f"timed out waiting for {what}")

    def _spawn_handle(self, shard: int, rings=None) -> _WorkerHandle:
        if rings is None:
            req_shm = self._registry.create(self.ring_bytes)
            resp_shm = self._registry.create(self.ring_bytes)
            rings = (req_shm, RingArena(req_shm), resp_shm, RingArena(resp_shm))
        # Unbounded: the admission bound is the parent-side in-flight
        # count (queue_depth), so control messages (model push, warmup,
        # stats, drain sentinel) never contend with request backpressure.
        queue = self._ctx.Queue()
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=worker_main,
            args=(
                shard, queue, send_conn, rings[0].name, rings[2].name,
                self.backend, self.autotune, self.dtype_policy,
                self.max_batch,
            ),
            name=f"repro-serve-{shard}",
            daemon=True,
        )
        process.start()
        send_conn.close()  # child's end; closing ours makes EOF observable
        return _WorkerHandle(shard, process, queue, recv_conn, rings)

    def _start_collector(self, handle: _WorkerHandle) -> None:
        thread = threading.Thread(
            target=self._collect, args=(handle,),
            name=f"repro-serve-collect-{handle.shard}", daemon=True,
        )
        handle.collector = thread
        thread.start()

    def close(self, timeout: float = 10.0) -> None:
        """Stop every worker and unlink every shared-memory segment.

        Idempotent.  In-flight requests are failed with
        :class:`ServeError`; further calls raise ``RuntimeError``.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handles = list(self._handles.values())
        self._teardown(handles, timeout)

    def _teardown(self, handles, timeout: float = 10.0) -> None:
        for handle in handles:
            handle.closing = True
            try:
                handle.queue.put(None, block=True, timeout=1.0)
            except (queue_mod.Full, ValueError, OSError):
                pass
        for handle in handles:
            handle.process.join(timeout)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(1.0)
            if handle.process.is_alive():  # pragma: no cover - last resort
                handle.process.kill()
                handle.process.join(1.0)
        for handle in handles:
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover
                pass
            handle.queue.close()
            handle.queue.cancel_join_thread()
            with handle.depth:
                drained = list(handle.pending.values())
                handle.pending.clear()
                handle.depth.notify_all()  # wake blocked admitters: closing
            for pending in drained:
                pending.future._set_exception(ServeError("pool closed"))
        self._registry.close_all()

    # -- routing / model registry --------------------------------------

    def shard_of(self, model, x: np.ndarray) -> int:
        """The worker index ``(model, x)`` routes to (pure function)."""
        spec = self._spec_of(model)
        return shard_for(geometry_key(spec, np.asarray(x)), self.workers)

    @staticmethod
    def _spec_of(model) -> SpectralModel:
        spec = _as_spectral_model(model)
        if spec is None:
            raise TypeError(
                f"cannot serve model of type {type(model).__name__}; the "
                "pool serves SpectralModel (or (weight, modes[, symmetric]) "
                "tuple) requests — arbitrary callables cannot cross a "
                "process boundary"
            )
        return spec

    def _model_id(self, spec: SpectralModel) -> tuple[int, SpectralModel]:
        key = (id(spec.weight), spec.weight.shape, spec.modes, spec.symmetric)
        entry = self._models.get(key)
        if entry is None:
            entry = (len(self._models), spec)
            self._models[key] = entry
        return entry

    def _response_capacity(self, spec: SpectralModel, x: np.ndarray) -> int:
        # Upper bound: batch x C_out x spatial at complex working
        # precision (covers real->complex promotion and dtype policy).
        if self.dtype_policy == "float32":
            target = np.dtype(np.float32)
        elif self.dtype_policy == "float64":
            target = np.dtype(np.float64)
        else:
            target = x.dtype
        itemsize = np.dtype(complex_dtype_for(target)).itemsize
        spatial = int(np.prod(x.shape[2:], dtype=np.int64)) if x.ndim > 2 else 1
        return int(x.shape[0]) * int(spec.weight.shape[1]) * spatial * itemsize

    # -- submission -----------------------------------------------------

    def submit(
        self,
        model,
        x: np.ndarray,
        block: bool | None = None,
        timeout: float | None = None,
    ) -> ServeFuture:
        """Admit one request; returns a :class:`ServeFuture`.

        ``block`` defaults from the pool's ``saturation`` policy.  The
        input array must stay unmodified until the result is collected
        (it is the retry source if the owning worker crashes).
        """
        self._check_open()
        spec = self._spec_of(model)
        x = np.asarray(x)
        if x.ndim < 3:
            raise ValueError(
                f"request tensors are (batch, channels, *spatial); got "
                f"shape {x.shape}"
            )
        if block is None:
            block = self.saturation == "block"
        gkey = geometry_key(spec, x)
        shard = shard_for(gkey, self.workers)
        with self._lock:
            self._check_open()
            mid, spec = self._model_id(spec)
        with self._stats_lock:
            self._admission["submitted"] += 1
        future = ServeFuture(format_geometry(gkey), shard)
        pending = _Pending(next(self._rid), spec, mid, x, gkey, shard, future)
        try:
            self._submit_pending(pending, block, timeout)
        except PoolSaturated:
            with self._stats_lock:
                self._admission["rejected"] += 1
            raise
        return future

    def _submit_pending(self, pending: _Pending, block, timeout) -> None:
        while True:
            with self._lock:
                self._check_open()
                handle = self._handles[pending.shard]
                if (
                    self.max_requests_per_worker is not None
                    and handle.completed >= self.max_requests_per_worker
                    and not handle.pending
                ):
                    handle = self._recycle(pending.shard)
            try:
                self._dispatch(handle, pending, block, timeout)
                return
            except _HandleDead:
                continue  # the crash handler swapped the shard's worker

    def _dispatch(self, handle, pending: _Pending, block, timeout) -> None:
        x = pending.x
        spec = pending.spec
        # 1. Admission: take an in-flight slot (the queue_depth bound).
        with handle.depth:
            while len(handle.pending) >= self.queue_depth:
                if handle.dead or handle.closing:
                    raise _HandleDead
                if not block:
                    raise PoolSaturated(
                        f"worker {handle.shard} at queue depth "
                        f"{self.queue_depth}"
                    )
                if not handle.depth.wait(timeout):
                    raise PoolSaturated(
                        f"worker {handle.shard} still at queue depth "
                        f"{self.queue_depth} after {timeout:.1f}s"
                    )
            if handle.dead or handle.closing:
                raise _HandleDead
            pending.allocated = False
            handle.pending[pending.rid] = pending
            push_model = pending.mid not in handle.pushed
            if push_model:
                handle.pushed.add(pending.mid)
            handle.warm_models[pending.mid] = (
                pending.mid, spec.weight, spec.modes, spec.symmetric
            )
            handle.warm_geoms.add((pending.mid, tuple(x.shape), str(x.dtype)))

        def _abort(exc: BaseException | None):
            with handle.depth:
                owned = handle.pending.pop(pending.rid, None)
                handle.depth.notify_all()
            if owned is None:
                return False  # a crash handler owns the retry now
            if exc is not None:
                raise exc
            return True

        # 2. Slabs: ring capacity is the second backpressure gate.
        try:
            req_off = handle.req_arena.alloc(x.nbytes, block, timeout)
        except PoolSaturated as exc:
            _abort(exc)
            return
        resp_cap = self._response_capacity(spec, x)
        try:
            resp_off = handle.resp_arena.alloc(resp_cap, block, timeout)
        except PoolSaturated as exc:
            handle.req_arena.free(req_off)
            _abort(exc)
            return
        view = np.ndarray(
            x.shape, x.dtype, buffer=handle.req_shm.buf, offset=req_off
        )
        view[...] = x  # the only parent-side copy: user array -> ring
        del view
        # 3. Publish offsets; a crash between admission and here retries
        # through the pending entry, which never frees unallocated slabs.
        with handle.lock:
            if pending.rid not in handle.pending:
                # Crash handler took ownership while we staged: it
                # re-dispatches with fresh slabs; release ours.
                handle.req_arena.free(req_off)
                handle.resp_arena.free(resp_off)
                return
            if handle.dead or handle.closing:
                del handle.pending[pending.rid]
                handle.depth.notify_all()
                handle.req_arena.free(req_off)
                handle.resp_arena.free(resp_off)
                raise _HandleDead
            pending.req_off = req_off
            pending.resp_off = resp_off
            pending.resp_cap = resp_cap
            pending.allocated = True
        # 4. The header (the queue is unbounded: puts cannot block).
        try:
            if push_model:
                handle.queue.put(
                    ("model", pending.mid, spec.weight, spec.modes,
                     spec.symmetric)
                )
            handle.queue.put(
                ("req", pending.rid, pending.mid, tuple(x.shape),
                 str(x.dtype), req_off, resp_off, resp_cap)
            )
        except (ValueError, OSError):  # queue closed: worker is gone
            if _abort(None):
                handle.req_arena.free(req_off)
                handle.resp_arena.free(resp_off)
                raise _HandleDead from None

    # -- results --------------------------------------------------------

    def _collect(self, handle: _WorkerHandle) -> None:
        """Per-worker collector thread: drain the response pipe."""
        while True:
            try:
                msg = handle.conn.recv()
            except (EOFError, OSError):
                break
            kind = msg[0]
            if kind == "ready":
                handle.pid = msg[1]
                handle.ready.set()
            elif kind == "warmed":
                handle.warmed.set()
            elif kind in ("res", "err"):
                self._complete(handle, msg)
            elif kind == "stats":
                waiter = handle.stats_waiters.pop(msg[1], None)
                if waiter is not None:
                    waiter[1].append(msg[2])
                    waiter[0].set()
        if not (handle.closing or self._closed):
            self._on_worker_death(handle)

    def _complete(self, handle: _WorkerHandle, msg: tuple) -> None:
        rid = msg[1]
        with handle.depth:
            pending = handle.pending.pop(rid, None)
            if pending is not None:
                handle.completed += 1
                handle.depth.notify_all()  # an admission slot opened
        if pending is None:
            return  # raced a crash handover; the retry path owns it
        if msg[0] == "res":
            _, _, shape, dtype, _ = msg
            out = np.array(np.ndarray(
                shape, np.dtype(dtype), buffer=handle.resp_shm.buf,
                offset=pending.resp_off,
            ))
            error = None
        else:
            out, error = None, ServeError(msg[2])
        handle.req_arena.free(pending.req_off)
        handle.resp_arena.free(pending.resp_off)
        latency = time.perf_counter() - pending.t_submit
        with self._stats_lock:
            stats = self._geo_stats.get(pending.gkey)
            if stats is None:
                stats = self._geo_stats[pending.gkey] = _GeoStats(
                    pending.shard
                )
            stats.requests += 1
            stats.seconds += latency
            if error is None:
                self._admission["completed"] += 1
            else:
                stats.failed += 1
                self._admission["failed"] += 1
        if error is None:
            pending.future._set_result(out)
        else:
            pending.future._set_exception(error)

    # -- worker lifecycle -----------------------------------------------

    def _warm_handoff(self, old: _WorkerHandle, new: _WorkerHandle) -> None:
        """Prime ``new`` with everything ``old`` served, before traffic."""
        self._await(new.ready, f"worker {new.shard} startup")
        with old.lock:
            models = list(old.warm_models.values())
            geoms = sorted(old.warm_geoms)
        new.warm_models = dict((m[0], m) for m in models)
        new.warm_geoms = set(geoms)
        if not geoms and not models:
            return
        new.queue.put(("warm", models, geoms), block=True,
                      timeout=_LIFECYCLE_TIMEOUT)
        self._await(new.warmed, f"worker {new.shard} warmup handoff")
        new.pushed = {m[0] for m in models}

    def _recycle(self, shard: int) -> _WorkerHandle:
        """Replace an idle worker that hit its request budget.

        Called with the pool lock held and no requests in flight on the
        shard; the replacement is warmed before it is swapped in, so the
        shard never serves cold.
        """
        old = self._handles[shard]
        old.closing = True
        new = self._spawn_handle(shard, rings=old.rings())
        self._start_collector(new)
        self._warm_handoff(old, new)
        new.completed = 0
        self._handles[shard] = new
        self._admission["recycles"] += 1
        try:
            old.queue.put(None, block=True, timeout=1.0)
        except (queue_mod.Full, ValueError, OSError):  # pragma: no cover
            old.process.terminate()
        old.process.join(_LIFECYCLE_TIMEOUT)
        if old.process.is_alive():  # pragma: no cover - stuck drain
            old.process.terminate()
            old.process.join(1.0)
        try:
            old.conn.close()
        except OSError:  # pragma: no cover
            pass
        old.queue.close()
        old.queue.cancel_join_thread()
        return new

    def _on_worker_death(self, handle: _WorkerHandle) -> None:
        """Crash path: spawn + warm a replacement, then retry-or-fail
        the dead worker's in-flight requests (deterministic per policy)."""
        with self._lock:
            if self._closed or handle.closing or handle.dead:
                return
            with handle.depth:
                handle.dead = True
                drained = sorted(handle.pending.items())
                handle.pending.clear()
                handle.depth.notify_all()  # wake blocked admitters: dead
            self._admission["crashes"] += 1
            # Nothing reads these slabs any more: reclaim them.  (Not an
            # arena-wide reset — a submit racing this handler still owns
            # the slab it just allocated and frees it itself, and a
            # drained request whose dispatch never reached the publish
            # step has no slabs to free yet.)
            for _, pending in drained:
                if pending.allocated:
                    handle.req_arena.free(pending.req_off)
                    handle.resp_arena.free(pending.resp_off)
                    pending.allocated = False
            handle.process.join(1.0)
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover
                pass
            handle.queue.close()
            handle.queue.cancel_join_thread()
            new = self._spawn_handle(handle.shard, rings=handle.rings())
            self._start_collector(new)
            self._handles[handle.shard] = new
        try:
            self._warm_handoff(handle, new)
        except RuntimeError:  # pragma: no cover - replacement also sick
            pass
        for _, pending in drained:
            retry = (
                self.on_crash == "retry"
                and pending.retries < self.max_retries
            )
            if not retry:
                with self._stats_lock:
                    self._admission["failed"] += 1
                    stats = self._geo_stats.get(pending.gkey)
                    if stats is not None:
                        stats.failed += 1
                pending.future._set_exception(WorkerCrashed(
                    f"worker {handle.shard} died with this request in "
                    f"flight (policy {self.on_crash!r}, "
                    f"retries {pending.retries}/{self.max_retries})"
                ))
                continue
            pending.retries += 1
            with self._stats_lock:
                self._admission["retried"] += 1
                stats = self._geo_stats.get(pending.gkey)
                if stats is None:
                    stats = self._geo_stats[pending.gkey] = _GeoStats(
                        pending.shard
                    )
                stats.retried += 1
            try:
                self._submit_pending(pending, True, _LIFECYCLE_TIMEOUT)
            except (PoolSaturated, RuntimeError) as exc:
                pending.future._set_exception(exc)

    # -- serving --------------------------------------------------------

    def infer(self, model, x: np.ndarray,
              timeout: float | None = None) -> np.ndarray:
        """Serve one request synchronously (submit + wait)."""
        return self.submit(model, x).result(timeout)

    def infer_many(self, requests, timeout: float | None = None) -> list:
        """Serve a stream of ``(model, x)`` requests.

        Every request is admitted under the pool's backpressure policy
        and routed to its geometry's worker; results return in request
        order, bit-identical to a serial one-worker
        :class:`~repro.api.Session` over the same stream.
        """
        futures = [self.submit(model, x) for model, x in requests]
        return [f.result(timeout) for f in futures]

    # -- observability --------------------------------------------------

    def worker_pids(self) -> list[int | None]:
        """Live worker PIDs by shard (``None`` while a shard restarts)."""
        with self._lock:
            return [
                self._handles[i].process.pid for i in range(self.workers)
            ]

    def segment_names(self) -> list[str]:
        """Every shared-memory segment name this pool ever created
        (closed pools keep the list: the leak-audit surface)."""
        return self._registry.names()

    def live_segment_names(self) -> list[str]:
        """Segment names not yet unlinked."""
        return self._registry.live_names()

    def stats(self, timeout: float = 5.0) -> dict:
        """Pool statistics, shaped like :meth:`Session.stats`.

        ``per_geometry`` carries the parent's admission/latency counters
        per routing key — including ``worker``, the single shard that
        geometry is pinned to — and ``per_worker`` embeds each live
        worker's own ``Session.stats()`` snapshot (``None`` if the
        worker was too busy to answer within ``timeout``).
        """
        with self._lock:
            handles = (
                [] if self._closed
                else [self._handles[i] for i in range(self.workers)]
            )
            requests_polled = [
                (handle, next(self._stats_token)) for handle in handles
            ]
        deadline = time.monotonic() + timeout
        polls: list[tuple[_WorkerHandle, threading.Event, list]] = []
        for handle, token in requests_polled:
            event: threading.Event = threading.Event()
            box: list = []
            handle.stats_waiters[token] = (event, box)
            try:
                handle.queue.put(("stats", token), block=False)
                polls.append((handle, event, box))
            except (queue_mod.Full, ValueError, OSError):
                handle.stats_waiters.pop(token, None)
                polls.append((handle, event, box))  # reported as stale
        per_worker = []
        batches = 0
        for handle, event, box in polls:
            event.wait(max(0.0, deadline - time.monotonic()))
            payload = box[0] if box else None
            if payload is not None:
                batches += payload["session"].get("batches", 0)
            per_worker.append({
                "shard": handle.shard,
                "pid": handle.pid,
                "alive": handle.process.is_alive(),
                "completed": handle.completed,
                "in_flight": len(handle.pending),
                "served": payload["served"] if payload else None,
                "session": payload["session"] if payload else None,
            })
        with self._stats_lock:
            per_geometry = {
                format_geometry(key): stats.as_dict()
                for key, stats in self._geo_stats.items()
            }
            admission = dict(self._admission)
        return {
            "workers": self.workers,
            "backend": self.backend,
            "dtype_policy": self.dtype_policy,
            "closed": self._closed,
            "requests": admission["completed"],
            "batches": batches,
            "admission": admission,
            "per_geometry": per_geometry,
            "per_worker": per_worker,
        }
