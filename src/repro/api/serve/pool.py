"""``ServePool``: the shared-nothing multi-process serving front-end.

PR 4's ``Session.infer_many`` micro-batches inside one process — thread
drains under the GIL, so the compiled-kernel and autotune wins of PRs
2-5 never scale past one core at serve time.  A :class:`ServePool`
converts those per-core wins into multi-core throughput:

* **N worker processes, shared-nothing** — each worker owns one warm
  :class:`repro.api.Session` (plan cache, FFT/rfft plan caches,
  executor pool, autotune memo) and shares only its request queue and
  two ring segments with the parent;
* **geometry-hash sharding** — requests route by the stable hash of
  ``(ndim, spatial_shape, modes, dtype)`` (:mod:`repro.api.serve.router`),
  so a given geometry always lands on the same worker and that worker's
  caches stay hot for the life of the pool;
* **zero-copy tensors** — request/response arrays move through
  ``multiprocessing.shared_memory`` rings (:mod:`repro.api.serve.shm`):
  workers read input slabs and write outputs in place, only a small
  *checksummed* pickled header crosses the queue;
* **backpressure** — bounded per-worker queues and ring arenas;
  ``submit`` blocks (default) or raises :class:`PoolSaturated`
  (``saturation="raise"``);
* **rollout serving** — :meth:`ServePool.rollout` /
  :meth:`ServePool.rollout_many` route whole autoregressive streams to
  their geometry's shard: one ``"roll"`` header crosses the queue per
  stream, the worker's warm session steps the state in place (and
  micro-batches concurrent same-geometry streams), and only the final
  state crosses back through the ring;
* **failure enforcement** (:mod:`repro.api.serve.health`) — workers
  heartbeat over the control pipe; a monitor thread kills hung-but-
  alive workers (deadlock, ``SIGSTOP``, runaway loop) so they take the
  same warmed-replacement + retry-or-fail path as a crash, sweeps
  per-request **deadlines** (``submit(deadline=)``) into typed
  :class:`DeadlineExceeded` failures, and feeds a per-shard
  :class:`~repro.api.serve.health.CircuitBreaker`;
* **graceful degradation** — after ``breaker_threshold`` consecutive
  crash/hang replacements a shard's breaker opens: its geometries
  reroute to an in-parent fallback :class:`~repro.api.Session`
  (bit-identical results, degraded throughput, visible in
  ``stats()["degraded"]``) until a half-open probe succeeds;
* **graceful lifecycle** — workers recycle after
  ``max_requests_per_worker`` requests or on crash, and every
  replacement is *warmed first*: it pre-builds (and, with autotune,
  pre-tunes) the geometries its predecessor served before taking
  traffic.  In-flight requests on a crashed worker are retried once on
  the replacement (``on_crash="retry"``) or failed with
  :class:`WorkerCrashed` (``"fail"``) — deterministically either way;
* **chaos testability** (:mod:`repro.api.serve.faults`) — a scripted
  :class:`~repro.api.serve.faults.FaultPlan` (``ServePool(faults=...)``
  or ``REPRO_FAULTS``) injects crash/hang/latency/ring-failure/header-
  corruption faults at exact request indices, so every recovery path
  above is provoked deterministically in tests and the
  ``python -m repro chaos-soak`` harness.

Results are **bit-identical** to a serial one-worker
:class:`~repro.api.Session` on the same request set: workers (and the
degradation fallback) execute through the same session machinery, every
operator is row-independent, and routing only changes *where* a request
runs, never its arithmetic.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import queue as queue_mod
import threading
import time
import weakref

import numpy as np

from repro.api.runner import default_workers
from repro.api.serve.faults import ChaosInjector, FaultPlan
from repro.api.serve.health import (
    Cancelled,
    CircuitBreaker,
    CorruptedHeader,
    DeadlineExceeded,
    HealthMonitor,
    HealthPolicy,
    InfrastructureError,
    ResultTimeout,
    ServeError,
    WorkerCrashed,
)
from repro.api.serve.router import (
    FALLBACK,
    RouteTable,
    format_geometry,
    geometry_key,
    shard_for,
)
from repro.api.serve.shm import (
    DEFAULT_RING_BYTES,
    PoolSaturated,
    RingArena,
    SegmentRegistry,
    header_checksum,
)
from repro.api.serve.worker import worker_main
from repro.api.session import DTYPE_POLICIES, LatencyReservoir, \
    ROLLOUT_PROFILES, Session, SpectralModel, _as_spectral_model
from repro.core.dtypes import complex_dtype_for
from repro.fft.compiled import resolve_backend_kernels

__all__ = [
    "ServePool",
    "ServeFuture",
    "ServeError",
    "WorkerCrashed",
    "DeadlineExceeded",
    "ResultTimeout",
    "Cancelled",
    "CorruptedHeader",
]

#: How long the parent waits for a worker to come up / warm / drain.
_LIFECYCLE_TIMEOUT = 120.0


class _HandleDead(Exception):
    """Internal: dispatch raced a worker death; re-route and retry."""


class ServeFuture:
    """Handle to one in-flight request; ``result()`` blocks for it.

    ``result(timeout=)`` expiry raises :class:`ResultTimeout` — the
    request is *still in flight* and keeps holding its ring slabs until
    the worker answers (or dies); call :meth:`cancel` to abandon it and
    let the pool reclaim the slabs at the worker's next answer.
    Resolution is first-wins: whichever of the worker's answer, the
    deadline sweep, a crash, or :meth:`cancel` lands first decides the
    outcome, and everything later is bookkeeping only.
    """

    __slots__ = ("geometry", "worker", "deadline", "_event", "_value",
                 "_exc", "_lock", "_cancel_hook")

    def __init__(self, geometry: str, worker: int,
                 deadline: float | None = None) -> None:
        self.geometry = geometry  #: formatted routing key
        self.worker = worker  #: shard index the geometry maps to
        self.deadline = deadline  #: absolute ``time.monotonic()`` (or None)
        self._event = threading.Event()
        self._value: np.ndarray | None = None
        self._exc: BaseException | None = None
        self._lock = threading.Lock()
        self._cancel_hook = None

    def done(self) -> bool:
        return self._event.is_set()

    def cancelled(self) -> bool:
        return isinstance(self._exc, Cancelled)

    def result(self, timeout: float | None = None) -> np.ndarray:
        if not self._event.wait(timeout):
            raise ResultTimeout(
                f"request on worker {self.worker} ({self.geometry}) still "
                f"in flight after {timeout}s — it keeps holding its ring "
                f"slabs; cancel() abandons it and releases them"
            )
        if self._exc is not None:
            raise self._exc
        return self._value

    def cancel(self) -> bool:
        """Abandon the request; True when this call resolved the future.

        The future fails with :class:`Cancelled` immediately; the ring
        slabs are reclaimed as soon as the owning worker answers for
        the request (or dies) — never while it might still write them.
        Already-resolved futures return False.
        """
        hook = self._cancel_hook
        if hook is None or self.done():
            return False
        return hook()

    def _set_result(self, value: np.ndarray) -> bool:
        with self._lock:
            if self._event.is_set():
                return False
            self._value = value
            self._event.set()
            return True

    def _set_exception(self, exc: BaseException) -> bool:
        with self._lock:
            if self._event.is_set():
                return False
            self._exc = exc
            self._event.set()
            return True


class _Pending:
    """Parent-side record of one in-flight request (retry source of truth)."""

    __slots__ = (
        "rid", "spec", "mid", "x", "gkey", "shard", "future", "req_off",
        "resp_off", "resp_cap", "allocated", "t_submit", "t_dispatch",
        "retries", "deadline", "abandoned", "steps", "profile",
    )

    def __init__(self, rid, spec, mid, x, gkey, shard, future, deadline,
                 steps=None, profile=None):
        self.rid = rid
        self.spec = spec
        self.mid = mid
        self.x = x
        self.gkey = gkey
        self.shard = shard
        self.future = future
        self.req_off = self.resp_off = self.resp_cap = 0
        self.allocated = False  # slab offsets valid (crash path frees them)
        self.t_submit = time.perf_counter()
        self.t_dispatch = time.monotonic()
        self.retries = 0
        self.deadline = deadline  # absolute time.monotonic() or None
        #: Future already resolved (deadline sweep / cancel); the worker
        #: answer only frees slabs, never delivers.
        self.abandoned = False
        #: Rollout stream: step count + profile (None: plain inference).
        self.steps = steps
        self.profile = profile

    def expired(self, now: float | None = None) -> bool:
        return (
            self.deadline is not None
            and (now if now is not None else time.monotonic())
            >= self.deadline
        )


class _GeoStats:
    """Parent-side per-geometry admission/latency counters."""

    __slots__ = ("worker", "requests", "seconds", "retried", "failed",
                 "expired", "degraded", "latency")

    def __init__(self, worker: int) -> None:
        self.worker = worker
        self.requests = 0
        self.seconds = 0.0
        self.retried = 0
        self.failed = 0
        self.expired = 0
        self.degraded = 0
        #: End-to-end (submit -> result) latency reservoir.
        self.latency = LatencyReservoir()

    def as_dict(self) -> dict:
        out = {
            "requests": self.requests,
            "seconds": self.seconds,
            "requests_per_s": (
                self.requests / self.seconds if self.seconds > 0 else None
            ),
            "worker": self.worker,
            "retried": self.retried,
            "failed": self.failed,
            "expired": self.expired,
            "degraded": self.degraded,
            "latency": self.latency.percentiles(),
        }
        return out


class _WorkerHandle:
    """Everything the parent holds for one worker process."""

    def __init__(self, shard, process, queue, conn, rings):
        self.shard = shard
        self.process = process
        self.queue = queue
        self.conn = conn
        self.req_shm, self.req_arena, self.resp_shm, self.resp_arena = rings
        self.lock = threading.Lock()
        #: Signalled whenever in-flight count drops (admission waits here).
        self.depth = threading.Condition(self.lock)
        self.pending: dict[int, _Pending] = {}
        self.pushed: set[int] = set()
        self.completed = 0
        self.dead = False
        self.closing = False
        self.ready = threading.Event()
        self.warmed = threading.Event()
        self.pid: int | None = None
        self.backend: str | None = None  #: actual substrate ("ready" reports)
        #: Health bookkeeping (collector writes, monitor reads).
        self.last_progress = time.monotonic()
        self.last_heartbeat: float | None = None
        self.hb_served = -1
        self.hang_killed = False
        #: What this worker has served — the warmup-handoff inventory
        #: its replacement is primed with before taking traffic.
        self.warm_models: dict[int, tuple] = {}
        self.warm_geoms: set[tuple] = set()
        self.stats_waiters: dict[int, tuple[threading.Event, list]] = {}
        self.collector: threading.Thread | None = None

    def rings(self) -> tuple:
        return (self.req_shm, self.req_arena, self.resp_shm, self.resp_arena)


class ServePool:
    """A pool of shared-nothing serving workers sharded by geometry.

    Parameters
    ----------
    workers:
        Worker-process count; ``None`` resolves through
        :func:`repro.api.runner.default_workers` (the single
        ``REPRO_WORKERS`` parser — serve does not re-implement it).
    backend, autotune, dtype_policy:
        Forwarded to each worker's :class:`~repro.api.Session`
        (validated up front in the parent).  A worker whose C-kernel
        self-check fails at startup falls back to the NumPy substrate
        (identical bits) instead of crash-looping; ``stats()`` reports
        each worker's actual backend.
    max_batch:
        Micro-batch budget per worker drain (the same deterministic
        grouping :meth:`Session.infer_many` applies in-process).
    queue_depth:
        Bound of each worker's request queue — with the ring arenas,
        the backpressure surface.
    saturation:
        ``"block"`` (default): ``submit`` waits for queue/ring capacity;
        ``"raise"``: a saturated shard raises :class:`PoolSaturated`
        immediately.
    max_requests_per_worker:
        Recycle budget: after this many completed requests a worker is
        replaced (between requests) by a freshly warmed successor.
        ``None`` disables recycling.
    on_crash:
        ``"retry"`` (default): in-flight requests of a crashed (or
        hang-killed) worker are re-executed on its warmed replacement
        (at most ``max_retries`` times each, then failed); ``"fail"``:
        they fail immediately with :class:`WorkerCrashed`.  The same
        policy governs checksum-rejected (corrupted) responses.
    ring_bytes:
        Per-ring shared-memory capacity (two rings per worker).
    health:
        :class:`~repro.api.serve.health.HealthPolicy` — heartbeat
        cadence, ``hang_timeout`` (a busy worker with no progress for
        this long is killed and replaced) and the deadline-sweep tick.
    faults:
        A :class:`~repro.api.serve.faults.FaultPlan` (or its string
        spec) scripting injected faults; ``None`` reads
        ``REPRO_FAULTS``.  Production pools run with no plan and pay
        one ``None`` check per request.
    breaker_threshold, breaker_cooldown:
        Per-shard circuit breaker: after ``threshold`` *consecutive*
        crash/hang replacements the shard's traffic reroutes to the
        in-parent fallback session until a half-open probe (after
        ``cooldown`` seconds) succeeds.
    start_method:
        ``multiprocessing`` start method; default prefers ``"fork"``
        and falls back to ``"spawn"`` where fork is unavailable.
    """

    def __init__(
        self,
        workers: int | None = None,
        backend: str = "auto",
        autotune: bool | str = False,
        dtype_policy: str = "preserve",
        max_batch: int = 32,
        queue_depth: int = 8,
        saturation: str = "block",
        max_requests_per_worker: int | None = None,
        on_crash: str = "retry",
        max_retries: int = 1,
        ring_bytes: int = DEFAULT_RING_BYTES,
        health: HealthPolicy | None = None,
        faults: FaultPlan | str | None = None,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 30.0,
        start_method: str | None = None,
    ) -> None:
        resolve_backend_kernels(backend)  # fail in the parent, not N times
        if dtype_policy not in DTYPE_POLICIES:
            raise ValueError(
                f"unknown dtype_policy {dtype_policy!r}; expected one of "
                f"{DTYPE_POLICIES}"
            )
        if saturation not in ("block", "raise"):
            raise ValueError(
                f"unknown saturation policy {saturation!r}; expected "
                f"'block' or 'raise'"
            )
        if on_crash not in ("retry", "fail"):
            raise ValueError(
                f"unknown on_crash policy {on_crash!r}; expected 'retry' "
                f"or 'fail'"
            )
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        self.workers = int(workers) if workers is not None else default_workers()
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.backend = backend
        self.autotune = autotune
        self.dtype_policy = dtype_policy
        self.max_batch = int(max_batch)
        self.queue_depth = int(queue_depth)
        self.saturation = saturation
        self.max_requests_per_worker = max_requests_per_worker
        self.on_crash = on_crash
        self.max_retries = int(max_retries)
        self.ring_bytes = int(ring_bytes)
        self.health = health if health is not None else HealthPolicy()
        if isinstance(faults, str):
            faults = FaultPlan.parse(faults)
        if faults is None:
            faults = FaultPlan.from_env()
        self._fault_plan = faults
        self._injector = ChaosInjector(faults)
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = mp.get_context(start_method)
        self._registry = SegmentRegistry()
        self._lock = threading.RLock()
        self._stats_lock = threading.Lock()
        self._closed = False
        self._rid = itertools.count()
        self._stats_token = itertools.count()
        self._models: dict[tuple, tuple[int, SpectralModel]] = {}
        self._geo_stats: dict[tuple, _GeoStats] = {}
        self._latency = LatencyReservoir()
        self._rollout_streams = 0
        self._rollout_steps = 0
        self._admission = {
            "submitted": 0, "completed": 0, "failed": 0, "rejected": 0,
            "retried": 0, "crashes": 0, "recycles": 0, "hangs": 0,
            "expired": 0, "corrupted": 0, "cancelled": 0, "degraded": 0,
            "breaker_opens": 0,
        }
        self._handles: dict[int, _WorkerHandle] = {}
        self._routes = RouteTable(self.workers)
        self._breakers = {
            i: CircuitBreaker(breaker_threshold, breaker_cooldown)
            for i in range(self.workers)
        }
        self._monitor: HealthMonitor | None = None
        #: The graceful-degradation path: one in-parent session + drain
        #: thread, created lazily the first time a breaker opens.
        self._fallback_session: Session | None = None
        self._fallback_thread: threading.Thread | None = None
        self._fallback_queue: "queue_mod.Queue[_Pending | None]" = \
            queue_mod.Queue()
        # Fork every worker before any collector thread exists, then
        # start the collectors: forking a thread-free parent sidesteps
        # the usual fork-with-threads hazards for the initial fleet.
        try:
            handles = [self._spawn_handle(i) for i in range(self.workers)]
            for handle in handles:
                self._start_collector(handle)
                self._handles[handle.shard] = handle
            for handle in handles:
                self._await(handle.ready, f"worker {handle.shard} startup")
        except BaseException:
            self._closed = True
            self._teardown(list(self._handles.values()))
            raise
        self._monitor = HealthMonitor(self.health, self._health_tick)
        self._monitor.start()
        self._finalizer = weakref.finalize(
            self, SegmentRegistry.close_all, self._registry
        )

    # -- lifecycle ------------------------------------------------------

    def __enter__(self) -> "ServePool":
        self._check_open()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return (
            f"ServePool(workers={self.workers}, backend={self.backend!r}, "
            f"{state})"
        )

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("serve pool is closed")

    @staticmethod
    def _await(event: threading.Event, what: str) -> None:
        if not event.wait(_LIFECYCLE_TIMEOUT):
            raise RuntimeError(f"timed out waiting for {what}")

    def _spawn_handle(self, shard: int, rings=None) -> _WorkerHandle:
        if rings is None:
            req_shm = self._registry.create(self.ring_bytes)
            resp_shm = self._registry.create(self.ring_bytes)
            rings = (req_shm, RingArena(req_shm), resp_shm, RingArena(resp_shm))
        # Unbounded: the admission bound is the parent-side in-flight
        # count (queue_depth), so control messages (model push, warmup,
        # stats, drain sentinel) never contend with request backpressure.
        queue = self._ctx.Queue()
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=worker_main,
            args=(
                shard, queue, send_conn, rings[0].name, rings[2].name,
                self.backend, self.autotune, self.dtype_policy,
                self.max_batch, self.health.heartbeat_interval,
                self._fault_plan,
            ),
            name=f"repro-serve-{shard}",
            daemon=True,
        )
        process.start()
        send_conn.close()  # child's end; closing ours makes EOF observable
        return _WorkerHandle(shard, process, queue, recv_conn, rings)

    def _start_collector(self, handle: _WorkerHandle) -> None:
        thread = threading.Thread(
            target=self._collect, args=(handle,),
            name=f"repro-serve-collect-{handle.shard}", daemon=True,
        )
        handle.collector = thread
        thread.start()

    def close(self, timeout: float = 10.0) -> None:
        """Stop every worker and unlink every shared-memory segment.

        Idempotent.  ``timeout`` is the *total* shutdown budget: every
        internal wait (drain-sentinel puts, process joins, fallback
        drain) is derived from the remaining budget rather than a fixed
        per-step constant, so close-under-saturation completes within
        ``timeout`` plus a small per-worker floor — deterministically.
        In-flight requests are failed with :class:`ServeError`; further
        calls raise ``RuntimeError``.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handles = list(self._handles.values())
        self._teardown(handles, timeout)

    def _teardown(self, handles, timeout: float = 10.0) -> None:
        deadline = time.monotonic() + max(0.1, timeout)

        def remaining(floor: float = 0.05) -> float:
            return max(floor, deadline - time.monotonic())

        if self._monitor is not None:
            self._monitor.stop(remaining(0.1))
        for handle in handles:
            handle.closing = True
            try:
                # Derived from the close budget (split across workers),
                # not a hardcoded constant: a saturated pool's feeder
                # can't eat the whole budget on the first worker.
                handle.queue.put(
                    None, block=True,
                    timeout=min(1.0, remaining() / max(1, len(handles))),
                )
            except (queue_mod.Full, ValueError, OSError):
                pass
        for handle in handles:
            handle.process.join(remaining())
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(remaining(0.5))
            if handle.process.is_alive():  # pragma: no cover - last resort
                handle.process.kill()
                handle.process.join(1.0)
        for handle in handles:
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover
                pass
            handle.queue.close()
            handle.queue.cancel_join_thread()
            with handle.depth:
                drained = list(handle.pending.values())
                handle.pending.clear()
                handle.depth.notify_all()  # wake blocked admitters: closing
            for pending in drained:
                pending.future._set_exception(ServeError("pool closed"))
        # The degradation path: stop the drain thread, fail anything
        # still queued behind the sentinel, release the session.
        if self._fallback_thread is not None:
            self._fallback_queue.put(None)
            self._fallback_thread.join(remaining())
        while True:
            try:
                pending = self._fallback_queue.get_nowait()
            except queue_mod.Empty:
                break
            if pending is not None:
                pending.future._set_exception(ServeError("pool closed"))
        if self._fallback_session is not None:
            try:
                self._fallback_session.close()
            except Exception:  # pragma: no cover - teardown best-effort
                pass
        self._registry.close_all()

    # -- routing / model registry --------------------------------------

    def shard_of(self, model, x: np.ndarray) -> int:
        """The worker index ``(model, x)`` routes to (pure function)."""
        spec = self._spec_of(model)
        return shard_for(geometry_key(spec, np.asarray(x)), self.workers)

    @staticmethod
    def _spec_of(model) -> SpectralModel:
        spec = _as_spectral_model(model)
        if spec is None:
            raise TypeError(
                f"cannot serve model of type {type(model).__name__}; the "
                "pool serves SpectralModel (or (weight, modes[, symmetric]) "
                "tuple) requests — arbitrary callables cannot cross a "
                "process boundary"
            )
        return spec

    def _model_id(self, spec: SpectralModel) -> tuple[int, SpectralModel]:
        key = (id(spec.weight), spec.weight.shape, spec.modes, spec.symmetric)
        entry = self._models.get(key)
        if entry is None:
            entry = (len(self._models), spec)
            self._models[key] = entry
        return entry

    def _response_capacity(self, spec: SpectralModel, x: np.ndarray) -> int:
        # Upper bound: batch x C_out x spatial at complex working
        # precision (covers real->complex promotion and dtype policy).
        if self.dtype_policy == "float32":
            target = np.dtype(np.float32)
        elif self.dtype_policy == "float64":
            target = np.dtype(np.float64)
        else:
            target = x.dtype
        itemsize = np.dtype(complex_dtype_for(target)).itemsize
        spatial = int(np.prod(x.shape[2:], dtype=np.int64)) if x.ndim > 2 else 1
        return int(x.shape[0]) * int(spec.weight.shape[1]) * spatial * itemsize

    # -- submission -----------------------------------------------------

    def submit(
        self,
        model,
        x: np.ndarray,
        block: bool | None = None,
        timeout: float | None = None,
        deadline: float | None = None,
    ) -> ServeFuture:
        """Admit one request; returns a :class:`ServeFuture`.

        ``block`` defaults from the pool's ``saturation`` policy.  The
        input array must stay unmodified until the result is collected
        (it is the retry source if the owning worker crashes).

        ``deadline`` is an end-to-end budget in *seconds from now*: a
        request still unfinished when it expires fails with
        :class:`DeadlineExceeded` — parent-side via the health monitor
        sweep, worker-side by skipping expired requests before
        executing them (never served late).  ``deadline=0`` expires
        immediately (useful to test the path).
        """
        return self._admit(model, x, block, timeout, deadline)

    def submit_rollout(
        self,
        model,
        x0: np.ndarray,
        steps: int,
        profile: str = "exact",
        block: bool | None = None,
        timeout: float | None = None,
        deadline: float | None = None,
    ) -> ServeFuture:
        """Admit one autoregressive rollout stream; resolves to the
        final state (``keep="last"``).

        The whole stream routes to its geometry's shard — state stays
        resident on one warm worker for all ``steps`` — and concurrent
        streams sharing ``(steps, profile)`` micro-batch there through
        :meth:`repro.api.Session.rollout`.  ``deadline`` covers the
        entire stream.
        """
        steps = int(steps)
        if steps < 1:
            raise ValueError(f"steps must be >= 1, got {steps}")
        if profile not in ROLLOUT_PROFILES:
            raise ValueError(
                f"unknown rollout profile {profile!r}; expected one of "
                f"{ROLLOUT_PROFILES}"
            )
        return self._admit(model, x0, block, timeout, deadline,
                           steps=steps, profile=profile)

    def _admit(self, model, x, block, timeout, deadline,
               steps=None, profile=None) -> ServeFuture:
        self._check_open()
        spec = self._spec_of(model)
        x = np.asarray(x)
        if x.ndim < 3:
            raise ValueError(
                f"request tensors are (batch, channels, *spatial); got "
                f"shape {x.shape}"
            )
        if deadline is not None and deadline < 0:
            raise ValueError(f"deadline must be >= 0 seconds, got {deadline}")
        if block is None:
            block = self.saturation == "block"
        gkey = geometry_key(spec, x)
        shard = shard_for(gkey, self.workers)
        with self._lock:
            self._check_open()
            mid, spec = self._model_id(spec)
        with self._stats_lock:
            self._admission["submitted"] += 1
        abs_deadline = (
            None if deadline is None else time.monotonic() + deadline
        )
        future = ServeFuture(format_geometry(gkey), shard, abs_deadline)
        pending = _Pending(next(self._rid), spec, mid, x, gkey, shard,
                           future, abs_deadline, steps=steps,
                           profile=profile)
        future._cancel_hook = lambda: self._cancel_pending(pending)
        try:
            self._submit_pending(pending, block, timeout)
        except PoolSaturated:
            with self._stats_lock:
                self._admission["rejected"] += 1
            raise
        return future

    def _cancel_pending(self, pending: _Pending) -> bool:
        """``ServeFuture.cancel()`` body: abandon one in-flight request."""
        pending.abandoned = True
        won = pending.future._set_exception(Cancelled(
            f"request {pending.rid} ({format_geometry(pending.gkey)}) "
            f"abandoned by cancel()"
        ))
        if won:
            with self._stats_lock:
                self._admission["cancelled"] += 1
        return won

    def _fail_expired(self, pending: _Pending, exc: DeadlineExceeded) -> None:
        pending.abandoned = True
        won = pending.future._set_exception(exc)
        if won:
            with self._stats_lock:
                self._admission["expired"] += 1
                self._geo(pending).expired += 1

    def _geo(self, pending: _Pending) -> _GeoStats:
        """Per-geometry counters (call with ``_stats_lock`` held)."""
        stats = self._geo_stats.get(pending.gkey)
        if stats is None:
            stats = self._geo_stats[pending.gkey] = _GeoStats(pending.shard)
        return stats

    def _submit_pending(self, pending: _Pending, block, timeout) -> None:
        while True:
            with self._lock:
                self._check_open()
                # Degradation reroute: an open breaker sends the shard's
                # traffic to the in-parent fallback session — except the
                # single half-open probe the breaker lets through.
                if self._routes.route(pending.gkey) == FALLBACK:
                    if not self._breakers[pending.shard].allow_worker():
                        self._submit_degraded(pending)
                        return
                handle = self._handles[pending.shard]
                if (
                    self.max_requests_per_worker is not None
                    and handle.completed >= self.max_requests_per_worker
                    and not handle.pending
                ):
                    handle = self._recycle(pending.shard)
            try:
                self._dispatch(handle, pending, block, timeout)
                return
            except _HandleDead:
                continue  # the crash handler swapped the shard's worker
            except DeadlineExceeded as exc:
                self._fail_expired(pending, exc)
                return

    def _dispatch(self, handle, pending: _Pending, block, timeout) -> None:
        x = pending.x
        spec = pending.spec
        now = time.monotonic()
        if pending.expired(now):
            raise DeadlineExceeded(
                f"request {pending.rid} expired before dispatch"
            )
        pending.t_dispatch = now
        t_limit = None if timeout is None else now + timeout
        # 1. Admission: take an in-flight slot (the queue_depth bound).
        with handle.depth:
            while len(handle.pending) >= self.queue_depth:
                if handle.dead or handle.closing:
                    raise _HandleDead
                now = time.monotonic()
                if pending.expired(now):
                    raise DeadlineExceeded(
                        f"request {pending.rid} expired waiting for an "
                        f"admission slot on worker {handle.shard}"
                    )
                if not block:
                    raise PoolSaturated(
                        f"worker {handle.shard} at queue depth "
                        f"{self.queue_depth}"
                    )
                if t_limit is not None and now >= t_limit:
                    raise PoolSaturated(
                        f"worker {handle.shard} still at queue depth "
                        f"{self.queue_depth} after {timeout:.1f}s"
                    )
                bounds = [b for b in (t_limit, pending.deadline)
                          if b is not None]
                handle.depth.wait(
                    None if not bounds else max(0.0, min(bounds) - now)
                )
            if handle.dead or handle.closing:
                raise _HandleDead
            pending.allocated = False
            handle.pending[pending.rid] = pending
            push_model = pending.mid not in handle.pushed
            if push_model:
                handle.pushed.add(pending.mid)
            handle.warm_models[pending.mid] = (
                pending.mid, spec.weight, spec.modes, spec.symmetric
            )
            handle.warm_geoms.add((pending.mid, tuple(x.shape), str(x.dtype)))

        def _abort(exc: BaseException | None):
            with handle.depth:
                owned = handle.pending.pop(pending.rid, None)
                handle.depth.notify_all()
            if owned is None:
                return False  # a crash handler owns the retry now
            if exc is not None:
                raise exc
            return True

        def _alloc_timeout() -> float | None:
            bounds = [b for b in (t_limit, pending.deadline)
                      if b is not None]
            if not bounds:
                return None
            return max(0.001, min(bounds) - time.monotonic())

        def _saturation(exc: PoolSaturated) -> BaseException:
            # A deadline that lapsed while blocked on ring capacity is a
            # deadline failure, not a saturation rejection.
            if pending.expired():
                return DeadlineExceeded(
                    f"request {pending.rid} expired waiting for ring "
                    f"capacity on worker {handle.shard}"
                )
            return exc

        # 2. Slabs: ring capacity is the second backpressure gate (and
        # the ring_fail chaos hook: an injected allocation failure).
        if self._injector.fire("ring_fail", pending.rid,
                               pending.retries) is not None:
            _abort(PoolSaturated(
                f"injected ring allocation failure for request "
                f"{pending.rid}"
            ))
            return
        try:
            req_off = handle.req_arena.alloc(x.nbytes, block, _alloc_timeout())
        except PoolSaturated as exc:
            _abort(_saturation(exc))
            return
        resp_cap = self._response_capacity(spec, x)
        try:
            resp_off = handle.resp_arena.alloc(resp_cap, block,
                                               _alloc_timeout())
        except PoolSaturated as exc:
            handle.req_arena.free(req_off)
            _abort(_saturation(exc))
            return
        view = np.ndarray(
            x.shape, x.dtype, buffer=handle.req_shm.buf, offset=req_off
        )
        view[...] = x  # the only parent-side copy: user array -> ring
        del view
        # 3. Publish offsets; a crash between admission and here retries
        # through the pending entry, which never frees unallocated slabs.
        with handle.lock:
            if pending.rid not in handle.pending:
                # Crash handler took ownership while we staged: it
                # re-dispatches with fresh slabs; release ours.
                handle.req_arena.free(req_off)
                handle.resp_arena.free(resp_off)
                return
            if handle.dead or handle.closing:
                del handle.pending[pending.rid]
                handle.depth.notify_all()
                handle.req_arena.free(req_off)
                handle.resp_arena.free(resp_off)
                raise _HandleDead
            pending.req_off = req_off
            pending.resp_off = resp_off
            pending.resp_cap = resp_cap
            pending.allocated = True
        # 4. The header (the queue is unbounded: puts cannot block).
        # Checksummed: the worker refuses to dereference ring offsets
        # from a header that does not verify.
        if pending.steps is None:
            kind = "req"
            fields = (pending.rid, pending.mid, tuple(x.shape),
                      str(x.dtype), req_off, resp_off, resp_cap,
                      pending.deadline, pending.retries)
        else:
            kind = "roll"
            fields = (pending.rid, pending.mid, tuple(x.shape),
                      str(x.dtype), req_off, resp_off, resp_cap,
                      pending.steps, pending.profile, pending.deadline,
                      pending.retries)
        try:
            if push_model:
                handle.queue.put(
                    ("model", pending.mid, spec.weight, spec.modes,
                     spec.symmetric)
                )
            handle.queue.put((kind, *fields, header_checksum(fields)))
        except (ValueError, OSError):  # queue closed: worker is gone
            if _abort(None):
                handle.req_arena.free(req_off)
                handle.resp_arena.free(resp_off)
                raise _HandleDead from None

    # -- graceful degradation -------------------------------------------

    def _submit_degraded(self, pending: _Pending) -> None:
        """Reroute one request to the in-parent fallback session.

        Called with the pool lock held.  Same machinery, same bits —
        only throughput degrades (one parent thread instead of a warm
        worker process).
        """
        self._ensure_fallback()
        self._fallback_queue.put(pending)

    def _ensure_fallback(self) -> None:
        if self._fallback_thread is not None:
            return
        self._fallback_session = Session(
            backend=self.backend, autotune=self.autotune,
            dtype_policy=self.dtype_policy,
        )
        self._fallback_thread = threading.Thread(
            target=self._fallback_loop, name="repro-serve-fallback",
            daemon=True,
        )
        self._fallback_thread.start()

    def _fallback_loop(self) -> None:
        while True:
            pending = self._fallback_queue.get()
            if pending is None:
                return
            if self._closed:
                pending.future._set_exception(ServeError("pool closed"))
                continue
            if pending.future.done():
                continue  # cancelled while queued
            if pending.expired():
                self._fail_expired(pending, DeadlineExceeded(
                    f"request {pending.rid} expired in the degraded queue"
                ))
                continue
            try:
                if pending.steps is None:
                    out = self._fallback_session.infer(
                        pending.spec, pending.x
                    )
                else:
                    out = self._fallback_session.rollout(
                        pending.spec, pending.x, pending.steps,
                        profile=pending.profile,
                    )
            except Exception as exc:  # noqa: BLE001 - typed per-request
                won = pending.future._set_exception(
                    ServeError(f"{type(exc).__name__}: {exc}")
                )
                if won:
                    with self._stats_lock:
                        self._admission["failed"] += 1
                        self._geo(pending).failed += 1
                continue
            won = pending.future._set_result(out)
            if won:
                latency = time.perf_counter() - pending.t_submit
                with self._stats_lock:
                    self._admission["completed"] += 1
                    self._admission["degraded"] += 1
                    stats = self._geo(pending)
                    stats.requests += 1
                    stats.seconds += latency
                    stats.latency.record(latency)
                    self._latency.record(latency)
                    stats.degraded += 1
                    if pending.steps is not None:
                        self._rollout_streams += 1
                        self._rollout_steps += pending.steps

    # -- health enforcement ---------------------------------------------

    def _health_tick(self) -> None:
        """One monitor sweep: expire deadlines, escalate hung workers."""
        now = time.monotonic()
        with self._lock:
            if self._closed:
                return
            handles = list(self._handles.values())
        for handle in handles:
            if handle.dead or handle.closing:
                continue
            with handle.depth:
                pendings = list(handle.pending.values())
            expired = []
            for p in pendings:
                if p.expired(now) and not p.abandoned:
                    expired.append(p)
            for p in expired:
                # Fail the future now; the slabs stay reserved until the
                # worker answers (or dies) — it may still write them.
                self._fail_expired(p, DeadlineExceeded(
                    f"request {p.rid} ({format_geometry(p.gkey)}) "
                    f"exceeded its deadline in flight on worker "
                    f"{handle.shard}"
                ))
            # Hung-but-alive detection: in-flight work, no progress.
            # Progress = completions, or heartbeats while idle / with a
            # moving served count; a SIGSTOP silences beats entirely and
            # a runaway loop beats without progress — both stall
            # last_progress and get the worker killed, which routes the
            # requests through the ordinary crash machinery.
            if not pendings:
                continue
            oldest = min(p.t_dispatch for p in pendings)
            if (
                now - handle.last_progress > self.health.hang_timeout
                and now - oldest > self.health.hang_timeout
            ):
                handle.hang_killed = True
                with self._stats_lock:
                    self._admission["hangs"] += 1
                try:
                    handle.process.kill()  # EOF -> _on_worker_death
                except Exception:  # pragma: no cover - already gone
                    pass

    # -- results --------------------------------------------------------

    def _collect(self, handle: _WorkerHandle) -> None:
        """Per-worker collector thread: drain the response pipe."""
        while True:
            try:
                msg = handle.conn.recv()
            except (EOFError, OSError):
                break
            kind = msg[0]
            if kind == "ready":
                handle.pid = msg[1]
                handle.backend = msg[2]
                handle.last_progress = time.monotonic()
                handle.ready.set()
            elif kind == "hb":
                served, busy_since = msg[1], msg[2]
                now = time.monotonic()
                handle.last_heartbeat = now
                # A beat is progress only while idle or moving: a worker
                # stuck inside one batch keeps beating but never moves
                # its served count, and must still trip the monitor.
                if busy_since is None or served != handle.hb_served:
                    handle.last_progress = now
                handle.hb_served = served
            elif kind == "warmed":
                handle.last_progress = time.monotonic()
                handle.warmed.set()
            elif kind in ("res", "err", "exp"):
                handle.last_progress = time.monotonic()
                self._complete(handle, msg)
            elif kind == "stats":
                waiter = handle.stats_waiters.pop(msg[1], None)
                if waiter is not None:
                    waiter[1].append(msg[2])
                    waiter[0].set()
        if not (handle.closing or self._closed):
            self._on_worker_death(handle)

    def _complete(self, handle: _WorkerHandle, msg: tuple) -> None:
        rid = msg[1]
        with handle.depth:
            pending = handle.pending.pop(rid, None)
            if pending is not None:
                handle.completed += 1
                handle.depth.notify_all()  # an admission slot opened
        if pending is None:
            return  # raced a crash handover; the retry path owns it
        kind = msg[0]
        out = error = None
        corrupt = False
        if kind == "res":
            _, _, shape, dtype, nbytes, csum = msg
            if csum != header_checksum((rid, shape, dtype, nbytes)):
                corrupt = True  # never dereference a bad header
            elif not pending.abandoned:
                out = np.array(np.ndarray(
                    shape, np.dtype(dtype), buffer=handle.resp_shm.buf,
                    offset=pending.resp_off,
                ))
        elif kind == "exp":
            error = DeadlineExceeded(
                f"request {rid} ({format_geometry(pending.gkey)}) expired "
                f"before execution on worker {handle.shard}"
            )
        else:  # "err"
            _, _, name, message = msg
            if name == "CorruptedHeader":
                error = CorruptedHeader(message)
            elif name == "InfrastructureError":
                # Substrate fault on the worker: keep it typed so the
                # caller can tell retry-worthy failures from model ones.
                error = InfrastructureError(message)
            elif name == "ServeError":
                error = ServeError(message)
            else:
                error = ServeError(f"{name}: {message}")
        handle.req_arena.free(pending.req_off)
        handle.resp_arena.free(pending.resp_off)
        pending.allocated = False
        if corrupt:
            self._reject_corrupt(pending)
            return
        if error is None:
            if out is not None:
                won = pending.future._set_result(out)
                if won:
                    latency = time.perf_counter() - pending.t_submit
                    with self._stats_lock:
                        stats = self._geo(pending)
                        stats.requests += 1
                        stats.seconds += latency
                        stats.latency.record(latency)
                        self._latency.record(latency)
                        self._admission["completed"] += 1
                        if pending.steps is not None:
                            self._rollout_streams += 1
                            self._rollout_steps += pending.steps
            # A worker answer is proof of life: feed the breaker.
            self._breakers[pending.shard].record_success()
            self._routes.restore(pending.shard)
        elif isinstance(error, DeadlineExceeded):
            self._fail_expired(pending, error)
        else:
            won = pending.future._set_exception(error)
            if won:
                with self._stats_lock:
                    self._geo(pending).failed += 1
                    self._admission["failed"] += 1

    def _reject_corrupt(self, pending: _Pending) -> None:
        """A response header failed its checksum: retry-or-fail.

        Governed by the same ``on_crash``/``max_retries`` budget as a
        worker death — a corrupted control message means the transport
        (or a fault injector) is lying, and re-execution is the only
        safe recovery; results stay bit-identical because retries
        re-execute from the untouched parent-side input.
        """
        with self._stats_lock:
            self._admission["corrupted"] += 1
        if pending.abandoned:
            return
        if self.on_crash == "retry" and pending.retries < self.max_retries:
            pending.retries += 1
            with self._stats_lock:
                self._admission["retried"] += 1
                self._geo(pending).retried += 1
            try:
                self._submit_pending(pending, True, _LIFECYCLE_TIMEOUT)
            except (PoolSaturated, RuntimeError) as exc:
                pending.future._set_exception(exc)
            return
        won = pending.future._set_exception(CorruptedHeader(
            f"response header for request {pending.rid} failed its "
            f"checksum (policy {self.on_crash!r}, retries "
            f"{pending.retries}/{self.max_retries})"
        ))
        if won:
            with self._stats_lock:
                self._geo(pending).failed += 1
                self._admission["failed"] += 1

    # -- worker lifecycle -----------------------------------------------

    def _warm_handoff(self, old: _WorkerHandle, new: _WorkerHandle) -> None:
        """Prime ``new`` with everything ``old`` served, before traffic."""
        self._await(new.ready, f"worker {new.shard} startup")
        with old.lock:
            models = list(old.warm_models.values())
            geoms = sorted(old.warm_geoms)
        new.warm_models = dict((m[0], m) for m in models)
        new.warm_geoms = set(geoms)
        if not geoms and not models:
            return
        new.queue.put(("warm", models, geoms), block=True,
                      timeout=_LIFECYCLE_TIMEOUT)
        self._await(new.warmed, f"worker {new.shard} warmup handoff")
        new.pushed = {m[0] for m in models}

    def _recycle(self, shard: int) -> _WorkerHandle:
        """Replace an idle worker that hit its request budget.

        Called with the pool lock held and no requests in flight on the
        shard; the replacement is warmed before it is swapped in, so the
        shard never serves cold.
        """
        old = self._handles[shard]
        old.closing = True
        new = self._spawn_handle(shard, rings=old.rings())
        self._start_collector(new)
        self._warm_handoff(old, new)
        new.completed = 0
        self._handles[shard] = new
        self._admission["recycles"] += 1
        try:
            old.queue.put(None, block=True, timeout=1.0)
        except (queue_mod.Full, ValueError, OSError):  # pragma: no cover
            old.process.terminate()
        old.process.join(_LIFECYCLE_TIMEOUT)
        if old.process.is_alive():  # pragma: no cover - stuck drain
            old.process.terminate()
            old.process.join(1.0)
        try:
            old.conn.close()
        except OSError:  # pragma: no cover
            pass
        old.queue.close()
        old.queue.cancel_join_thread()
        return new

    def _on_worker_death(self, handle: _WorkerHandle) -> None:
        """Crash/hang path: spawn + warm a replacement, feed the shard's
        circuit breaker, then retry-or-fail the dead worker's in-flight
        requests (deterministic per policy)."""
        with self._lock:
            if self._closed or handle.closing or handle.dead:
                return
            with handle.depth:
                handle.dead = True
                drained = sorted(handle.pending.items())
                handle.pending.clear()
                handle.depth.notify_all()  # wake blocked admitters: dead
            self._admission["crashes"] += 1
            opened = self._breakers[handle.shard].record_failure()
            if opened:
                # K consecutive replacements: stop crash-looping — the
                # shard's geometries reroute to the in-parent fallback
                # until a half-open probe succeeds.
                self._routes.degrade(handle.shard)
                with self._stats_lock:
                    self._admission["breaker_opens"] += 1
            # Nothing reads these slabs any more: reclaim them.  (Not an
            # arena-wide reset — a submit racing this handler still owns
            # the slab it just allocated and frees it itself, and a
            # drained request whose dispatch never reached the publish
            # step has no slabs to free yet.)
            for _, pending in drained:
                if pending.allocated:
                    handle.req_arena.free(pending.req_off)
                    handle.resp_arena.free(pending.resp_off)
                    pending.allocated = False
            handle.process.join(1.0)
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover
                pass
            handle.queue.close()
            handle.queue.cancel_join_thread()
            new = self._spawn_handle(handle.shard, rings=handle.rings())
            self._start_collector(new)
            self._handles[handle.shard] = new
        try:
            self._warm_handoff(handle, new)
        except RuntimeError:  # pragma: no cover - replacement also sick
            pass
        for _, pending in drained:
            if pending.abandoned or pending.future.done():
                continue  # deadline sweep / cancel already resolved it
            if pending.expired():
                self._fail_expired(pending, DeadlineExceeded(
                    f"request {pending.rid} expired during worker "
                    f"{handle.shard} replacement"
                ))
                continue
            retry = (
                self.on_crash == "retry"
                and pending.retries < self.max_retries
            )
            if not retry:
                won = pending.future._set_exception(WorkerCrashed(
                    f"worker {handle.shard} died with this request in "
                    f"flight (policy {self.on_crash!r}, "
                    f"retries {pending.retries}/{self.max_retries})"
                ))
                if won:
                    with self._stats_lock:
                        self._admission["failed"] += 1
                        self._geo(pending).failed += 1
                continue
            pending.retries += 1
            with self._stats_lock:
                self._admission["retried"] += 1
                self._geo(pending).retried += 1
            try:
                self._submit_pending(pending, True, _LIFECYCLE_TIMEOUT)
            except (PoolSaturated, RuntimeError) as exc:
                pending.future._set_exception(exc)

    # -- serving --------------------------------------------------------

    def infer(self, model, x: np.ndarray, timeout: float | None = None,
              deadline: float | None = None) -> np.ndarray:
        """Serve one request synchronously (submit + wait)."""
        return self.submit(model, x, deadline=deadline).result(timeout)

    def infer_many(self, requests, timeout: float | None = None,
                   deadline: float | None = None) -> list:
        """Serve a stream of ``(model, x)`` requests.

        Every request is admitted under the pool's backpressure policy
        and routed to its geometry's worker; results return in request
        order, bit-identical to a serial one-worker
        :class:`~repro.api.Session` over the same stream.  ``deadline``
        applies per request (seconds from its submission).
        """
        futures = [self.submit(model, x, deadline=deadline)
                   for model, x in requests]
        return [f.result(timeout) for f in futures]

    def rollout(self, model, x0: np.ndarray, steps: int = 1,
                profile: str = "exact", timeout: float | None = None,
                deadline: float | None = None) -> np.ndarray:
        """Serve one autoregressive rollout synchronously.

        Routes the whole stream to its geometry's shard and returns the
        final state — bit-identical (default ``profile="exact"``) to
        ``steps`` chained :meth:`infer` calls on the same pool, because
        the worker's session steps through the exact same pooled
        executor call per step.
        """
        return self.submit_rollout(
            model, x0, steps, profile=profile, deadline=deadline
        ).result(timeout)

    def rollout_many(self, streams, steps: int = 1, profile: str = "exact",
                     timeout: float | None = None,
                     deadline: float | None = None) -> list:
        """Serve concurrent ``(model, x0)`` rollout streams.

        All streams are admitted before any result is awaited, so
        streams sharing a geometry land on the same worker's drain and
        micro-batch through one stepping loop; results return in stream
        order.
        """
        futures = [
            self.submit_rollout(model, x0, steps, profile=profile,
                                deadline=deadline)
            for model, x0 in streams
        ]
        return [f.result(timeout) for f in futures]

    # -- observability --------------------------------------------------

    def worker_pids(self) -> list[int | None]:
        """Live worker PIDs by shard (``None`` while a shard restarts)."""
        with self._lock:
            return [
                self._handles[i].process.pid for i in range(self.workers)
            ]

    def segment_names(self) -> list[str]:
        """Every shared-memory segment name this pool ever created
        (closed pools keep the list: the leak-audit surface)."""
        return self._registry.names()

    def live_segment_names(self) -> list[str]:
        """Segment names not yet unlinked."""
        return self._registry.live_names()

    def stats(self, timeout: float = 5.0) -> dict:
        """Pool statistics, shaped like :meth:`Session.stats`.

        ``per_geometry`` carries the parent's admission/latency counters
        per routing key — including ``worker``, the single shard that
        geometry is pinned to, and ``latency``, end-to-end
        submit-to-result p50/p95/p99 seconds from a bounded reservoir
        (``latency`` at the top level aggregates all geometries;
        ``rollout`` counts streams/steps served) — and ``per_worker``
        embeds each live
        worker's own ``Session.stats()`` snapshot (``None`` if the
        worker was too busy to answer within ``timeout``) plus its
        actual ``backend`` and heartbeat age.  ``degraded`` reports the
        graceful-degradation state: open shards, per-shard breaker
        snapshots, and how many requests the fallback session served.
        """
        with self._lock:
            handles = (
                [] if self._closed
                else [self._handles[i] for i in range(self.workers)]
            )
            requests_polled = [
                (handle, next(self._stats_token)) for handle in handles
            ]
        deadline = time.monotonic() + timeout
        polls: list[tuple[_WorkerHandle, threading.Event, list]] = []
        for handle, token in requests_polled:
            event: threading.Event = threading.Event()
            box: list = []
            handle.stats_waiters[token] = (event, box)
            try:
                handle.queue.put(("stats", token), block=False)
                polls.append((handle, event, box))
            except (queue_mod.Full, ValueError, OSError):
                handle.stats_waiters.pop(token, None)
                polls.append((handle, event, box))  # reported as stale
        per_worker = []
        batches = 0
        for handle, event, box in polls:
            event.wait(max(0.0, deadline - time.monotonic()))
            payload = box[0] if box else None
            if payload is not None:
                batches += payload["session"].get("batches", 0)
            now = time.monotonic()
            per_worker.append({
                "shard": handle.shard,
                "pid": handle.pid,
                "alive": handle.process.is_alive(),
                "backend": handle.backend,
                "completed": handle.completed,
                "in_flight": len(handle.pending),
                "heartbeat_age": (
                    None if handle.last_heartbeat is None
                    else now - handle.last_heartbeat
                ),
                "served": payload["served"] if payload else None,
                "session": payload["session"] if payload else None,
            })
        with self._stats_lock:
            per_geometry = {
                format_geometry(key): stats.as_dict()
                for key, stats in self._geo_stats.items()
            }
            admission = dict(self._admission)
            latency = self._latency.percentiles()
            rollout = {
                "streams": self._rollout_streams,
                "steps": self._rollout_steps,
            }
        return {
            "workers": self.workers,
            "backend": self.backend,
            "dtype_policy": self.dtype_policy,
            "closed": self._closed,
            "requests": admission["completed"],
            "batches": batches,
            "latency": latency,
            "rollout": rollout,
            "admission": admission,
            "health": self.health.as_dict(),
            "faults": (
                self._fault_plan.spec() if self._fault_plan is not None
                else None
            ),
            "degraded": {
                "requests": admission["degraded"],
                "open_shards": list(self._routes.degraded),
                "fallback_active": self._fallback_thread is not None,
                "breakers": {
                    str(i): b.as_dict() for i, b in self._breakers.items()
                },
            },
            "per_geometry": per_geometry,
            "per_worker": per_worker,
        }
