"""Geometry-hash request routing: the shard-affinity policy.

The pool's whole performance story rests on one invariant: *a given
geometry always lands on the same worker*.  Each worker owns one warm
:class:`repro.api.Session`, and everything expensive in the stack —
compiled executors, FFT/rfft plan families, autotune winners — is keyed
on geometry, so stable routing means every worker's caches stay hot and
no plan is ever built twice across the pool.

The routing key is ``(ndim, spatial_shape, modes, dtype)`` — exactly the
tuple the plan caches and the tune store key on (conf_sc_WuZDZHC25's
plan/execute split is what makes "route by geometry, reuse the plan"
work at all; this mirrors how cuFFT deployments pin plan caches per
device context).  The hash is :func:`hashlib.blake2b`-based — stable
across processes, interpreter runs and ``PYTHONHASHSEED``, unlike
builtin ``hash()`` — so a recycled or restarted pool shards identically
and on-disk tune stores warmed by one run serve the next.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = [
    "geometry_key",
    "geometry_hash",
    "shard_for",
    "format_geometry",
    "FALLBACK",
    "RouteTable",
]

#: Sentinel shard index: "serve this in the parent's fallback session".
FALLBACK = -1


def geometry_key(model, x: np.ndarray) -> tuple:
    """The routing key of one ``(model, x)`` request.

    ``(ndim, spatial_shape, modes, dtype)``: the spatial axes are
    everything past ``(batch, channels)``, matching the executor/plan
    cache keys.  Two requests with equal keys hit the same compiled
    executor geometry, so they must (and will) shard together.
    """
    spatial = tuple(int(s) for s in x.shape[2:])
    return (len(spatial), spatial, tuple(model.modes), str(np.dtype(x.dtype)))


def geometry_hash(key: tuple) -> int:
    """A stable 64-bit hash of a :func:`geometry_key`.

    Deterministic across processes and runs (``repr`` of the key tuple
    through blake2b), so shard assignment is a pure function of the
    geometry — never of interpreter state.
    """
    digest = hashlib.blake2b(repr(key).encode("ascii"), digest_size=8)
    return int.from_bytes(digest.digest(), "big")


def shard_for(key: tuple, workers: int) -> int:
    """The worker index serving ``key`` in a ``workers``-wide pool."""
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return geometry_hash(key) % workers


class RouteTable:
    """Shard assignment with per-shard degradation overrides.

    The pure hash (:func:`shard_for`) never changes — a degraded shard
    keeps *owning* its geometries, so its worker's caches describe
    exactly what to re-warm when the shard recovers.  The table only
    answers the *routing* question: while a shard is marked degraded
    (its circuit breaker is open), :meth:`route` reroutes that shard's
    geometries to :data:`FALLBACK`, the in-parent fallback session.
    Results are bit-identical either way; only throughput degrades.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self._degraded: set[int] = set()

    def shard(self, key: tuple) -> int:
        """The owning shard (ignores degradation; pure hash)."""
        return shard_for(key, self.workers)

    def route(self, key: tuple) -> int:
        """The destination: the owning shard, or :data:`FALLBACK`."""
        shard = shard_for(key, self.workers)
        return FALLBACK if shard in self._degraded else shard

    def degrade(self, shard: int) -> None:
        self._degraded.add(shard)

    def restore(self, shard: int) -> None:
        self._degraded.discard(shard)

    @property
    def degraded(self) -> tuple[int, ...]:
        return tuple(sorted(self._degraded))


def format_geometry(key: tuple) -> str:
    """A compact human/JSON key for one geometry: ``"1d:128:m64:complex64"``."""
    ndim, spatial, modes, dtype = key
    return (
        f"{ndim}d:{'x'.join(map(str, spatial))}:"
        f"m{'x'.join(map(str, modes))}:{dtype}"
    )
