"""``Runner``: map cached plans over iterables of problems and stages.

The sweep hot path.  Figure regeneration is thousands of
(problem, stage) pairs, most of them repeated across panels and figures;
a :class:`Runner` holds one (config, device) context and funnels every
lookup through the shared plan cache, so the inner loops of
:mod:`repro.analysis.sweeps` and :mod:`repro.analysis.figures` collapse to
``runner.sweep(problems, stages)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.api.planner import ExecutionPlan, plan
from repro.api.problem import Problem
from repro.api.registry import get_device, resolve_stage
from repro.core.config import TurboFNOConfig
from repro.core.stages import FusionStage
from repro.gpu.device import DeviceSpec

__all__ = ["Runner"]


@dataclass
class Runner:
    """A (config, device) execution context for batch planning.

    Parameters
    ----------
    config:
        Kernel/model configuration shared by every plan; ``None`` means
        the default :class:`TurboFNOConfig`.
    device:
        Device spec or registered name; ``None`` means the paper's A100.
    """

    config: TurboFNOConfig | None = None
    device: DeviceSpec | str | None = None

    def __post_init__(self) -> None:
        self.config = self.config if self.config is not None else TurboFNOConfig()
        self.device = get_device(self.device)

    # -- single-problem entry points ------------------------------------

    def plan(
        self, problem: Problem, stage: FusionStage | str = FusionStage.BEST
    ) -> ExecutionPlan:
        """The cached plan for ``problem`` under this runner's context."""
        return plan(problem, stage, self.config, self.device)

    def best(self, problem: Problem) -> ExecutionPlan:
        """Stage E: the fastest A-D plan (``.stage`` names the winner)."""
        return self.plan(problem, FusionStage.BEST)

    def ladder(
        self,
        problem: Problem,
        stages: Sequence[FusionStage | str] = FusionStage.ladder(),
    ) -> dict[FusionStage, float]:
        """Speedup of each requested stage over the PyTorch baseline.

        The dimension-agnostic replacement for
        ``ladder_speedups_{1,2}d``; numerically identical to them.
        """
        return {
            resolve_stage(s): self.plan(problem, s).speedup_vs_baseline()
            for s in stages
        }

    # -- batch entry points ---------------------------------------------

    def map(
        self,
        problems: Iterable[Problem],
        stage: FusionStage | str = FusionStage.BEST,
    ) -> list[ExecutionPlan]:
        """One plan per problem, all under the same stage."""
        stage = resolve_stage(stage)
        return [self.plan(p, stage) for p in problems]

    def sweep(
        self,
        problems: Iterable[Problem],
        stages: Sequence[FusionStage | str],
    ) -> dict[FusionStage, list[float]]:
        """Speedup-vs-baseline series per stage over ``problems``.

        ``result[stage][i]`` is problem ``i``'s speedup percent — exactly
        the per-panel payload of a paper figure.
        """
        # Dedup after resolution: two spellings of one stage ("A",
        # "fft_opt") must not double-append into the same series.
        resolved = list(dict.fromkeys(resolve_stage(s) for s in stages))
        series: dict[FusionStage, list[float]] = {s: [] for s in resolved}
        for problem in problems:
            speeds = self.ladder(problem, resolved)
            for s in resolved:
                series[s].append(speeds[s])
        return series
