"""``Runner``: map cached plans over iterables of problems and stages.

The sweep hot path.  Figure regeneration is thousands of
(problem, stage) pairs, most of them repeated across panels and figures;
a :class:`Runner` holds one (config, device) context and funnels every
lookup through the shared plan cache, so the inner loops of
:mod:`repro.analysis.sweeps` and :mod:`repro.analysis.figures` collapse to
``runner.sweep(problems, stages)``.

Batch entry points accept ``workers``: with more than one worker the
problem list is sharded over a :class:`concurrent.futures.\
ProcessPoolExecutor` and each shard planned in its own process (plan
caches are per-process, so shards share nothing and results are
deterministic — byte-identical to the serial path).  Worth it for dense
figure/heatmap sweeps on multi-core machines; on a single core, or for
small sweeps, leave ``workers=None``.

A runner can be bound to a :class:`repro.api.Session`
(``Runner(session=...)`` or :func:`Runner.for_session`): plans then
land in that session's cache instead of the process default, and the
runner inherits the session's config/device unless overridden.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.api.planner import ExecutionPlan, plan
from repro.api.problem import Problem
from repro.api.registry import get_device, resolve_stage
from repro.core.config import TurboFNOConfig
from repro.core.stages import FusionStage
from repro.gpu.device import DeviceSpec

__all__ = ["Runner", "default_workers"]


def default_workers() -> int:
    """A sensible worker count for sweep sharding (>= 1).

    The ``REPRO_WORKERS`` environment variable overrides the CPU count
    — so CI and containers can pin sweep parallelism without code
    changes — and must hold a positive integer; anything else raises
    :class:`ValueError` rather than silently running serial.
    """
    env = os.environ.get("REPRO_WORKERS")
    if env is not None:
        try:
            workers = int(env.strip())
        except ValueError:
            raise ValueError(
                f"REPRO_WORKERS must be a positive integer, got {env!r}"
            ) from None
        if workers < 1:
            raise ValueError(
                f"REPRO_WORKERS must be >= 1, got {workers}"
            )
        return workers
    return max(1, os.cpu_count() or 1)


def _shard_speedups(args) -> list[float]:
    """Worker-side body of a sharded map (module-level: picklable)."""
    config, device, stage, problems = args
    runner = Runner(config=config, device=device)
    return [runner.plan(p, stage).speedup_vs_baseline() for p in problems]


def _shard_ladder(args) -> dict[FusionStage, list[float]]:
    """Worker-side body of a sharded sweep: all stages per problem, so
    shared plans (the baseline, stage-E constituents) are built once per
    shard rather than once per (stage, shard)."""
    config, device, stages, problems = args
    runner = Runner(config=config, device=device)
    out: dict[FusionStage, list[float]] = {s: [] for s in stages}
    for p in problems:
        speeds = runner.ladder(p, stages)
        for s in stages:
            out[s].append(speeds[s])
    return out


def _chunks(items: list, n: int) -> list[list]:
    """Split ``items`` into at most ``n`` contiguous, order-preserving runs."""
    n = max(1, min(n, len(items)))
    size, rem = divmod(len(items), n)
    out, start = [], 0
    for i in range(n):
        stop = start + size + (1 if i < rem else 0)
        out.append(items[start:stop])
        start = stop
    return out


@dataclass
class Runner:
    """A (config, device) execution context for batch planning.

    Parameters
    ----------
    config:
        Kernel/model configuration shared by every plan; ``None`` means
        the session's (when bound) or the default :class:`TurboFNOConfig`.
    device:
        Device spec or registered name; ``None`` means the session's
        (when bound) or the paper's A100.
    session:
        Optional :class:`repro.api.Session` to plan through: lookups
        land in — and are served from — that session's plan cache
        instead of the process default's.
    """

    config: TurboFNOConfig | None = None
    device: DeviceSpec | str | None = None
    session: object | None = None

    def __post_init__(self) -> None:
        if self.session is not None:
            if self.config is None:
                self.config = self.session.config
            if self.device is None:
                self.device = self.session.device
        self.config = self.config if self.config is not None else TurboFNOConfig()
        self.device = get_device(self.device)

    @classmethod
    def for_session(cls, session) -> "Runner":
        """A runner inheriting ``session``'s config/device and cache."""
        return cls(session=session)

    # -- single-problem entry points ------------------------------------

    def plan(
        self, problem: Problem, stage: FusionStage | str = FusionStage.BEST
    ) -> ExecutionPlan:
        """The cached plan for ``problem`` under this runner's context."""
        if self.session is not None:
            return self.session.plan(problem, stage, self.config, self.device)
        return plan(problem, stage, self.config, self.device)

    def best(self, problem: Problem) -> ExecutionPlan:
        """Stage E: the fastest A-D plan (``.stage`` names the winner)."""
        return self.plan(problem, FusionStage.BEST)

    def ladder(
        self,
        problem: Problem,
        stages: Sequence[FusionStage | str] = FusionStage.ladder(),
    ) -> dict[FusionStage, float]:
        """Speedup of each requested stage over the PyTorch baseline.

        The dimension-agnostic replacement for
        ``ladder_speedups_{1,2}d``; numerically identical to them.
        """
        return {
            resolve_stage(s): self.plan(problem, s).speedup_vs_baseline()
            for s in stages
        }

    # -- batch entry points ---------------------------------------------

    def map(
        self,
        problems: Iterable[Problem],
        stage: FusionStage | str = FusionStage.BEST,
    ) -> list[ExecutionPlan]:
        """One plan per problem, all under the same stage."""
        stage = resolve_stage(stage)
        return [self.plan(p, stage) for p in problems]

    def map_speedups(
        self,
        problems: Iterable[Problem],
        stage: FusionStage | str = FusionStage.BEST,
        workers: int | None = None,
    ) -> list[float]:
        """Speedup-vs-baseline per problem, optionally sharded.

        ``workers > 1`` splits the problems into contiguous shards and
        plans each shard in its own process; order is preserved and the
        numbers are identical to the serial path.
        """
        stage = resolve_stage(stage)
        problems = list(problems)
        if workers is None or workers <= 1 or len(problems) < 2:
            return [self.plan(p, stage).speedup_vs_baseline() for p in problems]
        shards = _chunks(problems, workers)
        payload = [(self.config, self.device, stage, shard) for shard in shards]
        with ProcessPoolExecutor(max_workers=len(shards)) as pool:
            results = list(pool.map(_shard_speedups, payload))
        return [s for shard in results for s in shard]

    def sweep(
        self,
        problems: Iterable[Problem],
        stages: Sequence[FusionStage | str],
        workers: int | None = None,
    ) -> dict[FusionStage, list[float]]:
        """Speedup-vs-baseline series per stage over ``problems``.

        ``result[stage][i]`` is problem ``i``'s speedup percent — exactly
        the per-panel payload of a paper figure.  ``workers`` shards the
        problem axis over a process pool (see :meth:`map_speedups`).
        """
        # Dedup after resolution: two spellings of one stage ("A",
        # "fft_opt") must not double-append into the same series.
        resolved = list(dict.fromkeys(resolve_stage(s) for s in stages))
        problems = list(problems)
        if workers is not None and workers > 1 and len(problems) >= 2:
            shards = _chunks(problems, workers)
            payload = [
                (self.config, self.device, resolved, shard) for shard in shards
            ]
            with ProcessPoolExecutor(max_workers=len(shards)) as pool:
                parts = list(pool.map(_shard_ladder, payload))
            return {
                s: [v for part in parts for v in part[s]] for s in resolved
            }
        series: dict[FusionStage, list[float]] = {s: [] for s in resolved}
        for problem in problems:
            speeds = self.ladder(problem, resolved)
            for s in resolved:
                series[s].append(speeds[s])
        return series
