"""Registries behind the planning facade: devices, stages, builders.

Three lookup tables turn :func:`repro.api.plan` into an open system:

* **devices** — named :class:`repro.gpu.device.DeviceSpec` entries.  The
  paper's A100 testbed is the default; an H100-class part ships registered
  so sweeps can ask the same questions of a newer machine, and callers add
  their own with :func:`register_device`.
* **stages** — spelling-tolerant resolution of the Table 2 ladder
  (``"A"``, ``"fft_opt"``, ``FusionStage.FFT_OPT``, ... all work), so CLI
  flags and config files never hard-code the enum.
* **pipeline builders** — one compiler per spatial dimensionality.  1-D
  and 2-D register the :mod:`repro.core.pipeline_model` builders; a future
  3-D workload only needs :func:`register_pipeline_builder`.
"""

from __future__ import annotations

from typing import Callable

from repro.core.config import TurboFNOConfig
from repro.core.pipeline_model import build_pipeline_1d, build_pipeline_2d
from repro.core.stages import FusionStage
from repro.gpu.device import A100_SPEC, H100_SPEC, DeviceSpec
from repro.gpu.timeline import Pipeline

__all__ = [
    "register_device",
    "get_device",
    "list_devices",
    "resolve_stage",
    "list_stages",
    "register_pipeline_builder",
    "pipeline_builder_for",
    "supported_ndims",
    "DEFAULT_DEVICE",
]

#: The paper's testbed; used whenever no device is named.
DEFAULT_DEVICE = A100_SPEC

PipelineBuilder = Callable[[object, FusionStage, TurboFNOConfig], Pipeline]

_DEVICES: dict[str, DeviceSpec] = {
    "a100": A100_SPEC,
    "h100": H100_SPEC,
}

_BUILDERS: dict[int, PipelineBuilder] = {
    1: build_pipeline_1d,
    2: build_pipeline_2d,
}


# -- devices ----------------------------------------------------------------

def register_device(name: str, spec: DeviceSpec, *, overwrite: bool = False) -> None:
    """Register ``spec`` under ``name`` (case-insensitive).

    Raises :class:`ValueError` on collision unless ``overwrite=True``.
    """
    key = name.strip().lower()
    if not key:
        raise ValueError("device name must be non-empty")
    if key in _DEVICES and not overwrite:
        raise ValueError(
            f"device {name!r} already registered; pass overwrite=True to replace"
        )
    _DEVICES[key] = spec


def get_device(device: DeviceSpec | str | None = None) -> DeviceSpec:
    """Resolve a device argument: a spec passes through, a name is looked
    up case-insensitively, ``None`` yields the paper's A100 default."""
    if device is None:
        return DEFAULT_DEVICE
    if isinstance(device, DeviceSpec):
        return device
    key = str(device).strip().lower()
    try:
        return _DEVICES[key]
    except KeyError:
        raise ValueError(
            f"unknown device {device!r}; registered: {', '.join(list_devices())}"
        ) from None


def list_devices() -> tuple[str, ...]:
    """Registered device names, sorted."""
    return tuple(sorted(_DEVICES))


# -- fusion stages ----------------------------------------------------------

def resolve_stage(stage: FusionStage | str) -> FusionStage:
    """Resolve a stage argument: the enum, its value (``"A"``..``"E"``,
    ``"pytorch"``) or its name (``"fft_opt"``, ``"best"``), any case."""
    if isinstance(stage, FusionStage):
        return stage
    text = str(stage).strip()
    for member in FusionStage:
        if text.upper() == member.value.upper() or text.upper() == member.name:
            return member
    raise ValueError(
        f"unknown fusion stage {stage!r}; expected one of "
        f"{', '.join(m.value for m in FusionStage)}"
    )


def list_stages() -> tuple[FusionStage, ...]:
    """Every stage, baseline and BEST included, in ladder order."""
    return (FusionStage.PYTORCH, *FusionStage.ladder(), FusionStage.BEST)


# -- pipeline builders ------------------------------------------------------

def register_pipeline_builder(
    ndim: int, builder: PipelineBuilder, *, overwrite: bool = False
) -> None:
    """Register the pipeline compiler for ``ndim``-dimensional problems.

    Replacing an existing builder drops the plan cache: cached plans are
    keyed on (problem, stage, config, device) only, so stale entries
    compiled by the old builder would otherwise keep being served.
    """
    if ndim <= 0:
        raise ValueError(f"ndim must be positive, got {ndim}")
    if ndim in _BUILDERS:
        if not overwrite:
            raise ValueError(
                f"a builder for ndim={ndim} is already registered; "
                "pass overwrite=True to replace"
            )
        from repro.api.session import clear_all_plan_caches  # cycle-free here

        clear_all_plan_caches()  # every live session, not just the default
    _BUILDERS[ndim] = builder


def pipeline_builder_for(problem) -> PipelineBuilder:
    """The registered builder for ``problem.ndim``."""
    ndim = getattr(problem, "ndim", None)
    if ndim not in _BUILDERS:
        raise ValueError(
            f"no pipeline builder registered for ndim={ndim!r}; "
            f"supported: {supported_ndims()} "
            "(register one with repro.api.register_pipeline_builder)"
        )
    return _BUILDERS[ndim]


def supported_ndims() -> tuple[int, ...]:
    """Dimensionalities with a registered pipeline builder."""
    return tuple(sorted(_BUILDERS))
