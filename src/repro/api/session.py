"""``Session``: one stateful execution context for plans and inference.

PR 1's planning facade and the compiled plan/executor layers of PRs 2-3
were stitched together by callers: trainers, examples and the CLI each
hand-managed plan lookups, executor compilation and backend selection
through module-level globals.  A :class:`Session` is the single front
door that owns all of it:

* **its own plan cache** — the LRU behind :meth:`Session.plan`
  (the module-level :func:`repro.api.plan` wraps a process-default
  session, so the PR 1 API is unchanged);
* **its own FFT/rfft plan caches** — one
  :class:`repro.fft.compiled.PlanCaches` set pinned to the session's
  ``backend`` (``"auto"`` | ``"ckernels"`` | ``"numpy"``); two sessions
  with different backends never share plans or workspaces;
* **a compiled-executor pool** — one
  :class:`repro.core.compiled.CompiledSpectralConv1D`/``2D`` per served
  weight matrix, staged against the session's caches and reused across
  requests;
* **the serving path** — :meth:`Session.infer` for one request,
  :meth:`Session.infer_many` for a stream: requests are micro-batched
  by (model, geometry, dtype), each micro-batch runs the pooled
  executor once, and an optional thread pool drains a bounded request
  queue.  Results are bit-identical to per-request execution (every
  operator in the stack is row-independent along the batch axis);
* **observability** — :meth:`Session.stats` (cache hit rates,
  per-geometry throughput), :meth:`Session.warmup` (pre-compile plans
  and FFT plans), and one teardown path
  (:meth:`Session.clear_all_caches` / :meth:`Session.close`) that
  empties *every* cache the session owns.

Backend and dtype policy are explicit configuration here, not ambient
process state: ``Session(backend="numpy")`` forces the pure-NumPy
substrate for this session only, where the seed required the
process-global ``REPRO_NO_CKERNELS`` environment variable.
"""

from __future__ import annotations

import queue as queue_mod
import random
import threading
import time
import weakref
from collections import OrderedDict
from contextlib import contextmanager
from functools import lru_cache

import numpy as np

from repro.api.planner import PLAN_CACHE_SIZE, ExecutionPlan, build_plan
from repro.api.problem import Problem
from repro.api.registry import get_device, resolve_stage
from repro.core.autotune import Tuner, probe_signal
from repro.core.compiled import (
    CompiledSpectralConv1D,
    CompiledSpectralConv2D,
    compile_spectral_conv,
)
from repro.core.config import TurboFNOConfig
from repro.core.dtypes import complex_dtype_for
from repro.core.stages import FusionStage
from repro.fft.compiled import (
    FFT_PLAN_CACHE_SIZE,
    PlanCaches,
    default_plan_caches,
    plan_cache_scope,
    resolve_backend_kernels,
)
from repro.fft.stockham import is_power_of_two
from repro.gpu.device import DeviceSpec

__all__ = [
    "DTYPE_POLICIES",
    "LatencyReservoir",
    "PLAN_CACHE_SIZE",
    "ROLLOUT_PROFILES",
    "Session",
    "SpectralModel",
    "default_session",
    "clear_all_caches",
]

#: Working-precision policies.  ``"preserve"`` follows each input's
#: dtype (the package default: float32/complex64 stays single,
#: everything else computes in double); ``"float32"``/``"float64"``
#: cast every request to the named precision on the way in.
DTYPE_POLICIES = ("preserve", "float32", "float64")

#: :meth:`Session.rollout` stepping profiles.  ``"exact"`` (default)
#: runs the pooled executor per step — bit-identical to the eager
#: per-step loop.  ``"fast"`` keeps the state resident in the truncated
#: spectrum between steps, skipping the inverse/forward transform pair
#: where the inter-step path is linear — tolerance-asserted, not
#: bit-identical (the ifft->fft round trip it elides rounds
#: differently), mirroring how ``fft/legacy.py`` froze the seed as the
#: oracle for the compiled paths.
ROLLOUT_PROFILES = ("exact", "fast")

#: Bounded-reservoir size for latency percentiles: large enough for
#: stable p99 estimates, small enough that a month-long serving loop
#: holds a few KiB per geometry.
LATENCY_RESERVOIR_SIZE = 512

_COMPILED_EXECUTORS = (CompiledSpectralConv1D, CompiledSpectralConv2D)

#: Executor-pool capacity: one entry per served weight matrix.  LRU
#: eviction keeps a serving loop that materialises transient weight
#: arrays per request from growing the pool without bound.
EXECUTOR_POOL_SIZE = 256

#: Every live session, so registry mutations that invalidate cached
#: plans (builder overwrite) can drop all plan caches, not just the
#: default session's.
_live_sessions: "weakref.WeakSet[Session]" = weakref.WeakSet()

#: Guards first-time creation of a served object's ``_serve_lock``.
#: Module-level so two *sessions* handed the same executor/model still
#: agree on one lock (a per-session guard would race).
_serve_lock_creation = threading.Lock()


class SpectralModel:
    """One Fourier layer as a serving unit: a complex ``(C_in, C_out)``
    weight shared across the kept ``modes`` (+ the symmetric flag).

    The smallest thing :meth:`Session.infer` accepts that the session
    can pool an executor for.  ``(weight, modes)`` /
    ``(weight, modes, symmetric)`` tuples are accepted as shorthand.
    """

    __slots__ = ("weight", "modes", "symmetric")

    def __init__(self, weight: np.ndarray, modes, symmetric: bool = False):
        self.weight = np.asarray(weight)
        if self.weight.ndim != 2:
            raise ValueError(
                f"weight must be (C_in, C_out), got {self.weight.shape}"
            )
        self.modes = (
            tuple(int(m) for m in modes)
            if isinstance(modes, (tuple, list))
            else (int(modes),)
        )
        self.symmetric = bool(symmetric)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpectralModel(C_in={self.weight.shape[0]}, "
            f"C_out={self.weight.shape[1]}, modes={self.modes}, "
            f"symmetric={self.symmetric})"
        )


def _as_spectral_model(model) -> SpectralModel | None:
    """Coerce a request's model to a poolable spec (None: not poolable)."""
    if isinstance(model, SpectralModel):
        return model
    if isinstance(model, tuple) and len(model) in (2, 3):
        return SpectralModel(*model)
    return None


class LatencyReservoir:
    """Bounded uniform sample of latency observations (Algorithm R)
    with percentile readout.

    A seconds *sum* (what the serving counters kept before) cannot
    answer the tail-latency question serving actually asks; a reservoir
    keeps an unbiased sample of every recorded latency in
    O(``capacity``) memory, so ``percentiles()`` stays meaningful after
    millions of requests.  Seeded: two reservoirs fed the same stream
    hold the same sample.  Not thread-safe — callers serialise behind
    their stats lock.
    """

    __slots__ = ("capacity", "count", "_samples", "_rng")

    def __init__(self, capacity: int = LATENCY_RESERVOIR_SIZE,
                 seed: int = 0x5EED) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.count = 0
        self._samples: list[float] = []
        self._rng = random.Random(seed)

    def record(self, seconds: float) -> None:
        self.count += 1
        if len(self._samples) < self.capacity:
            self._samples.append(float(seconds))
            return
        j = self._rng.randrange(self.count)
        if j < self.capacity:
            self._samples[j] = float(seconds)

    def percentiles(self) -> dict:
        """``{"p50", "p95", "p99", "samples", "count"}`` (seconds);
        the percentile values are ``None`` until a sample lands."""
        out: dict = {"samples": len(self._samples), "count": self.count}
        if not self._samples:
            out.update({"p50": None, "p95": None, "p99": None})
            return out
        arr = np.sort(np.asarray(self._samples, dtype=np.float64))
        for name, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
            out[name] = float(np.quantile(arr, q))
        return out


class _GeometryStats:
    """Mutable per-geometry serving counters (requests, batches, time,
    latency reservoir)."""

    __slots__ = ("requests", "batches", "seconds", "latency")

    def __init__(self) -> None:
        self.requests = 0
        self.batches = 0
        self.seconds = 0.0
        self.latency = LatencyReservoir()

    def as_dict(self) -> dict:
        out = {
            "requests": self.requests,
            "batches": self.batches,
            "seconds": self.seconds,
            "latency": self.latency.percentiles(),
        }
        out["requests_per_s"] = (
            self.requests / self.seconds if self.seconds > 0 else None
        )
        return out


class Session:
    """A stateful execution context: caches, executors, serving, stats.

    Parameters
    ----------
    config:
        Kernel/model configuration every plan defaults to; ``None``
        means the default :class:`TurboFNOConfig`.
    device:
        Device spec or registered name; ``None`` means the paper's A100.
    backend:
        Executor substrate for every FFT plan and compiled executor the
        session owns: ``"auto"`` (C kernels when available — the
        default), ``"ckernels"`` (required; raises when the C layer is
        unavailable) or ``"numpy"`` (forced pure-NumPy fallback).
        Outputs are byte-identical across backends.
    dtype_policy:
        ``"preserve"`` (default), ``"float32"`` or ``"float64"`` — see
        :data:`DTYPE_POLICIES`.
    plan_cache_size:
        LRU capacity of this session's plan cache.
    fft_cache_size:
        Capacity of the FFT plan caches when the session owns a private
        set; ``None`` keeps the library default.
    private_caches:
        By default a ``backend="auto"`` session shares the process-wide
        FFT plan-cache set (so the default session and the functional
        API pool plans, exactly like the seed).  ``True`` — or any
        non-auto backend — gives the session its own isolated set.
    autotune:
        ``True`` (or ``"on"``) builds every pooled compiled executor
        with ``tiles="auto"``: the tiling of each served geometry is
        resolved through this session's :class:`repro.core.autotune.Tuner`
        — in-memory memo, then the persistent tune store
        (``~/.cache/repro``, ``REPRO_TUNE_CACHE`` to override), then a
        timed search whose winner is cached in both.  Outputs are
        byte-identical to the default tiling; only throughput changes.
        :meth:`warmup` pre-tunes problem geometries so serving never
        pays the search inline; tune hits/misses appear in
        :meth:`stats` and the memo is dropped by
        :meth:`clear_all_caches`.  Default off (``False``/``"off"``).

    Sessions are context managers (``with api.Session() as s:``) and
    :meth:`close` is idempotent.  The plan cache and executor pool are
    thread-safe; micro-batches of :meth:`infer_many` serialise per
    executor, so ``workers > 1`` parallelises across geometries.
    """

    def __init__(
        self,
        config: TurboFNOConfig | None = None,
        device: DeviceSpec | str | None = None,
        backend: str = "auto",
        dtype_policy: str = "preserve",
        plan_cache_size: int = PLAN_CACHE_SIZE,
        fft_cache_size: int | None = None,
        private_caches: bool = False,
        autotune: bool | str = False,
    ) -> None:
        resolve_backend_kernels(backend)  # validate spelling/availability
        if dtype_policy not in DTYPE_POLICIES:
            raise ValueError(
                f"unknown dtype_policy {dtype_policy!r}; expected one of "
                f"{DTYPE_POLICIES}"
            )
        if isinstance(autotune, str):
            if autotune not in ("on", "off"):
                raise ValueError(
                    f"unknown autotune spelling {autotune!r}; expected "
                    f"'on', 'off' or a bool"
                )
            autotune = autotune == "on"
        self.autotune = bool(autotune)
        self._tuner = Tuner()
        self.config = config if config is not None else TurboFNOConfig()
        self.device = get_device(device)
        self.backend = backend
        self.dtype_policy = dtype_policy
        if backend == "auto" and not private_caches and fft_cache_size is None:
            self.plan_caches = default_plan_caches()
            self._owns_plan_caches = False
        else:
            self.plan_caches = PlanCaches(
                backend=backend,
                maxsize=(
                    fft_cache_size
                    if fft_cache_size is not None
                    else FFT_PLAN_CACHE_SIZE
                ),
            )
            self._owns_plan_caches = True
        self._plan_cache = lru_cache(maxsize=plan_cache_size)(self._build_plan)
        self._pool_lock = threading.Lock()
        self._executors: "OrderedDict[tuple, object]" = OrderedDict()
        self._stats_lock = threading.Lock()
        self._geometry_stats: dict[tuple, _GeometryStats] = {}
        self._latency = LatencyReservoir()
        self._rollout_streams = 0
        self._rollout_steps = 0
        self._closed = False
        _live_sessions.add(self)

    # -- lifecycle ------------------------------------------------------

    def __enter__(self) -> "Session":
        self._check_open()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return (
            f"Session(device={self.device.name!r}, backend={self.backend!r}, "
            f"dtype_policy={self.dtype_policy!r}, {state})"
        )

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("session is closed")

    def clear_plan_cache(self) -> None:
        """Drop every cached :class:`ExecutionPlan` (plan cache only)."""
        self._plan_cache.cache_clear()

    def clear_all_caches(self) -> None:
        """Empty *every* cache this session owns, through one path: the
        plan cache, the FFT/pruned/rfft plan caches (and their
        workspaces), and the compiled-executor pool.

        A session that *shares* the process-wide FFT plan-cache set (the
        ``backend="auto"`` default) leaves that set alone — clearing it
        would cold-start every other session sharing it; use
        :func:`repro.api.clear_all_caches` to flush the shared set too.
        The autotune memo is evicted with everything else (the
        *persistent* tune store is shared process state and stays).
        """
        self._plan_cache.cache_clear()
        if self._owns_plan_caches:
            self.plan_caches.clear()
        with self._pool_lock:
            self._executors.clear()
        self._tuner.clear_memo()

    def close(self) -> None:
        """Release every cache and mark the session closed (idempotent).
        Further ``plan``/``infer`` calls raise :class:`RuntimeError`."""
        if self._closed:
            return
        self.clear_all_caches()
        self._closed = True

    @contextmanager
    def activate(self):
        """Make this session's plan caches (and backend) ambient for the
        current thread.

        Everything that resolves FFT plans through the module-level
        getters — the functional FFT API, :mod:`repro.nn` layers,
        throwaway executors — lands in this session's caches while the
        scope is active.  This is how training loops and examples inject
        a session without threading it through every call.
        """
        self._check_open()
        with plan_cache_scope(self.plan_caches):
            yield self

    # -- planning -------------------------------------------------------

    def _build_plan(self, problem, stage, config, device) -> ExecutionPlan:
        return build_plan(
            self._plan_cache, problem, stage, config, device, session=self
        )

    def plan(
        self,
        problem: Problem,
        stage: FusionStage | str = FusionStage.BEST,
        config: TurboFNOConfig | None = None,
        device: DeviceSpec | str | None = None,
    ) -> ExecutionPlan:
        """Compile (or fetch from this session's cache) one plan.

        Same contract as :func:`repro.api.plan`; ``config``/``device``
        default to the session's.
        """
        self._check_open()
        return self._plan_cache(
            problem,
            resolve_stage(stage),
            config if config is not None else self.config,
            get_device(device) if device is not None else self.device,
        )

    def plan_cache_info(self):
        """``functools.lru_cache`` statistics of this session's plan
        cache."""
        return self._plan_cache.cache_info()

    def warmup(self, problems, stages=(FusionStage.BEST,),
               dtypes=(np.float32,)) -> dict:
        """Pre-compile plans and FFT/rfft plans for ``problems``.

        For every problem, every requested stage is planned, and the
        FFT-plan family each geometry's executors will need — forward
        and inverse transforms of the kept modes, the pruned splits, and
        (where the half-spectrum convention applies) the packed-real
        R2C/C2R plans plus their pruned variants (truncation fused into
        the half-length decomposition) — is built in this session's
        caches for each working precision in ``dtypes``.  On an ``autotune=True``
        session the tiling of each problem geometry is resolved (tuned
        on a miss) here too — every reachable batch bucket, fused and
        (where applicable) symmetric dataflows — so serving never pays
        the timed search inline.  Returns ``{"problems": ...,
        "plans": ..., "fft_plans": ..., "tuned": ...}`` counts, with
        ``tuned`` the number of tile resolutions.
        """
        self._check_open()
        problems = list(problems)
        fft_before = sum(i.currsize for i in self.plan_caches.cache_info())
        plans = 0
        tuned = 0
        for problem in problems:
            for stage in stages:
                self.plan(problem, stage)
                plans += 1
            spatial = tuple(problem.spatial_shape)
            modes = tuple(problem.modes_shape)
            for dt in dtypes:
                cdt = complex_dtype_for(dt)
                self._warm_geometry(spatial, modes, cdt)
                if self.autotune:
                    tuned += self._warm_tiles(problem, spatial, modes, dt)
        fft_after = sum(i.currsize for i in self.plan_caches.cache_info())
        return {
            "problems": len(problems),
            "plans": plans,
            "fft_plans": fft_after - fft_before,
            "tuned": tuned,
        }

    def _warm_tiles(self, problem, spatial: tuple, modes: tuple, dt) -> int:
        """Pre-resolve the tiling for one problem geometry.

        Tune winners are keyed on (geometry, dtype, backend, batch
        bucket), never on weight values, so a synthetic
        ``hidden x hidden`` probe weight warms the exact entries the
        served executors will recall.  Every batch bucket up to the
        problem's is tuned (micro-batching serves smaller
        concatenations than the nominal batch), for both the fused
        dataflow and — where the geometry admits it — the symmetric
        half-spectrum one.
        """
        hidden = getattr(problem, "hidden", None)
        batch = getattr(problem, "batch", None)
        if hidden is None or not batch:
            return 0
        cdt = complex_dtype_for(dt)
        weight = probe_signal((hidden, hidden), cdt)
        modes_arg = modes if len(modes) > 1 else modes[0]
        executor = compile_spectral_conv(
            weight, modes_arg,
            plans=self.plan_caches, tiles="auto", tuner=self._tuner,
        )
        tuned = executor.warm_tiles(batch, spatial, dtype=dt)
        if modes[-1] <= spatial[-1] // 2:  # the symmetric family applies
            symmetric = compile_spectral_conv(
                weight, modes_arg, symmetric=True,
                plans=self.plan_caches, tiles="auto", tuner=self._tuner,
            )
            tuned += symmetric.warm_tiles(batch, spatial, dtype=dt)
        return tuned

    def _warm_geometry(self, spatial: tuple, modes: tuple, cdt) -> None:
        caches = self.plan_caches
        n_last, m_last = spatial[-1], modes[-1]
        # The fused family along the innermost axis.
        caches.fft(m_last, cdt, inverse=False)
        caches.fft(m_last, cdt, inverse=True)
        if m_last < n_last and is_power_of_two(m_last):
            caches.pruned(n_last, m_last, cdt, "trunc")
            caches.pruned(n_last, m_last, cdt, "itrunc")
        # The symmetric (half-spectrum) family — the pruned-R2C plans
        # the staged executors run, plus the full packed-real plans
        # their degenerate/fallback strategies and legacy callers use.
        if m_last <= n_last // 2:
            caches.rfft(n_last, cdt)
            caches.irfft(n_last, cdt)
            caches.pruned_rfft(n_last, m_last, cdt)
            caches.pruned_irfft(n_last, m_last, cdt)
        # 2-D: the width-axis pruned splits of the outer transform.
        if len(spatial) == 2:
            n_x, m_x = spatial[0], modes[0]
            if m_x < n_x and is_power_of_two(m_x):
                caches.pruned(n_x, m_x, cdt, "trunc")
                caches.pruned(n_x, m_x, cdt, "itrunc")
            elif m_x == n_x:
                caches.fft(n_x, cdt, inverse=False)
                caches.fft(n_x, cdt, inverse=True)

    # -- executor pool --------------------------------------------------

    def executor(self, weight: np.ndarray, modes, symmetric: bool = False):
        """The pooled compiled executor for one weight matrix.

        Keyed on the weight array's identity (plus modes and the
        symmetric flag): serving the same layer again reuses the staged
        executor — weight panels, FFT plans and tile workspaces are paid
        once per (geometry, dtype).  The executor stages against this
        session's plan caches and backend.  Weights are staged at first
        execution; build a new executor (or :meth:`clear_all_caches`)
        after mutating the array in place.
        """
        self._check_open()
        model = SpectralModel(weight, modes, symmetric)
        return self._pooled_executor(model)

    def _model_key(self, model: SpectralModel) -> tuple:
        return (id(model.weight), model.weight.shape, model.modes,
                model.symmetric)

    def _pooled_executor(self, model: SpectralModel):
        key = self._model_key(model)
        with self._pool_lock:
            executor = self._executors.get(key)
            if executor is None:
                modes = (
                    model.modes[0] if len(model.modes) == 1 else model.modes
                )
                executor = compile_spectral_conv(
                    model.weight, modes, symmetric=model.symmetric,
                    plans=self.plan_caches,
                    tiles="auto" if self.autotune else "default",
                    tuner=self._tuner,
                )
                self._executors[key] = executor
                if len(self._executors) > EXECUTOR_POOL_SIZE:
                    self._executors.popitem(last=False)  # LRU eviction
            else:
                self._executors.move_to_end(key)
            return executor

    @staticmethod
    def _serve_lock_for(obj) -> threading.Lock:
        # The lock lives on the served object itself, so every holder —
        # this session, another session, threaded micro-batches —
        # serialises on the same lock no matter what any pool does
        # (eviction, clear_all_caches) in between.
        lock = getattr(obj, "_serve_lock", None)
        if lock is None:
            with _serve_lock_creation:
                lock = getattr(obj, "_serve_lock", None)
                if lock is None:
                    lock = threading.Lock()
                    try:
                        obj._serve_lock = lock
                    except AttributeError:
                        # Slotted/frozen object: serialise every such
                        # model on the shared creation lock instead of
                        # running it unguarded.
                        return _serve_lock_creation
        return lock

    def executor_pool_size(self) -> int:
        """Number of compiled executors currently pooled."""
        with self._pool_lock:
            return len(self._executors)

    # -- serving --------------------------------------------------------

    def _apply_dtype_policy(self, x: np.ndarray) -> np.ndarray:
        if self.dtype_policy == "preserve":
            return x
        if self.dtype_policy == "float32":
            target = np.complex64 if np.iscomplexobj(x) else np.float32
        else:
            target = np.complex128 if np.iscomplexobj(x) else np.float64
        return x.astype(target, copy=False)

    def _record(self, geometry: tuple, requests: int, seconds: float) -> None:
        with self._stats_lock:
            stats = self._geometry_stats.get(geometry)
            if stats is None:
                stats = self._geometry_stats[geometry] = _GeometryStats()
            stats.requests += requests
            stats.batches += 1
            stats.seconds += seconds
            # One latency sample per serving call: every request in a
            # micro-batch (every stream in a rollout step) experienced
            # this wall time.
            stats.latency.record(seconds)
            self._latency.record(seconds)

    def _execute(self, model, x: np.ndarray) -> np.ndarray:
        """Run one (possibly concatenated) batch through ``model``."""
        spec = _as_spectral_model(model)
        if spec is not None:
            executor = self._pooled_executor(spec)
        elif isinstance(model, _COMPILED_EXECUTORS):
            executor = model
        else:
            # An arbitrary model (e.g. a repro.nn Module): run it under
            # this session's cache scope so its spectral layers resolve
            # plans from the session's caches and backend.  Serialised
            # like an executor — nn modules cache forward state, so
            # concurrent calls on one model would corrupt it.
            if not callable(model):
                raise TypeError(
                    f"cannot serve model of type {type(model).__name__}; "
                    "expected a SpectralModel, a (weight, modes[, symmetric]) "
                    "tuple, a compiled executor, or a callable model"
                )
            with self._serve_lock_for(model), self.activate():
                return model(x)
        with self._serve_lock_for(executor):
            return executor(x)

    def infer(self, model, x: np.ndarray) -> np.ndarray:
        """Serve one inference request.

        ``model`` is a :class:`SpectralModel` (or the
        ``(weight, modes[, symmetric])`` tuple shorthand, pooled by
        weight identity), a prebuilt compiled executor, or any callable
        model (a :mod:`repro.nn` network) — the latter runs under
        :meth:`activate` so it hits this session's caches.
        """
        self._check_open()
        x = self._apply_dtype_policy(np.asarray(x))
        t0 = time.perf_counter()
        out = self._execute(model, x)
        self._record(x.shape[1:], 1, time.perf_counter() - t0)
        return out

    def infer_many(
        self,
        requests,
        max_batch: int = 32,
        workers: int | None = None,
        queue_depth: int | None = None,
    ) -> list[np.ndarray]:
        """Serve a stream of ``(model, x)`` requests, micro-batched.

        Requests sharing (model, spatial geometry, dtype) are
        concatenated along the batch axis — up to ``max_batch`` requests
        per micro-batch — and each micro-batch runs its pooled executor
        *once*, amortising staging, plan lookups and Python dispatch
        that the per-request path pays per call.  Grouping preserves
        arrival order within a group and results are returned in request
        order, **bit-identical** to serial per-request execution: every
        operator in the stack is row-independent along the batch axis,
        so concatenation changes where rows live, not one floating-point
        operation.

        ``workers > 1`` drains the micro-batch queue (bounded at
        ``queue_depth``, default ``2 * workers``) with a thread pool;
        batches sharing an executor serialise on its lock, so threads
        help when the stream mixes geometries/models.  Results are
        identical regardless of ``workers``.
        """
        self._check_open()
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if queue_depth is not None and queue_depth < 1:
            raise ValueError(
                f"queue_depth must be >= 1, got {queue_depth}"
            )
        items = [
            (model, self._apply_dtype_policy(np.asarray(x)))
            for model, x in requests
        ]
        results: list[np.ndarray | None] = [None] * len(items)
        jobs = self._group_requests(items, max_batch)

        def run_job(idxs: list[int]) -> None:
            model = items[idxs[0]][0]
            xs = [items[i][1] for i in idxs]
            t0 = time.perf_counter()
            if len(xs) == 1:
                outs = [self._execute(model, xs[0])]
            else:
                batch = np.concatenate(xs, axis=0)
                out = self._execute(model, batch)
                outs, off = [], 0
                for x in xs:
                    # Copy each request's rows out: a view would pin the
                    # whole micro-batch output alive for as long as any
                    # one result survives.
                    outs.append(np.array(out[off : off + x.shape[0]]))
                    off += x.shape[0]
            seconds = time.perf_counter() - t0
            self._record(xs[0].shape[1:], len(idxs), seconds)
            for i, y in zip(idxs, outs):
                results[i] = y

        if workers is not None and workers > 1 and len(jobs) > 1:
            self._drain_jobs(jobs, run_job, workers, queue_depth)
        else:
            for job in jobs:
                run_job(job)
        return results  # type: ignore[return-value]

    def _group_requests(self, items, max_batch: int) -> list[list[int]]:
        """Deterministic micro-batching: group by (model, geometry,
        dtype) in arrival order, flushing a group at ``max_batch``
        requests.  Shared by :meth:`infer_many` and :meth:`rollout`."""
        jobs: list[list[int]] = []
        open_groups: dict[tuple, list[int]] = {}
        for i, (model, x) in enumerate(items):
            spec = _as_spectral_model(model)
            if spec is not None:
                mkey = self._model_key(spec)
            elif isinstance(model, _COMPILED_EXECUTORS):
                mkey = ("executor", id(model))
            else:
                mkey = ("opaque", id(model))
            key = (mkey, x.shape[1:], x.dtype)
            group = open_groups.setdefault(key, [])
            group.append(i)
            if len(group) >= max_batch:
                jobs.append(group)
                open_groups[key] = []
        jobs.extend(g for g in open_groups.values() if g)
        return jobs

    @staticmethod
    def _drain_jobs(jobs, run_job, workers: int,
                    queue_depth: int | None) -> None:
        """Drain micro-batch jobs through a bounded queue + thread pool."""
        workers = min(workers, len(jobs))
        q: queue_mod.Queue = queue_mod.Queue(
            maxsize=queue_depth if queue_depth is not None else 2 * workers
        )
        errors: list[BaseException] = []

        def worker() -> None:
            while True:
                job = q.get()
                try:
                    if job is None:
                        return
                    if not errors:  # fail fast: skip work after an error
                        run_job(job)
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    errors.append(exc)
                finally:
                    q.task_done()

        threads = [
            threading.Thread(target=worker, daemon=True)
            for _ in range(workers)
        ]
        for t in threads:
            t.start()
        for job in jobs:
            q.put(job)  # blocks when the queue is full: bounded backlog
        for _ in threads:
            q.put(None)
        for t in threads:
            t.join()
        if errors:
            raise errors[0]

    # -- autoregressive rollout -----------------------------------------

    def rollout(
        self,
        model=None,
        x0=None,
        steps: int = 1,
        *,
        streams=None,
        profile: str = "exact",
        keep: str = "last",
        max_batch: int = 32,
        workers: int | None = None,
        check_rtol: float | None = None,
    ):
        """Autoregressive stepping over this session's pooled executors:
        each step's output is the next step's input, and the state stays
        session-resident between model applications.

        Either one stream (``model``, ``x0``, returning the final state
        — or the whole trajectory with ``keep="all"``) or many
        (``streams=[(model, x0), ...]``, returning a list in stream
        order).  Concurrent streams sharing (model, geometry, dtype) are
        micro-batched along the batch axis exactly like
        :meth:`infer_many` — up to ``max_batch`` streams step together
        through one executor call, and ``workers > 1`` drains stream
        groups with a thread pool.

        ``profile="exact"`` (default) applies the model once per step —
        **bit-identical** to the eager per-step loop
        (``for _ in range(steps): x = model(x)``): it is the same
        computation through the same pooled executor, and micro-batched
        streams stay bit-identical because every operator is
        row-independent along the batch axis.

        ``profile="fast"`` keeps the state resident in the truncated
        spectrum: one forward transform up front, then only the spectral
        CGEMM per step, and one inverse transform per *kept* state —
        the redundant inverse/forward pair between consecutive steps is
        skipped outright.  Valid where the inter-step path is linear: a
        :class:`SpectralModel` / compiled executor (either filter
        convention; the spectrum of each step's output *is* the stepped
        spectrum) or a symmetric ``SpectralConv1d/2d`` layer.
        Non-symmetric nn layers project onto the real part between
        steps and arbitrary callables are opaque — both must use
        ``"exact"``.  Fast results match exact to rounding error, not
        bit-for-bit; ``check_rtol`` re-runs the exact loop and raises
        ``ValueError`` when the final states disagree beyond the given
        relative tolerance (the same tolerance-asserted pattern
        ``fft/legacy.py`` uses to freeze the seed as oracle).

        ``keep="last"`` returns the final state per stream;
        ``keep="all"`` the whole ``(steps, *state.shape)`` trajectory.
        Per-step latencies land in the stats reservoirs
        (:meth:`stats` ``["latency"]`` / ``["per_geometry"][g]["latency"]``).
        """
        self._check_open()
        if steps < 1:
            raise ValueError(f"steps must be >= 1, got {steps}")
        if profile not in ROLLOUT_PROFILES:
            raise ValueError(
                f"unknown rollout profile {profile!r}; expected one of "
                f"{ROLLOUT_PROFILES}"
            )
        if keep not in ("last", "all"):
            raise ValueError(
                f"keep must be 'last' or 'all', got {keep!r}"
            )
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if check_rtol is not None and profile != "fast":
            raise ValueError(
                "check_rtol asserts the fast profile against the exact "
                "loop; it does not apply to profile='exact'"
            )
        if streams is None:
            if model is None or x0 is None:
                raise ValueError(
                    "rollout needs (model, x0) or streams=[(model, x0), ...]"
                )
            return self._rollout_streams_impl(
                [(model, x0)], steps, profile, keep, max_batch, workers,
                check_rtol,
            )[0]
        if model is not None or x0 is not None:
            raise ValueError(
                "pass either (model, x0) or streams=, not both"
            )
        return self._rollout_streams_impl(
            list(streams), steps, profile, keep, max_batch, workers,
            check_rtol,
        )

    def rollout_many(self, streams, steps: int = 1, **kwargs):
        """Serve many concurrent rollout streams (see :meth:`rollout`);
        returns the per-stream results in stream order."""
        return self.rollout(steps=steps, streams=streams, **kwargs)

    def _rollout_streams_impl(self, streams, steps, profile, keep,
                              max_batch, workers, check_rtol) -> list:
        items = [
            (model, self._apply_dtype_policy(np.asarray(x0)))
            for model, x0 in streams
        ]
        for _, x0 in items:
            if x0.ndim < 3:
                raise ValueError(
                    f"rollout state must be (batch, C, *spatial), "
                    f"got shape {x0.shape}"
                )
        results: list = [None] * len(items)
        jobs = self._group_requests(items, max_batch)

        def run_job(idxs: list[int]) -> None:
            model = items[idxs[0]][0]
            xs = [items[i][1] for i in idxs]
            state0 = xs[0] if len(xs) == 1 else np.concatenate(xs, axis=0)
            if profile == "fast":
                kept = self._rollout_fast(model, state0, steps, keep)
                if check_rtol is not None:
                    ref = self._rollout_exact(model, state0, steps, "last")
                    if not np.allclose(kept[-1], ref[-1], rtol=check_rtol,
                                       atol=check_rtol):
                        raise ValueError(
                            f"fast rollout diverged from the exact loop "
                            f"beyond rtol={check_rtol} after {steps} steps"
                        )
            else:
                kept = self._rollout_exact(model, state0, steps, keep)
            with self._stats_lock:
                self._rollout_streams += len(idxs)
                self._rollout_steps += steps * len(idxs)
            offs = [0]
            for x in xs:
                offs.append(offs[-1] + x.shape[0])
            for j, i in enumerate(idxs):
                if len(xs) == 1:
                    results[i] = (np.stack(kept) if keep == "all"
                                  else kept[-1])
                    continue
                sl = slice(offs[j], offs[j + 1])
                # Copy each stream's rows out: a view would pin the
                # whole concatenated state alive per surviving result.
                if keep == "all":
                    results[i] = np.stack([np.array(s[sl]) for s in kept])
                else:
                    results[i] = np.array(kept[-1][sl])

        if workers is not None and workers > 1 and len(jobs) > 1:
            self._drain_jobs(jobs, run_job, workers, None)
        else:
            for job in jobs:
                run_job(job)
        return results

    def _rollout_exact(self, model, state: np.ndarray, steps: int,
                       keep: str) -> list[np.ndarray]:
        """The default stepping loop: the model applied once per step
        through :meth:`_execute` — the same pooled-executor call the
        eager loop makes, hence bit-identical to it."""
        geometry = state.shape[1:]
        n = state.shape[0]
        kept: list[np.ndarray] = []
        for step in range(steps):
            t0 = time.perf_counter()
            out = self._execute(model, state)
            self._record(geometry, n, time.perf_counter() - t0)
            out = np.asarray(out)
            if out.shape != state.shape:
                raise ValueError(
                    f"rollout requires a shape-preserving model: step "
                    f"{step + 1} mapped {state.shape} -> {out.shape}"
                )
            state = out
            if keep == "all":
                kept.append(state)
        if keep == "last":
            kept.append(state)
        return kept

    def _fast_stepper(self, model):
        """Resolve ``model`` to its spectrum-resident stepper.

        Returns ``(executor, None)`` for poolable/compiled executors or
        ``(None, layer)`` for a symmetric nn spectral layer; raises
        ``ValueError`` for models whose inter-step path is not linear in
        the spectrum.
        """
        spec = _as_spectral_model(model)
        if spec is not None:
            executor = self._pooled_executor(spec)
        elif isinstance(model, _COMPILED_EXECUTORS):
            executor = model
        else:
            executor = None
        if executor is not None:
            c_in, c_out = executor.weight.shape
            if c_in != c_out:
                raise ValueError(
                    f"profile='fast' feeds the output spectrum back in, "
                    f"which needs a square (C, C) weight; got "
                    f"({c_in}, {c_out})"
                )
            return executor, None
        from repro.nn.modules import SpectralConv1d, SpectralConv2d

        if isinstance(model, (SpectralConv1d, SpectralConv2d)):
            if not model.symmetric:
                # The non-symmetric layer takes Re(ifft(...)) between
                # steps — a genuine projection the spectrum-resident
                # loop cannot reproduce (fft(Re(ifft(pad(yk)))) != pad(yk)).
                raise ValueError(
                    "profile='fast' supports symmetric spectral layers "
                    "only: the non-symmetric convention projects onto "
                    "the real part between steps; use profile='exact'"
                )
            if model.c_in != model.c_out:
                raise ValueError(
                    f"profile='fast' needs a square layer "
                    f"(c_in == c_out), got ({model.c_in}, {model.c_out})"
                )
            return None, model
        raise ValueError(
            "profile='fast' requires a spectrum-capable model (a "
            "SpectralModel / (weight, modes[, symmetric]) tuple, a "
            "compiled executor, or a symmetric SpectralConv1d/2d "
            "layer); arbitrary callables must use profile='exact'"
        )

    def _rollout_fast(self, model, state: np.ndarray, steps: int,
                      keep: str) -> list[np.ndarray]:
        """The spectrum-resident loop: forward transform once, CGEMM
        per step, inverse transform only at kept states."""
        executor, layer = self._fast_stepper(model)
        geometry = state.shape[1:]
        spatial = state.shape[2:]
        n = state.shape[0]
        kept: list[np.ndarray] = []
        # Per step: synthesize kept output from the *pre-projection*
        # output spectrum yk, then feed forward its reanalysis — the
        # spectrum the next step's forward transform would compute from
        # the synthesized field.  The skipped inverse/forward pair is
        # not the identity for the symmetric convention (it projects the
        # DC bin real in 1D and Hermitian-symmetrises the y-DC column in
        # 2D), and projecting *before* synthesis would change the kept
        # output, so the order matters.
        if executor is not None:
            spatial_arg = spatial if executor.ndim == 2 else spatial[0]
            with self._serve_lock_for(executor):
                sk = executor.forward_spectrum(state)
                yk = sk
                for _ in range(steps):
                    t0 = time.perf_counter()
                    yk = executor.step_spectrum(sk)
                    self._record(geometry, n, time.perf_counter() - t0)
                    if keep == "all":
                        kept.append(
                            executor.inverse_spectrum(yk, spatial_arg)
                        )
                    sk = executor.reanalyze_spectrum(yk, spatial_arg)
                if keep == "last":
                    kept.append(executor.inverse_spectrum(yk, spatial_arg))
            return kept
        spatial_arg = spatial if len(spatial) == 2 else spatial[0]
        with self._serve_lock_for(layer), self.activate():
            sk = layer.spectrum(state)
            yk = sk
            for _ in range(steps):
                t0 = time.perf_counter()
                yk = layer.apply_modes(sk)
                self._record(geometry, n, time.perf_counter() - t0)
                if keep == "all":
                    kept.append(layer.from_spectrum(yk, spatial_arg))
                sk = layer.reanalyze_spectrum(yk, spatial_arg)
            if keep == "last":
                kept.append(layer.from_spectrum(yk, spatial_arg))
        return kept

    # -- observability --------------------------------------------------

    def stats(self) -> dict:
        """Serving and cache statistics (JSON-ready).

        ``plan_cache`` / ``fft_plan_caches`` expose LRU hit/miss
        accounting; ``autotune`` the session tuner's hit/miss counters
        (every pooled-executor call on an ``autotune=True`` session
        resolves its tiles through the tuner exactly once);
        ``per_geometry`` maps each served spatial geometry to
        request/batch counts, measured throughput and latency
        percentiles (p50/p95/p99 seconds from a bounded reservoir — one
        sample per executed micro-batch or rollout step); ``latency``
        aggregates the same across all geometries; ``rollout`` counts
        streams and stream-steps served by :meth:`rollout`.
        """
        info = self.plan_cache_info()
        fft_info = self.plan_caches.cache_info()
        with self._stats_lock:
            per_geometry = {
                "x".join(map(str, key)): stats.as_dict()
                for key, stats in self._geometry_stats.items()
            }
            requests = sum(
                s.requests for s in self._geometry_stats.values()
            )
            batches = sum(s.batches for s in self._geometry_stats.values())
            latency = self._latency.percentiles()
            rollout = {
                "streams": self._rollout_streams,
                "steps": self._rollout_steps,
            }
        return {
            "backend": self.backend,
            "dtype_policy": self.dtype_policy,
            "device": self.device.name,
            "closed": self._closed,
            "plan_cache": {
                "hits": info.hits,
                "misses": info.misses,
                "currsize": info.currsize,
                "maxsize": info.maxsize,
            },
            "fft_plan_caches": {
                name: {
                    "hits": i.hits,
                    "misses": i.misses,
                    "currsize": i.currsize,
                }
                for name, i in zip(("fft", "pruned", "real"), fft_info)
            },
            "executor_pool": self.executor_pool_size(),
            "autotune": {"enabled": self.autotune, **self._tuner.stats()},
            "requests": requests,
            "batches": batches,
            "latency": latency,
            "rollout": rollout,
            "per_geometry": per_geometry,
        }


# ---------------------------------------------------------------------------
# The process-default session (the module-level facade's backing store)
# ---------------------------------------------------------------------------

_default_session: Session | None = None
_default_session_lock = threading.Lock()


def default_session() -> Session:
    """The lazily-created process-default session.

    Backs the module-level :func:`repro.api.plan` /
    :func:`repro.api.plan_cache_info` / :func:`repro.api.clear_plan_cache`
    facade; shares the process-wide FFT plan caches, so the functional
    FFT API and the default session pool plans exactly like the seed.
    """
    global _default_session
    # The check must hold the lock: an unlocked fast-path read of
    # ``_closed`` racing a concurrent close()-and-recreate could hand
    # two callers different "default" sessions (one of them already
    # closed).  Session construction is cheap and happens once, so the
    # double-checked fast path buys nothing worth the race.
    with _default_session_lock:
        if _default_session is None or _default_session._closed:
            _default_session = Session()
        return _default_session


def clear_all_caches() -> None:
    """One call that empties every cache of the default session: plans,
    FFT/pruned/rfft plans (and their workspaces), compiled executors.

    This is the fixed cache-clearing path — the seed's
    ``clear_plan_cache()`` left the FFT plan caches and executor caches
    populated.  The default session shares the process-wide FFT
    plan-cache set, which is flushed here explicitly (per-session
    ``clear_all_caches`` leaves shared sets alone).
    """
    default_session().clear_all_caches()
    default_plan_caches().clear()


def clear_all_plan_caches() -> None:
    """Drop the *plan* cache of every live session (registry mutations
    that invalidate cached pipelines call this)."""
    for session in list(_live_sessions):
        if not session._closed:
            session.clear_plan_cache()
