"""``plan()``: the cached front door from problems to kernel pipelines.

One call — ``plan(problem, stage=..., config=..., device=...)`` — replaces
the dimension-suffixed ``build_pipeline_1d`` / ``build_pipeline_2d`` /
``best_stage_*`` trio.  The returned :class:`ExecutionPlan` bundles the
compiled :class:`repro.gpu.timeline.Pipeline` with its problem, stage,
config and device, and memoises the modelled
:class:`~repro.gpu.timeline.PipelineReport`.

Plans are cached in an LRU keyed on ``(problem, stage, config, device)``
(all frozen dataclasses, so the key *is* the geometry).  The cache is
owned by a :class:`repro.api.Session` — the module-level :func:`plan`,
:func:`plan_cache_info` and :func:`clear_plan_cache` are thin wrappers
over the process-default session, preserving the original facade API
verbatim.  Dense figure sweeps hammer this cache hard: Figs. 11-13
sweep the same problem grids with growing stage sets, and every stage-E
(BEST) resolution re-uses the A-D plans the ladder already built.
Cached plans are shared — treat a plan's ``pipeline`` as immutable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.api.problem import Problem, describe_problem
from repro.api.registry import pipeline_builder_for
from repro.core.config import TurboFNOConfig
from repro.core.stages import FusionStage
from repro.gpu.device import DeviceSpec
from repro.gpu.timeline import Pipeline, PipelineReport, speedup_percent

__all__ = [
    "ExecutionPlan",
    "build_plan",
    "plan",
    "plan_cache_info",
    "clear_plan_cache",
]

#: LRU capacity: a dense fig14 + fig19 regeneration materialises ~3.7k
#: distinct (problem, stage) pairs; 8192 holds two full dense sweeps.
PLAN_CACHE_SIZE = 8192


@dataclass(eq=False)
class ExecutionPlan:
    """One compiled execution strategy for one problem on one device.

    ``stage`` is always a concrete rung — asking :func:`plan` for
    ``FusionStage.BEST`` returns the winning stage's plan, so
    ``plan(p).stage`` tells you *which* rung won.

    Plans model; executors compute.  :meth:`compile_executor` attaches
    the numeric side: a build-once/execute-many compiled spectral-conv
    executor for this plan's problem geometry (plan once -> execute
    many, like a cuFFT plan handle).
    """

    problem: Problem
    stage: FusionStage
    config: TurboFNOConfig
    device: DeviceSpec
    pipeline: Pipeline
    _report: PipelineReport | None = field(default=None, repr=False)
    _speedup: float | None = field(default=None, repr=False)
    #: The owning session (None for plans built outside any session);
    #: sibling lookups (the baseline) and executor compilation route
    #: through it so they share its caches and backend.
    _session: object | None = field(default=None, repr=False)

    def report(self) -> PipelineReport:
        """Modelled execution report on this plan's device (memoised)."""
        if self._report is None:
            self._report = self.pipeline.report(self.device)
        return self._report

    @property
    def total_time(self) -> float:
        """Modelled wall-clock seconds of the pipeline."""
        return self.report().total_time

    @property
    def launch_count(self) -> int:
        return self.report().launch_count

    def _live_session(self):
        """The owning session while it is open — plans outlive their
        session (falling back to the default-session facade), matching
        the standalone behaviour module-level plans always had."""
        session = self._session
        if session is not None and not session._closed:
            return session
        return None

    def baseline(self) -> "ExecutionPlan":
        """The PyTorch-baseline plan for the same problem/config/device."""
        session = self._live_session()
        plan_fn = session.plan if session is not None else plan
        return plan_fn(self.problem, FusionStage.PYTORCH, self.config,
                       self.device)

    def speedup_vs_baseline(self) -> float:
        """Speedup over the PyTorch baseline in the paper's units
        (percent; 0 = parity).  Memoised: sweeps ask every cached plan
        for this repeatedly, and cached plans are shared."""
        if self.stage is FusionStage.PYTORCH:
            return 0.0
        if self._speedup is None:
            self._speedup = speedup_percent(
                self.baseline().total_time, self.total_time
            )
        return self._speedup

    def compile_executor(self, weight, symmetric: bool = False,
                         tiles: object | None = None):
        """Build the compiled numeric executor for this plan's geometry.

        ``weight`` is the complex ``(C_in, C_out)`` spectral weight
        matrix; ``C_in`` must match the problem's hidden dimension.
        Returns a :class:`repro.core.compiled.CompiledSpectralConv1D` or
        ``...2D`` whose staging (weight casts, FFT plans, workspaces) is
        paid once, so ``plan -> compile -> execute many`` amortises all
        per-call setup.  The executor uses the functional path's default
        k-tiling, so its output is byte-identical to
        ``repro.api.spectral_conv`` with the turbo engine; pass a custom
        ``k_tb`` to :func:`repro.core.compiled.compile_spectral_conv`
        directly if you want the accumulation grouped differently.

        ``symmetric=True`` compiles the original-FNO rfft/irfft filter
        convention instead: real input, half spectrum through the cached
        packed-real R2C/C2R plans, real output (the training-stack hot
        path of :mod:`repro.nn`).

        ``tiles`` selects the executor tiling: ``"default"``,
        ``"auto"`` (plan-time tile autotuning, byte-identical — see
        :mod:`repro.core.autotune`) or a concrete ``(signal_tile,
        k_tb)`` pair.  ``None`` follows the owning session's
        ``autotune`` setting (``"default"`` outside a session).

        Plans built by a :class:`repro.api.Session` compile executors
        against that session's plan caches, backend and tuner.
        """
        from repro.core.compiled import compile_spectral_conv

        weight = np.asarray(weight)
        hidden = getattr(self.problem, "hidden", None)
        if hidden is not None and weight.shape[0] != hidden:
            raise ValueError(
                f"weight C_in={weight.shape[0]} does not match the "
                f"problem's hidden dimension {hidden}"
            )
        session = self._live_session()
        plans = session.plan_caches if session is not None else None
        tuner = session._tuner if session is not None else None
        if tiles is None:
            tiles = (
                "auto" if session is not None and session.autotune
                else "default"
            )
        return compile_spectral_conv(
            weight, tuple(self.problem.modes_shape), symmetric=symmetric,
            plans=plans, tiles=tiles, tuner=tuner,
        )

    def to_dict(self) -> dict:
        """JSON-ready summary (problem geometry, stage, device, timings)."""
        rep = self.report()
        return {
            "problem": describe_problem(self.problem),
            "stage": self.stage.value,
            "stage_description": self.stage.description,
            "device": self.device.name,
            "pipeline": self.pipeline.name,
            "total_time_ms": rep.total_time * 1e3,
            "kernel_launches": rep.launch_count,
            "kernels": [
                {"name": name, "time_ms": t * 1e3}
                for name, t in rep.kernel_times
            ],
            "global_bytes": rep.counters.global_bytes,
            "flops": rep.counters.flops,
            "speedup_vs_baseline_percent": self.speedup_vs_baseline(),
        }


def build_plan(
    cached,
    problem: Problem,
    stage: FusionStage,
    config: TurboFNOConfig,
    device: DeviceSpec,
    session: object | None = None,
) -> ExecutionPlan:
    """Construct one plan (the body behind every session's plan cache).

    ``cached`` is the memoised lookup of the owning cache — BEST
    resolution recurses through it so a ladder sweep that already built
    A-D pays nothing extra.  Arguments are pre-resolved (concrete stage,
    config, device); :meth:`repro.api.Session.plan` does the spelling
    and default resolution.
    """
    if stage is FusionStage.BEST:
        # Stage E: the fastest of A-D, resolved through the same cache so
        # a ladder sweep that already built A-D pays nothing extra.  Ladder
        # order + strict '<' replicates best_stage_{1,2}d tie-breaking.
        best: ExecutionPlan | None = None
        for rung in FusionStage.ladder():
            cand = cached(problem, rung, config, device)
            if best is None or cand.total_time < best.total_time:
                best = cand
        if best is None:
            raise RuntimeError("FusionStage.ladder() is empty")
        return best
    builder = pipeline_builder_for(problem)
    pipeline = builder(problem, stage, config)
    return ExecutionPlan(
        problem=problem, stage=stage, config=config, device=device,
        pipeline=pipeline, _session=session,
    )


def plan(
    problem: Problem,
    stage: FusionStage | str = FusionStage.BEST,
    config: TurboFNOConfig | None = None,
    device: DeviceSpec | str | None = None,
) -> ExecutionPlan:
    """Compile (or fetch from cache) the execution plan for ``problem``.

    A thin wrapper over the default :class:`repro.api.Session` — plans
    land in (and are served from) its cache.  Hold your own session to
    isolate caches, pin a backend, or batch inference.

    Parameters
    ----------
    problem:
        Any :class:`repro.api.Problem` — ``FNO1DProblem``, ``FNO2DProblem``,
        or a workload whose dimensionality has a registered builder.
    stage:
        A Table 2 rung (enum or spelling like ``"A"``/``"pytorch"``).
        The default ``BEST`` resolves stage E and returns the winner.
    config:
        Kernel parameters / model knobs; default :class:`TurboFNOConfig`.
    device:
        A :class:`DeviceSpec`, a registered name (``"a100"``, ``"h100"``),
        or ``None`` for the paper's A100.
    """
    from repro.api.session import default_session

    return default_session().plan(problem, stage, config, device)


def plan_cache_info():
    """``functools.lru_cache`` statistics of the default session's plan
    cache."""
    from repro.api.session import default_session

    return default_session().plan_cache_info()


def clear_plan_cache() -> None:
    """Drop every plan cached by the default session (tests and
    memory-sensitive callers).  :func:`repro.api.clear_all_caches` also
    drops the FFT/rfft plan caches and the compiled-executor pool."""
    from repro.api.session import default_session

    default_session().clear_plan_cache()
