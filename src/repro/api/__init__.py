"""``repro.api`` — the single front door to the TurboFNO reproduction.

The facade is organised around one object: the :class:`Session`.  A
session is a stateful execution context that owns every cache and pool
the stack uses — the plan cache behind :func:`plan`, the FFT/rfft plan
caches (:class:`repro.fft.compiled.PlanCaches`), and a pool of compiled
spectral-conv executors — and makes backend and dtype policy explicit
configuration instead of process-global environment state:

>>> from repro import api
>>> from repro.core.config import FNO1DProblem
>>> s = api.Session(backend="auto")          # doctest: +SKIP
>>> p = s.plan(FNO1DProblem.from_m_spatial(2**20, 64, 128, 64))
>>> s.warmup([p.problem])                    # pre-compile FFT plans
>>> y = s.infer((weight, 64), x)             # pooled compiled executor
>>> ys = s.infer_many(reqs, max_batch=32)    # geometry micro-batching

Pieces
------
:class:`Session`
    Plans, warmup, batched inference (:meth:`Session.infer_many`
    micro-batches requests by geometry and reuses one compiled executor
    per weight matrix), autoregressive rollout serving
    (:meth:`Session.rollout` keeps state resident across steps —
    bit-identical to the eager loop by default, spectrum-resident with
    ``profile="fast"``), cache statistics (:meth:`Session.stats`) and a
    single teardown path (:meth:`Session.close` /
    :meth:`Session.clear_all_caches`).  ``backend="auto"|"ckernels"|
    "numpy"`` pins the executor substrate per session; outputs are
    byte-identical across backends.
:func:`plan` / :func:`plan_cache_info` / :func:`clear_plan_cache`
    The PR 1 planning facade, preserved verbatim as thin wrappers over
    a process-default session (:func:`default_session`).
:func:`clear_all_caches`
    Empties *every* default-session cache — plans, FFT/rfft plans and
    their workspaces, compiled executors — where ``clear_plan_cache``
    only drops plans.
:class:`Problem`
    Structural protocol every workload implements; dimensionality is
    data (``problem.ndim``), not a function suffix.
:class:`Runner`
    Maps cached plans over iterables of problems/stages — the sweep hot
    path behind :mod:`repro.analysis`.  Pass ``session=`` to route a
    sweep through a specific session's caches.
registries
    Named devices (``"a100"`` — the paper's testbed and default — and an
    ``"h100"``-class part; extend with :func:`register_device`), tolerant
    stage spelling (:func:`resolve_stage`), and per-``ndim`` pipeline
    builders (:func:`register_pipeline_builder` opens 3-D and beyond).
:func:`spectral_conv`
    Rank-dispatched numeric Fourier layer (the exact-arithmetic twin of
    the modelled pipelines).

The legacy ``_1d``/``_2d`` names remain importable from :mod:`repro` as
deprecated shims.
"""

from repro.api.ops import spectral_conv
from repro.api.planner import (
    ExecutionPlan,
    clear_plan_cache,
    plan,
    plan_cache_info,
)
from repro.api.problem import Problem, describe_problem
from repro.api.registry import (
    DEFAULT_DEVICE,
    get_device,
    list_devices,
    list_stages,
    pipeline_builder_for,
    register_device,
    register_pipeline_builder,
    resolve_stage,
    supported_ndims,
)
from repro.api.runner import Runner, default_workers
from repro.api.serve import (
    Cancelled,
    CorruptedHeader,
    DeadlineExceeded,
    FaultPlan,
    HealthPolicy,
    PoolSaturated,
    ResultTimeout,
    ServeError,
    ServeFuture,
    ServePool,
    WorkerCrashed,
)
from repro.api.session import (
    DTYPE_POLICIES,
    ROLLOUT_PROFILES,
    LatencyReservoir,
    Session,
    SpectralModel,
    clear_all_caches,
    default_session,
)

__all__ = [
    "default_workers",
    "Problem",
    "describe_problem",
    "ExecutionPlan",
    "plan",
    "plan_cache_info",
    "clear_plan_cache",
    "clear_all_caches",
    "Session",
    "SpectralModel",
    "default_session",
    "DTYPE_POLICIES",
    "ROLLOUT_PROFILES",
    "LatencyReservoir",
    "ServePool",
    "ServeFuture",
    "ServeError",
    "WorkerCrashed",
    "DeadlineExceeded",
    "ResultTimeout",
    "Cancelled",
    "CorruptedHeader",
    "PoolSaturated",
    "FaultPlan",
    "HealthPolicy",
    "Runner",
    "spectral_conv",
    "DEFAULT_DEVICE",
    "get_device",
    "register_device",
    "list_devices",
    "resolve_stage",
    "list_stages",
    "register_pipeline_builder",
    "pipeline_builder_for",
    "supported_ndims",
]
