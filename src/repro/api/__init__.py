"""``repro.api`` — the single front door to the TurboFNO reproduction.

Instead of picking one of the dimension-suffixed free functions
(``build_pipeline_1d``/``_2d``, ``best_stage_1d``/``_2d``,
``spectral_conv_1d``/``_2d``), callers describe *what* they want and the
facade resolves *how*:

>>> from repro import api
>>> from repro.core.config import FNO1DProblem
>>> p = api.plan(FNO1DProblem.from_m_spatial(2**20, 64, 128, 64))
>>> p.stage.value, round(p.speedup_vs_baseline())  # doctest: +SKIP
('D', 150)

Pieces
------
:class:`Problem`
    Structural protocol every workload implements; dimensionality is data
    (``problem.ndim``), not a function suffix.
:func:`plan`
    ``plan(problem, stage=..., config=..., device=...)`` compiles a kernel
    :class:`~repro.gpu.timeline.Pipeline` into an :class:`ExecutionPlan`
    (pipeline + memoised report + JSON summary).  Plans live in an LRU
    cache keyed on (problem geometry, stage, config, device), so dense
    figure sweeps stop rebuilding identical pipelines.
:class:`Runner`
    Maps cached plans over iterables of problems/stages — the sweep hot
    path behind :mod:`repro.analysis`.
registries
    Named devices (``"a100"`` — the paper's testbed and default — and an
    ``"h100"``-class part; extend with :func:`register_device`), tolerant
    stage spelling (:func:`resolve_stage`), and per-``ndim`` pipeline
    builders (:func:`register_pipeline_builder` opens 3-D and beyond).
:func:`spectral_conv`
    Rank-dispatched numeric Fourier layer (the exact-arithmetic twin of
    the modelled pipelines).

The legacy ``_1d``/``_2d`` names remain importable from :mod:`repro` as
deprecated shims.
"""

from repro.api.ops import spectral_conv
from repro.api.planner import (
    ExecutionPlan,
    clear_plan_cache,
    plan,
    plan_cache_info,
)
from repro.api.problem import Problem, describe_problem
from repro.api.registry import (
    DEFAULT_DEVICE,
    get_device,
    list_devices,
    list_stages,
    pipeline_builder_for,
    register_device,
    register_pipeline_builder,
    resolve_stage,
    supported_ndims,
)
from repro.api.runner import Runner, default_workers

__all__ = [
    "default_workers",
    "Problem",
    "describe_problem",
    "ExecutionPlan",
    "plan",
    "plan_cache_info",
    "clear_plan_cache",
    "Runner",
    "spectral_conv",
    "DEFAULT_DEVICE",
    "get_device",
    "register_device",
    "list_devices",
    "resolve_stage",
    "list_stages",
    "register_pipeline_builder",
    "pipeline_builder_for",
    "supported_ndims",
]
