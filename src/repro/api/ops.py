"""Dimension-agnostic numeric operators.

:func:`spectral_conv` dispatches on the input's array rank, replacing the
``spectral_conv_1d`` / ``spectral_conv_2d`` pair at call sites that handle
both (trainers, examples, benchmarks).
"""

from __future__ import annotations

import numbers

import numpy as np

from repro.core.spectral import ENGINES, spectral_conv_1d, spectral_conv_2d

__all__ = ["spectral_conv", "ENGINES"]


def spectral_conv(
    x: np.ndarray,
    weight: np.ndarray,
    modes: int | tuple[int, ...],
    engine: str = "turbo",
) -> np.ndarray:
    """The paper's Fourier layer, any supported dimensionality.

    Parameters
    ----------
    x:
        ``(batch, C_in, X)`` for a 1-D layer or ``(batch, C_in, X, Y)``
        for a 2-D layer; real or complex.
    weight:
        Complex ``(C_in, C_out)`` spectral weights shared across modes.
    modes:
        Kept low-frequency bins: an int (same along every axis) or one
        int per spatial axis.
    engine:
        One of ``"turbo" | "reference" | "pytorch"``.
    """
    x = np.asarray(x)

    def as_mode(v) -> int:
        # numbers.Integral admits numpy integer scalars (e.g. sweep-array
        # elements), not just builtin int; everything else (floats from
        # sweep arithmetic, strings) is rejected rather than truncated.
        if not isinstance(v, numbers.Integral):
            raise ValueError(
                f"modes must be an integer or a tuple of integers, got {v!r}"
            )
        return int(v)

    if x.ndim not in (3, 4):
        raise ValueError(
            f"spectral_conv expects a (batch, C, X) or (batch, C, X, Y) "
            f"array; got ndim={x.ndim}"
        )
    spatial = x.ndim - 2
    if isinstance(modes, numbers.Integral):
        per_axis = (int(modes),) * spatial
    else:
        try:
            # 0-d arrays advertise __iter__ but raise on iteration, so
            # attempt it and fold the failure into the clean error below.
            per_axis = tuple(as_mode(m) for m in modes)
        except TypeError:
            raise ValueError(
                f"modes must be an integer or a tuple of integers, "
                f"got {modes!r}"
            ) from None
        if len(per_axis) != spatial:
            raise ValueError(
                f"modes has {len(per_axis)} entries but the input has "
                f"{spatial} spatial axis(es); pass one int per axis"
            )
    if x.ndim == 3:
        return spectral_conv_1d(x, weight, per_axis[0], engine=engine)
    return spectral_conv_2d(x, weight, per_axis[0], per_axis[1], engine=engine)
