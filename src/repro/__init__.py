"""TurboFNO reproduction.

A from-scratch Python reproduction of *TurboFNO: High-Performance Fourier
Neural Operator with Fused FFT-GEMM-iFFT on GPU* (Wu et al., SC 2025,
arXiv:2504.11681), built on an analytic A100 execution model in place of
the paper's CUDA kernels (see DESIGN.md for the substitution argument).

Layout
------
``repro.gpu``
    A100 execution model: occupancy, shared-memory bank conflicts,
    roofline kernel timing, pipelines.
``repro.fft``
    Stockham FFT, pruned (truncated / zero-padded) transforms, exact
    butterfly op census.
``repro.gemm``
    Blocked complex GEMM with the paper's Table 1 tiling.
``repro.baselines``
    cuFFT / cuBLAS / memcpy library models and the PyTorch-style staged
    spectral convolution.
``repro.core``
    The paper's contribution: fused FFT-CGEMM-iFFT operators (numerically
    exact) and the stage A-E pipeline cost models that regenerate every
    figure.
``repro.nn`` / ``repro.pde``
    A trainable FNO (hand-written backward passes) and the PDE workload
    generators (Burgers, Darcy, Navier-Stokes) the paper's introduction
    motivates.
``repro.analysis``
    Parameter sweeps and per-figure series builders.
"""

from repro.core import (
    FNO1DProblem,
    FNO2DProblem,
    FusionStage,
    TurboFNOConfig,
    build_pipeline_1d,
    build_pipeline_2d,
    spectral_conv_1d,
    spectral_conv_2d,
)
from repro.gpu import A100_SPEC, DeviceSpec

__version__ = "1.0.0"

__all__ = [
    "FNO1DProblem",
    "FNO2DProblem",
    "FusionStage",
    "TurboFNOConfig",
    "build_pipeline_1d",
    "build_pipeline_2d",
    "spectral_conv_1d",
    "spectral_conv_2d",
    "A100_SPEC",
    "DeviceSpec",
    "__version__",
]
