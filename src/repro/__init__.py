"""TurboFNO reproduction.

A from-scratch Python reproduction of *TurboFNO: High-Performance Fourier
Neural Operator with Fused FFT-GEMM-iFFT on GPU* (Wu et al., SC 2025,
arXiv:2504.11681), built on an analytic A100 execution model in place of
the paper's CUDA kernels (see DESIGN.md for the substitution argument).

Layout
------
``repro.api``
    **The front door.**  The stateful ``Session`` execution context
    (plan cache + FFT-plan caches + compiled-executor pool + batched
    ``infer``/``infer_many`` serving, per-session backend/dtype
    policy), a dimension-agnostic ``Problem`` protocol,
    ``plan(problem, stage=..., config=..., device=...)`` returning cached
    ``ExecutionPlan`` objects (a thin wrapper over the default session),
    a batch ``Runner`` for sweeps, and the device/stage/pipeline-builder
    registries.  New code goes through here; everything below is the
    machinery the facade compiles against.
``repro.gpu``
    Execution-model substrate: device specs (A100 default, H100-class
    registered), occupancy, shared-memory bank conflicts, roofline kernel
    timing, pipelines.
``repro.fft``
    Stockham FFT, pruned (truncated / zero-padded) transforms, exact
    butterfly op census.
``repro.gemm``
    Blocked complex GEMM with the paper's Table 1 tiling.
``repro.baselines``
    cuFFT / cuBLAS / memcpy library models and the PyTorch-style staged
    spectral convolution.
``repro.core``
    The paper's contribution: fused FFT-CGEMM-iFFT operators (numerically
    exact), problem geometries, and the stage A-E pipeline compilers the
    facade dispatches to per dimensionality.
``repro.nn`` / ``repro.pde``
    A trainable FNO (hand-written backward passes) and the PDE workload
    generators (Burgers, Darcy, Navier-Stokes) the paper's introduction
    motivates.
``repro.analysis``
    Parameter sweeps and per-figure series builders, all routed through
    ``repro.api`` so repeated geometries hit the plan cache.

Deprecated names
----------------
The pre-facade, dimension-suffixed entry points — ``build_pipeline_1d``,
``build_pipeline_2d``, ``best_stage_1d``, ``best_stage_2d``,
``spectral_conv_1d``, ``spectral_conv_2d`` — remain importable from this
package root but emit a one-time :class:`DeprecationWarning`; use
``repro.api.plan`` / ``repro.api.spectral_conv`` instead.
"""

import importlib
import warnings

from repro import api
from repro.api import ExecutionPlan, Runner, Session, plan, spectral_conv
from repro.core import (
    FNO1DProblem,
    FNO2DProblem,
    FusionStage,
    TurboFNOConfig,
)
from repro.gpu import A100_SPEC, H100_SPEC, DeviceSpec

__version__ = "1.1.0"

__all__ = [
    "api",
    "plan",
    "Session",
    "Runner",
    "ExecutionPlan",
    "spectral_conv",
    "FNO1DProblem",
    "FNO2DProblem",
    "FusionStage",
    "TurboFNOConfig",
    "A100_SPEC",
    "H100_SPEC",
    "DeviceSpec",
    "__version__",
]
# The deprecated shims (build_pipeline_1d/_2d, best_stage_1d/_2d,
# spectral_conv_1d/_2d) stay importable via __getattr__ but are kept out
# of __all__ so `from repro import *` doesn't fire their warnings.

#: name -> (home module, attribute, suggested replacement)
_DEPRECATED = {
    "build_pipeline_1d": (
        "repro.core.pipeline_model", "build_pipeline_1d",
        "repro.api.plan(problem, stage=...)",
    ),
    "build_pipeline_2d": (
        "repro.core.pipeline_model", "build_pipeline_2d",
        "repro.api.plan(problem, stage=...)",
    ),
    "best_stage_1d": (
        "repro.core.pipeline_model", "best_stage_1d",
        "repro.api.plan(problem)  # stage defaults to BEST",
    ),
    "best_stage_2d": (
        "repro.core.pipeline_model", "best_stage_2d",
        "repro.api.plan(problem)  # stage defaults to BEST",
    ),
    "spectral_conv_1d": (
        "repro.core.spectral", "spectral_conv_1d", "repro.api.spectral_conv",
    ),
    "spectral_conv_2d": (
        "repro.core.spectral", "spectral_conv_2d", "repro.api.spectral_conv",
    ),
}

#: Names whose deprecation warning has already fired (once per process).
_warned: set = set()


def __getattr__(name: str):
    """Resolve deprecated legacy names, warning once per name."""
    try:
        home, attr, replacement = _DEPRECATED[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    if name not in _warned:
        _warned.add(name)
        warnings.warn(
            f"repro.{name} is deprecated; use {replacement}",
            DeprecationWarning,
            stacklevel=2,
        )
    return getattr(importlib.import_module(home), attr)
