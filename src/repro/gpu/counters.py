"""Aggregated performance counters for the execution model.

:class:`PerfCounters` is the common currency of the cost model: every kernel
contributes one, pipelines sum them, and the figure benchmarks print them.
The fields are exactly the quantities §5 of the paper reasons about when it
attributes TurboFNO's speedups to "memory transaction reduction", fewer
kernel launches and bank-conflict-free shared memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PerfCounters"]


@dataclass
class PerfCounters:
    """Additive performance counters.

    Parameters
    ----------
    flops:
        Real-arithmetic floating-point operations (complex MAC = 8 real ops).
    global_bytes_read / global_bytes_written:
        DRAM traffic in bytes.
    kernel_launches:
        Number of device kernel launches.
    smem_transactions:
        Shared-memory transactions issued (post-conflict replays included).
    smem_ideal_transactions:
        Transactions an ideally conflict-free layout would need; the ratio
        ``ideal / actual`` is the bank utilization the paper quotes
        (6.25 %, 25 %, 100 %).
    syncthreads:
        Block-wide barrier count (the fused kernel adds one per k-tile, §4.3).
    l2_candidate_bytes:
        Portion of the global traffic that is *inter-stage intermediate*
        data (spectra, truncated copies, GEMM operands produced by the
        previous kernel): when the working set fits L2, these bytes are
        served at L2 rather than DRAM bandwidth.  Raw inputs and final
        outputs are never candidates.
    """

    flops: float = 0.0
    global_bytes_read: float = 0.0
    global_bytes_written: float = 0.0
    kernel_launches: int = 0
    smem_transactions: float = 0.0
    smem_ideal_transactions: float = 0.0
    syncthreads: float = 0.0
    l2_candidate_bytes: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "flops",
            "global_bytes_read",
            "global_bytes_written",
            "smem_transactions",
            "smem_ideal_transactions",
            "syncthreads",
            "l2_candidate_bytes",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.kernel_launches < 0:
            raise ValueError("kernel_launches must be non-negative")
        if self.l2_candidate_bytes > self.global_bytes_read + self.global_bytes_written:
            raise ValueError("l2_candidate_bytes cannot exceed total global traffic")

    # -- algebra -----------------------------------------------------------
    def __add__(self, other: "PerfCounters") -> "PerfCounters":
        if not isinstance(other, PerfCounters):
            return NotImplemented
        return PerfCounters(
            flops=self.flops + other.flops,
            global_bytes_read=self.global_bytes_read + other.global_bytes_read,
            global_bytes_written=self.global_bytes_written + other.global_bytes_written,
            kernel_launches=self.kernel_launches + other.kernel_launches,
            smem_transactions=self.smem_transactions + other.smem_transactions,
            smem_ideal_transactions=self.smem_ideal_transactions
            + other.smem_ideal_transactions,
            syncthreads=self.syncthreads + other.syncthreads,
            l2_candidate_bytes=self.l2_candidate_bytes + other.l2_candidate_bytes,
        )

    def __iadd__(self, other: "PerfCounters") -> "PerfCounters":
        summed = self + other
        self.__dict__.update(summed.__dict__)
        return self

    # -- derived -----------------------------------------------------------
    @property
    def global_bytes(self) -> float:
        """Total DRAM traffic (read + write)."""
        return self.global_bytes_read + self.global_bytes_written

    @property
    def bank_utilization(self) -> float:
        """Shared-memory bank utilization in [0, 1] (1.0 if no smem use)."""
        if self.smem_transactions == 0:
            return 1.0
        return self.smem_ideal_transactions / self.smem_transactions

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per DRAM byte (inf for traffic-free work)."""
        if self.global_bytes == 0:
            return float("inf")
        return self.flops / self.global_bytes

    def scaled(self, factor: float) -> "PerfCounters":
        """Return counters scaled by ``factor`` (launches rounded)."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return PerfCounters(
            flops=self.flops * factor,
            global_bytes_read=self.global_bytes_read * factor,
            global_bytes_written=self.global_bytes_written * factor,
            kernel_launches=round(self.kernel_launches * factor),
            smem_transactions=self.smem_transactions * factor,
            smem_ideal_transactions=self.smem_ideal_transactions * factor,
            syncthreads=self.syncthreads * factor,
            l2_candidate_bytes=self.l2_candidate_bytes * factor,
        )

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"flops={self.flops:.3e} "
            f"dram_rd={self.global_bytes_read:.3e}B "
            f"dram_wr={self.global_bytes_written:.3e}B "
            f"launches={self.kernel_launches} "
            f"bank_util={self.bank_utilization:.2%}"
        )
