"""Kernel specification and roofline-style timing model.

A kernel in this model is a launch configuration plus the
:class:`~repro.gpu.counters.PerfCounters` it would retire.  Its execution
time follows the standard GPU reasoning the paper leans on throughout §5:

* the steady-state rate is the roofline ``max(compute, DRAM, shared-memory)``
  term, with shared memory derated by the measured bank utilization of the
  kernel's layouts (Figs. 7–8);
* grids are *wave quantized*: a device keeping ``active`` blocks resident
  runs a ``B``-block grid in ``ceil(B / active)`` waves, and a tail wave
  costs as much as a full one — the origin of the paper's "blue region"
  slowdowns at small batch × large hidden dimension (Fig. 14/19);
* each launch pays a fixed host overhead, which is what kernel fusion
  removes first;
* ``__syncthreads()`` barriers (one per k-tile in the fused kernel, §4.3)
  add a per-block serial term.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.counters import PerfCounters
from repro.gpu.device import DeviceSpec, Occupancy

__all__ = ["LaunchConfig", "KernelSpec", "KernelTiming", "kernel_time"]


@dataclass(frozen=True)
class LaunchConfig:
    """Grid geometry of one kernel launch."""

    blocks: int
    threads_per_block: int
    smem_per_block_bytes: int = 0

    def __post_init__(self) -> None:
        if self.blocks <= 0:
            raise ValueError(f"blocks must be positive, got {self.blocks}")
        if self.threads_per_block <= 0:
            raise ValueError("threads_per_block must be positive")
        if self.smem_per_block_bytes < 0:
            raise ValueError("smem_per_block_bytes must be non-negative")


@dataclass(frozen=True)
class KernelSpec:
    """One device kernel: geometry, retired work, and modelling knobs.

    Parameters
    ----------
    name:
        Label used in reports (e.g. ``"cufft_fwd"``, ``"fused_fft_gemm_ifft"``).
    launch:
        Grid geometry.
    counters:
        Work retired by the whole grid.
    compute_derate:
        Extra multiplicative slowdown on the compute leg, used for the
        paper's documented workflow penalties (e.g. the k-loop FFT variant's
        loss of L1 locality, §5.1 A.1).  1.0 = no penalty.
    memory_derate:
        Same for the DRAM leg (e.g. reduced coalescing of the (Y, HiddenDim)
        access pattern versus (X, Y)).
    phases:
        Optional intra-kernel phases.  A fused kernel's FFT, CGEMM and iFFT
        sections are separated by ``__syncthreads()`` barriers (Figure 9),
        so their roofline times *add* instead of overlapping; pass one
        :class:`PerfCounters` per phase and the timing model sums
        per-phase ``max(compute, dram, smem)`` legs.  When ``None``, the
        kernel is single-phase and ``counters`` is used directly.
        ``counters`` must always hold the kernel's totals (phases included)
        for traffic reporting.
    """

    name: str
    launch: LaunchConfig
    counters: PerfCounters
    compute_derate: float = 1.0
    memory_derate: float = 1.0
    phases: tuple[PerfCounters, ...] | None = None

    def __post_init__(self) -> None:
        if self.compute_derate < 1.0 or self.memory_derate < 1.0:
            raise ValueError("derates model slowdowns and must be >= 1.0")
        if self.phases is not None and len(self.phases) == 0:
            raise ValueError("phases must be None or non-empty")


@dataclass(frozen=True)
class KernelTiming:
    """Timing breakdown of one kernel on one device (seconds)."""

    compute_time: float
    dram_time: float
    smem_time: float
    sync_time: float
    steady_time: float
    wave_quantized_time: float
    launch_overhead: float
    occupancy: Occupancy

    @property
    def total(self) -> float:
        return self.wave_quantized_time + self.launch_overhead


def _wave_inflation(blocks: int, occ: Occupancy, device: DeviceSpec) -> float:
    """Slowdown factor from imperfect grid/device packing.

    The steady-state estimate assumes the whole device is busy.  The grid
    actually runs in waves of ``active = blocks_per_sm * num_sms`` blocks;
    full waves run at full rate, while the tail wave only keeps
    ``min(tail, num_sms)`` SMs busy — and an SM holding a *single*
    resident block loses some latency hiding
    (``single_block_sm_efficiency``).  This term produces the paper's
    "blue region": at small batch x large K the fused grid is too small
    to cover the device (§5.1 A.5).
    """
    active = occ.active_blocks
    full_waves, tail = divmod(blocks, active)

    def _sm_eff(resident: int) -> float:
        return 1.0 if resident >= 2 else device.single_block_sm_efficiency

    inflation = 0.0
    if full_waves:
        share = full_waves * active / blocks
        inflation += share / _sm_eff(occ.blocks_per_sm)
    if tail:
        sms_busy = min(tail, device.num_sms)
        resident = -(-tail // sms_busy)
        frac = (sms_busy / device.num_sms) * _sm_eff(min(resident, occ.blocks_per_sm))
        inflation += (tail / blocks) / frac
    return inflation


def kernel_time(spec: KernelSpec, device: DeviceSpec) -> KernelTiming:
    """Time one kernel on one device.

    The steady-state time is ``max(compute, dram, smem) + sync``; the
    result is then inflated by wave quantization
    (``waves / ideal_waves`` where ``ideal_waves = B / active``), which is
    >= 1 and equals 1 only for grids that tile the device exactly.
    """
    c = spec.counters
    occ = Occupancy.compute(
        device,
        spec.launch.blocks,
        spec.launch.threads_per_block,
        spec.launch.smem_per_block_bytes,
    )

    def _legs(pc: PerfCounters) -> tuple[float, float, float]:
        comp = pc.flops / device.effective_flops() * spec.compute_derate
        # L2 model: inter-stage intermediates whose working set fits the
        # cache are served at L2 bandwidth.  The working set is roughly
        # half the candidate traffic (each intermediate is written once
        # and read once).
        bw = device.effective_bandwidth()
        cand = min(pc.l2_candidate_bytes, pc.global_bytes)
        working_set = cand / 2.0
        hit = min(1.0, device.l2_bytes / working_set) if working_set > 0 else 0.0
        dram_bytes = (pc.global_bytes - cand) + cand * (1.0 - hit)
        dram = (
            dram_bytes / bw + cand * hit / (bw * device.l2_bandwidth_ratio)
        ) * spec.memory_derate
        # A 32-bank transaction moves banks * bank_bytes = 128 B; replays
        # are already folded into smem_transactions by the conflict model.
        smem_bytes = pc.smem_transactions * device.smem_banks * device.smem_bank_bytes
        smem_bw = device.effective_bandwidth() * device.smem_bandwidth_ratio
        return comp, dram, smem_bytes / smem_bw

    compute_time, dram_time, smem_time = _legs(c)
    syncs_per_block = c.syncthreads / spec.launch.blocks if spec.launch.blocks else 0.0
    sync_time = syncs_per_block * device.syncthreads_overhead_s * occ.waves
    if spec.phases is None:
        steady = max(compute_time, dram_time, smem_time) + sync_time
    else:
        # Barrier-separated phases serialise within each block: the fused
        # kernel's FFT cannot hide behind the CGEMM MACs of the same
        # iteration, so per-phase rooflines add.
        steady = sum(max(*_legs(pc)) for pc in spec.phases) + sync_time
    quantized = steady * _wave_inflation(spec.launch.blocks, occ, device)
    return KernelTiming(
        compute_time=compute_time,
        dram_time=dram_time,
        smem_time=smem_time,
        sync_time=sync_time,
        steady_time=steady,
        wave_quantized_time=quantized,
        launch_overhead=device.kernel_launch_overhead_s,
        occupancy=occ,
    )
