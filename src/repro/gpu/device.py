"""Device specification and occupancy model for an A100-class GPU.

The paper evaluates on an NVIDIA A100-PCIE-40GB (CUDA 12.4, FP32 CUDA cores
only — §3.1 explicitly excludes tensor cores).  The figures in §5 are
explained by the paper in terms of global-memory traffic, kernel-launch
overhead, shared-memory bank utilization and SM utilization ("the blue
regions ... correspond to small batch sizes and large K ... resulting in
suboptimal SM utilization").  :class:`DeviceSpec` captures exactly the device
quantities those arguments need, and :class:`Occupancy` implements the
standard CUDA occupancy calculation (blocks per SM limited by threads,
shared memory and registers, then wave quantization of the grid).

Numbers default to the public A100 datasheet values; they are parameters,
not magic constants, so tests can construct toy devices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

__all__ = ["DeviceSpec", "Occupancy", "A100_SPEC", "H100_SPEC"]


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a GPU used by the analytic execution model.

    Attributes mirror the public datasheet quantities the cost model needs.

    Parameters
    ----------
    name:
        Human-readable device name.
    num_sms:
        Number of streaming multiprocessors (A100: 108).
    fp32_tflops:
        Peak single-precision CUDA-core throughput in TFLOP/s (A100: 19.5).
    dram_bandwidth_gbs:
        Peak HBM bandwidth in GB/s (A100-40GB PCIE: 1555).
    smem_per_sm_bytes:
        Shared memory available per SM in bytes (A100: up to 164 KiB usable).
    max_threads_per_sm:
        Hardware thread limit per SM (A100: 2048).
    max_blocks_per_sm:
        Hardware resident-block limit per SM (A100: 32).
    warp_size:
        Threads per warp (32 on all NVIDIA parts).
    smem_banks:
        Number of shared-memory banks (32).
    smem_bank_bytes:
        Bank width in bytes (4).
    kernel_launch_overhead_s:
        Fixed host-side cost of one kernel launch.  ~3–5 µs is the commonly
        measured figure for CUDA on PCIe platforms; the paper's speedups at
        small problem sizes are dominated by this term.
    l2_bytes:
        L2 cache size in bytes (A100: 40 MiB).
    dram_efficiency:
        Achievable fraction of peak DRAM bandwidth for streaming kernels
        (~0.85 measured for well-coalesced FP32 streams).
    flop_efficiency:
        Achievable fraction of peak FLOP/s for hand-tuned CUDA-core kernels
        (~0.80 for the paper's cuBLAS-comparable CGEMM).
    smem_bandwidth_ratio:
        Aggregate shared-memory bandwidth as a multiple of DRAM bandwidth
        (A100: ~19.5 TB/s vs 1.555 TB/s ≈ 12.5x).  Bank conflicts divide
        the achievable fraction of this.
    syncthreads_overhead_s:
        Cost of one ``__syncthreads()`` barrier per resident block; the
        fused kernel adds one barrier per k-tile (§4.3).
    l2_bandwidth_ratio:
        L2 bandwidth as a multiple of DRAM bandwidth (A100: ~6 TB/s vs
        1.555 TB/s ≈ 4x).  Inter-stage tensors small enough to stay
        resident are served at this rate instead of DRAM.
    single_block_sm_efficiency:
        Throughput fraction an SM achieves with only one resident block
        (limited latency hiding); two or more resident blocks reach 1.0.
    """

    name: str = "A100-PCIE-40GB"
    num_sms: int = 108
    fp32_tflops: float = 19.5
    dram_bandwidth_gbs: float = 1555.0
    smem_per_sm_bytes: int = 164 * 1024
    max_threads_per_sm: int = 2048
    max_blocks_per_sm: int = 32
    warp_size: int = 32
    smem_banks: int = 32
    smem_bank_bytes: int = 4
    kernel_launch_overhead_s: float = 4.0e-6
    l2_bytes: int = 40 * 1024 * 1024
    dram_efficiency: float = 0.85
    flop_efficiency: float = 0.80
    smem_bandwidth_ratio: float = 12.5
    syncthreads_overhead_s: float = 3.0e-8
    l2_bandwidth_ratio: float = 4.0
    single_block_sm_efficiency: float = 0.7

    def __post_init__(self) -> None:
        if self.num_sms <= 0:
            raise ValueError(f"num_sms must be positive, got {self.num_sms}")
        if self.fp32_tflops <= 0 or self.dram_bandwidth_gbs <= 0:
            raise ValueError("throughput figures must be positive")
        if not (0 < self.dram_efficiency <= 1 and 0 < self.flop_efficiency <= 1):
            raise ValueError("efficiency factors must lie in (0, 1]")
        if self.warp_size <= 0 or self.smem_banks <= 0:
            raise ValueError("warp_size and smem_banks must be positive")

    # -- derived rates -----------------------------------------------------
    @property
    def flops_per_second(self) -> float:
        """Peak FP32 FLOP/s."""
        return self.fp32_tflops * 1e12

    @property
    def bytes_per_second(self) -> float:
        """Peak DRAM bytes/s."""
        return self.dram_bandwidth_gbs * 1e9

    def effective_flops(self) -> float:
        """Achievable FP32 FLOP/s after the kernel-efficiency derate."""
        return self.flops_per_second * self.flop_efficiency

    def effective_bandwidth(self) -> float:
        """Achievable DRAM bytes/s after the streaming-efficiency derate."""
        return self.bytes_per_second * self.dram_efficiency

    def with_(self, **kwargs) -> "DeviceSpec":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)


#: Default device used throughout the reproduction (paper's testbed).
A100_SPEC = DeviceSpec()

#: H100-SXM5-80GB-class device (datasheet values: 132 SMs, 67 TFLOP/s FP32
#: CUDA cores, 3.35 TB/s HBM3, 228 KiB usable shared memory per SM, 50 MiB
#: L2).  Not the paper's testbed — registered in :mod:`repro.api` so sweeps
#: can ask what the fusion ladder is worth on a newer part.
H100_SPEC = DeviceSpec(
    name="H100-SXM-80GB",
    num_sms=132,
    fp32_tflops=67.0,
    dram_bandwidth_gbs=3350.0,
    smem_per_sm_bytes=228 * 1024,
    l2_bytes=50 * 1024 * 1024,
)


@dataclass(frozen=True)
class Occupancy:
    """Occupancy of one kernel on one device.

    Produced by :meth:`Occupancy.compute`; consumed by the kernel timing
    model for wave quantization: a grid of ``B`` blocks on a device that can
    keep ``active_blocks`` resident runs in ``ceil(B / active_blocks)``
    *waves*, and the last partial wave still costs a full wave — this is what
    creates the paper's "blue region" slowdowns at small batch / large K.
    """

    blocks: int
    threads_per_block: int
    smem_per_block_bytes: int
    blocks_per_sm: int
    active_blocks: int
    waves: int
    sm_utilization: float

    @staticmethod
    def compute(
        device: DeviceSpec,
        blocks: int,
        threads_per_block: int,
        smem_per_block_bytes: int = 0,
    ) -> "Occupancy":
        """Standard CUDA occupancy calculation.

        ``blocks_per_sm`` is the minimum of the thread-limit, block-limit and
        shared-memory-limit quotas.  ``sm_utilization`` is the fraction of
        device-wide resident-block slots a *single full wave* of this grid
        fills — less than 1 when the grid is too small to cover the device.
        """
        if blocks <= 0:
            raise ValueError(f"grid must have at least one block, got {blocks}")
        if threads_per_block <= 0:
            raise ValueError("threads_per_block must be positive")
        if threads_per_block > device.max_threads_per_sm:
            raise ValueError(
                f"threads_per_block={threads_per_block} exceeds device limit "
                f"{device.max_threads_per_sm}"
            )
        if smem_per_block_bytes > device.smem_per_sm_bytes:
            raise ValueError(
                f"smem_per_block={smem_per_block_bytes} exceeds per-SM capacity "
                f"{device.smem_per_sm_bytes}"
            )
        by_threads = device.max_threads_per_sm // threads_per_block
        by_blocks = device.max_blocks_per_sm
        if smem_per_block_bytes > 0:
            by_smem = device.smem_per_sm_bytes // smem_per_block_bytes
        else:
            by_smem = by_blocks
        blocks_per_sm = max(1, min(by_threads, by_blocks, by_smem))
        active = blocks_per_sm * device.num_sms
        waves = math.ceil(blocks / active)
        # Utilization of the machine over the kernel's lifetime: the full
        # waves are perfectly packed, the tail wave is fractional.
        full_waves = blocks // active
        tail = blocks - full_waves * active
        occupied_slots = full_waves * active + tail
        sm_utilization = occupied_slots / (waves * active)
        return Occupancy(
            blocks=blocks,
            threads_per_block=threads_per_block,
            smem_per_block_bytes=smem_per_block_bytes,
            blocks_per_sm=blocks_per_sm,
            active_blocks=active,
            waves=waves,
            sm_utilization=sm_utilization,
        )
