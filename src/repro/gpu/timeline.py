"""Pipelines: ordered kernel sequences and their modelled totals.

A *pipeline* is what one forward Fourier layer costs under a given
implementation strategy: the PyTorch baseline is a five-kernel pipeline
(FFT, truncation copy, CGEMM, padding copy, iFFT); TurboFNO stage D is a
single fused kernel.  :class:`Pipeline` sums kernel timings and counters and
renders the comparison tables the benchmark harness prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.counters import PerfCounters
from repro.gpu.device import A100_SPEC, DeviceSpec
from repro.gpu.kernel import KernelSpec, KernelTiming, kernel_time

__all__ = ["Pipeline", "PipelineReport", "speedup_percent"]


@dataclass(frozen=True)
class PipelineReport:
    """Modelled execution summary of a pipeline on a device."""

    name: str
    total_time: float
    kernel_times: tuple[tuple[str, float], ...]
    counters: PerfCounters

    @property
    def launch_count(self) -> int:
        return self.counters.kernel_launches

    def breakdown(self) -> str:
        """Multi-line per-kernel time breakdown."""
        lines = [f"{self.name}: {self.total_time * 1e3:.4f} ms total"]
        for kname, t in self.kernel_times:
            lines.append(f"  {kname:<28s} {t * 1e3:.4f} ms")
        return "\n".join(lines)


@dataclass
class Pipeline:
    """An ordered sequence of kernels implementing one operator.

    Kernels execute back-to-back on one stream (the paper's pipelines are
    strictly dependent: each stage consumes the previous stage's output).
    """

    name: str
    kernels: list[KernelSpec] = field(default_factory=list)

    def add(self, kernel: KernelSpec) -> "Pipeline":
        """Append a kernel; returns self for chaining."""
        self.kernels.append(kernel)
        return self

    def counters(self) -> PerfCounters:
        """Summed counters, including one launch per kernel."""
        total = PerfCounters()
        for k in self.kernels:
            total += k.counters
            total += PerfCounters(kernel_launches=1)
        return total

    def timings(self, device: DeviceSpec = A100_SPEC) -> list[KernelTiming]:
        return [kernel_time(k, device) for k in self.kernels]

    def report(self, device: DeviceSpec = A100_SPEC) -> PipelineReport:
        """Model the pipeline on ``device``."""
        if not self.kernels:
            raise ValueError(f"pipeline {self.name!r} has no kernels")
        per = [(k.name, kernel_time(k, device).total) for k in self.kernels]
        return PipelineReport(
            name=self.name,
            total_time=sum(t for _, t in per),
            kernel_times=tuple(per),
            counters=self.counters(),
        )

    def total_time(self, device: DeviceSpec = A100_SPEC) -> float:
        return self.report(device).total_time


def speedup_percent(baseline_time: float, optimized_time: float) -> float:
    """Speedup of ``optimized`` over ``baseline`` in the paper's units.

    The paper reports "performance vs PyTorch (%)" where 0 % means parity
    and +150 % means 2.5x faster: ``(t_base / t_opt - 1) * 100``.
    """
    if optimized_time <= 0 or baseline_time <= 0:
        raise ValueError("times must be positive")
    return (baseline_time / optimized_time - 1.0) * 100.0
