"""Concrete shared-memory layouts from Figures 7 and 8 of the paper.

TurboFNO's fused kernel moves data between stages through shared memory
three times, and each hand-off has a layout problem:

1. **FFT butterfly write-back** (Fig. 7b/c) — after the final butterfly
   stage each thread holds eight complex outputs of one signal.  Writing
   them back naively lands every thread on the same bank pair (6.25 %
   utilization for the 16-thread/128-point case).  Adding a thread-id
   offset to the address (``addr += tid`` for the 16-point-per-thread case,
   ``addr += tid / 2`` for the 8-point case) restores 100 %.
2. **FFT → CGEMM forwarding** (Fig. 7a) — the VkFFT-style layout stores
   same-offset elements of different signals contiguously, which is
   conflict-free for the FFT itself but collides when CGEMM loads operand
   ``A`` column-major (25 % utilization; the static thread→bank map cannot
   be fixed by swizzling, only by wasteful padding).  TurboFNO instead
   stores each truncated signal contiguously (column-major ``A``), which is
   conflict-free for CGEMM and is made conflict-free for the FFT writes by
   the tid-offset swizzle above.
3. **CGEMM → iFFT epilogue** (Fig. 8) — each thread writes a 4×4 complex
   tile of ``C`` into shared memory; without swizzling threads 0/4/8/12
   collide (25 %), with an ``addr += threadIdx.x / 4`` offset utilization is
   100 %.

Every function below builds the *actual* per-thread word addresses and runs
them through :class:`~repro.gpu.sharedmem.SharedMemoryBankModel`, so the
paper's percentages are computed, not asserted.  Modelling note: warp
accesses are modelled one complex element per thread per instruction
(complex64 = two 4-byte words); the VkFFT interleave granularity defaults
to 4 (half-warp signal groups), which reproduces the paper's quoted 25 %
figure — a full 8-way interleave degrades further, to 12.5 %.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.sharedmem import AccessReport, SharedMemoryBankModel, WarpAccess

__all__ = [
    "LayoutAnalysis",
    "fft_writeback_accesses",
    "analyze_fft_writeback",
    "gemm_a_column_read_accesses",
    "analyze_fft_to_gemm_forward",
    "epilogue_writeback_accesses",
    "analyze_gemm_to_ifft_epilogue",
    "layout_is_injective",
]

_MODEL = SharedMemoryBankModel()


@dataclass(frozen=True)
class LayoutAnalysis:
    """Named bank-conflict analysis result."""

    name: str
    report: AccessReport

    @property
    def utilization(self) -> float:
        return self.report.utilization


# ---------------------------------------------------------------------------
# Fig. 7(b)/(c): FFT butterfly write-back
# ---------------------------------------------------------------------------

def fft_writeback_accesses(
    n_threads: int,
    elems_per_thread: int,
    thread_stride: int,
    offset_divisor: int | None,
) -> list[WarpAccess]:
    """Per-instruction accesses for the FFT final write-back.

    Thread ``t`` owns ``elems_per_thread`` consecutive complex outputs of
    one signal, whose base complex address is ``t * thread_stride``.
    Instruction ``j`` writes element ``j`` of every thread.  With
    ``offset_divisor = d`` the TurboFNO swizzle adds ``t // d`` complex
    elements to the address (``d = 1`` is the paper's ``addr += tid``,
    ``d = 2`` its ``addr += tid / 2``); ``None`` disables the swizzle.
    """
    if n_threads <= 0 or elems_per_thread <= 0 or thread_stride <= 0:
        raise ValueError("n_threads, elems_per_thread, thread_stride must be positive")
    if offset_divisor is not None and offset_divisor <= 0:
        raise ValueError("offset_divisor must be positive or None")
    accesses = []
    for j in range(elems_per_thread):
        lanes = []
        for t in range(n_threads):
            addr = t * thread_stride + j
            if offset_divisor is not None:
                addr += t // offset_divisor
            lanes.append([addr])
        accesses.append(WarpAccess.complex64(lanes))
    return accesses


def analyze_fft_writeback(
    case: str = "16pt", swizzled: bool = False
) -> LayoutAnalysis:
    """Analyze the two write-back cases of Figs. 7(b) and 7(c).

    ``case='16pt'`` is the 128-point FFT with 16 threads (each thread's
    signal segment 64 complex apart — a multiple of the bank period, hence
    the catastrophic 6.25 % without swizzling).  ``case='8pt'`` is the
    256-point FFT with 32 threads at an 8-complex thread stride, where
    neighbouring threads already avoid each other and the milder
    ``tid / 2`` offset suffices.
    """
    if case == "16pt":
        accs = fft_writeback_accesses(
            n_threads=16,
            elems_per_thread=8,
            thread_stride=64,
            offset_divisor=1 if swizzled else None,
        )
    elif case == "8pt":
        accs = fft_writeback_accesses(
            n_threads=32,
            elems_per_thread=8,
            thread_stride=8,
            offset_divisor=2 if swizzled else None,
        )
    else:
        raise ValueError(f"unknown case {case!r}; expected '16pt' or '8pt'")
    name = f"fft-writeback-{case}-{'swizzled' if swizzled else 'naive'}"
    return LayoutAnalysis(name, _MODEL.analyze(accs))


# ---------------------------------------------------------------------------
# Fig. 7(a): FFT -> CGEMM operand-A forwarding
# ---------------------------------------------------------------------------

def gemm_a_column_read_accesses(
    layout: str,
    m_s: int = 32,
    k_s: int = 8,
    vkfft_interleave: int = 4,
) -> list[WarpAccess]:
    """Warp accesses for CGEMM loading one ``A`` column from shared memory.

    A warp of ``m_s`` threads reads one column ``k`` of the ``m_s x k_s``
    complex ``A`` tile (thread ``t`` reads row ``m = t``).

    * ``layout='turbofno'`` — each signal (column) stored contiguously:
      ``addr(m, k) = k * m_s + m``.  Column reads are unit-stride.
    * ``layout='vkfft'`` — same-offset elements of ``vkfft_interleave``
      signals stored contiguously: ``addr(m, k) = m * I + (k % I) +
      (k // I) * m_s * I``.  Column reads stride by the interleave.
    """
    if m_s <= 0 or k_s <= 0:
        raise ValueError("m_s and k_s must be positive")
    accesses = []
    for k in range(k_s):
        lanes = []
        for t in range(m_s):
            if layout == "turbofno":
                addr = k * m_s + t
            elif layout == "vkfft":
                ileave = vkfft_interleave
                addr = t * ileave + (k % ileave) + (k // ileave) * m_s * ileave
            else:
                raise ValueError(f"unknown layout {layout!r}")
            lanes.append([addr])
        accesses.append(WarpAccess.complex64(lanes))
    return accesses


def analyze_fft_to_gemm_forward(layout: str) -> LayoutAnalysis:
    """Bank utilization of CGEMM's ``A``-column loads under a layout."""
    accs = gemm_a_column_read_accesses(layout)
    return LayoutAnalysis(f"fft-to-gemm-{layout}", _MODEL.analyze(accs))


# ---------------------------------------------------------------------------
# Fig. 8: CGEMM -> iFFT epilogue write-back
# ---------------------------------------------------------------------------

def epilogue_writeback_accesses(
    swizzled: bool,
    m_w: int = 32,
    n_w: int = 16,
    m_t: int = 4,
    n_t: int = 4,
    offset_divisor: int = 4,
    col_stride: int = 128,
) -> list[WarpAccess]:
    """Warp accesses for the CGEMM epilogue writing ``C`` into shared memory.

    The warp owns an ``m_w x n_w`` tile, each thread a ``m_t x n_t``
    sub-tile (Table 1: 32x16 warp tile, 4x4 thread tile, so threads are
    arranged 8 along ``m`` by 4 along ``n``, column-major:
    ``tm = t % 8, tn = t // 8``).  Instruction ``(i, j)`` writes element
    ``(m_t*tm + i, n_t*tn + j)`` at complex address
    ``(n_t*tn + j) * col_stride + m_t*tm + i``.  The swizzle adds
    ``t // offset_divisor`` (the paper's ``threadIdx.x / 4``).

    The destination is the ``sFFT[k_s x N_fft]`` buffer of Figure 9 — each
    column holds a full zero-padded iFFT input of length ``col_stride``
    (default 128), of which only the first ``m_w`` entries are GEMM results.
    The slack after the written prefix is the zero-padded high-frequency
    region, which is what gives the additive tid-offset room to stay
    injective without any padding overhead.
    """
    threads_m = m_w // m_t
    threads_n = n_w // n_t
    n_threads = threads_m * threads_n
    if n_threads != 32:
        raise ValueError(
            f"warp tiling {m_w}x{n_w} / {m_t}x{n_t} implies {n_threads} threads; "
            "expected a full 32-thread warp"
        )
    if col_stride < m_w + (n_threads - 1) // offset_divisor:
        raise ValueError(
            "col_stride too small for the swizzle offset to stay in-column"
        )
    accesses = []
    for j in range(n_t):
        for i in range(m_t):
            lanes = []
            for t in range(n_threads):
                tm = t % threads_m
                tn = t // threads_m
                addr = (n_t * tn + j) * col_stride + m_t * tm + i
                if swizzled:
                    addr += t // offset_divisor
                lanes.append([addr])
            accesses.append(WarpAccess.complex64(lanes))
    return accesses


def analyze_gemm_to_ifft_epilogue(swizzled: bool) -> LayoutAnalysis:
    """Bank utilization of the epilogue write (Fig. 8a vs 8b)."""
    accs = epilogue_writeback_accesses(swizzled)
    name = f"gemm-to-ifft-{'swizzled' if swizzled else 'naive'}"
    return LayoutAnalysis(name, _MODEL.analyze(accs))


# ---------------------------------------------------------------------------
# Layout sanity
# ---------------------------------------------------------------------------

def layout_is_injective(accesses: list[WarpAccess]) -> bool:
    """True if no two (thread, element) writes alias the same word address.

    A swizzle must be a *relabelling* of addresses, never a collision —
    otherwise data would be overwritten.  Used by tests to check that the
    tid-offset swizzles are valid layouts, not just conflict-free ones.
    """
    seen: set[int] = set()
    for acc in accesses:
        for lane in acc.word_addresses:
            for w in lane:
                if w in seen:
                    return False
                seen.add(w)
    return True
