"""Shared-memory bank model with exact conflict counting.

NVIDIA shared memory is organised as 32 banks of 4-byte words; successive
words map to successive banks.  When the threads of a warp issue a memory
instruction, the hardware services one word per bank per cycle, replaying
the instruction until every distinct word has been delivered (several
threads reading the *same* word are satisfied by one broadcast).

The paper's Figures 7 and 8 argue about *bank utilization*: the fraction of
the minimal (conflict-free) cycle count that the hardware actually achieves
for a given thread-to-address layout — 6.25 % for naive FFT writes, 25 % for
the VkFFT-style FFT→GEMM hand-off and the naive GEMM→iFFT epilogue, 100 %
for TurboFNO's swizzled layouts.  :class:`SharedMemoryBankModel` computes
those numbers from explicit word-address maps so the claims can be tested
exactly rather than asserted.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = [
    "WarpAccess",
    "SharedMemoryBankModel",
    "AccessReport",
    "StagingOccupancy",
]


@dataclass(frozen=True)
class WarpAccess:
    """One shared-memory instruction issued by a warp.

    ``word_addresses[t]`` lists the 4-byte word addresses touched by thread
    ``t`` for this instruction.  A thread accessing an 8-byte complex64 value
    touches two consecutive words.  Threads may touch zero words (inactive
    lanes).
    """

    word_addresses: tuple[tuple[int, ...], ...]

    @staticmethod
    def from_lists(addrs: Sequence[Sequence[int]]) -> "WarpAccess":
        return WarpAccess(tuple(tuple(int(a) for a in lane) for lane in addrs))

    @staticmethod
    def complex64(element_addresses: Sequence[Sequence[int]]) -> "WarpAccess":
        """Build an access from per-thread *complex-element* addresses.

        Each complex64 element at element-address ``e`` occupies words
        ``2e`` and ``2e + 1`` (8 bytes).
        """
        lanes = []
        for lane in element_addresses:
            words: list[int] = []
            for e in lane:
                words.extend((2 * int(e), 2 * int(e) + 1))
            lanes.append(tuple(words))
        return WarpAccess(tuple(lanes))

    @property
    def num_words(self) -> int:
        return sum(len(lane) for lane in self.word_addresses)


@dataclass(frozen=True)
class AccessReport:
    """Conflict analysis of one or more warp accesses.

    Attributes
    ----------
    ideal_cycles:
        Cycles a perfectly banked layout would need
        (``ceil(distinct_words / banks)`` per instruction, summed).
    actual_cycles:
        Cycles implied by the worst-loaded bank of each instruction.
    distinct_banks:
        Number of distinct banks touched across all instructions.
    """

    ideal_cycles: int
    actual_cycles: int
    distinct_banks: int
    num_banks: int

    @property
    def utilization(self) -> float:
        """Bank utilization in (0, 1]: ideal cycles / actual cycles."""
        if self.actual_cycles == 0:
            return 1.0
        return self.ideal_cycles / self.actual_cycles

    @property
    def conflict_degree(self) -> float:
        """Average replay factor (1.0 means conflict-free)."""
        if self.ideal_cycles == 0:
            return 1.0
        return self.actual_cycles / self.ideal_cycles


@dataclass(frozen=True)
class StagingOccupancy:
    """Occupancy of a fixed-capacity staging memory by one tile.

    The paper sizes its fused-kernel tiles so every live buffer — FFT
    ping-pong workspaces, the A/B panels and the C accumulator — stays
    resident in shared memory for the tile's whole lifetime; a tile
    whose working set exceeds the capacity spills and replays traffic
    from the next level down.  The same reasoning transfers to any
    staging memory with a hard capacity: GPU shared memory per SM, or a
    CPU core's last-level-cache slice under the compiled executors.
    :class:`repro.core.autotune` instantiates this model with the CPU
    cache budget to seed its tile search.

    ``occupancy`` is the fraction of the tile's working set the staging
    memory keeps resident (1.0 = the whole tile fits); ``spill_factor``
    is the implied traffic multiplier for the non-resident remainder.
    """

    capacity_bytes: int

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")

    def fits(self, working_set_bytes: int) -> bool:
        """Whether the whole working set stays resident."""
        return working_set_bytes <= self.capacity_bytes

    def occupancy(self, working_set_bytes: int) -> float:
        """Resident fraction of the working set, in (0, 1]."""
        if working_set_bytes <= self.capacity_bytes:
            return 1.0
        return self.capacity_bytes / working_set_bytes

    def spill_factor(self, working_set_bytes: int) -> float:
        """Traffic multiplier implied by the non-resident remainder
        (1.0 when the tile fits; grows with the spilled fraction)."""
        return 2.0 - self.occupancy(working_set_bytes)


class SharedMemoryBankModel:
    """Counts bank-conflict replays for explicit warp access patterns."""

    def __init__(self, num_banks: int = 32, bank_bytes: int = 4) -> None:
        if num_banks <= 0 or bank_bytes <= 0:
            raise ValueError("num_banks and bank_bytes must be positive")
        self.num_banks = num_banks
        self.bank_bytes = bank_bytes

    def bank_of_word(self, word_address: int) -> int:
        """Bank index of a 4-byte word address."""
        return word_address % self.num_banks

    def analyze_instruction(self, access: WarpAccess) -> AccessReport:
        """Analyze a single warp instruction.

        The hardware cost of one instruction is the maximum, over banks, of
        the number of *distinct* words requested in that bank (duplicate
        words broadcast for free).  The ideal cost spreads the same distinct
        words evenly over all banks.
        """
        words: set[int] = set()
        for lane in access.word_addresses:
            words.update(lane)
        if not words:
            return AccessReport(0, 0, 0, self.num_banks)
        per_bank: dict[int, set[int]] = defaultdict(set)
        for w in words:
            per_bank[self.bank_of_word(w)].add(w)
        actual = max(len(ws) for ws in per_bank.values())
        ideal = -(-len(words) // self.num_banks)  # ceil div
        return AccessReport(
            ideal_cycles=ideal,
            actual_cycles=actual,
            distinct_banks=len(per_bank),
            num_banks=self.num_banks,
        )

    def analyze(self, accesses: Iterable[WarpAccess]) -> AccessReport:
        """Analyze a sequence of warp instructions (costs add)."""
        ideal = actual = 0
        banks: set[int] = set()
        for acc in accesses:
            rep = self.analyze_instruction(acc)
            ideal += rep.ideal_cycles
            actual += rep.actual_cycles
            words = {w for lane in acc.word_addresses for w in lane}
            banks.update(self.bank_of_word(w) for w in words)
        return AccessReport(ideal, actual, len(banks), self.num_banks)
