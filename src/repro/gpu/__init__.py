"""GPU execution-model substrate.

The paper's artifact is a set of CUDA kernels measured on an NVIDIA A100.
This environment has no GPU, so ``repro.gpu`` provides an *analytic execution
model* of an A100-class device that the rest of the library compiles kernel
pipelines against:

* :mod:`repro.gpu.device` — device specification (SM count, FP32 throughput,
  DRAM bandwidth, shared-memory capacity, launch overhead) and occupancy math.
* :mod:`repro.gpu.sharedmem` — a 32-bank shared-memory model that counts bank
  conflicts for *actual* thread-to-address maps (used to validate the paper's
  Figure 7/8 swizzling claims exactly).
* :mod:`repro.gpu.swizzle` — the concrete data layouts from Figures 7 and 8.
* :mod:`repro.gpu.kernel` — kernel specifications and roofline-style timing.
* :mod:`repro.gpu.counters` — aggregated performance counters.
* :mod:`repro.gpu.timeline` — pipelines (kernel sequences) and totals.

The model deliberately counts the same quantities the paper reasons about:
global-memory bytes, butterfly/MAC FLOPs, kernel launches, shared-memory bank
utilization and SM wave quantization.
"""

from repro.gpu.counters import PerfCounters
from repro.gpu.device import A100_SPEC, H100_SPEC, DeviceSpec, Occupancy
from repro.gpu.kernel import KernelSpec, LaunchConfig, kernel_time
from repro.gpu.sharedmem import SharedMemoryBankModel, WarpAccess
from repro.gpu.timeline import Pipeline, PipelineReport

__all__ = [
    "A100_SPEC",
    "H100_SPEC",
    "DeviceSpec",
    "Occupancy",
    "KernelSpec",
    "LaunchConfig",
    "kernel_time",
    "PerfCounters",
    "SharedMemoryBankModel",
    "WarpAccess",
    "Pipeline",
    "PipelineReport",
]
