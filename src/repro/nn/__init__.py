"""Trainable Fourier Neural Operator substrate.

The paper's workload is the FNO of Li et al. [23]; this package provides a
NumPy implementation complete enough to *train* on the PDE workloads the
paper's introduction motivates (fluid dynamics, Darcy flow, Burgers), so
the fused spectral convolution is exercised end-to-end rather than in
isolation.

Everything is hand-differentiated — no autograd framework exists in this
environment — and every backward pass is finite-difference checked in the
test suite.

* :mod:`repro.nn.modules` — Dense (pointwise channel mixing), GELU, and
  SpectralConv1d/2d.  The spectral layers support both the original FNO's
  per-mode weights and the paper's shared-weight CGEMM formulation, and
  both frequency conventions (the paper's first-``modes`` bins, or the
  original FNO's symmetric ``±modes``).
* :mod:`repro.nn.fno` — FNO1d / FNO2d models (lift, Fourier blocks with
  pointwise residual paths, projection head).
* :mod:`repro.nn.optim` — Adam and SGD with complex-parameter support.
* :mod:`repro.nn.losses` — MSE and relative-L2 losses with gradients.
* :mod:`repro.nn.trainer` — a minimal minibatch training loop.
"""

from repro.nn.fno import FNO1d, FNO2d
from repro.nn.losses import mse_loss, relative_l2_loss
from repro.nn.modules import GELU, Dense, Module, SpectralConv1d, SpectralConv2d
from repro.nn.optim import SGD, Adam
from repro.nn.schedulers import CosineLR, StepLR, clip_grad_norm
from repro.nn.trainer import TrainingHistory, train

__all__ = [
    "Module",
    "Dense",
    "GELU",
    "SpectralConv1d",
    "SpectralConv2d",
    "FNO1d",
    "FNO2d",
    "Adam",
    "SGD",
    "StepLR",
    "CosineLR",
    "clip_grad_norm",
    "mse_loss",
    "relative_l2_loss",
    "train",
    "TrainingHistory",
]
