"""Losses with gradients.

Both return ``(loss_value, grad_wrt_prediction)`` so the training loop can
seed the backward pass directly.
"""

from __future__ import annotations

import numpy as np

__all__ = ["mse_loss", "relative_l2_loss"]


def mse_loss(pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean squared error over all elements."""
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    diff = pred - target
    n = diff.size
    return float(np.mean(diff**2)), (2.0 / n) * diff


def relative_l2_loss(
    pred: np.ndarray, target: np.ndarray, eps: float = 1e-12
) -> tuple[float, np.ndarray]:
    """Per-sample relative L2 error, averaged over the batch.

    The standard FNO metric: ``mean_b ||pred_b - target_b|| / ||target_b||``.
    """
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    batch = pred.shape[0]
    diff = (pred - target).reshape(batch, -1)
    tgt = target.reshape(batch, -1)
    diff_norm = np.sqrt(np.sum(diff**2, axis=1))
    tgt_norm = np.sqrt(np.sum(tgt**2, axis=1)) + eps
    loss = float(np.mean(diff_norm / tgt_norm))
    # d/dpred ||diff||/||tgt|| = diff / (||diff|| * ||tgt||), batch-averaged.
    denom = (np.maximum(diff_norm, eps) * tgt_norm)[:, None]
    grad = (diff / denom / batch).reshape(pred.shape)
    return loss, grad
