"""FNO models: lift -> Fourier blocks -> projection (Figure 1a).

Each Fourier block computes ``GELU(SpectralConv(v) + Dense(v))`` — the
spectral path plus the pointwise linear residual path of the original FNO.
The last block omits the activation, then a two-layer pointwise head
projects back to the output channels.
"""

from __future__ import annotations

import numpy as np

from repro.nn.modules import GELU, Dense, Module, SpectralConv1d, SpectralConv2d

__all__ = ["FourierBlock1d", "FourierBlock2d", "FNO1d", "FNO2d"]


class _FourierBlock(Module):
    """Spectral path + pointwise residual path (+ optional GELU)."""

    def __init__(self, spectral: Module, pointwise: Dense, activate: bool) -> None:
        self.spectral = spectral
        self.pointwise = pointwise
        self.act = GELU() if activate else None

    def forward(self, x: np.ndarray) -> np.ndarray:
        y = self.spectral(x) + self.pointwise(x)
        return self.act(y) if self.act is not None else y

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self.act is not None:
            grad = self.act.backward(grad)
        return self.spectral.backward(grad) + self.pointwise.backward(grad)


class FourierBlock1d(_FourierBlock):
    def __init__(self, width: int, modes: int, rng: np.random.Generator,
                 per_mode: bool = True, activate: bool = True) -> None:
        super().__init__(
            SpectralConv1d(width, width, modes, rng, per_mode=per_mode),
            Dense(width, width, rng, name="block.pointwise"),
            activate,
        )


class FourierBlock2d(_FourierBlock):
    def __init__(self, width: int, modes_x: int, modes_y: int,
                 rng: np.random.Generator, per_mode: bool = True,
                 activate: bool = True) -> None:
        super().__init__(
            SpectralConv2d(width, width, modes_x, modes_y, rng, per_mode=per_mode),
            Dense(width, width, rng, name="block.pointwise"),
            activate,
        )


class _FNOBase(Module):
    """Shared lift/blocks/projection plumbing for FNO1d and FNO2d."""

    def __init__(self, lift: Dense, blocks: list[Module], proj1: Dense,
                 proj2: Dense) -> None:
        self.lift = lift
        self.blocks = blocks
        self.proj1 = proj1
        self.proj_act = GELU()
        self.proj2 = proj2

    def forward(self, x: np.ndarray) -> np.ndarray:
        v = self.lift(x)
        for block in self.blocks:
            v = block(v)
        return self.proj2(self.proj_act(self.proj1(v)))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        g = self.proj1.backward(self.proj_act.backward(self.proj2.backward(grad)))
        for block in reversed(self.blocks):
            g = block.backward(g)
        return self.lift.backward(g)

    def num_parameters(self) -> int:
        """Total scalar parameter count (complex counts as two)."""
        total = 0
        for p in self.parameters():
            n = int(np.prod(p.value.shape))
            total += 2 * n if np.iscomplexobj(p.value) else n
        return total

    def spectral_layers(self):
        """The spectral convolution of each Fourier block, in order —
        the split step (:meth:`SpectralConv1d.spectrum` /
        ``apply_modes`` / ``from_spectrum``) a spectrum-resident loop
        hands state across."""
        for block in self.blocks:
            yield block.spectral

    @property
    def shape_preserving(self) -> bool:
        """True when the model maps a field to one of the same shape —
        the precondition :meth:`repro.api.Session.rollout` checks before
        feeding the output of one step back in as the next input."""
        return (self.lift.weight.value.shape[0]
                == self.proj2.weight.value.shape[1])


class FNO1d(_FNOBase):
    """1-D Fourier Neural Operator on ``(batch, in_channels, X)`` input.

    Parameters
    ----------
    in_channels / out_channels:
        Input/output field channels (e.g. 2 for value + coordinate).
    width:
        Hidden dimension (the paper's K; 64-128 typical).
    modes:
        Kept low-frequency bins per spectral layer.
    depth:
        Number of Fourier blocks.
    per_mode:
        Spectral weight convention; ``False`` is the paper's shared-matrix
        CGEMM form (executes through the fused TurboFNO operator).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        width: int = 32,
        modes: int = 16,
        depth: int = 4,
        proj_width: int = 64,
        per_mode: bool = True,
        seed: int = 0,
    ) -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        rng = np.random.default_rng(seed)
        blocks: list[Module] = [
            FourierBlock1d(width, modes, rng, per_mode=per_mode,
                           activate=(i < depth - 1))
            for i in range(depth)
        ]
        super().__init__(
            Dense(in_channels, width, rng, name="lift"),
            blocks,
            Dense(width, proj_width, rng, name="proj1"),
            Dense(proj_width, out_channels, rng, name="proj2"),
        )
        self.modes = modes
        self.width = width


class FNO2d(_FNOBase):
    """2-D Fourier Neural Operator on ``(batch, in_channels, X, Y)`` input."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        width: int = 24,
        modes_x: int = 8,
        modes_y: int = 8,
        depth: int = 4,
        proj_width: int = 64,
        per_mode: bool = True,
        seed: int = 0,
    ) -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        rng = np.random.default_rng(seed)
        blocks: list[Module] = [
            FourierBlock2d(width, modes_x, modes_y, rng, per_mode=per_mode,
                           activate=(i < depth - 1))
            for i in range(depth)
        ]
        super().__init__(
            Dense(in_channels, width, rng, name="lift"),
            blocks,
            Dense(width, proj_width, rng, name="proj1"),
            Dense(proj_width, out_channels, rng, name="proj2"),
        )
        self.modes_x = modes_x
        self.modes_y = modes_y
        self.width = width
