"""Minibatch training loop for the NumPy FNO.

Both entry points accept a :class:`repro.api.Session`: the loop then
runs under :meth:`~repro.api.Session.activate`, so every FFT/rfft plan
the spectral layers resolve comes from the session's caches and the
session's backend — injected configuration instead of the process-global
plan caches and ``REPRO_NO_CKERNELS`` ambient state.  Training numerics
are identical with or without a session (backends are bit-identical by
contract); the session only decides *where* plans live and *which*
executor substrate runs them.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.nn.losses import relative_l2_loss
from repro.nn.modules import Module

__all__ = ["TrainingHistory", "train", "evaluate"]

LossFn = Callable[[np.ndarray, np.ndarray], tuple[float, np.ndarray]]


def _session_scope(session):
    """The session's activation scope, or a no-op when unbound."""
    return session.activate() if session is not None else nullcontext()


@dataclass
class TrainingHistory:
    """Per-epoch train loss and (optional) test loss."""

    train_loss: list[float] = field(default_factory=list)
    test_loss: list[float] = field(default_factory=list)

    @property
    def final_train(self) -> float:
        if not self.train_loss:
            raise ValueError("no epochs recorded")
        return self.train_loss[-1]

    @property
    def final_test(self) -> float:
        if not self.test_loss:
            raise ValueError("no test evaluations recorded")
        return self.test_loss[-1]


def evaluate(
    model: Module,
    x: np.ndarray,
    y: np.ndarray,
    loss_fn: LossFn = relative_l2_loss,
    batch_size: int = 32,
    session=None,
) -> float:
    """Average loss over a dataset (no gradient accumulation).

    ``session`` (a :class:`repro.api.Session`) injects the plan caches
    and backend the model's spectral layers execute through.
    """
    total = 0.0
    count = 0
    with _session_scope(session):
        for b0 in range(0, x.shape[0], batch_size):
            xb = x[b0 : b0 + batch_size]
            yb = y[b0 : b0 + batch_size]
            loss, _ = loss_fn(model(xb), yb)
            total += loss * xb.shape[0]
            count += xb.shape[0]
    return total / max(count, 1)


def train(
    model: Module,
    optimizer,
    x_train: np.ndarray,
    y_train: np.ndarray,
    epochs: int,
    batch_size: int = 16,
    loss_fn: LossFn = relative_l2_loss,
    x_test: np.ndarray | None = None,
    y_test: np.ndarray | None = None,
    shuffle_seed: int = 0,
    verbose: bool = False,
    session=None,
) -> TrainingHistory:
    """Train ``model`` with ``optimizer``; returns the loss history.

    Data tensors are ``(n_samples, channels, *spatial)``.  When a test set
    is supplied it is evaluated after every epoch.  ``session`` (a
    :class:`repro.api.Session`) injects the plan caches and backend the
    model's spectral layers execute through for the whole run.
    """
    if x_train.shape[0] != y_train.shape[0]:
        raise ValueError("x_train and y_train disagree on sample count")
    if epochs <= 0 or batch_size <= 0:
        raise ValueError("epochs and batch_size must be positive")
    rng = np.random.default_rng(shuffle_seed)
    history = TrainingHistory()
    n = x_train.shape[0]
    with _session_scope(session):
        for epoch in range(epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            for b0 in range(0, n, batch_size):
                idx = order[b0 : b0 + batch_size]
                xb, yb = x_train[idx], y_train[idx]
                optimizer.zero_grad()
                pred = model(xb)
                loss, grad = loss_fn(pred, yb)
                model.backward(grad)
                optimizer.step()
                epoch_loss += loss * xb.shape[0]
            history.train_loss.append(epoch_loss / n)
            if x_test is not None and y_test is not None:
                history.test_loss.append(
                    evaluate(model, x_test, y_test, loss_fn)
                )
            if verbose:  # pragma: no cover - console output
                msg = (
                    f"epoch {epoch + 1}/{epochs}: "
                    f"train {history.train_loss[-1]:.4e}"
                )
                if history.test_loss:
                    msg += f"  test {history.test_loss[-1]:.4e}"
                print(msg)
    return history
