"""Optimizers with complex-parameter support.

Complex parameters (the spectral weights) are handled the PyTorch way:
first/second Adam moments are computed with ``|g|^2`` for the variance, so
a complex parameter behaves like its two real components sharing a
variance estimate.
"""

from __future__ import annotations

import numpy as np

from repro.nn.modules import Parameter

__all__ = ["SGD", "Adam"]


class SGD:
    """Plain stochastic gradient descent (optional momentum)."""

    def __init__(self, params: list[Parameter], lr: float = 1e-2,
                 momentum: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not (0.0 <= momentum < 1.0):
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.params = list(params)
        if not self.params:
            raise ValueError("no parameters to optimise")
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.value) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.value -= self.lr * v
            else:
                p.value -= self.lr * p.grad

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class Adam:
    """Adam (Kingma & Ba) with bias correction and complex support."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.params = list(params)
        if not self.params:
            raise ValueError("no parameters to optimise")
        self.lr = lr
        self.b1, self.b2 = b1, b2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.value) for p in self.params]
        self._v = [np.zeros(p.value.shape, dtype=np.float64) for p in self.params]

    def step(self) -> None:
        self._step += 1
        t = self._step
        bc1 = 1.0 - self.b1**t
        bc2 = 1.0 - self.b2**t
        for p, m, v in zip(self.params, self._m, self._v):
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.value
            m *= self.b1
            m += (1.0 - self.b1) * g
            v *= self.b2
            v += (1.0 - self.b2) * np.abs(g) ** 2
            m_hat = m / bc1
            v_hat = v / bc2
            p.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()
