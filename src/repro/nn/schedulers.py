"""Learning-rate schedules and gradient clipping.

The FNO reference training recipe uses Adam with step decay; cosine decay
is the common modern alternative.  Schedulers wrap an optimizer and mutate
its ``lr`` when stepped once per epoch.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.nn.modules import Parameter

__all__ = ["StepLR", "CosineLR", "clip_grad_norm"]


class StepLR:
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer, step_size: int, gamma: float = 0.5) -> None:
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        if not (0.0 < gamma <= 1.0):
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch; returns the new learning rate."""
        self.epoch += 1
        self.optimizer.lr = self.base_lr * self.gamma ** (
            self.epoch // self.step_size
        )
        return self.optimizer.lr


class CosineLR:
    """Cosine annealing from the base rate to ``min_lr`` over ``t_max``."""

    def __init__(self, optimizer, t_max: int, min_lr: float = 0.0) -> None:
        if t_max <= 0:
            raise ValueError(f"t_max must be positive, got {t_max}")
        if min_lr < 0:
            raise ValueError("min_lr must be non-negative")
        self.optimizer = optimizer
        self.t_max = t_max
        self.min_lr = min_lr
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        self.epoch += 1
        t = min(self.epoch, self.t_max)
        self.optimizer.lr = self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + math.cos(math.pi * t / self.t_max)
        )
        return self.optimizer.lr


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (complex gradients contribute |g|^2).
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    params = list(params)
    total = 0.0
    for p in params:
        total += float(np.sum(np.abs(p.grad) ** 2))
    norm = math.sqrt(total)
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for p in params:
            p.grad *= scale
    return norm
