"""Differentiable modules: Dense, GELU, SpectralConv1d/2d.

Gradients follow the PyTorch convention for complex parameters: the stored
gradient of a complex tensor ``z`` is ``dL/dRe(z) + i * dL/dIm(z)``, so
for a C-linear map ``y = A x`` the input cotangent is ``A^H g_y`` and the
weight cotangent is ``conj(x) g_y``.  The adjoint of "truncate-to-modes
after FFT" is "zero-pad then (unnormalised) inverse FFT", which is why the
backward passes below reuse the *pruned* transforms of
:mod:`repro.fft.pruned` — TurboFNO's built-in truncation/padding
accelerates training's backward pass for free.

All forward spectral math goes through this package's own FFTs, never
``numpy.fft``.
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

from repro.core.fused import fused_fft_gemm_ifft_1d, fused_fft_gemm_ifft_2d
from repro.fft.pruned import padded_ifft_auto as _pad_ifft
from repro.fft.pruned import truncated_fft_auto as _trunc_fft
from repro.fft.real import irfft, padded_irfft, rfft, truncated_rfft
from repro.fft.stockham import is_power_of_two

__all__ = ["Parameter", "Module", "Dense", "GELU", "SpectralConv1d", "SpectralConv2d"]


def _prunable(n: int, modes: int) -> bool:
    """True when the pruned transforms apply (power-of-two mode count
    dividing the grid).  Otherwise the layers fall back to full transforms
    plus slicing — numerically identical, just without the work savings."""
    return is_power_of_two(modes) and modes <= n


def _trunc_rfft(x: np.ndarray, modes: int, axis: int) -> np.ndarray:
    """First ``modes`` bins of the half spectrum.

    Routed through the pruned-R2C plan family
    (:func:`repro.fft.real.truncated_rfft`) whenever the truncation is
    genuine (``modes < n//2 + 1``): truncation is fused into the
    packed-real decomposition, so the discarded bins are never
    recombined.  Otherwise the full compiled R2C plan runs (and at
    ``modes == n//2 + 1`` the pruned plan *is* that plan, bit-exactly).
    """
    n = x.shape[axis]
    if is_power_of_two(n) and modes <= n // 2 + 1:
        return truncated_rfft(x, modes, axis=axis)
    sl = [slice(None)] * x.ndim
    sl[axis] = slice(0, modes)
    return rfft(x, axis=axis)[tuple(sl)]


def _pad_irfft(yk: np.ndarray, n_out: int, axis: int) -> np.ndarray:
    """Real signal from a truncated half spectrum: ``yk`` supplies the
    first bins of the ``n_out//2 + 1`` half spectrum.  The pruned C2R
    plan (:func:`repro.fft.real.padded_irfft`) synthesises straight
    from the kept bins — neither the Hermitian completion nor the
    zero-padded half spectrum is ever built."""
    if is_power_of_two(n_out) and yk.shape[axis] <= n_out // 2 + 1:
        return padded_irfft(yk, n_out, axis=axis)
    shape = list(yk.shape)
    shape[axis] = n_out // 2 + 1
    padded = np.zeros(shape, dtype=yk.dtype)
    sl = [slice(None)] * yk.ndim
    sl[axis] = slice(0, yk.shape[axis])
    padded[tuple(sl)] = yk
    return irfft(padded, n_out, axis=axis)


class Parameter:
    """A learnable array with an accumulated gradient."""

    def __init__(self, value: np.ndarray, name: str = "param") -> None:
        self.value = np.asarray(value)
        self.grad = np.zeros_like(self.value)
        self.name = name

    def zero_grad(self) -> None:
        self.grad[...] = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter({self.name}, shape={self.value.shape})"


class Module:
    """Minimal layer interface: ``forward`` caches, ``backward`` consumes.

    ``backward`` must be called after ``forward`` with the cotangent of the
    forward output; it accumulates parameter gradients and returns the
    cotangent of the forward input.
    """

    def parameters(self) -> Iterator[Parameter]:
        for v in vars(self).values():
            if isinstance(v, Parameter):
                yield v
            elif isinstance(v, Module):
                yield from v.parameters()
            elif isinstance(v, (list, tuple)):
                for item in v:
                    if isinstance(item, Module):
                        yield from item.parameters()

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class Dense(Module):
    """Pointwise channel mixing: ``y[b, o, *s] = sum_i x[b, i, *s] W[i, o] + b[o]``.

    Works on any number of trailing spatial axes; this is both the FNO's
    lifting/projection layer and the per-block pointwise residual path.
    """

    def __init__(self, c_in: int, c_out: int, rng: np.random.Generator,
                 name: str = "dense") -> None:
        if c_in <= 0 or c_out <= 0:
            raise ValueError("channel counts must be positive")
        scale = math.sqrt(2.0 / (c_in + c_out))
        self.weight = Parameter(
            rng.normal(0.0, scale, size=(c_in, c_out)), f"{name}.weight"
        )
        self.bias = Parameter(np.zeros(c_out), f"{name}.bias")
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim < 2 or x.shape[1] != self.weight.value.shape[0]:
            raise ValueError(
                f"expected (batch, {self.weight.value.shape[0]}, ...), got {x.shape}"
            )
        self._x = x
        y = np.einsum("bi...,io->bo...", x, self.weight.value)
        bias = self.bias.value.reshape(1, -1, *([1] * (x.ndim - 2)))
        return y + bias

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        x = self._x
        spatial_axes = tuple(range(2, x.ndim))
        x2 = x.reshape(x.shape[0], x.shape[1], -1)
        g2 = grad.reshape(grad.shape[0], grad.shape[1], -1)
        self.weight.grad += np.einsum("bis,bos->io", x2, g2)
        self.bias.grad += grad.sum(axis=(0, *spatial_axes))
        return np.einsum("bo...,io->bi...", grad, self.weight.value)


class GELU(Module):
    """GELU activation (tanh approximation, as in the FNO reference code)."""

    _C = math.sqrt(2.0 / math.pi)

    def __init__(self) -> None:
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        inner = self._C * (x + 0.044715 * x**3)
        return 0.5 * x * (1.0 + np.tanh(inner))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        x = self._x
        inner = self._C * (x + 0.044715 * x**3)
        t = np.tanh(inner)
        d_inner = self._C * (1.0 + 3 * 0.044715 * x**2)
        dgelu = 0.5 * (1.0 + t) + 0.5 * x * (1.0 - t**2) * d_inner
        return grad * dgelu


def _init_spectral_weight(
    c_in: int, c_out: int, mode_shape: tuple[int, ...],
    per_mode: bool, rng: np.random.Generator,
) -> np.ndarray:
    scale = 1.0 / (c_in * c_out)
    shape = (c_in, c_out, *mode_shape) if per_mode else (c_in, c_out)
    re = rng.uniform(-scale, scale, size=shape)
    im = rng.uniform(-scale, scale, size=shape)
    return (re + 1j * im).astype(np.complex128)


class SpectralConv1d(Module):
    """1-D spectral convolution (the paper's Fourier layer) on real input.

    Forward: ``y = Re(iFFT(pad(W * truncate(FFT(x)))))`` with the paper's
    filter convention (first ``modes`` bins of the C2C transform).

    Parameters
    ----------
    per_mode:
        ``True`` (default) gives the original FNO's independent weight
        matrix per kept mode; ``False`` shares one ``(C_in, C_out)`` matrix
        across modes — the single tall-and-skinny CGEMM the paper
        benchmarks (§3.1), which lets the forward pass dispatch to the
        fused TurboFNO operator.
    symmetric:
        ``False`` (default) is the paper's filter: keep the *first*
        ``modes`` bins of the C2C transform.  ``True`` is the original
        FNO's convention: the kept low modes are Hermitian-mirrored into
        the negative frequencies (the rfft/irfft formulation), so the
        layer is a genuine real->real low-pass operator.  Requires
        ``modes <= X/2``.  The symmetric path consumes half spectra
        end-to-end through the compiled packed-real R2C/C2R plans
        (:mod:`repro.fft.real`) — half the FFT butterfly work of the
        former full-C2C formulation; ``per_mode=False`` dispatches to
        the compiled :class:`repro.core.compiled.CompiledSpectralConv1D`
        symmetric executor (shared-weight CGEMM on the half spectrum).
    """

    def __init__(
        self,
        c_in: int,
        c_out: int,
        modes: int,
        rng: np.random.Generator,
        per_mode: bool = True,
        symmetric: bool = False,
        name: str = "spectral1d",
    ) -> None:
        if min(c_in, c_out, modes) <= 0:
            raise ValueError("c_in, c_out and modes must be positive")
        self.c_in = c_in
        self.c_out = c_out
        self.modes = modes
        self.per_mode = per_mode
        self.symmetric = symmetric
        self.weight = Parameter(
            _init_spectral_weight(c_in, c_out, (modes,), per_mode, rng),
            f"{name}.weight",
        )
        self._xk: np.ndarray | None = None
        self._dim_x: int = 0

    # -- spectral-step split --------------------------------------------
    # The three stages of the Fourier layer as separate entry points, so
    # a spectrum-resident rollout (repro.api.Session.rollout) can hand
    # the truncated spectrum from one step to the next without paying
    # the inverse/forward transform pair in between.  ``forward`` is
    # exactly ``from_spectrum(apply_modes(spectrum(x)), X)`` on the
    # non-executor paths.

    def spectrum(self, x: np.ndarray) -> np.ndarray:
        """Truncated spectrum of ``x`` under this layer's convention."""
        if self.symmetric:
            return np.ascontiguousarray(_trunc_rfft(x, self.modes, axis=-1))
        return _trunc_fft(x, self.modes, axis=-1)

    def apply_modes(self, xk: np.ndarray) -> np.ndarray:
        """Apply the layer weight to a truncated spectrum — the step
        that stays resident in the spectrum across rollout steps."""
        if self.per_mode:
            return np.einsum("bim,iom->bom", xk, self.weight.value)
        return np.einsum("bim,io->bom", xk, self.weight.value)

    def from_spectrum(self, yk: np.ndarray, n_out: int) -> np.ndarray:
        """Spatial-domain output from a truncated output spectrum."""
        if self.symmetric:
            return _pad_irfft(yk, n_out, axis=-1)
        return _pad_ifft(yk, n_out, axis=-1).real

    def reanalyze_spectrum(self, yk: np.ndarray, n_out: int = 0) -> np.ndarray:
        """The output spectrum as the next step's ``spectrum`` would see
        it.  The skipped irfft->rfft pair is not the identity: the real
        synthesis discards Im(DC), so reanalysis projects the DC bin
        real.  Only the symmetric convention has a spectrum-resident
        form — the non-symmetric layer takes ``.real`` in the spatial
        domain, which mixes every bin."""
        if not self.symmetric:
            raise ValueError(
                "non-symmetric SpectralConv1d has no spectrum-resident "
                "reanalysis (the spatial .real projection mixes bins); "
                "use the exact rollout profile"
            )
        yk = np.asarray(yk).copy()
        yk[..., 0] = yk[..., 0].real
        return yk

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 3 or x.shape[1] != self.c_in:
            raise ValueError(f"expected (batch, {self.c_in}, X), got {x.shape}")
        dim_x = x.shape[2]
        if self.modes > dim_x:
            raise ValueError(f"modes={self.modes} exceeds spatial size {dim_x}")
        if self.symmetric and self.modes > dim_x // 2:
            raise ValueError(
                f"symmetric filtering needs modes <= X/2, got {self.modes} "
                f"on a length-{dim_x} grid"
            )
        self._dim_x = dim_x
        if self.symmetric:
            # Original-FNO convention on the half spectrum: the compiled
            # R2C plan replaces "full C2C then mirror-and-double".  The
            # copy drops the full-half-spectrum base the slice would
            # otherwise pin until backward.
            xk = self.spectrum(x)
            self._xk = xk
            if not self.per_mode:
                # One CGEMM shared across modes -> the compiled
                # symmetric executor (panel CGEMM on the half spectrum,
                # fed the spectrum already cached for backward).  Built
                # per call: the optimizer mutates the weight buffer
                # between steps, so held staging would go stale — same
                # tradeoff as the fused functional path below.
                from repro.core.compiled import CompiledSpectralConv1D

                conv = CompiledSpectralConv1D(
                    self.weight.value, self.modes, symmetric=True
                )
                return np.ascontiguousarray(conv(x, xk_trunc=xk))
            return self.from_spectrum(self.apply_modes(xk), dim_x)
        if not self.per_mode and _prunable(dim_x, self.modes):
            # The paper's formulation: one CGEMM shared across modes ->
            # use the fused FFT-CGEMM-iFFT dataflow directly.
            self._xk = self.spectrum(x)
            y = fused_fft_gemm_ifft_1d(x, self.weight.value, self.modes)
            return np.ascontiguousarray(y.real)
        xk = self.spectrum(x)
        self._xk = xk
        return self.from_spectrum(self.apply_modes(xk), dim_x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._xk is None:
            raise RuntimeError("backward called before forward")
        dim_x = self._dim_x
        if self.symmetric:
            # y = irfft(pad(yk)) => g_yk = (2/N) rfft(grad) with the DC
            # bin un-doubled (it is never mirrored).
            g_yk = _trunc_rfft(grad, self.modes, axis=-1)
            g_yk *= 2.0 / dim_x
            g_yk[..., 0] *= 0.5
        else:
            # y = Re(ifft(pad(yk))) => g_yk = truncate(fft(grad)) / N.
            g_yk = _trunc_fft(grad, self.modes, axis=-1) / dim_x
        if self.per_mode:
            self.weight.grad += np.einsum("bim,bom->iom", np.conj(self._xk), g_yk)
            g_xk = np.einsum("bom,iom->bim", g_yk, np.conj(self.weight.value))
        else:
            self.weight.grad += np.einsum("bim,bom->io", np.conj(self._xk), g_yk)
            g_xk = np.einsum("bom,io->bim", g_yk, np.conj(self.weight.value))
        if self.symmetric:
            # xk = rfft(x)[..:m], x real => the R2C adjoint: halve every
            # bin except DC, then the (unnormalised) C2R inverse.
            g_xk *= 0.5
            g_xk[..., 0] *= 2.0
            return _pad_irfft(g_xk, dim_x, axis=-1) * dim_x
        # xk = truncate(fft(x)), x real => g_x = Re(N * ifft(pad(g_xk))).
        g_x = _pad_ifft(g_xk, dim_x, axis=-1).real * dim_x
        return g_x


class SpectralConv2d(Module):
    """2-D spectral convolution on real ``(batch, C_in, X, Y)`` input.

    Same conventions as :class:`SpectralConv1d`, with a rectangular
    ``modes_x x modes_y`` low-frequency filter.

    ``symmetric=True`` is the rfft2-style half-spectrum convention: the
    last axis transforms through the compiled R2C plan (Hermitian
    symmetry along Y), the X axis keeps the paper's first-bins C2C
    filter, and the output is reconstructed with the C2R inverse — a
    real->real operator whose half spectrum is consumed end-to-end.
    Requires ``modes_y <= Y/2``.
    """

    def __init__(
        self,
        c_in: int,
        c_out: int,
        modes_x: int,
        modes_y: int,
        rng: np.random.Generator,
        per_mode: bool = True,
        symmetric: bool = False,
        name: str = "spectral2d",
    ) -> None:
        if min(c_in, c_out, modes_x, modes_y) <= 0:
            raise ValueError("channels and modes must be positive")
        self.c_in = c_in
        self.c_out = c_out
        self.modes_x = modes_x
        self.modes_y = modes_y
        self.per_mode = per_mode
        self.symmetric = symmetric
        self.weight = Parameter(
            _init_spectral_weight(c_in, c_out, (modes_x, modes_y), per_mode, rng),
            f"{name}.weight",
        )
        self._xk: np.ndarray | None = None
        self._shape: tuple[int, int] = (0, 0)

    def _truncate_fft2(self, x: np.ndarray) -> np.ndarray:
        if self.symmetric:
            xk = _trunc_rfft(x, self.modes_y, axis=3)
            return _trunc_fft(xk, self.modes_x, axis=2)
        xk = _trunc_fft(x, self.modes_x, axis=2)
        return _trunc_fft(xk, self.modes_y, axis=3)

    def _pad_ifft2(self, yk: np.ndarray, dim_x: int, dim_y: int) -> np.ndarray:
        y = _pad_ifft(yk, dim_y, axis=3)
        return _pad_ifft(y, dim_x, axis=2)

    def _pad_irfft2(self, yk: np.ndarray, dim_x: int, dim_y: int) -> np.ndarray:
        y = _pad_ifft(yk, dim_x, axis=2)
        return _pad_irfft(y, dim_y, axis=3)

    # -- spectral-step split (see SpectralConv1d) -----------------------

    def spectrum(self, x: np.ndarray) -> np.ndarray:
        """Truncated spectrum corner of ``x`` under this layer's
        convention."""
        if self.symmetric:
            # contiguous copy: the fallback truncation path can return a
            # view pinning the full spectrum until backward
            return np.ascontiguousarray(self._truncate_fft2(x))
        return self._truncate_fft2(x)

    def apply_modes(self, xk: np.ndarray) -> np.ndarray:
        """Apply the layer weight to a truncated spectrum corner."""
        if self.per_mode:
            return np.einsum("bimn,iomn->bomn", xk, self.weight.value)
        return np.einsum("bimn,io->bomn", xk, self.weight.value)

    def from_spectrum(self, yk: np.ndarray, shape) -> np.ndarray:
        """Spatial-domain output from a truncated output spectrum."""
        dim_x, dim_y = int(shape[0]), int(shape[1])
        if self.symmetric:
            return self._pad_irfft2(yk, dim_x, dim_y)
        return self._pad_ifft2(yk, dim_x, dim_y).real

    def reanalyze_spectrum(self, yk: np.ndarray, shape) -> np.ndarray:
        """The output spectrum corner as the next step's ``spectrum``
        would see it.  The skipped C2R/R2C pair along Y projects the
        y-DC plane real in the spatial domain; re-analysis along X then
        Hermitian-symmetrises that column's X-spectrum (over the padded
        X length, truncated back to the kept corner).  Non-symmetric
        layers have no spectrum-resident form (spatial ``.real``)."""
        if not self.symmetric:
            raise ValueError(
                "non-symmetric SpectralConv2d has no spectrum-resident "
                "reanalysis (the spatial .real projection mixes bins); "
                "use the exact rollout profile"
            )
        from repro.core.compiled import _project_herm_x

        return _project_herm_x(np.asarray(yk), int(shape[0]))

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.c_in:
            raise ValueError(f"expected (batch, {self.c_in}, X, Y), got {x.shape}")
        dim_x, dim_y = x.shape[2], x.shape[3]
        if self.modes_x > dim_x or self.modes_y > dim_y:
            raise ValueError("modes exceed the spatial grid")
        if self.symmetric and self.modes_y > dim_y // 2:
            raise ValueError(
                f"symmetric filtering needs modes_y <= Y/2, got "
                f"{self.modes_y} on a length-{dim_y} grid"
            )
        self._shape = (dim_x, dim_y)
        if self.symmetric:
            xk = self.spectrum(x)
            self._xk = xk
            if not self.per_mode:
                from repro.core.compiled import CompiledSpectralConv2D

                conv = CompiledSpectralConv2D(
                    self.weight.value, self.modes_x, self.modes_y,
                    symmetric=True,
                )
                return np.ascontiguousarray(conv(x, xk_trunc=xk))
            return self.from_spectrum(self.apply_modes(xk), (dim_x, dim_y))
        if not self.per_mode:
            self._xk = self.spectrum(x)
            y = fused_fft_gemm_ifft_2d(x, self.weight.value, self.modes_x,
                                       self.modes_y)
            return np.ascontiguousarray(y.real)
        xk = self.spectrum(x)
        self._xk = xk
        return self.from_spectrum(self.apply_modes(xk), (dim_x, dim_y))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._xk is None:
            raise RuntimeError("backward called before forward")
        dim_x, dim_y = self._shape
        n_total = dim_x * dim_y
        if self.symmetric:
            # y = irfft_y(ifft_x(pad(yk))) => the Y adjoint doubles every
            # kept bin except DC, the X adjoint is the plain 1/X FFT.
            g_f = _trunc_rfft(grad, self.modes_y, axis=3)
            g_f *= 2.0 / dim_y
            g_f[..., 0] *= 0.5
            g_yk = _trunc_fft(g_f, self.modes_x, axis=2) / dim_x
        else:
            g_yk = self._truncate_fft2(grad) / n_total
        if self.per_mode:
            self.weight.grad += np.einsum(
                "bimn,bomn->iomn", np.conj(self._xk), g_yk
            )
            g_xk = np.einsum("bomn,iomn->bimn", g_yk, np.conj(self.weight.value))
        else:
            self.weight.grad += np.einsum("bimn,bomn->io", np.conj(self._xk), g_yk)
            g_xk = np.einsum("bomn,io->bimn", g_yk, np.conj(self.weight.value))
        if self.symmetric:
            # xk = fft_x(rfft_y(x))[kept corner]: adjoint = X * ifft_x on
            # the padded corner, then the halved-bins C2R inverse * Y.
            t = _pad_ifft(g_xk, dim_x, axis=2) * dim_x
            t *= 0.5
            t[..., 0] *= 2.0
            return _pad_irfft(t, dim_y, axis=3) * dim_y
        return self._pad_ifft2(g_xk, dim_x, dim_y).real * n_total
