"""Custom complex-GEMM (CGEMM) substrate.

TurboFNO writes its own CUDA-core CGEMM (no tensor cores, §3.1) so the FFT
can be fused into the k-loop.  This package is the NumPy analogue:

* :mod:`repro.gemm.params` — the templated kernel parameters of Table 1
  (``m_tb, n_tb, k_tb, m_w, n_w, m_t, n_t``) with validation and derived
  geometry (threads per block, shared-memory footprint, grid size).
* :mod:`repro.gemm.blocked` — a hierarchical tiled CGEMM that walks the
  same thread-block / warp / thread decomposition as Figure 3 (left) and is
  numerically exact against ``A @ B``.
* :mod:`repro.gemm.traffic` — the global/shared-memory traffic and FLOP
  model of the blocked kernel, feeding the execution model.
"""

from repro.gemm.blocked import blocked_cgemm
from repro.gemm.params import (
    GemmParams,
    TABLE1_CGEMM,
    SECT31_CGEMM,
    SECT51_CGEMM,
)
from repro.gemm.traffic import gemm_counters, gemm_flops

__all__ = [
    "GemmParams",
    "TABLE1_CGEMM",
    "SECT31_CGEMM",
    "SECT51_CGEMM",
    "blocked_cgemm",
    "gemm_counters",
    "gemm_flops",
]
