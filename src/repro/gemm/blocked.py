"""Hierarchical tiled CGEMM, numerically exact against ``A @ B``.

The kernel structure follows Figure 3 (left) and the left column of the
Figure 9 pseudocode: the grid tiles ``C`` into ``m_tb x n_tb`` blocks; each
block marches over K in ``k_tb`` slices, staging A/B panels through
(double-buffered) shared memory; warps own ``m_w x n_w`` sub-tiles and
threads accumulate ``m_t x n_t`` register fragments.

On a GPU every level is parallel hardware; here the block/k loops are
Python loops and the warp/thread levels are a single vectorized
``einsum`` per k-slice — same dataflow, same operand tiles, same traffic
(accounted in :mod:`repro.gemm.traffic`), exact numerics.

``tile_schedule`` exposes the per-level decomposition so tests can check
the hierarchy covers the output exactly once (the GPU analogue of "no two
thread blocks write the same C element").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.dtypes import complex_dtype_for
from repro.gemm.params import GemmParams, TABLE1_CGEMM

__all__ = ["blocked_cgemm", "tile_schedule", "TileAssignment"]


@dataclass(frozen=True)
class TileAssignment:
    """One thread-block's output tile and its warp decomposition."""

    block: tuple[int, int]
    rows: tuple[int, int]  # [start, stop) in M
    cols: tuple[int, int]  # [start, stop) in N
    warp_tiles: tuple[tuple[int, int, int, int], ...]  # (r0, r1, c0, c1)


def tile_schedule(m: int, n: int, params: GemmParams) -> Iterator[TileAssignment]:
    """Yield the thread-block tiling of an ``m x n`` output.

    Edge tiles are clipped (the kernel's predicated loads/stores).
    """
    for bi in range(-(-m // params.m_tb)):
        r0 = bi * params.m_tb
        r1 = min(r0 + params.m_tb, m)
        for bj in range(-(-n // params.n_tb)):
            c0 = bj * params.n_tb
            c1 = min(c0 + params.n_tb, n)
            warps = []
            for wi in range(params.m_tb // params.m_w):
                for wj in range(params.n_tb // params.n_w):
                    wr0 = r0 + wi * params.m_w
                    wc0 = c0 + wj * params.n_w
                    if wr0 >= r1 or wc0 >= c1:
                        continue
                    warps.append(
                        (wr0, min(wr0 + params.m_w, r1), wc0, min(wc0 + params.n_w, c1))
                    )
            yield TileAssignment((bi, bj), (r0, r1), (c0, c1), tuple(warps))


def blocked_cgemm(
    a: np.ndarray,
    b: np.ndarray,
    params: GemmParams = TABLE1_CGEMM,
    alpha: complex = 1.0,
    beta: complex = 0.0,
    c: np.ndarray | None = None,
) -> np.ndarray:
    """Compute ``alpha * (A @ B) + beta * C`` with the blocked schedule.

    Parameters
    ----------
    a, b:
        Complex operands of shape ``(M, K)`` and ``(K, N)``.
    params:
        Tiling configuration (defaults to Table 1).
    alpha, beta, c:
        Standard GEMM epilogue; ``c`` is required when ``beta != 0`` and is
        never modified in place.

    Returns
    -------
    The ``(M, N)`` result, same precision class as the inputs
    (complex64 stays complex64).
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError(f"operands must be 2-D, got {a.shape} and {b.shape}")
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise ValueError(f"inner dimensions disagree: A is {a.shape}, B is {b.shape}")
    if beta != 0.0 and c is None:
        raise ValueError("beta != 0 requires a C operand")
    if c is not None and c.shape != (m, n):
        raise ValueError(f"C must be {(m, n)}, got {c.shape}")

    out_dtype = complex_dtype_for(a.dtype)
    out = np.zeros((m, n), dtype=out_dtype)
    k_iters = params.k_iterations(k)

    for tile in tile_schedule(m, n, params):
        r0, r1 = tile.rows
        c0, c1 = tile.cols
        acc = np.zeros((r1 - r0, c1 - c0), dtype=out_dtype)
        for kk in range(k_iters):
            k0 = kk * params.k_tb
            k1 = min(k0 + params.k_tb, k)
            # Stage the A and B panels (the shared-memory tiles As/Bs of
            # Figure 9) and accumulate the register fragments.
            a_s = a[r0:r1, k0:k1]
            b_s = b[k0:k1, c0:c1]
            acc += a_s @ b_s
        out[r0:r1, c0:c1] = acc

    out *= alpha
    if beta != 0.0 and c is not None:
        out += beta * c.astype(out_dtype, copy=False)
    return out
