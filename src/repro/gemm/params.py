"""Templated CGEMM kernel parameters (Table 1 and §3.1/§5.1 variants).

The paper's CGEMM is "fully templated ... supporting flexible tuning of
thread block shapes and loop tiling factors" (§3.1).  :class:`GemmParams`
captures one instantiation:

* ``m_tb x n_tb`` — output tile computed by one thread block,
* ``k_tb`` — k-slice staged through shared memory per iteration,
* ``m_w x n_w`` — warp tile,
* ``m_t x n_t`` — per-thread register tile.

Three named instantiations appear in the paper: Table 1's
``(32, 32, 8, 32, 16, 4, 4)``, §3.1's prose configuration
``(64, 64, 8, 32, 16, 4, 4)``, and the §5.1(A.3) configuration
``(64, 128, 8, 32, 16, 4, 4)`` blamed for the K=32/128 fusion regressions.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GemmParams", "TABLE1_CGEMM", "SECT31_CGEMM", "SECT51_CGEMM"]

_COMPLEX64_BYTES = 8
_WARP_SIZE = 32


@dataclass(frozen=True)
class GemmParams:
    """One instantiation of the templated CGEMM kernel."""

    m_tb: int = 32
    n_tb: int = 32
    k_tb: int = 8
    m_w: int = 32
    n_w: int = 16
    m_t: int = 4
    n_t: int = 4

    def __post_init__(self) -> None:
        for name in ("m_tb", "n_tb", "k_tb", "m_w", "n_w", "m_t", "n_t"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.m_tb % self.m_w or self.n_tb % self.n_w:
            raise ValueError(
                f"thread-block tile {self.m_tb}x{self.n_tb} must be a multiple "
                f"of the warp tile {self.m_w}x{self.n_w}"
            )
        if self.m_w % self.m_t or self.n_w % self.n_t:
            raise ValueError(
                f"warp tile {self.m_w}x{self.n_w} must be a multiple of the "
                f"thread tile {self.m_t}x{self.n_t}"
            )
        if self.threads_per_warp_tile != _WARP_SIZE:
            raise ValueError(
                f"warp tile {self.m_w}x{self.n_w} with thread tile "
                f"{self.m_t}x{self.n_t} implies {self.threads_per_warp_tile} "
                f"threads per warp; must be {_WARP_SIZE}"
            )

    # -- geometry ------------------------------------------------------------
    @property
    def threads_per_warp_tile(self) -> int:
        return (self.m_w // self.m_t) * (self.n_w // self.n_t)

    @property
    def warps_per_block(self) -> int:
        return (self.m_tb // self.m_w) * (self.n_tb // self.n_w)

    @property
    def threads_per_block(self) -> int:
        return self.warps_per_block * _WARP_SIZE

    def smem_bytes(self, double_buffered: bool = True) -> int:
        """Shared memory for the A and B tiles (x2 when double buffered)."""
        tiles = (self.m_tb * self.k_tb + self.k_tb * self.n_tb) * _COMPLEX64_BYTES
        return 2 * tiles if double_buffered else tiles

    def grid_blocks(self, m: int, n: int) -> int:
        """Thread blocks covering an ``m x n`` output."""
        if m <= 0 or n <= 0:
            raise ValueError(f"output extents must be positive, got {m}x{n}")
        return -(-m // self.m_tb) * (-(-n // self.n_tb))

    def k_iterations(self, k: int) -> int:
        """Main-loop iterations over the K dimension."""
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        return -(-k // self.k_tb)

    def describe(self) -> str:
        return (
            f"CGEMM[{self.m_tb}x{self.n_tb}x{self.k_tb} tb, "
            f"{self.m_w}x{self.n_w} warp, {self.m_t}x{self.n_t} thread, "
            f"{self.threads_per_block} threads]"
        )


#: Table 1 configuration (used by the fused kernels).
TABLE1_CGEMM = GemmParams(32, 32, 8, 32, 16, 4, 4)

#: §3.1 prose configuration ("M_tb = 64, N_tb = 64, ...").
SECT31_CGEMM = GemmParams(64, 64, 8, 32, 16, 4, 4)

#: §5.1 (A.3) configuration blamed for the K=32/128 epilogue regressions.
SECT51_CGEMM = GemmParams(64, 128, 8, 32, 16, 4, 4)
