"""Traffic and FLOP model of the blocked CGEMM.

Counts exactly what the blocked schedule of :mod:`repro.gemm.blocked`
moves:

* every thread block reads its full ``m_tb x K`` A panel and ``K x n_tb``
  B panel from global memory (no inter-block reuse — the paper's kernel,
  like cuBLAS, relies on L2 only implicitly and the model charges DRAM for
  each block, which is the standard upper-bound used in roofline work),
* writes its ``m_tb x n_tb`` output once,
* one complex MAC = 8 real FLOPs,
* shared-memory staging: each A/B panel element is written to shared
  memory once and read ``n_tb/n_t`` (resp. ``m_tb/m_t``) times by the
  register-fragment loads.

These counters feed :class:`repro.gpu.kernel.KernelSpec`; the fused
variants in :mod:`repro.core` subtract the legs that fusion eliminates.
"""

from __future__ import annotations

from repro.gemm.params import GemmParams, TABLE1_CGEMM
from repro.gpu.counters import PerfCounters

__all__ = ["gemm_flops", "gemm_counters"]

_COMPLEX64_BYTES = 8
_SMEM_TRANSACTION_BYTES = 128  # 32 banks x 4 bytes


def gemm_flops(m: int, n: int, k: int) -> float:
    """Real FLOPs of a complex GEMM (one complex MAC = 8 real ops)."""
    if min(m, n, k) <= 0:
        raise ValueError(f"GEMM extents must be positive, got {m}x{n}x{k}")
    return 8.0 * m * n * k


def gemm_counters(
    m: int,
    n: int,
    k: int,
    params: GemmParams = TABLE1_CGEMM,
    read_a_from_global: bool = True,
    write_c_to_global: bool = True,
    read_c: bool = False,
    bank_utilization: float = 1.0,
    a_reread_factor: float = 1.0,
    a_l2_candidate: bool = False,
    c_l2_candidate: bool = False,
) -> PerfCounters:
    """Counters for one blocked CGEMM launch.

    ``read_a_from_global=False`` models the fused FFT-GEMM kernel, whose A
    operand arrives through shared memory from the in-kernel FFT instead of
    DRAM; ``write_c_to_global=False`` models the fused GEMM-iFFT epilogue.
    ``bank_utilization`` derates the shared-memory leg (1.0 = the swizzled
    layouts of Figs. 7-8; lower values replay conflicted transactions).

    ``a_reread_factor`` charges the A panel this many times from DRAM.  The
    default 1.0 models the library/tall-and-skinny case: the grid's N
    extent is at most a handful of block columns and their concurrent
    re-reads of the same A panel hit L2.  Pass ``blocks_n`` for a
    pessimistic no-reuse model.

    ``a_l2_candidate`` / ``c_l2_candidate`` mark the A read / C write as
    inter-stage intermediates eligible for L2 residence (the truncated
    spectrum / the pre-padding product in the FNO pipeline).
    """
    if not (0.0 < bank_utilization <= 1.0):
        raise ValueError(f"bank_utilization must be in (0, 1], got {bank_utilization}")
    if a_reread_factor < 1.0:
        raise ValueError(f"a_reread_factor must be >= 1.0, got {a_reread_factor}")
    blocks_m = -(-m // params.m_tb)
    blocks_n = -(-n // params.n_tb)
    blocks = blocks_m * blocks_n

    reads = 0.0
    l2_candidate = 0.0
    if read_a_from_global:
        a_bytes = a_reread_factor * m * k * _COMPLEX64_BYTES
        reads += a_bytes
        if a_l2_candidate:
            l2_candidate += a_bytes
    reads += blocks_m * k * n * _COMPLEX64_BYTES  # B panel per block row
    if read_c:
        reads += m * n * _COMPLEX64_BYTES

    writes = m * n * _COMPLEX64_BYTES if write_c_to_global else 0.0
    if c_l2_candidate:
        l2_candidate += writes

    # Shared-memory traffic: stage each panel once, then fragment reloads.
    # A fragment is broadcast within a warp's n-columns, so it is re-read
    # once per warp column (n_tb / n_w), not once per thread column;
    # symmetrically for B.
    a_panel_elems = blocks * params.m_tb * k
    b_panel_elems = blocks * params.n_tb * k
    a_reads = a_panel_elems * (params.n_tb // params.n_w)
    b_reads = b_panel_elems * (params.m_tb // params.m_w)
    smem_bytes = (a_panel_elems + b_panel_elems + a_reads + b_reads) * _COMPLEX64_BYTES
    ideal_transactions = smem_bytes / _SMEM_TRANSACTION_BYTES
    actual_transactions = ideal_transactions / bank_utilization

    k_iters = params.k_iterations(k)
    return PerfCounters(
        flops=gemm_flops(m, n, k),
        global_bytes_read=reads,
        global_bytes_written=writes,
        smem_transactions=actual_transactions,
        smem_ideal_transactions=ideal_transactions,
        # One barrier per k-tile after staging the next panels (Figure 9).
        syncthreads=float(blocks * k_iters),
        l2_candidate_bytes=l2_candidate,
    )
