"""Tests for the device specification and occupancy model."""

import math

import pytest

from repro.gpu.device import A100_SPEC, DeviceSpec, Occupancy


class TestDeviceSpec:
    def test_a100_defaults(self):
        assert A100_SPEC.num_sms == 108
        assert A100_SPEC.warp_size == 32
        assert A100_SPEC.smem_banks == 32
        assert A100_SPEC.fp32_tflops == pytest.approx(19.5)

    def test_derived_rates(self):
        d = DeviceSpec(fp32_tflops=10.0, dram_bandwidth_gbs=1000.0)
        assert d.flops_per_second == pytest.approx(1e13)
        assert d.bytes_per_second == pytest.approx(1e12)
        assert d.effective_flops() == pytest.approx(1e13 * d.flop_efficiency)
        assert d.effective_bandwidth() == pytest.approx(1e12 * d.dram_efficiency)

    def test_with_override(self):
        d = A100_SPEC.with_(num_sms=4)
        assert d.num_sms == 4
        assert A100_SPEC.num_sms == 108  # original untouched

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_sms": 0},
            {"fp32_tflops": -1.0},
            {"dram_bandwidth_gbs": 0.0},
            {"dram_efficiency": 0.0},
            {"dram_efficiency": 1.5},
            {"flop_efficiency": -0.2},
            {"warp_size": 0},
            {"smem_banks": -1},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DeviceSpec(**kwargs)


class TestOccupancy:
    def test_thread_limited(self):
        # 1024-thread blocks: 2048/1024 = 2 blocks per SM.
        occ = Occupancy.compute(A100_SPEC, blocks=1000, threads_per_block=1024)
        assert occ.blocks_per_sm == 2
        assert occ.active_blocks == 2 * 108

    def test_smem_limited(self):
        # 100 KiB per block: only one fits in 164 KiB.
        occ = Occupancy.compute(
            A100_SPEC, blocks=10, threads_per_block=128,
            smem_per_block_bytes=100 * 1024,
        )
        assert occ.blocks_per_sm == 1

    def test_block_limit_cap(self):
        # Tiny blocks would allow 2048/32 = 64 per SM, capped at 32.
        occ = Occupancy.compute(A100_SPEC, blocks=10, threads_per_block=32)
        assert occ.blocks_per_sm == A100_SPEC.max_blocks_per_sm

    def test_wave_count(self):
        occ = Occupancy.compute(A100_SPEC, blocks=1, threads_per_block=256)
        assert occ.waves == 1
        big = Occupancy.compute(
            A100_SPEC, blocks=occ.active_blocks * 3 + 1, threads_per_block=256
        )
        assert big.waves == 4

    def test_full_wave_utilization_is_one(self):
        occ = Occupancy.compute(A100_SPEC, blocks=1, threads_per_block=256)
        full = Occupancy.compute(
            A100_SPEC, blocks=occ.active_blocks, threads_per_block=256
        )
        assert full.sm_utilization == pytest.approx(1.0)

    def test_partial_wave_utilization_below_one(self):
        occ = Occupancy.compute(A100_SPEC, blocks=10, threads_per_block=256)
        assert occ.sm_utilization < 1.0
        assert occ.sm_utilization == pytest.approx(10 / occ.active_blocks)

    def test_exact_tiling_math(self):
        d = DeviceSpec(num_sms=4, max_threads_per_sm=512, max_blocks_per_sm=8)
        occ = Occupancy.compute(d, blocks=16, threads_per_block=256)
        # 512/256 = 2 blocks/SM, active = 8, so 16 blocks = 2 full waves.
        assert occ.blocks_per_sm == 2
        assert occ.active_blocks == 8
        assert occ.waves == 2
        assert occ.sm_utilization == pytest.approx(1.0)

    @pytest.mark.parametrize(
        "blocks,threads,smem",
        [(0, 128, 0), (-3, 128, 0), (4, 0, 0), (4, 4096, 0), (4, 128, 10**9)],
    )
    def test_invalid_launches_rejected(self, blocks, threads, smem):
        with pytest.raises(ValueError):
            Occupancy.compute(A100_SPEC, blocks, threads, smem)

    def test_waves_ceiling(self):
        occ = Occupancy.compute(A100_SPEC, blocks=7, threads_per_block=64)
        assert occ.waves == math.ceil(7 / occ.active_blocks) == 1
