"""Tests for the Figure 7/8 shared-memory layouts.

The percentages asserted here are the paper's own numbers: 6.25 % for the
naive 16-point write-back, 25 % for the VkFFT-style FFT->GEMM hand-off and
the naive epilogue, 100 % for every TurboFNO swizzle.
"""

import pytest

from repro.gpu.swizzle import (
    analyze_fft_to_gemm_forward,
    analyze_fft_writeback,
    analyze_gemm_to_ifft_epilogue,
    epilogue_writeback_accesses,
    fft_writeback_accesses,
    gemm_a_column_read_accesses,
    layout_is_injective,
)


class TestFigure7Writeback:
    def test_16pt_naive_is_6_25_percent(self):
        assert analyze_fft_writeback("16pt", False).utilization == pytest.approx(
            0.0625
        )

    def test_16pt_swizzled_is_100_percent(self):
        assert analyze_fft_writeback("16pt", True).utilization == pytest.approx(1.0)

    def test_8pt_naive_conflicts(self):
        # Neighbouring threads avoid each other (paper: "thread 0 and 1
        # access banks 0 and 64") but the half-warp groups still collide.
        assert analyze_fft_writeback("8pt", False).utilization == pytest.approx(
            0.125
        )

    def test_8pt_swizzled_is_100_percent(self):
        assert analyze_fft_writeback("8pt", True).utilization == pytest.approx(1.0)

    def test_unknown_case_rejected(self):
        with pytest.raises(ValueError):
            analyze_fft_writeback("32pt")

    @pytest.mark.parametrize("case,n,stride,div", [
        ("16pt", 16, 64, 1),
        ("8pt", 32, 8, 2),
    ])
    def test_swizzle_remains_injective(self, case, n, stride, div):
        accs = fft_writeback_accesses(n, 8, stride, div)
        assert layout_is_injective(accs)

    def test_naive_layouts_injective_too(self):
        assert layout_is_injective(fft_writeback_accesses(16, 8, 64, None))

    @pytest.mark.parametrize("bad", [
        dict(n_threads=0, elems_per_thread=8, thread_stride=64, offset_divisor=1),
        dict(n_threads=16, elems_per_thread=0, thread_stride=64, offset_divisor=1),
        dict(n_threads=16, elems_per_thread=8, thread_stride=0, offset_divisor=1),
        dict(n_threads=16, elems_per_thread=8, thread_stride=64, offset_divisor=0),
    ])
    def test_invalid_params(self, bad):
        with pytest.raises(ValueError):
            fft_writeback_accesses(**bad)


class TestFigure7Forward:
    def test_vkfft_layout_is_25_percent(self):
        assert analyze_fft_to_gemm_forward("vkfft").utilization == pytest.approx(
            0.25
        )

    def test_turbofno_layout_is_100_percent(self):
        assert analyze_fft_to_gemm_forward("turbofno").utilization == pytest.approx(
            1.0
        )

    def test_full_interleave_is_worse(self):
        # 8-way interleave (= k_tb) degrades below the paper's 25 %.
        from repro.gpu.sharedmem import SharedMemoryBankModel

        accs = gemm_a_column_read_accesses("vkfft", vkfft_interleave=8)
        rep = SharedMemoryBankModel().analyze(accs)
        assert rep.utilization < 0.25

    def test_unknown_layout_rejected(self):
        with pytest.raises(ValueError):
            gemm_a_column_read_accesses("cufft")

    def test_both_layouts_injective(self):
        for layout in ("vkfft", "turbofno"):
            assert layout_is_injective(gemm_a_column_read_accesses(layout))


class TestFigure8Epilogue:
    def test_naive_is_25_percent(self):
        assert analyze_gemm_to_ifft_epilogue(False).utilization == pytest.approx(
            0.25
        )

    def test_swizzled_is_100_percent(self):
        assert analyze_gemm_to_ifft_epilogue(True).utilization == pytest.approx(1.0)

    @pytest.mark.parametrize("swizzled", [False, True])
    def test_layouts_injective(self, swizzled):
        assert layout_is_injective(epilogue_writeback_accesses(swizzled))

    def test_non_warp_tiling_rejected(self):
        with pytest.raises(ValueError):
            epilogue_writeback_accesses(True, m_w=16, n_w=16)  # 16 threads

    def test_col_stride_must_fit_offset(self):
        with pytest.raises(ValueError):
            epilogue_writeback_accesses(True, col_stride=32)

    def test_sfft_column_stride_gives_room(self):
        # The default col_stride=128 is the sFFT buffer column of Fig. 9.
        accs = epilogue_writeback_accesses(True, col_stride=128)
        max_addr = max(w for a in accs for lane in a.word_addresses for w in lane)
        assert max_addr < 2 * 16 * 128  # within n_w columns of the buffer
