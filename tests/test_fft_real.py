"""Tests for the R2C/C2R helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fft.real import hermitian_pad, irfft, rfft


class TestRfft:
    @pytest.mark.parametrize("n", [2, 8, 64, 256])
    def test_matches_numpy(self, rng, n):
        x = rng.standard_normal((3, n))
        assert np.allclose(rfft(x), np.fft.rfft(x), atol=1e-10)

    def test_axis(self, rng):
        x = rng.standard_normal((16, 5))
        assert np.allclose(rfft(x, axis=0), np.fft.rfft(x, axis=0), atol=1e-10)

    def test_rejects_complex(self, rng):
        with pytest.raises(ValueError):
            rfft(rng.standard_normal((2, 8)) + 0j)

    def test_half_spectrum_length(self, rng):
        assert rfft(rng.standard_normal((2, 64))).shape == (2, 33)


class TestIrfft:
    @pytest.mark.parametrize("n", [4, 32, 128])
    def test_roundtrip(self, rng, n):
        x = rng.standard_normal((2, n))
        assert np.allclose(irfft(rfft(x), n), x, atol=1e-10)

    def test_matches_numpy(self, rng):
        xk = rng.standard_normal((2, 17)) + 1j * rng.standard_normal((2, 17))
        # Make the DC and Nyquist bins real, as a valid half-spectrum has.
        xk[:, 0] = xk[:, 0].real
        xk[:, -1] = xk[:, -1].real
        assert np.allclose(irfft(xk, 32), np.fft.irfft(xk, 32), atol=1e-10)

    def test_default_length(self, rng):
        xk = np.fft.rfft(rng.standard_normal((2, 64)))
        assert irfft(xk).shape == (2, 64)

    def test_output_is_real_dtype(self, rng):
        out = irfft(rfft(rng.standard_normal((1, 16))), 16)
        assert not np.iscomplexobj(out)


class TestHermitianPad:
    def test_symmetry(self, rng):
        xk = np.fft.rfft(rng.standard_normal((1, 16)))
        full = hermitian_pad(xk, 16)
        for k in range(1, 16):
            assert full[0, 16 - k] == pytest.approx(np.conj(full[0, k]))

    def test_validation(self, rng):
        xk = np.zeros((2, 9), dtype=complex)
        with pytest.raises(ValueError):
            hermitian_pad(xk, 24)  # not a power of two
        with pytest.raises(ValueError):
            hermitian_pad(xk, 32)  # wrong bin count


@given(st.integers(1, 6), st.integers(0, 2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_property_roundtrip(log_n, seed):
    n = 2**log_n
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((2, n))
    assert np.allclose(irfft(rfft(x), n), x, atol=1e-9)
