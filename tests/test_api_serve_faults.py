"""Tests for serving failure semantics: faults, health, degradation.

Everything the chaos layer makes deterministically reachable:

* :class:`FaultPlan` — the ``REPRO_FAULTS`` grammar, env activation,
  seeded-chaos determinism, and the injector's one-shot/always/retry
  firing rules;
* :class:`CircuitBreaker` — closed/open/half-open transitions under an
  injectable clock;
* recovery paths through a real pool, provoked *without raw signals*:
  scripted crashes before/after execution (retry, bit-identical), a
  hang the health monitor must detect and escalate, deadline expiry on
  both the parent and worker side, corrupted response headers
  (checksum rejection, retry-or-typed-fail), ``ResultTimeout`` +
  ``cancel()`` slab release, breaker-open degradation to the in-parent
  fallback (still bit-identical) and half-open recovery, and the
  worker-start ckernels->numpy backend fallback;
* the close budget (``close(timeout=)`` bounds a saturated shutdown)
  and a miniature :func:`run_soak` asserting the three acceptance
  invariants end to end.

Pools stay small (1-2 workers, numpy backend) and are never shared
between tests.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.api import Session
from repro.api.serve import (
    Cancelled,
    ChaosInjector,
    CircuitBreaker,
    CorruptedHeader,
    DeadlineExceeded,
    FALLBACK,
    Fault,
    FaultPlan,
    HealthPolicy,
    ResultTimeout,
    RouteTable,
    ServeError,
    ServePool,
    WorkerCrashed,
    header_checksum,
    run_soak,
)
from repro.api.serve.faults import HANG_FOREVER

RNG = np.random.default_rng(20260808)


def _weight(k=4):
    return ((RNG.standard_normal((k, k)) + 1j * RNG.standard_normal((k, k)))
            / k).astype(np.complex64)


def _signal(shape):
    return (RNG.standard_normal(shape)
            + 1j * RNG.standard_normal(shape)).astype(np.complex64)


def _ref(model, x):
    session = Session(backend="numpy")
    try:
        return session.infer(model, x)
    finally:
        session.close()


# ---------------------------------------------------------------------------
# FaultPlan / ChaosInjector
# ---------------------------------------------------------------------------

class TestFaultPlan:
    def test_parse_roundtrip(self):
        spec = "crash_before@3;hang@7;latency@5:0.05;corrupt_header@11!"
        plan = FaultPlan.parse(spec)
        assert len(plan) == 4
        assert plan.lookup("crash_before", 3).kind == "crash_before"
        assert plan.lookup("latency", 5).seconds == pytest.approx(0.05)
        assert plan.lookup("corrupt_header", 11).always
        assert plan.lookup("hang", 7).seconds == HANG_FOREVER
        assert FaultPlan.parse(plan.spec()).spec() == plan.spec()

    def test_parse_spawn_and_errors(self):
        plan = FaultPlan.parse("backend_fail@1")
        assert plan.lookup_spawn("backend_fail", 1) is not None
        assert plan.lookup_spawn("backend_fail", 0) is None
        with pytest.raises(ValueError, match="kind"):
            FaultPlan.parse("frobnicate@3")
        with pytest.raises(ValueError, match="kind@index"):
            FaultPlan.parse("crash_before")
        with pytest.raises(ValueError):
            Fault("backend_fail", 3)  # spawn faults target a shard
        with pytest.raises(ValueError):
            Fault("crash_before", shard=0)  # request faults need a rid

    def test_from_env(self):
        assert FaultPlan.from_env({}) is None
        assert FaultPlan.from_env({"REPRO_FAULTS": "  "}) is None
        plan = FaultPlan.from_env({"REPRO_FAULTS": "crash_before@0"})
        assert len(plan) == 1

    def test_chaos_is_deterministic(self):
        a = FaultPlan.chaos(7, 200)
        b = FaultPlan.chaos(7, 200)
        assert a.spec() == b.spec()
        assert len(a) > 0
        assert a.spec() != FaultPlan.chaos(8, 200).spec()

    def test_injector_one_shot_and_retry_filter(self):
        plan = FaultPlan([Fault("crash_before", 5),
                          Fault("latency", 6, seconds=0.1, always=True)])
        inj = ChaosInjector(plan)
        assert bool(inj)
        assert inj.fire("crash_before", 5) is not None
        assert inj.fire("crash_before", 5) is None  # one-shot: spent
        assert inj.fire("crash_before", 4) is None  # not scripted
        # retried requests skip non-always faults entirely...
        inj2 = ChaosInjector(plan)
        assert inj2.fire("crash_before", 5, retries=1) is None
        # ...but always-faults refire on every attempt.
        assert inj2.fire("latency", 6) is not None
        assert inj2.fire("latency", 6, retries=2) is not None

    def test_empty_injector_is_falsy(self):
        assert not ChaosInjector(None)
        assert ChaosInjector(None).fire("crash_before", 0) is None


# ---------------------------------------------------------------------------
# CircuitBreaker / RouteTable / HealthPolicy units
# ---------------------------------------------------------------------------

class TestCircuitBreaker:
    def test_transitions(self):
        clock = [0.0]
        br = CircuitBreaker(threshold=2, cooldown=10.0,
                            clock=lambda: clock[0])
        assert br.state == "closed"
        assert br.allow_worker()
        assert not br.record_failure()  # 1 of 2
        assert br.record_failure()  # opens
        assert br.state == "open"
        assert not br.allow_worker()
        clock[0] = 5.0
        assert not br.allow_worker()  # still cooling down
        clock[0] = 10.0
        assert br.state == "half_open"
        assert br.allow_worker()  # the single probe
        assert not br.allow_worker()  # second caller: still degraded
        br.record_success()
        assert br.state == "closed"
        assert br.consecutive_failures == 0

    def test_half_open_failure_reopens(self):
        clock = [0.0]
        br = CircuitBreaker(threshold=1, cooldown=10.0,
                            clock=lambda: clock[0])
        assert br.record_failure()
        clock[0] = 10.0
        assert br.allow_worker()  # probe
        assert br.record_failure()  # probe died: re-open, restart cooldown
        assert br.state == "open"
        clock[0] = 19.0
        assert not br.allow_worker()
        clock[0] = 20.0
        assert br.allow_worker()

    def test_success_resets_consecutive_count(self):
        br = CircuitBreaker(threshold=3, cooldown=1.0)
        br.record_failure()
        br.record_failure()
        br.record_success()
        assert br.consecutive_failures == 0
        assert not br.record_failure()  # the streak restarted

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=-1)


class TestRouteTable:
    def test_degrade_reroutes_only_that_shard(self):
        table = RouteTable(4)
        w = _weight()
        from repro.api.serve import geometry_key
        from repro.api.session import SpectralModel

        key = geometry_key(SpectralModel(w, 16), _signal((2, 4, 128)))
        shard = table.shard(key)
        assert table.route(key) == shard
        table.degrade(shard)
        assert table.route(key) == FALLBACK
        assert table.shard(key) == shard  # ownership never moves
        assert table.degraded == (shard,)
        other = (shard + 1) % 4
        table.degrade(other)
        table.restore(shard)
        assert table.route(key) == shard
        assert table.degraded == (other,)


class TestHealthPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            HealthPolicy(heartbeat_interval=0)
        with pytest.raises(ValueError):
            HealthPolicy(hang_timeout=0)
        with pytest.raises(ValueError):
            HealthPolicy(sweep_interval=0)
        assert HealthPolicy().as_dict()["hang_timeout"] == 30.0


def test_header_checksum_detects_field_changes():
    fields = (3, (2, 4, 64), "complex64", 4096)
    good = header_checksum(fields)
    assert header_checksum(fields) == good  # stable
    assert header_checksum((3, (2, 4, 64), "complex64", 4097)) != good


# ---------------------------------------------------------------------------
# Scripted crash recovery (no raw signals anywhere below)
# ---------------------------------------------------------------------------

class TestScriptedCrashes:
    @pytest.mark.parametrize("kind", ["crash_before", "crash_after"])
    def test_crash_retry_is_bit_identical(self, kind):
        w, x = _weight(), _signal((2, 4, 128))
        plan = FaultPlan([Fault(kind, 0)])
        with ServePool(workers=1, backend="numpy", faults=plan,
                       on_crash="retry") as pool:
            y = pool.infer((w, 16), x, timeout=120)
            stats = pool.stats(timeout=10)
        assert stats["admission"]["crashes"] == 1
        assert stats["admission"]["retried"] >= 1
        assert np.array_equal(y, _ref((w, 16), x))

    def test_crash_with_fail_policy_is_typed(self):
        w, x = _weight(), _signal((2, 4, 128))
        plan = FaultPlan([Fault("crash_before", 0)])
        with ServePool(workers=1, backend="numpy", faults=plan,
                       on_crash="fail") as pool:
            fut = pool.submit((w, 16), x)
            with pytest.raises(WorkerCrashed):
                fut.result(120)
            # The shard recovered: the next request serves normally.
            y = pool.infer((w, 16), x, timeout=120)
        assert np.array_equal(y, _ref((w, 16), x))

    def test_env_var_activates_faults(self, monkeypatch):
        w, x = _weight(), _signal((2, 4, 128))
        monkeypatch.setenv("REPRO_FAULTS", "crash_before@0")
        with ServePool(workers=1, backend="numpy") as pool:
            y = pool.infer((w, 16), x, timeout=120)
            stats = pool.stats(timeout=10)
        assert stats["admission"]["crashes"] == 1
        assert stats["faults"] == "crash_before@0"
        assert np.array_equal(y, _ref((w, 16), x))


class TestHangDetection:
    def test_hung_worker_is_killed_and_request_retried(self):
        w, x = _weight(), _signal((2, 4, 128))
        plan = FaultPlan([Fault("hang", 0)])  # sleeps ~forever
        with ServePool(workers=1, backend="numpy", faults=plan,
                       health=HealthPolicy(hang_timeout=1.0)) as pool:
            t0 = time.monotonic()
            y = pool.infer((w, 16), x, timeout=120)
            elapsed = time.monotonic() - t0
            stats = pool.stats(timeout=10)
        assert stats["admission"]["hangs"] >= 1
        assert stats["admission"]["crashes"] >= 1  # escalated as a crash
        assert np.array_equal(y, _ref((w, 16), x))
        assert elapsed < 60  # detection, not the 3600s sleep

    def test_short_hang_under_timeout_is_latency(self):
        w, x = _weight(), _signal((2, 4, 128))
        plan = FaultPlan([Fault("hang", 0, seconds=0.3)])
        with ServePool(workers=1, backend="numpy", faults=plan,
                       health=HealthPolicy(hang_timeout=30.0)) as pool:
            y = pool.infer((w, 16), x, timeout=120)
            stats = pool.stats(timeout=10)
        assert stats["admission"]["hangs"] == 0  # never escalated
        assert np.array_equal(y, _ref((w, 16), x))


class TestDeadlines:
    def test_expired_deadline_fails_typed_before_dispatch(self):
        w, x = _weight(), _signal((2, 4, 128))
        with ServePool(workers=1, backend="numpy") as pool:
            fut = pool.submit((w, 16), x, deadline=0.0)
            with pytest.raises(DeadlineExceeded):
                fut.result(30)
            stats = pool.stats(timeout=10)
        assert stats["admission"]["expired"] >= 1
        assert stats["admission"]["completed"] == 0

    def test_deadline_expires_in_flight(self):
        # Request 0 stalls the worker for 0.6s; request 1's 0.2s budget
        # lapses while queued behind it.  Whichever side notices first —
        # the parent's sweep or the worker's skip — the caller sees one
        # typed DeadlineExceeded and the slabs drain.
        w, x = _weight(), _signal((2, 4, 128))
        plan = FaultPlan([Fault("latency", 0, seconds=0.6)])
        with ServePool(workers=1, backend="numpy", faults=plan) as pool:
            slow = pool.submit((w, 16), x)
            doomed = pool.submit((w, 16), x, deadline=0.2)
            assert np.array_equal(slow.result(120), _ref((w, 16), x))
            with pytest.raises(DeadlineExceeded):
                doomed.result(120)
            time.sleep(0.3)  # let the worker's answer drain the slabs
            stats = pool.stats(timeout=10)
            handle = pool._handles[0]
            assert handle.req_arena.in_flight == 0
            assert handle.resp_arena.in_flight == 0
        assert stats["admission"]["expired"] >= 1

    def test_negative_deadline_rejected(self):
        w, x = _weight(), _signal((2, 4, 128))
        with ServePool(workers=1, backend="numpy") as pool:
            with pytest.raises(ValueError, match="deadline"):
                pool.submit((w, 16), x, deadline=-1.0)


class TestResultTimeoutAndCancel:
    def test_result_timeout_is_typed_and_backcompat(self):
        w, x = _weight(), _signal((2, 4, 128))
        plan = FaultPlan([Fault("latency", 0, seconds=0.5)])
        with ServePool(workers=1, backend="numpy", faults=plan) as pool:
            fut = pool.submit((w, 16), x)
            with pytest.raises(ResultTimeout):
                fut.result(0.05)
            # ResultTimeout subclasses both ServeError and TimeoutError.
            assert issubclass(ResultTimeout, ServeError)
            assert issubclass(ResultTimeout, TimeoutError)
            # The request is still in flight: waiting again succeeds.
            assert np.array_equal(fut.result(120), _ref((w, 16), x))

    def test_cancel_releases_slabs_when_worker_answers(self):
        w, x = _weight(), _signal((2, 4, 128))
        plan = FaultPlan([Fault("latency", 0, seconds=0.5)])
        with ServePool(workers=1, backend="numpy", faults=plan) as pool:
            fut = pool.submit((w, 16), x)
            assert fut.cancel()
            assert fut.cancelled()
            assert not fut.cancel()  # already resolved: no-op
            with pytest.raises(Cancelled):
                fut.result(0)
            deadline = time.monotonic() + 30
            handle = pool._handles[0]
            while handle.req_arena.in_flight and time.monotonic() < deadline:
                time.sleep(0.05)
            assert handle.req_arena.in_flight == 0
            assert handle.resp_arena.in_flight == 0
            stats = pool.stats(timeout=10)
        assert stats["admission"]["cancelled"] == 1

    def test_cancel_after_completion_returns_false(self):
        w, x = _weight(), _signal((2, 4, 128))
        with ServePool(workers=1, backend="numpy") as pool:
            fut = pool.submit((w, 16), x)
            fut.result(120)
            assert not fut.cancel()


class TestCorruptedHeaders:
    def test_corrupt_response_retries_to_success(self):
        w, x = _weight(), _signal((2, 4, 128))
        plan = FaultPlan([Fault("corrupt_header", 0)])  # one-shot
        with ServePool(workers=1, backend="numpy", faults=plan,
                       on_crash="retry") as pool:
            y = pool.infer((w, 16), x, timeout=120)
            stats = pool.stats(timeout=10)
        assert stats["admission"]["corrupted"] == 1
        assert stats["admission"]["retried"] == 1
        assert np.array_equal(y, _ref((w, 16), x))

    def test_corrupt_response_without_retries_is_typed(self):
        w, x = _weight(), _signal((2, 4, 128))
        plan = FaultPlan([Fault("corrupt_header", 0, always=True)])
        with ServePool(workers=1, backend="numpy", faults=plan,
                       on_crash="fail") as pool:
            fut = pool.submit((w, 16), x)
            with pytest.raises(CorruptedHeader):
                fut.result(120)
            stats = pool.stats(timeout=10)
        assert stats["admission"]["corrupted"] >= 1
        assert stats["admission"]["failed"] >= 1

    def test_injected_ring_failure_is_pool_saturated(self):
        from repro.api.serve import PoolSaturated

        w, x = _weight(), _signal((2, 4, 128))
        plan = FaultPlan([Fault("ring_fail", 0)])
        with ServePool(workers=1, backend="numpy", faults=plan) as pool:
            with pytest.raises(PoolSaturated, match="injected"):
                pool.submit((w, 16), x)
            stats = pool.stats(timeout=10)
            # Recovery: the fault was one-shot, the next submit lands.
            y = pool.infer((w, 16), x, timeout=120)
        assert stats["admission"]["rejected"] == 1
        assert np.array_equal(y, _ref((w, 16), x))


# ---------------------------------------------------------------------------
# Graceful degradation
# ---------------------------------------------------------------------------

class TestDegradation:
    def test_breaker_opens_degrades_and_recovers(self):
        w, x = _weight(), _signal((2, 4, 128))
        # Two scripted deaths (retry budget 0 keeps each terminal) open
        # the threshold-2 breaker; later requests have no faults.
        plan = FaultPlan([Fault("crash_before", 0, always=True),
                          Fault("crash_before", 1, always=True)])
        ref = _ref((w, 16), x)
        with ServePool(workers=1, backend="numpy", faults=plan,
                       on_crash="fail", breaker_threshold=2,
                       breaker_cooldown=0.5) as pool:
            for _ in range(2):
                with pytest.raises(WorkerCrashed):
                    pool.submit((w, 16), x).result(120)
            stats = pool.stats(timeout=10)
            assert stats["degraded"]["breakers"]["0"]["state"] == "open"
            assert stats["degraded"]["open_shards"] == [0]
            # Open breaker: traffic reroutes in-parent, bit-identical.
            y_degraded = pool.infer((w, 16), x, timeout=120)
            stats = pool.stats(timeout=10)
            assert stats["admission"]["degraded"] >= 1
            assert stats["degraded"]["fallback_active"]
            assert stats["admission"]["breaker_opens"] >= 1
            # After the cooldown the half-open probe hits the (healthy)
            # replacement worker and closes the breaker.
            time.sleep(0.6)
            y_probe = pool.infer((w, 16), x, timeout=120)
            stats = pool.stats(timeout=10)
            assert stats["degraded"]["breakers"]["0"]["state"] == "closed"
            assert stats["degraded"]["open_shards"] == []
        assert np.array_equal(y_degraded, ref)
        assert np.array_equal(y_probe, ref)

    def test_backend_fallback_on_spawn_fault(self):
        w, x = _weight(), _signal((2, 4, 128))
        plan = FaultPlan([Fault("backend_fail", shard=0)])
        with ServePool(workers=1, backend="auto", faults=plan) as pool:
            y = pool.infer((w, 16), x, timeout=120)
            stats = pool.stats(timeout=10)
        # The worker degraded to the numpy substrate instead of
        # crash-looping — and numpy bits equal every other backend's.
        assert stats["per_worker"][0]["backend"] == "numpy"
        assert np.array_equal(y, _ref((w, 16), x))


# ---------------------------------------------------------------------------
# Close budget
# ---------------------------------------------------------------------------

class TestCloseBudget:
    def test_close_of_hung_pool_respects_budget(self):
        w, x = _weight(), _signal((2, 4, 128))
        # The worker sleeps ~forever and never drains its queue; the
        # long hang_timeout keeps the monitor out of the way, so close
        # must escalate (sentinel -> join -> terminate) on its own
        # budget rather than a hardcoded per-step constant.
        plan = FaultPlan([Fault("hang", 0)])
        pool = ServePool(workers=1, backend="numpy", faults=plan,
                         health=HealthPolicy(hang_timeout=300.0))
        fut = pool.submit((w, 16), x)
        time.sleep(0.3)  # let the worker enter the hang
        t0 = time.monotonic()
        pool.close(timeout=2.0)
        elapsed = time.monotonic() - t0
        assert elapsed < 10.0  # budget + per-worker floor, not 300s
        with pytest.raises(ServeError):
            fut.result(0)  # resolved, not lost
        assert pool.live_segment_names() == []


# ---------------------------------------------------------------------------
# The soak harness (the acceptance invariants, CI-sized)
# ---------------------------------------------------------------------------

class TestChaosSoak:
    def test_mini_soak_holds_all_invariants(self):
        report = run_soak(requests=60, workers=2, seed=0,
                          hang_timeout=2.0, result_timeout=120.0)
        assert report["violations"] == []
        assert report["ok"]
        assert report["outcomes"]["ok"] > 0
        assert report["segments"]["leaked"] == 0
        # The seed-0 quick plan provokes real recovery work.
        assert report["faults"]["planned"] > 0
        adm = report["admission"]
        assert adm["crashes"] + adm["corrupted"] + adm["expired"] > 0

    def test_soak_cli_quick(self, capsys):
        from repro.__main__ import main

        assert main(["chaos-soak", "--quick", "--seed", "1", "--json"]) == 0
        report = __import__("json").loads(capsys.readouterr().out)
        assert report["ok"]
        assert report["violations"] == []
