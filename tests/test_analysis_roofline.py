"""Tests for the roofline classifier — and the paper's central thesis.

"These results confirm that memory transaction reduction is the primary
performance bottleneck in Fourier Neural Operators" (§5.1 A.4): at the
reference problem size, the baseline pipeline's FFT and copy kernels must
classify as memory-bound.
"""

import pytest

from repro.analysis.roofline import KernelRoofline, pipeline_roofline, ridge_point
from repro.core.config import FNO1DProblem
from repro.core.pipeline_model import build_pipeline_1d
from repro.core.stages import FusionStage
from repro.gpu.device import A100_SPEC

PROB = FNO1DProblem.from_m_spatial(2**20, hidden=64, dim_x=128, modes=64)


class TestRidgePoint:
    def test_a100_ridge_is_about_12_flops_per_byte(self):
        # 19.5 TF * 0.8 / (1555 GB/s * 0.85) ~ 11.8 flop/B.
        assert ridge_point(A100_SPEC) == pytest.approx(11.8, abs=1.0)

    def test_scales_with_compute(self):
        fat = A100_SPEC.with_(fp32_tflops=39.0)
        assert ridge_point(fat) == pytest.approx(2 * ridge_point(A100_SPEC))


class TestPipelineRoofline:
    def test_baseline_fft_and_copies_memory_bound(self):
        pipe = build_pipeline_1d(PROB, FusionStage.PYTORCH)
        rl = {r.name: r for r in pipeline_roofline(pipe)}
        assert rl["cufft_fwd"].bound == "memory"
        assert rl["truncate_copy"].bound == "memory"
        assert rl["pad_copy"].bound == "memory"
        assert rl["cufft_inv"].bound == "memory"

    def test_memcpy_has_zero_intensity(self):
        pipe = build_pipeline_1d(PROB, FusionStage.PYTORCH)
        rl = {r.name: r for r in pipeline_roofline(pipe)}
        assert rl["truncate_copy"].arithmetic_intensity == 0.0

    def test_fft_intensity_below_ridge(self):
        """FFT AI ~ 5 log2(N) / 16 B/elem ~ 2.2 flop/B << ridge."""
        pipe = build_pipeline_1d(PROB, FusionStage.PYTORCH)
        rl = {r.name: r for r in pipeline_roofline(pipe)}
        assert rl["cufft_fwd"].arithmetic_intensity < ridge_point(A100_SPEC)

    def test_gemm_intensity_above_fft(self):
        pipe = build_pipeline_1d(PROB, FusionStage.PYTORCH)
        rl = {r.name: r for r in pipeline_roofline(pipe)}
        assert (rl["cublas_cgemm"].arithmetic_intensity
                > rl["cufft_fwd"].arithmetic_intensity)

    def test_fused_kernel_raises_intensity(self):
        """Fusion removes bytes, not flops, so AI must rise."""
        base = pipeline_roofline(build_pipeline_1d(PROB, FusionStage.PYTORCH))
        fused = pipeline_roofline(
            build_pipeline_1d(PROB, FusionStage.FUSED_ALL)
        )
        base_ai = sum(
            r.arithmetic_intensity for r in base
            if r.arithmetic_intensity != float("inf")
        ) / len(base)
        assert fused[0].arithmetic_intensity > base_ai

    def test_achieved_fraction_bounded(self):
        for r in pipeline_roofline(build_pipeline_1d(PROB, FusionStage.FFT_OPT)):
            assert 0.0 < r.achieved_fraction <= 1.0

    def test_describe_renders(self):
        r = KernelRoofline("k", 2.5, "memory", 0.9)
        assert "memory-bound" in r.describe()
