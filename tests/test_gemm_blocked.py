"""Tests for the blocked CGEMM: exactness against ``A @ B``."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gemm.blocked import blocked_cgemm, tile_schedule
from repro.gemm.params import GemmParams, SECT31_CGEMM, TABLE1_CGEMM


def _operands(rng, m, k, n, dtype=np.complex128):
    a = (rng.standard_normal((m, k)) + 1j * rng.standard_normal((m, k)))
    b = (rng.standard_normal((k, n)) + 1j * rng.standard_normal((k, n)))
    return a.astype(dtype), b.astype(dtype)


class TestExactness:
    @pytest.mark.parametrize("m,k,n", [
        (32, 8, 32),      # exactly one tile
        (64, 64, 64),     # multiple tiles, exact
        (100, 17, 33),    # ragged everywhere
        (1, 1, 1),        # degenerate
        (129, 65, 5),     # ragged edges
        (31, 7, 15),      # all smaller than a tile
    ])
    def test_matches_matmul(self, rng, m, k, n):
        a, b = _operands(rng, m, k, n)
        assert np.allclose(blocked_cgemm(a, b), a @ b, atol=1e-10)

    @pytest.mark.parametrize("params", [TABLE1_CGEMM, SECT31_CGEMM,
                                        GemmParams(64, 128, 8, 32, 16, 4, 4)])
    def test_all_paper_tilings_agree(self, rng, params):
        a, b = _operands(rng, 70, 40, 50)
        assert np.allclose(blocked_cgemm(a, b, params=params), a @ b, atol=1e-10)

    def test_alpha_beta_epilogue(self, rng):
        a, b = _operands(rng, 40, 16, 24)
        c = (rng.standard_normal((40, 24)) + 1j * rng.standard_normal((40, 24)))
        out = blocked_cgemm(a, b, alpha=2.0 - 1j, beta=0.5j, c=c)
        assert np.allclose(out, (2.0 - 1j) * (a @ b) + 0.5j * c, atol=1e-10)

    def test_c_not_modified_in_place(self, rng):
        a, b = _operands(rng, 8, 4, 8)
        c = np.ones((8, 8), dtype=np.complex128)
        blocked_cgemm(a, b, beta=1.0, c=c)
        assert np.all(c == 1.0)

    def test_complex64_stays_single(self, rng):
        a, b = _operands(rng, 40, 16, 24, np.complex64)
        out = blocked_cgemm(a, b)
        assert out.dtype == np.complex64
        assert np.allclose(out, a @ b, atol=1e-3)


class TestValidation:
    def test_dimension_mismatch(self, rng):
        a, b = _operands(rng, 8, 4, 8)
        with pytest.raises(ValueError):
            blocked_cgemm(a, b[:3])

    def test_beta_requires_c(self, rng):
        a, b = _operands(rng, 8, 4, 8)
        with pytest.raises(ValueError):
            blocked_cgemm(a, b, beta=1.0)

    def test_wrong_c_shape(self, rng):
        a, b = _operands(rng, 8, 4, 8)
        with pytest.raises(ValueError):
            blocked_cgemm(a, b, beta=1.0, c=np.zeros((4, 4), dtype=complex))

    def test_non_2d_rejected(self, rng):
        with pytest.raises(ValueError):
            blocked_cgemm(np.zeros((2, 2, 2)), np.zeros((2, 2)))


class TestTileSchedule:
    @pytest.mark.parametrize("m,n", [(64, 64), (100, 33), (1, 1), (31, 97)])
    def test_covers_output_exactly_once(self, m, n):
        covered = np.zeros((m, n), dtype=int)
        for tile in tile_schedule(m, n, TABLE1_CGEMM):
            r0, r1 = tile.rows
            c0, c1 = tile.cols
            covered[r0:r1, c0:c1] += 1
        assert np.all(covered == 1)

    def test_warp_tiles_partition_block(self):
        tiles = list(tile_schedule(64, 64, SECT31_CGEMM))
        for tile in tiles:
            covered = np.zeros((64, 64), dtype=int)
            for (wr0, wr1, wc0, wc1) in tile.warp_tiles:
                covered[wr0:wr1, wc0:wc1] += 1
            r0, r1 = tile.rows
            c0, c1 = tile.cols
            assert np.all(covered[r0:r1, c0:c1] == 1)
            # Nothing outside the block tile.
            covered[r0:r1, c0:c1] = 0
            assert np.all(covered == 0)


@given(
    st.integers(1, 80), st.integers(1, 40), st.integers(1, 80),
    st.integers(0, 2**32 - 1),
)
@settings(max_examples=20, deadline=None)
def test_property_matches_matmul(m, k, n, seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, k)) + 1j * rng.standard_normal((m, k))
    b = rng.standard_normal((k, n)) + 1j * rng.standard_normal((k, n))
    assert np.allclose(blocked_cgemm(a, b), a @ b, atol=1e-9)
