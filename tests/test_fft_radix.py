"""Tests for the radix-4 Stockham variant."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fft.radix import fft_radix4, ifft_radix4, stage_counts
from repro.fft.stockham import fft, ifft


class TestCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16, 64, 128, 512])
    def test_matches_numpy(self, rng, n):
        x = rng.standard_normal((3, n)) + 1j * rng.standard_normal((3, n))
        assert np.allclose(fft_radix4(x), np.fft.fft(x), atol=1e-10)
        assert np.allclose(ifft_radix4(x), np.fft.ifft(x), atol=1e-10)

    @pytest.mark.parametrize("n", [8, 32, 128])
    def test_matches_radix2(self, rng, n):
        x = rng.standard_normal((2, n)) + 1j * rng.standard_normal((2, n))
        assert np.allclose(fft_radix4(x), fft(x), atol=1e-10)
        assert np.allclose(ifft_radix4(x), ifft(x), atol=1e-10)

    def test_axis_handling(self, rng):
        x = rng.standard_normal((16, 3)) + 0j
        assert np.allclose(
            fft_radix4(x, axis=0), np.fft.fft(x, axis=0), atol=1e-10
        )

    def test_complex64(self, rng):
        x = (rng.standard_normal((2, 64)) + 0j).astype(np.complex64)
        out = fft_radix4(x)
        assert out.dtype == np.complex64
        assert np.allclose(out, np.fft.fft(x), atol=1e-3)

    def test_roundtrip(self, rng):
        x = rng.standard_normal((4, 256)) + 1j * rng.standard_normal((4, 256))
        assert np.allclose(ifft_radix4(fft_radix4(x)), x, atol=1e-10)

    def test_non_power_of_two_rejected(self, rng):
        with pytest.raises(ValueError):
            fft_radix4(rng.standard_normal((2, 12)))


class TestStageCounts:
    @pytest.mark.parametrize("n,expected", [
        (4, (1, 0)), (8, (1, 1)), (16, (2, 0)), (128, (3, 1)), (256, (4, 0)),
    ])
    def test_radix4_decomposition(self, n, expected):
        assert stage_counts(n, radix=4) == expected

    def test_radix2_counts(self):
        assert stage_counts(128, radix=2) == (7, 0)

    def test_fewer_barriers_than_radix2(self):
        """The motivation: radix-4 halves the synchronised stage count."""
        for n in (16, 64, 256, 1024):
            r4 = sum(stage_counts(n, radix=4))
            r2 = sum(stage_counts(n, radix=2))
            assert r4 <= (r2 + 1) // 2 + 1
            assert r4 < r2

    def test_validation(self):
        with pytest.raises(ValueError):
            stage_counts(12)
        with pytest.raises(ValueError):
            stage_counts(16, radix=8)


@given(st.integers(0, 5), st.integers(0, 2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_property_agrees_with_radix2(log4, seed):
    n = 4**log4 if log4 else 2
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((2, n)) + 1j * rng.standard_normal((2, n))
    scale = 1 + np.abs(x).max()
    assert np.allclose(fft_radix4(x), fft(x), atol=1e-9 * scale * n)
