"""Property tests: compiled FFT plans are byte-identical to the legacy
functional paths, plan caching behaves like a plan cache, and the NumPy
fallback path is held to the same bit-exactness bar as the C kernels."""

import numpy as np
import pytest

from repro.fft import compiled, legacy, pruned, stockham
from repro.fft._ckernels import kernels_available

DTYPES = (np.float32, np.float64, np.complex64, np.complex128)

BACKENDS = ["ckernels", "numpy"] if kernels_available() else ["numpy"]


@pytest.fixture(params=BACKENDS)
def backend(request, monkeypatch):
    """Run a test under the C kernels and under the NumPy fallback."""
    if request.param == "numpy":
        from repro.fft import _ckernels

        monkeypatch.setitem(_ckernels._state, "kernels", None)
        monkeypatch.setitem(_ckernels._state, "tried", True)
        # plans built under the other backend hold no backend state, but
        # start from a clean cache so workspaces are not shared across
        # parametrisations.
        compiled.clear_fft_plan_cache()
    yield request.param
    compiled.clear_fft_plan_cache()


def _data(shape, dtype, rng, contiguity="C"):
    x = rng.standard_normal(shape)
    if np.dtype(dtype).kind == "c":
        x = x + 1j * rng.standard_normal(shape)
    x = x.astype(dtype)
    if contiguity == "sliced":  # non-contiguous rows
        x = np.repeat(x, 2, axis=0)[::2]
        assert not x.flags.c_contiguous or x.shape[0] <= 1
    elif contiguity == "F":
        x = np.asfortranarray(x)
    return x


def _bit_equal(a, b):
    a = np.ascontiguousarray(a)
    b = np.ascontiguousarray(b)
    return a.dtype == b.dtype and np.array_equal(
        a.view(a.real.dtype), b.view(b.real.dtype)
    )


# ---------------------------------------------------------------------------
# fft / ifft
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize(
    "shape,axis",
    [((8, 64), -1), ((8, 64), 0), ((3, 4, 32), 1), ((3, 4, 32), -3),
     ((16,), 0), ((5, 1), -1), ((2, 2), -2)],
)
def test_fft_bit_identical_to_legacy(backend, dtype, shape, axis):
    rng = np.random.default_rng(1)
    x = _data(shape, dtype, rng)
    if not stockham.is_power_of_two(x.shape[axis]):
        pytest.skip("length not a power of two")
    assert _bit_equal(stockham.fft(x, axis=axis), legacy.fft(x, axis=axis))
    assert _bit_equal(stockham.ifft(x, axis=axis), legacy.ifft(x, axis=axis))


@pytest.mark.parametrize("dtype", (np.float32, np.complex64, np.float64))
@pytest.mark.parametrize("contiguity", ["sliced", "F"])
def test_fft_non_contiguous_inputs(backend, dtype, contiguity):
    rng = np.random.default_rng(2)
    x = _data((6, 32), dtype, rng, contiguity)
    for axis in (-1, 0):
        if not stockham.is_power_of_two(x.shape[axis]):
            continue
        assert _bit_equal(stockham.fft(x, axis=axis), legacy.fft(x, axis=axis))
        assert _bit_equal(
            stockham.ifft(x, axis=axis), legacy.ifft(x, axis=axis)
        )


@pytest.mark.parametrize("dtype", (np.float32, np.complex128))
def test_fft2_bit_identical_to_legacy(backend, dtype):
    rng = np.random.default_rng(3)
    x = _data((4, 16, 8), dtype, rng)
    assert _bit_equal(stockham.fft2(x), legacy.fft2(x))
    assert _bit_equal(stockham.ifft2(x), legacy.ifft2(x))
    assert _bit_equal(
        stockham.fft2(x, axes=(0, 2)), legacy.fft2(x, axes=(0, 2))
    )


# ---------------------------------------------------------------------------
# pruned transforms, every truncation split
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("n", [1, 2, 8, 64])
def test_pruned_bit_identical_across_all_splits(backend, dtype, n):
    rng = np.random.default_rng(4)
    x = _data((5, n), dtype, rng)
    splits = [1 << i for i in range(n.bit_length()) if (1 << i) <= n]
    for part in splits:
        assert _bit_equal(
            pruned.truncated_fft(x, part), legacy.truncated_fft(x, part)
        )
        xs = x[:, :part]
        assert _bit_equal(
            pruned.zero_padded_fft(xs, n), legacy.zero_padded_fft(xs, n)
        )
        assert _bit_equal(
            pruned.truncated_ifft(xs, n), legacy.truncated_ifft(xs, n)
        )


@pytest.mark.parametrize("axis", [0, 1, -1, -2])
def test_pruned_negative_and_leading_axes(backend, axis):
    rng = np.random.default_rng(5)
    x = _data((16, 4, 16), np.float32, rng)
    n = x.shape[axis]
    assert _bit_equal(
        pruned.truncated_fft(x, n // 4, axis=axis),
        legacy.truncated_fft(x, n // 4, axis=axis),
    )
    xs = np.take(x, range(n // 2), axis=axis)
    assert _bit_equal(
        pruned.truncated_ifft(xs, n, axis=axis),
        legacy.truncated_ifft(xs, n, axis=axis),
    )


# ---------------------------------------------------------------------------
# plan cache semantics
# ---------------------------------------------------------------------------

def test_same_key_returns_same_plan_object():
    p1 = compiled.get_fft_plan(128, np.complex64, inverse=False)
    p2 = compiled.get_fft_plan(128, np.complex64, inverse=False)
    assert p1 is p2
    # dtype normalisation: float32 shares the complex64 plan.
    assert compiled.get_fft_plan(128, np.float32) is p1
    # distinct keys get distinct plans
    assert compiled.get_fft_plan(128, np.complex64, inverse=True) is not p1
    assert compiled.get_fft_plan(64, np.complex64) is not p1
    assert compiled.get_fft_plan(128, np.float64) is not p1

    q1 = compiled.get_pruned_plan(128, 32, np.complex64, "trunc")
    q2 = compiled.get_pruned_plan(128, 32, np.float32, "trunc")
    assert q1 is q2
    assert compiled.get_pruned_plan(128, 32, np.complex64, "pad") is not q1


def test_clear_plan_cache_resets_objects():
    p1 = compiled.get_fft_plan(32, np.complex64)
    compiled.clear_fft_plan_cache()
    assert compiled.get_fft_plan(32, np.complex64) is not p1


def test_plan_twiddles_are_readonly_and_precast():
    plan = compiled.get_fft_plan(16, np.complex64)
    for w in plan._stage_tw:
        assert w.dtype == np.complex64
        assert not w.flags.writeable


# ---------------------------------------------------------------------------
# workspace reuse safety
# ---------------------------------------------------------------------------

def test_workspace_reuse_does_not_corrupt_results(backend):
    """Two interleaved executions through one shared plan must not
    interfere, including growing and shrinking batch sizes."""
    rng = np.random.default_rng(6)
    xs = [_data((b, 32), np.complex64, rng) for b in (3, 17, 1, 9)]
    expected = [legacy.fft(x) for x in xs]
    got_first = [stockham.fft(x) for x in xs]
    # re-run in reverse order over the same (now warm, grown) workspaces
    got_second = [stockham.fft(x) for x in reversed(xs)][::-1]
    for e, g1, g2 in zip(expected, got_first, got_second):
        assert _bit_equal(e, g1)
        assert _bit_equal(e, g2)


def test_execution_does_not_mutate_input(backend):
    rng = np.random.default_rng(7)
    x = _data((4, 16), np.complex64, rng)
    kept = x.copy()
    stockham.fft(x)
    pruned.truncated_fft(x, 4)
    pruned.truncated_ifft(x[:, :4], 16)
    assert np.array_equal(x, kept)


def test_workspace_arena_distinct_tags_coexist():
    a = compiled.workspace_empty("test-a", (4, 4), np.complex64)
    b = compiled.workspace_zeros("test-b", (4, 4), np.complex64)
    assert a is not b
    assert np.count_nonzero(b) == 0
    # same tag+shape+dtype reuses the buffer
    a2 = compiled.workspace_empty("test-a", (4, 4), np.complex64)
    assert a2 is a


# ---------------------------------------------------------------------------
# numerics sanity (against numpy.fft, tolerance — not bitwise)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("n", [2, 16, 128])
def test_compiled_fft_matches_numpy(backend, n):
    rng = np.random.default_rng(8)
    x = _data((3, n), np.complex128, rng)
    np.testing.assert_allclose(
        stockham.fft(x), np.fft.fft(x, axis=-1), rtol=1e-10, atol=1e-10
    )
    np.testing.assert_allclose(
        stockham.ifft(x), np.fft.ifft(x, axis=-1), rtol=1e-10, atol=1e-10
    )
