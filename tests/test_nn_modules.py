"""Gradient checks for every differentiable module.

Every backward pass is validated against central finite differences on
both inputs and parameters (including the real and imaginary parts of the
complex spectral weights).
"""

import numpy as np
import pytest

from repro.nn.modules import GELU, Dense, Parameter, SpectralConv1d, SpectralConv2d

EPS = 1e-6
TOL = 1e-5


def _input_gradcheck(module, x, rng, n_probes=6):
    """Compare module.backward against finite differences of <out, g>."""
    y = module.forward(x)
    g = rng.standard_normal(y.shape)
    gx = module.backward(g.copy())
    assert gx.shape == x.shape
    worst = 0.0
    for _ in range(n_probes):
        idx = tuple(int(rng.integers(0, s)) for s in x.shape)
        xp = x.copy(); xp[idx] += EPS
        xm = x.copy(); xm[idx] -= EPS
        fd = (np.sum(module.forward(xp) * g) - np.sum(module.forward(xm) * g)) / (
            2 * EPS
        )
        worst = max(worst, abs(fd - gx[idx]) / max(abs(fd), 1.0))
    assert worst < TOL, f"input gradient mismatch {worst:.2e}"


def _param_gradcheck(module, x, param: Parameter, rng, n_probes=4):
    """Finite-difference the (possibly complex) parameter gradient."""
    y = module.forward(x)
    g = rng.standard_normal(y.shape)
    module.zero_grad()
    module.forward(x)
    module.backward(g.copy())
    an = param.grad.copy()
    is_complex = np.iscomplexobj(param.value)
    for _ in range(n_probes):
        idx = tuple(int(rng.integers(0, s)) for s in param.value.shape)
        deltas = [(EPS, "re")] + ([(1j * EPS, "im")] if is_complex else [])
        for delta, part in deltas:
            orig = param.value[idx]
            param.value[idx] = orig + delta
            fp = np.sum(module.forward(x) * g)
            param.value[idx] = orig - delta
            fm = np.sum(module.forward(x) * g)
            param.value[idx] = orig
            fd = (fp - fm) / (2 * EPS)
            got = an[idx].real if part == "re" else an[idx].imag
            assert abs(fd - got) / max(abs(fd), 1.0) < TOL, (
                f"{param.name}[{idx}].{part}: fd={fd:.6g} analytic={got:.6g}"
            )


class TestDense:
    def test_forward_values(self, rng):
        d = Dense(2, 3, rng)
        x = rng.standard_normal((4, 2, 5))
        y = d(x)
        expected = np.einsum("bis,io->bos", x, d.weight.value) + d.bias.value[
            None, :, None
        ]
        assert np.allclose(y, expected)

    def test_input_gradient(self, rng):
        d = Dense(3, 4, rng)
        _input_gradcheck(d, rng.standard_normal((2, 3, 6)), rng)

    def test_weight_and_bias_gradients(self, rng):
        d = Dense(3, 4, rng)
        x = rng.standard_normal((2, 3, 6))
        _param_gradcheck(d, x, d.weight, rng)
        _param_gradcheck(d, x, d.bias, rng)

    def test_2d_spatial_axes(self, rng):
        d = Dense(2, 2, rng)
        _input_gradcheck(d, rng.standard_normal((2, 2, 4, 3)), rng)

    def test_channel_mismatch_rejected(self, rng):
        d = Dense(3, 4, rng)
        with pytest.raises(ValueError):
            d(rng.standard_normal((2, 5, 6)))

    def test_backward_before_forward(self, rng):
        d = Dense(3, 4, rng)
        with pytest.raises(RuntimeError):
            d.backward(np.zeros((1, 4, 2)))


class TestGELU:
    def test_known_values(self):
        g = GELU()
        assert g(np.array([0.0]))[0] == pytest.approx(0.0)
        assert g(np.array([100.0]))[0] == pytest.approx(100.0, rel=1e-6)
        assert g(np.array([-100.0]))[0] == pytest.approx(0.0, abs=1e-6)

    def test_gradient(self, rng):
        _input_gradcheck(GELU(), rng.standard_normal((3, 4, 5)), rng)


class TestSpectralConv1d:
    @pytest.mark.parametrize("per_mode", [True, False])
    def test_input_gradient(self, rng, per_mode):
        m = SpectralConv1d(3, 4, 8, rng, per_mode=per_mode)
        _input_gradcheck(m, rng.standard_normal((2, 3, 32)), rng)

    @pytest.mark.parametrize("per_mode", [True, False])
    def test_weight_gradient(self, rng, per_mode):
        m = SpectralConv1d(2, 3, 4, rng, per_mode=per_mode)
        _param_gradcheck(m, rng.standard_normal((2, 2, 16)), m.weight, rng)

    def test_per_mode_and_shared_agree_when_weights_shared(self, rng):
        """A per-mode layer whose matrices are all equal == shared layer."""
        shared = SpectralConv1d(3, 4, 8, rng, per_mode=False)
        tied = SpectralConv1d(3, 4, 8, rng, per_mode=True)
        tied.weight.value = np.repeat(
            shared.weight.value[:, :, None], 8, axis=2
        )
        x = rng.standard_normal((2, 3, 32))
        assert np.allclose(shared(x), tied(x), atol=1e-10)

    def test_output_is_real(self, rng):
        m = SpectralConv1d(2, 2, 4, rng)
        y = m(rng.standard_normal((1, 2, 16)))
        assert not np.iscomplexobj(y)

    def test_modes_exceed_grid_rejected(self, rng):
        m = SpectralConv1d(2, 2, 64, rng)
        with pytest.raises(ValueError):
            m(rng.standard_normal((1, 2, 32)))

    def test_invalid_construction(self, rng):
        with pytest.raises(ValueError):
            SpectralConv1d(0, 2, 4, rng)


class TestSpectralConv2d:
    @pytest.mark.parametrize("per_mode", [True, False])
    def test_input_gradient(self, rng, per_mode):
        m = SpectralConv2d(2, 3, 4, 4, rng, per_mode=per_mode)
        _input_gradcheck(m, rng.standard_normal((2, 2, 16, 8)), rng)

    @pytest.mark.parametrize("per_mode", [True, False])
    def test_weight_gradient(self, rng, per_mode):
        m = SpectralConv2d(2, 2, 2, 4, rng, per_mode=per_mode)
        _param_gradcheck(m, rng.standard_normal((2, 2, 8, 16)), m.weight, rng)

    def test_rectangular_modes(self, rng):
        m = SpectralConv2d(2, 5, 2, 8, rng)
        y = m(rng.standard_normal((3, 2, 8, 32)))
        assert y.shape == (3, 5, 8, 32)

    def test_parameters_enumerated(self, rng):
        m = SpectralConv2d(2, 2, 2, 2, rng)
        names = [p.name for p in m.parameters()]
        assert any("weight" in n for n in names)

    def test_zero_grad(self, rng):
        m = SpectralConv2d(2, 2, 2, 2, rng)
        x = rng.standard_normal((1, 2, 8, 8))
        m.forward(x)
        m.backward(np.ones((1, 2, 8, 8)))
        assert np.any(m.weight.grad != 0)
        m.zero_grad()
        assert np.all(m.weight.grad == 0)
