"""Tests for the Stockham FFT: oracle agreement and spectral identities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fft.reference import dft, idft
from repro.fft.stockham import fft, fft2, ifft, ifft2, is_power_of_two

SIZES = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512]


def _random_complex(rng, shape, dtype=np.complex128):
    x = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    return x.astype(dtype)


class TestAgainstNumpy:
    @pytest.mark.parametrize("n", SIZES)
    def test_forward_matches_numpy(self, rng, n):
        x = _random_complex(rng, (3, n))
        assert np.allclose(fft(x), np.fft.fft(x), atol=1e-10)

    @pytest.mark.parametrize("n", SIZES)
    def test_inverse_matches_numpy(self, rng, n):
        x = _random_complex(rng, (3, n))
        assert np.allclose(ifft(x), np.fft.ifft(x), atol=1e-10)

    @pytest.mark.parametrize("axis", [0, 1, 2, -1, -2])
    def test_axis_handling(self, rng, axis):
        x = _random_complex(rng, (8, 16, 4))
        assert np.allclose(fft(x, axis=axis), np.fft.fft(x, axis=axis), atol=1e-10)

    def test_real_input_promoted(self, rng):
        x = rng.standard_normal((2, 64))
        assert np.allclose(fft(x), np.fft.fft(x), atol=1e-10)

    def test_fft2_matches_numpy(self, rng):
        x = _random_complex(rng, (2, 32, 16))
        assert np.allclose(fft2(x), np.fft.fft2(x), atol=1e-10)

    def test_ifft2_matches_numpy(self, rng):
        x = _random_complex(rng, (2, 16, 8))
        assert np.allclose(ifft2(x), np.fft.ifft2(x), atol=1e-10)

    def test_fft2_custom_axes(self, rng):
        x = _random_complex(rng, (8, 3, 16))
        assert np.allclose(
            fft2(x, axes=(0, 2)), np.fft.fft2(x, axes=(0, 2)), atol=1e-10
        )


class TestAgainstReferenceDFT:
    @pytest.mark.parametrize("n", [2, 8, 32, 128])
    def test_forward(self, rng, n):
        x = _random_complex(rng, (2, n))
        assert np.allclose(fft(x), dft(x), atol=1e-9)

    @pytest.mark.parametrize("n", [2, 8, 32, 128])
    def test_inverse(self, rng, n):
        x = _random_complex(rng, (2, n))
        assert np.allclose(ifft(x), idft(x), atol=1e-9)


class TestDtypes:
    def test_complex64_stays_single(self, rng):
        x = _random_complex(rng, (2, 64), np.complex64)
        y = fft(x)
        assert y.dtype == np.complex64
        assert np.allclose(y, np.fft.fft(x), atol=1e-3)

    def test_float32_promotes_to_complex64(self, rng):
        x = rng.standard_normal((2, 64)).astype(np.float32)
        assert fft(x).dtype == np.complex64

    def test_float64_promotes_to_complex128(self, rng):
        x = rng.standard_normal((2, 64))
        assert fft(x).dtype == np.complex128


class TestValidation:
    @pytest.mark.parametrize("n", [3, 6, 12, 100])
    def test_non_power_of_two_rejected(self, rng, n):
        x = _random_complex(rng, (2, n))
        with pytest.raises(ValueError):
            fft(x)
        with pytest.raises(ValueError):
            ifft(x)

    def test_fft2_needs_distinct_axes(self, rng):
        x = _random_complex(rng, (4, 4))
        with pytest.raises(ValueError):
            fft2(x, axes=(1, 1))

    def test_is_power_of_two(self):
        assert is_power_of_two(1) and is_power_of_two(1024)
        assert not is_power_of_two(0)
        assert not is_power_of_two(12)
        assert not is_power_of_two(-4)


@st.composite
def _signals(draw, max_log2: int = 7):
    n = 2 ** draw(st.integers(0, max_log2))
    batch = draw(st.integers(1, 3))
    elems = st.floats(-100, 100, allow_nan=False, width=32)
    re = draw(
        st.lists(st.lists(elems, min_size=n, max_size=n),
                 min_size=batch, max_size=batch)
    )
    im = draw(
        st.lists(st.lists(elems, min_size=n, max_size=n),
                 min_size=batch, max_size=batch)
    )
    return np.array(re) + 1j * np.array(im)


class TestProperties:
    @given(_signals())
    @settings(max_examples=25, deadline=None)
    def test_roundtrip(self, x):
        assert np.allclose(ifft(fft(x)), x, atol=1e-8 * (1 + np.abs(x).max()))

    @given(_signals())
    @settings(max_examples=25, deadline=None)
    def test_parseval(self, x):
        n = x.shape[-1]
        energy_time = np.sum(np.abs(x) ** 2)
        energy_freq = np.sum(np.abs(fft(x)) ** 2) / n
        assert np.isclose(energy_time, energy_freq,
                          rtol=1e-8, atol=1e-6)

    @given(_signals(), st.integers(-50, 50), st.integers(-50, 50))
    @settings(max_examples=25, deadline=None)
    def test_linearity(self, x, a, b):
        y = x[::-1] if x.shape[0] > 1 else x * 0.5
        lhs = fft(a * x + b * y)
        rhs = a * fft(x) + b * fft(y)
        scale = 1 + np.abs(lhs).max()
        assert np.allclose(lhs, rhs, atol=1e-7 * scale)

    @given(_signals(max_log2=6), st.integers(0, 63))
    @settings(max_examples=25, deadline=None)
    def test_shift_theorem(self, x, shift):
        n = x.shape[-1]
        shift %= n
        shifted = np.roll(x, -shift, axis=-1)
        k = np.arange(n)
        phase = np.exp(2j * np.pi * k * shift / n)
        scale = 1 + np.abs(x).max()
        assert np.allclose(fft(shifted), fft(x) * phase, atol=1e-7 * scale)

    def test_impulse_gives_flat_spectrum(self):
        x = np.zeros((1, 64))
        x[0, 0] = 1.0
        assert np.allclose(fft(x), np.ones((1, 64)), atol=1e-12)

    def test_constant_gives_dc_only(self):
        x = np.ones((1, 64))
        y = fft(x)
        assert y[0, 0] == pytest.approx(64)
        assert np.allclose(y[0, 1:], 0, atol=1e-10)
