"""Tests for kernel timing: roofline legs, phases, L2 model, wave model."""

import pytest

from repro.gpu.counters import PerfCounters
from repro.gpu.device import A100_SPEC, DeviceSpec, Occupancy
from repro.gpu.kernel import KernelSpec, LaunchConfig, _wave_inflation, kernel_time

BIG_GRID = 108 * 16  # fills the device for typical configs


def _spec(counters: PerfCounters, blocks: int = BIG_GRID, threads: int = 256,
          **kw) -> KernelSpec:
    return KernelSpec("k", LaunchConfig(blocks, threads), counters, **kw)


class TestLaunchConfig:
    @pytest.mark.parametrize("kw", [
        dict(blocks=0, threads_per_block=128),
        dict(blocks=4, threads_per_block=0),
        dict(blocks=4, threads_per_block=128, smem_per_block_bytes=-1),
    ])
    def test_invalid(self, kw):
        with pytest.raises(ValueError):
            LaunchConfig(**kw)


class TestRoofline:
    def test_compute_bound(self):
        c = PerfCounters(flops=1e12, global_bytes_read=1.0)
        t = kernel_time(_spec(c), A100_SPEC)
        assert t.steady_time == pytest.approx(1e12 / A100_SPEC.effective_flops())

    def test_memory_bound(self):
        c = PerfCounters(flops=1.0, global_bytes_read=1e10)
        t = kernel_time(_spec(c), A100_SPEC)
        assert t.steady_time == pytest.approx(
            1e10 / A100_SPEC.effective_bandwidth()
        )

    def test_derates_slow_the_legs(self):
        c = PerfCounters(flops=1e12)
        t0 = kernel_time(_spec(c), A100_SPEC)
        t1 = kernel_time(_spec(c, compute_derate=2.0), A100_SPEC)
        assert t1.compute_time == pytest.approx(2 * t0.compute_time)
        with pytest.raises(ValueError):
            _spec(c, memory_derate=0.5)

    def test_launch_overhead_added(self):
        c = PerfCounters(flops=1e9)
        t = kernel_time(_spec(c), A100_SPEC)
        assert t.total == pytest.approx(
            t.wave_quantized_time + A100_SPEC.kernel_launch_overhead_s
        )

    def test_sync_cost_scales_with_waves(self):
        base = PerfCounters(flops=1e9)
        with_sync = PerfCounters(flops=1e9, syncthreads=BIG_GRID * 100.0)
        t0 = kernel_time(_spec(base), A100_SPEC)
        t1 = kernel_time(_spec(with_sync), A100_SPEC)
        assert t1.sync_time > 0
        assert t1.steady_time > t0.steady_time

    def test_smem_leg(self):
        # Enough conflicted transactions to dominate.
        c = PerfCounters(smem_transactions=1e9, smem_ideal_transactions=1e8)
        t = kernel_time(_spec(c), A100_SPEC)
        expected = (
            1e9 * 128 / (A100_SPEC.effective_bandwidth()
                         * A100_SPEC.smem_bandwidth_ratio)
        )
        assert t.smem_time == pytest.approx(expected)


class TestL2Model:
    def test_candidate_bytes_served_faster_when_fitting(self):
        nbytes = 1e6  # tiny working set: fully L2-resident
        cold = PerfCounters(global_bytes_read=nbytes)
        warm = PerfCounters(global_bytes_read=nbytes, l2_candidate_bytes=nbytes)
        t_cold = kernel_time(_spec(cold), A100_SPEC)
        t_warm = kernel_time(_spec(warm), A100_SPEC)
        assert t_warm.dram_time == pytest.approx(
            t_cold.dram_time / A100_SPEC.l2_bandwidth_ratio
        )

    def test_oversized_candidates_degrade_to_dram(self):
        nbytes = 100 * A100_SPEC.l2_bytes
        warm = PerfCounters(global_bytes_read=nbytes, l2_candidate_bytes=nbytes)
        cold = PerfCounters(global_bytes_read=nbytes)
        t_warm = kernel_time(_spec(warm), A100_SPEC)
        t_cold = kernel_time(_spec(cold), A100_SPEC)
        # At 100x the cache, at most ~2 % of traffic can be L2-resident.
        assert t_warm.dram_time > 0.97 * t_cold.dram_time

    def test_partial_fit_interpolates(self):
        nbytes = 4 * A100_SPEC.l2_bytes
        warm = PerfCounters(global_bytes_read=nbytes, l2_candidate_bytes=nbytes)
        cold = PerfCounters(global_bytes_read=nbytes)
        t_warm = kernel_time(_spec(warm), A100_SPEC).dram_time
        t_cold = kernel_time(_spec(cold), A100_SPEC).dram_time
        assert t_cold / A100_SPEC.l2_bandwidth_ratio < t_warm < t_cold


class TestPhases:
    def test_phases_serialise(self):
        # Two phases, one compute-heavy and one memory-heavy: the summed
        # time must exceed the overlapped single-phase roofline.
        ph1 = PerfCounters(flops=1e12)
        ph2 = PerfCounters(global_bytes_read=1e10)
        total = ph1 + ph2
        fused = _spec(total, phases=(ph1, ph2))
        overlapped = _spec(total)
        t_fused = kernel_time(fused, A100_SPEC)
        t_over = kernel_time(overlapped, A100_SPEC)
        assert t_fused.steady_time == pytest.approx(
            t_over.compute_time + t_over.dram_time
        )
        assert t_fused.steady_time > t_over.steady_time

    def test_single_phase_equivalent_to_counters(self):
        c = PerfCounters(flops=1e11, global_bytes_read=1e9)
        assert kernel_time(_spec(c, phases=(c,)), A100_SPEC).steady_time == (
            pytest.approx(kernel_time(_spec(c), A100_SPEC).steady_time)
        )

    def test_empty_phases_rejected(self):
        with pytest.raises(ValueError):
            _spec(PerfCounters(), phases=())


class TestWaveInflation:
    def test_full_device_no_inflation(self):
        occ = Occupancy.compute(A100_SPEC, BIG_GRID, 256)
        assert _wave_inflation(BIG_GRID, occ, A100_SPEC) == pytest.approx(
            1.0, rel=0.05
        )

    def test_tiny_grid_heavily_inflated(self):
        occ = Occupancy.compute(A100_SPEC, 4, 256)
        infl = _wave_inflation(4, occ, A100_SPEC)
        assert infl > 10  # 4 blocks on 108 SMs

    def test_single_resident_block_penalty(self):
        d = A100_SPEC.with_(single_block_sm_efficiency=0.5)
        occ = Occupancy.compute(d, d.num_sms, 2048)  # one block per SM
        assert _wave_inflation(d.num_sms, occ, d) == pytest.approx(2.0)

    def test_inflation_monotone_in_grid_size(self):
        occ_small = Occupancy.compute(A100_SPEC, 16, 256)
        occ_big = Occupancy.compute(A100_SPEC, 64, 256)
        assert _wave_inflation(16, occ_small, A100_SPEC) > _wave_inflation(
            64, occ_big, A100_SPEC
        )
