"""Tests for the CGEMM traffic/FLOP model."""

import pytest

from repro.gemm.params import TABLE1_CGEMM
from repro.gemm.traffic import gemm_counters, gemm_flops

M, N, K = 4096, 64, 64
C64 = 8


class TestFlops:
    def test_complex_mac_is_8_real_flops(self):
        assert gemm_flops(10, 20, 30) == 8.0 * 10 * 20 * 30

    def test_validation(self):
        with pytest.raises(ValueError):
            gemm_flops(0, 1, 1)


class TestTraffic:
    def test_a_read_charged_once_by_default(self):
        c = gemm_counters(M, N, K)
        b_rows = -(-M // TABLE1_CGEMM.m_tb)
        expected = M * K * C64 + b_rows * K * N * C64
        assert c.global_bytes_read == pytest.approx(expected)

    def test_c_written_once(self):
        c = gemm_counters(M, N, K)
        assert c.global_bytes_written == pytest.approx(M * N * C64)

    def test_fused_a_side_removes_dram_reads(self):
        full = gemm_counters(M, N, K)
        fused = gemm_counters(M, N, K, read_a_from_global=False)
        assert full.global_bytes_read - fused.global_bytes_read == pytest.approx(
            M * K * C64
        )

    def test_fused_c_side_removes_writes(self):
        fused = gemm_counters(M, N, K, write_c_to_global=False)
        assert fused.global_bytes_written == 0.0

    def test_read_c_for_beta(self):
        c = gemm_counters(M, N, K, read_c=True)
        base = gemm_counters(M, N, K)
        assert c.global_bytes_read - base.global_bytes_read == pytest.approx(
            M * N * C64
        )

    def test_a_reread_factor(self):
        c1 = gemm_counters(M, N, K, a_reread_factor=1.0)
        c3 = gemm_counters(M, N, K, a_reread_factor=3.0)
        assert (c3.global_bytes_read - c1.global_bytes_read) == pytest.approx(
            2 * M * K * C64
        )
        with pytest.raises(ValueError):
            gemm_counters(M, N, K, a_reread_factor=0.5)

    def test_l2_candidate_flags(self):
        none = gemm_counters(M, N, K)
        both = gemm_counters(M, N, K, a_l2_candidate=True, c_l2_candidate=True)
        assert none.l2_candidate_bytes == 0.0
        assert both.l2_candidate_bytes == pytest.approx(
            M * K * C64 + M * N * C64
        )


class TestSharedMemory:
    def test_bank_conflicts_inflate_transactions(self):
        clean = gemm_counters(M, N, K, bank_utilization=1.0)
        dirty = gemm_counters(M, N, K, bank_utilization=0.25)
        assert dirty.smem_transactions == pytest.approx(
            4 * clean.smem_transactions
        )
        assert dirty.smem_ideal_transactions == pytest.approx(
            clean.smem_ideal_transactions
        )
        assert dirty.bank_utilization == pytest.approx(0.25)

    def test_bank_utilization_validation(self):
        with pytest.raises(ValueError):
            gemm_counters(M, N, K, bank_utilization=0.0)

    def test_sync_per_k_tile(self):
        c = gemm_counters(M, N, K)
        blocks = TABLE1_CGEMM.grid_blocks(M, N)
        assert c.syncthreads == pytest.approx(
            blocks * TABLE1_CGEMM.k_iterations(K)
        )
