"""Tests for the cuFFT/cuBLAS/memcpy models and the PyTorch-style oracle."""

import numpy as np
import pytest

from repro.baselines.cublas import cublas_cgemm_kernel
from repro.baselines.cufft import cufft_kernel
from repro.baselines.memcpy import memcpy_kernel
from repro.baselines.pytorch_fno import (
    pytorch_like_spectral_conv_1d,
    pytorch_like_spectral_conv_2d,
)

C64 = 8


class TestCufftModel:
    def test_always_full_size_traffic(self):
        k = cufft_kernel(128, 1000)
        assert k.counters.global_bytes_read == 1000 * 128 * C64
        assert k.counters.global_bytes_written == 1000 * 128 * C64

    def test_flop_convention(self):
        k = cufft_kernel(256, 10)
        assert k.counters.flops == pytest.approx(5 * 256 * 8 * 10)

    def test_intermediate_flags_mark_l2(self):
        cold = cufft_kernel(128, 10)
        warm = cufft_kernel(128, 10, input_intermediate=True,
                            output_intermediate=True)
        assert cold.counters.l2_candidate_bytes == 0
        assert warm.counters.l2_candidate_bytes == pytest.approx(
            warm.counters.global_bytes
        )

    def test_grid_geometry(self):
        k = cufft_kernel(128, 1000, signals_per_block=8)
        assert k.launch.blocks == 125
        assert k.launch.smem_per_block_bytes == 8 * 128 * C64

    @pytest.mark.parametrize("n,batch", [(1, 10), (128, 0)])
    def test_validation(self, n, batch):
        with pytest.raises(ValueError):
            cufft_kernel(n, batch)


class TestCublasModel:
    def test_black_box_round_trips(self):
        k = cublas_cgemm_kernel(1024, 64, 64)
        assert k.counters.global_bytes_read > 0
        assert k.counters.global_bytes_written == 1024 * 64 * C64

    def test_grid_matches_tiling(self):
        k = cublas_cgemm_kernel(1024, 64, 64)
        assert k.launch.blocks == (1024 // 32) * (64 // 32)


class TestMemcpyModel:
    def test_truncation_copy(self):
        k = memcpy_kernel(100, 100, name="trunc")
        assert k.counters.flops == 0
        assert k.counters.global_bytes_read == 100 * C64
        assert k.counters.global_bytes_written == 100 * C64

    def test_padding_copy_writes_more_than_reads(self):
        k = memcpy_kernel(100, 400, name="pad")
        assert k.counters.global_bytes_written == 4 * k.counters.global_bytes_read

    def test_all_bytes_are_l2_candidates(self):
        k = memcpy_kernel(100, 400)
        assert k.counters.l2_candidate_bytes == pytest.approx(
            k.counters.global_bytes
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            memcpy_kernel(10, 0)


class TestPytorchLikeOracle:
    def test_1d_manual_computation(self, rng):
        """Check the staged pipeline against a by-hand single sample."""
        x = rng.standard_normal((1, 2, 8)) + 0j
        w = rng.standard_normal((2, 3)) + 1j * rng.standard_normal((2, 3))
        out = pytorch_like_spectral_conv_1d(x, w, modes=2)
        xk = np.fft.fft(x, axis=-1)[:, :, :2]
        yk = np.zeros((1, 3, 8), dtype=complex)
        for o in range(3):
            for m in range(2):
                yk[0, o, m] = sum(xk[0, i, m] * w[i, o] for i in range(2))
        expected = np.fft.ifft(yk, axis=-1)
        assert np.allclose(out, expected, atol=1e-12)

    def test_1d_output_shape(self, rng):
        x = rng.standard_normal((4, 6, 32))
        w = rng.standard_normal((6, 5)) + 0j
        assert pytorch_like_spectral_conv_1d(x, w, 8).shape == (4, 5, 32)

    def test_2d_output_shape(self, rng):
        x = rng.standard_normal((2, 3, 16, 8))
        w = rng.standard_normal((3, 7)) + 0j
        assert pytorch_like_spectral_conv_2d(x, w, 4, 2).shape == (2, 7, 16, 8)

    def test_2d_lowpass_property(self, rng):
        """With identity weights the layer is an ideal low-pass filter."""
        x = rng.standard_normal((1, 2, 16, 16))
        w = np.eye(2, dtype=complex)
        out = pytorch_like_spectral_conv_2d(x, w, 4, 4)
        xk = np.fft.fft2(x, axes=(-2, -1))
        xk[:, :, 4:, :] = 0
        xk[:, :, :, 4:] = 0
        assert np.allclose(out, np.fft.ifft2(xk, axes=(-2, -1)), atol=1e-10)

    @pytest.mark.parametrize("modes", [0, 33])
    def test_1d_modes_validation(self, rng, modes):
        x = rng.standard_normal((1, 2, 32))
        w = np.eye(2, dtype=complex)
        with pytest.raises(ValueError):
            pytorch_like_spectral_conv_1d(x, w, modes)

    def test_weight_shape_validation(self, rng):
        x = rng.standard_normal((1, 2, 32))
        with pytest.raises(ValueError):
            pytorch_like_spectral_conv_1d(x, np.zeros((3, 3), dtype=complex), 4)

    def test_input_rank_validation(self, rng):
        with pytest.raises(ValueError):
            pytorch_like_spectral_conv_1d(
                np.zeros((2, 32)), np.eye(2, dtype=complex), 4
            )
