"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG, fresh per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def rng2() -> np.random.Generator:
    """A second independent stream for tests needing two."""
    return np.random.default_rng(67890)
