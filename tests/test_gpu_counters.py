"""Tests for the performance-counter algebra."""

import pytest

from repro.gpu.counters import PerfCounters


def _sample() -> PerfCounters:
    return PerfCounters(
        flops=100.0,
        global_bytes_read=40.0,
        global_bytes_written=10.0,
        kernel_launches=2,
        smem_transactions=8.0,
        smem_ideal_transactions=4.0,
        syncthreads=3.0,
        l2_candidate_bytes=20.0,
    )


class TestAlgebra:
    def test_addition_is_fieldwise(self):
        a, b = _sample(), _sample()
        c = a + b
        assert c.flops == 200.0
        assert c.global_bytes_read == 80.0
        assert c.kernel_launches == 4
        assert c.smem_transactions == 16.0
        assert c.l2_candidate_bytes == 40.0

    def test_addition_leaves_operands(self):
        a, b = _sample(), _sample()
        _ = a + b
        assert a.flops == 100.0 and b.flops == 100.0

    def test_iadd(self):
        a = _sample()
        a += _sample()
        assert a.flops == 200.0
        assert a.syncthreads == 6.0

    def test_add_wrong_type(self):
        with pytest.raises(TypeError):
            _ = _sample() + 3  # type: ignore[operator]

    def test_scaled(self):
        s = _sample().scaled(0.5)
        assert s.flops == 50.0
        assert s.kernel_launches == 1
        assert s.l2_candidate_bytes == 10.0

    def test_scaled_negative_rejected(self):
        with pytest.raises(ValueError):
            _sample().scaled(-1.0)

    def test_zero_is_identity(self):
        a = _sample()
        z = PerfCounters()
        assert (a + z).flops == a.flops
        assert (a + z).global_bytes == a.global_bytes


class TestDerived:
    def test_global_bytes(self):
        assert _sample().global_bytes == 50.0

    def test_bank_utilization(self):
        assert _sample().bank_utilization == pytest.approx(0.5)

    def test_bank_utilization_no_smem(self):
        assert PerfCounters().bank_utilization == 1.0

    def test_arithmetic_intensity(self):
        assert _sample().arithmetic_intensity == pytest.approx(2.0)

    def test_arithmetic_intensity_no_traffic(self):
        assert PerfCounters(flops=5.0).arithmetic_intensity == float("inf")

    def test_summary_contains_key_numbers(self):
        s = _sample().summary()
        assert "launches=2" in s
        assert "50.00%" in s


class TestValidation:
    @pytest.mark.parametrize(
        "field",
        ["flops", "global_bytes_read", "global_bytes_written",
         "smem_transactions", "syncthreads", "l2_candidate_bytes"],
    )
    def test_negative_rejected(self, field):
        with pytest.raises(ValueError):
            PerfCounters(**{field: -1.0})

    def test_negative_launches_rejected(self):
        with pytest.raises(ValueError):
            PerfCounters(kernel_launches=-1)

    def test_l2_candidate_capped_by_traffic(self):
        with pytest.raises(ValueError):
            PerfCounters(global_bytes_read=5.0, l2_candidate_bytes=10.0)
