"""Tests for the pipeline cost models: kernel counts, traffic, orderings.

These encode the *structural* facts of the paper's Table 2 ladder: how
many launches each stage needs, which traffic legs fusion eliminates, and
the qualitative performance relations §5 reports.
"""

import pytest

from repro.core.config import FNO1DProblem, FNO2DProblem, TurboFNOConfig
from repro.core.pipeline_model import (
    best_stage_1d,
    best_stage_2d,
    build_pipeline_1d,
    build_pipeline_2d,
    fused_kernel,
)
from repro.core.stages import FusionStage
from repro.gpu.timeline import speedup_percent

PROB_1D = FNO1DProblem.from_m_spatial(2**20, hidden=64, dim_x=128, modes=64)
PROB_2D = FNO2DProblem(batch=8, hidden=64, dim_x=256, dim_y=128,
                       modes_x=64, modes_y=64)


class TestKernelCounts:
    @pytest.mark.parametrize("stage,count", [
        (FusionStage.PYTORCH, 5),
        (FusionStage.FFT_OPT, 3),
        (FusionStage.FUSED_FFT_GEMM, 2),
        (FusionStage.FUSED_GEMM_IFFT, 2),
        (FusionStage.FUSED_ALL, 1),
    ])
    def test_1d_launches(self, stage, count):
        pipe = build_pipeline_1d(PROB_1D, stage)
        assert len(pipe.kernels) == count
        assert pipe.counters().kernel_launches == count

    @pytest.mark.parametrize("stage,count", [
        (FusionStage.PYTORCH, 7),
        (FusionStage.FFT_OPT, 5),
        (FusionStage.FUSED_FFT_GEMM, 4),
        (FusionStage.FUSED_GEMM_IFFT, 4),
        (FusionStage.FUSED_ALL, 3),
    ])
    def test_2d_launches(self, stage, count):
        pipe = build_pipeline_2d(PROB_2D, stage)
        assert len(pipe.kernels) == count

    def test_best_requires_resolver(self):
        with pytest.raises(ValueError):
            build_pipeline_1d(PROB_1D, FusionStage.BEST)
        with pytest.raises(ValueError):
            build_pipeline_2d(PROB_2D, FusionStage.BEST)


class TestTraffic:
    def test_stage_a_eliminates_copy_traffic(self):
        base = build_pipeline_1d(PROB_1D, FusionStage.PYTORCH).counters()
        opt = build_pipeline_1d(PROB_1D, FusionStage.FFT_OPT).counters()
        assert opt.global_bytes < base.global_bytes

    def test_full_fusion_minimises_traffic_1d(self):
        by_stage = {
            s: build_pipeline_1d(PROB_1D, s).counters().global_bytes
            for s in (FusionStage.PYTORCH, FusionStage.FFT_OPT,
                      FusionStage.FUSED_ALL)
        }
        assert (by_stage[FusionStage.FUSED_ALL]
                < by_stage[FusionStage.FFT_OPT]
                < by_stage[FusionStage.PYTORCH])

    def test_stage_d_touches_only_input_weights_output(self):
        pipe = build_pipeline_1d(PROB_1D, FusionStage.FUSED_ALL)
        c = pipe.counters()
        p = PROB_1D
        io_bytes = (
            p.batch * p.hidden * p.dim_x * 8      # read x
            + p.batch * p.n_out * p.dim_x * 8     # write y
        )
        # Weights (B panels) are the only other traffic.
        assert c.global_bytes_written == pytest.approx(
            p.batch * p.n_out * p.dim_x * 8
        )
        assert c.global_bytes >= io_bytes

    def test_2d_truncation_reduces_second_stage_quadratically(self):
        """§3.3: stage-2 work shrinks by (modes_x/dim_x) x (modes_y/dim_y)."""
        base = build_pipeline_2d(PROB_2D, FusionStage.PYTORCH)
        opt = build_pipeline_2d(PROB_2D, FusionStage.FFT_OPT)
        base_y = next(k for k in base.kernels if k.name == "cufft_y")
        opt_y = next(k for k in opt.kernels if k.name == "turbo_fft_y_trunc")
        # Reads shrink by the x-truncation factor (fewer rows)...
        assert opt_y.counters.global_bytes_read == pytest.approx(
            base_y.counters.global_bytes_read * PROB_2D.modes_x / PROB_2D.dim_x
        )
        # ...and writes additionally by the y-truncation factor.
        assert opt_y.counters.global_bytes_written == pytest.approx(
            base_y.counters.global_bytes_written
            * (PROB_2D.modes_x / PROB_2D.dim_x)
            * (PROB_2D.modes_y / PROB_2D.dim_y)
        )


class TestQualitativeOrderings:
    """The paper's §5 relations at the reference configuration."""

    def _speedups_1d(self, problem):
        base = build_pipeline_1d(problem, FusionStage.PYTORCH).total_time()
        return {
            s: speedup_percent(
                base, build_pipeline_1d(problem, s).total_time()
            )
            for s in FusionStage.ladder()
        }

    def test_every_stage_beats_pytorch_at_reference_size(self):
        speeds = self._speedups_1d(PROB_1D)
        assert all(v > 0 for v in speeds.values())

    def test_full_fusion_is_best_at_reference_size(self):
        speeds = self._speedups_1d(PROB_1D)
        assert speeds[FusionStage.FUSED_ALL] == max(speeds.values())

    def test_fusion_benefit_inverts_at_large_k(self):
        """Figs. 11/13: B falls below A for large hidden dimensions."""
        prob = FNO1DProblem.from_m_spatial(2**20, hidden=136, dim_x=128,
                                           modes=64)
        speeds = self._speedups_1d(prob)
        assert speeds[FusionStage.FUSED_FFT_GEMM] < speeds[FusionStage.FFT_OPT]

    def test_stage_c_robust_at_large_k(self):
        """Fig. 12: CGEMM-iFFT fusion stays ahead of A at large K."""
        prob = FNO1DProblem.from_m_spatial(2**20, hidden=136, dim_x=128,
                                           modes=64)
        speeds = self._speedups_1d(prob)
        assert speeds[FusionStage.FUSED_GEMM_IFFT] > speeds[FusionStage.FFT_OPT]

    def test_blue_region_small_batch_large_k(self):
        """Fig. 14: TurboFNO can lose at small batch x large K."""
        prob = FNO1DProblem(batch=2, hidden=104, dim_x=128, modes=64)
        stage, t = best_stage_1d(prob)
        base = build_pipeline_1d(prob, FusionStage.PYTORCH).total_time()
        assert speedup_percent(base, t) < 0

    def test_best_stage_returns_ladder_member(self):
        stage, t = best_stage_1d(PROB_1D)
        assert stage in FusionStage.ladder()
        assert t > 0
        stage2, t2 = best_stage_2d(PROB_2D)
        assert stage2 in FusionStage.ladder()

    def test_2d_fusion_increment_is_small(self):
        """§5.2 B.2: 2-D FFT-CGEMM fusion adds only a few percent."""
        base = build_pipeline_2d(PROB_2D, FusionStage.PYTORCH).total_time()
        a = speedup_percent(
            base, build_pipeline_2d(PROB_2D, FusionStage.FFT_OPT).total_time()
        )
        b = speedup_percent(
            base,
            build_pipeline_2d(PROB_2D, FusionStage.FUSED_FFT_GEMM).total_time(),
        )
        assert 0 < b - a < 25


class TestFusedKernelBuilder:
    def test_requires_some_fusion(self):
        with pytest.raises(ValueError):
            fused_kernel("x", 8, 64, 64, 128, 64, TurboFNOConfig(),
                         include_fft=False, include_ifft=False)

    def test_phase_count(self):
        cfg = TurboFNOConfig()
        b = fused_kernel("b", 8, 64, 64, 128, 64, cfg, True, False)
        c = fused_kernel("c", 8, 64, 64, 128, 64, cfg, False, True)
        d = fused_kernel("d", 8, 64, 64, 128, 64, cfg, True, True)
        assert len(b.phases) == 2
        assert len(c.phases) == 2
        assert len(d.phases) == 3

    def test_totals_are_phase_sums(self):
        d = fused_kernel("d", 8, 64, 64, 128, 64, TurboFNOConfig(), True, True)
        total = sum((ph.flops for ph in d.phases))
        assert d.counters.flops == pytest.approx(total)

    def test_bank_conflict_ablation_slows_kernel(self):
        """Using the naive (Fig. 8a) epilogue layout must cost time."""
        from repro.gpu.kernel import kernel_time
        from repro.gpu.device import A100_SPEC

        good = TurboFNOConfig()
        mild = TurboFNOConfig(epilogue_bank_utilization=0.25)
        # Fig. 7(b) naive write-back: 6.25 % utilization.
        severe = TurboFNOConfig(
            epilogue_bank_utilization=0.0625, forward_bank_utilization=0.0625
        )
        k_good = fused_kernel("d", 2048, 64, 64, 128, 64, good, True, True)
        k_mild = fused_kernel("d", 2048, 64, 64, 128, 64, mild, True, True)
        k_sev = fused_kernel("d", 2048, 64, 64, 128, 64, severe, True, True)
        t_good = kernel_time(k_good, A100_SPEC)
        t_mild = kernel_time(k_mild, A100_SPEC)
        t_sev = kernel_time(k_sev, A100_SPEC)
        # Conflicts always add replays...
        assert t_mild.smem_time > t_good.smem_time
        # ...and at Fig. 7(b) severity they dominate the kernel.
        assert t_sev.steady_time > t_good.steady_time
