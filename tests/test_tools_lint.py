"""Tests for ``repro.tools.lint``: the project-invariant analyzer.

Every rule gets a fixture pair — a known-bad snippet it must flag and a
known-good one it must not — built as miniature ``src/repro/...`` trees
under ``tmp_path`` so the path-scoping, allowlist, and inline
suppression mechanics are exercised exactly as they run against the
real repo.  The suite ends with the self-run gate: the repository this
file lives in must lint clean.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.tools.lint import RULES, Finding, rule_names, run_lint

REPO_ROOT = Path(__file__).resolve().parents[1]


def _write(root: Path, rel: str, text: str) -> None:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(text))


def _rules_hit(root: Path, rule: str | None = None) -> set[str]:
    findings = run_lint(root, [rule] if rule else None)
    return {f.rule for f in findings}


class TestDeterminism:
    def test_flags_wallclock_and_unseeded_rng(self, tmp_path):
        _write(tmp_path, "src/repro/fft/bad.py", """\
            import time
            import numpy as np

            def f():
                t = time.perf_counter()
                rng = np.random.default_rng()
                return t, rng
            """)
        findings = run_lint(tmp_path, ["determinism"])
        messages = " ".join(f.message for f in findings)
        assert "wall-clock" in messages
        assert "unseeded" in messages

    def test_flags_stdlib_random_and_legacy_globals(self, tmp_path):
        _write(tmp_path, "src/repro/core/bad.py", """\
            import random
            import numpy as np

            def g():
                np.random.seed(0)
                return random.random()
            """)
        findings = run_lint(tmp_path, ["determinism"])
        assert len(findings) == 2  # the import and the np.random.seed call

    def test_seeded_rng_and_out_of_scope_paths_pass(self, tmp_path):
        _write(tmp_path, "src/repro/nn/good.py", """\
            import numpy as np

            def f():
                return np.random.default_rng(123).standard_normal(4)
            """)
        # pde/ is sampling API territory, outside the bit-identity scope.
        _write(tmp_path, "src/repro/pde/sampler.py", """\
            import numpy as np

            def sample(rng=None):
                if rng is None:
                    rng = np.random.default_rng()
                return rng.standard_normal(4)
            """)
        assert run_lint(tmp_path, ["determinism"]) == []

    def test_autotune_allowlisted(self, tmp_path):
        _write(tmp_path, "src/repro/core/autotune.py", """\
            import time

            def measure():
                return time.perf_counter()
            """)
        assert run_lint(tmp_path, ["determinism"]) == []


class TestRngTruthiness:
    def test_flags_or_default_rng(self, tmp_path):
        _write(tmp_path, "src/repro/pde/bad.py", """\
            import numpy as np

            def f(rng=None):
                rng = rng or np.random.default_rng()
                return rng
            """)
        findings = run_lint(tmp_path, ["rng-truthiness"])
        assert len(findings) == 1
        assert "Generator truthiness" in findings[0].message

    def test_is_none_check_passes(self, tmp_path):
        _write(tmp_path, "src/repro/pde/good.py", """\
            import numpy as np

            def f(rng=None):
                if rng is None:
                    rng = np.random.default_rng()
                return rng
            """)
        assert run_lint(tmp_path, ["rng-truthiness"]) == []


class TestCacheScope:
    def test_flags_global_cache_import_and_attribute(self, tmp_path):
        _write(tmp_path, "src/repro/core/bad.py", """\
            from repro.fft.compiled import default_plan_caches

            def f():
                return default_plan_caches().clear()
            """)
        _write(tmp_path, "src/repro/nn/bad2.py", """\
            from repro.fft import compiled

            def g():
                return compiled._DEFAULT_PLAN_CACHES
            """)
        findings = run_lint(tmp_path, ["cache-scope"])
        assert {f.path for f in findings} == {
            "src/repro/core/bad.py", "src/repro/nn/bad2.py",
        }

    def test_owner_module_and_scope_api_pass(self, tmp_path):
        # compiled.py itself owns the global; session.py is allowlisted.
        _write(tmp_path, "src/repro/fft/compiled.py", """\
            _DEFAULT_PLAN_CACHES = object()

            def default_plan_caches():
                return _DEFAULT_PLAN_CACHES
            """)
        _write(tmp_path, "src/repro/api/session.py", """\
            from repro.fft.compiled import default_plan_caches

            def make():
                return default_plan_caches()
            """)
        _write(tmp_path, "src/repro/core/good.py", """\
            from repro.fft.compiled import current_plan_caches

            def f():
                return current_plan_caches()
            """)
        assert run_lint(tmp_path, ["cache-scope"]) == []


class TestShmLifecycle:
    def test_flags_direct_construction_outside_shm(self, tmp_path):
        _write(tmp_path, "src/repro/api/serve/rogue.py", """\
            from multiprocessing import shared_memory

            def f():
                return shared_memory.SharedMemory(create=True, size=64)
            """)
        findings = run_lint(tmp_path, ["shm-lifecycle"])
        assert len(findings) == 2  # the import and the construction

    def test_flags_registry_without_close_all(self, tmp_path):
        _write(tmp_path, "src/repro/api/serve/leaky.py", """\
            from repro.api.serve.shm import SegmentRegistry

            def f():
                return SegmentRegistry()
            """)
        findings = run_lint(tmp_path, ["shm-lifecycle"])
        assert len(findings) == 1
        assert "close_all" in findings[0].message

    def test_shm_module_excluded_and_paired_registry_passes(self, tmp_path):
        _write(tmp_path, "src/repro/api/serve/shm.py", """\
            from multiprocessing import shared_memory

            def create(size):
                return shared_memory.SharedMemory(create=True, size=size)
            """)
        _write(tmp_path, "src/repro/api/serve/clean.py", """\
            from repro.api.serve.shm import SegmentRegistry

            def f():
                reg = SegmentRegistry()
                try:
                    return reg
                finally:
                    reg.close_all()
            """)
        assert run_lint(tmp_path, ["shm-lifecycle"]) == []


class TestLockOrder:
    def test_flags_nested_inversion(self, tmp_path):
        _write(tmp_path, "src/repro/api/serve/bad.py", """\
            class Pool:
                def f(self):
                    with self._stats_lock:
                        with self._lock:
                            pass
            """)
        findings = run_lint(tmp_path, ["lock-order"])
        assert len(findings) == 1
        assert "_stats_lock" in findings[0].message

    def test_flags_explicit_acquire_inversion(self, tmp_path):
        _write(tmp_path, "src/repro/api/serve/bad2.py", """\
            class Pool:
                def f(self):
                    with self._stats_lock:
                        self._lock.acquire()
            """)
        assert len(run_lint(tmp_path, ["lock-order"])) == 1

    def test_documented_order_passes(self, tmp_path):
        _write(tmp_path, "src/repro/api/serve/good.py", """\
            class Pool:
                def f(self):
                    with self._lock:
                        with self._stats_lock:
                            pass
            """)
        assert run_lint(tmp_path, ["lock-order"]) == []


class TestServeExcept:
    def test_flags_unannotated_broad_handler(self, tmp_path):
        _write(tmp_path, "src/repro/api/serve/bad.py", """\
            def f():
                try:
                    work()
                except Exception:
                    return None
            """)
        findings = run_lint(tmp_path, ["serve-except"])
        assert len(findings) == 1

    def test_typed_reraise_annotation_and_narrow_pass(self, tmp_path):
        _write(tmp_path, "src/repro/api/serve/good.py", """\
            def typed():
                try:
                    work()
                except Exception as exc:
                    raise ServeError(str(exc)) from exc

            def annotated():
                try:
                    work()
                except Exception:  # noqa: BLE001 - teardown best-effort
                    pass

            def narrow():
                try:
                    work()
                except (OSError, ValueError):
                    pass
            """)
        assert run_lint(tmp_path, ["serve-except"]) == []

    def test_scope_is_serve_only(self, tmp_path):
        _write(tmp_path, "src/repro/core/elsewhere.py", """\
            def f():
                try:
                    work()
                except Exception:
                    return None
            """)
        assert run_lint(tmp_path, ["serve-except"]) == []


_PROTO_WORKER = """\
    def worker_main(request_queue, body):
        while True:
            msg = request_queue.get()
            kind = msg[0]
            if kind in ("req", "roll"):
                body.send(("res", 1, 2))
            elif kind == "model":
                pass
            elif kind == "stats":
                body.send(("stats", msg[1], {{}}))

    def heartbeat(body):
        body.send(("hb", 0, None)){extra_send}
    """

_PROTO_POOL = """\
    def _collect(self, msg):
        kind = msg[0]
        if kind == "res":
            pass
        elif kind == "hb":
            pass
        elif kind == "stats":
            pass{extra_handler}

    def _dispatch(self, handle, rollout):
        if rollout:
            kind = "roll"
        else:
            kind = "req"
        handle.queue.put((kind, 1, 2))
        handle.queue.put(("model", 3))
        handle.queue.put(("stats", 4))
        self._fallback_queue.put(("not", "a", "wire", "tag"))
    """


class TestWorkerProtocol:
    def _tree(self, tmp_path, extra_send="", extra_handler=""):
        _write(tmp_path, "src/repro/api/serve/worker.py",
               _PROTO_WORKER.format(extra_send=extra_send))
        _write(tmp_path, "src/repro/api/serve/pool.py",
               _PROTO_POOL.format(extra_handler=extra_handler))

    def test_matched_protocol_passes(self, tmp_path):
        self._tree(tmp_path)
        assert run_lint(tmp_path, ["worker-protocol"]) == []

    def test_unhandled_worker_tag_flagged(self, tmp_path):
        self._tree(tmp_path, extra_send='\n        body.send(("exp", 9))')
        findings = run_lint(tmp_path, ["worker-protocol"])
        assert len(findings) == 1
        assert "'exp'" in findings[0].message
        assert "never handled" in findings[0].message

    def test_unreachable_pool_handler_flagged(self, tmp_path):
        self._tree(tmp_path,
                   extra_handler='\n        elif kind == "warmed":\n'
                                 '            pass')
        findings = run_lint(tmp_path, ["worker-protocol"])
        assert len(findings) == 1
        assert "'warmed'" in findings[0].message
        assert "never emitted" in findings[0].message

    def test_kind_variable_resolution_covers_dispatch(self, tmp_path):
        """The parent->worker direction sees through ``kind = "req"``
        assignments; dropping the worker's "roll" branch must flag."""
        worker = _PROTO_WORKER.replace('("req", "roll")', '("req",)')
        _write(tmp_path, "src/repro/api/serve/worker.py",
               worker.format(extra_send=""))
        _write(tmp_path, "src/repro/api/serve/pool.py",
               _PROTO_POOL.format(extra_handler=""))
        findings = run_lint(tmp_path, ["worker-protocol"])
        assert len(findings) == 1
        assert "'roll'" in findings[0].message


class TestNoAssert:
    def test_flags_library_and_example_asserts(self, tmp_path):
        _write(tmp_path, "src/repro/core/bad.py", """\
            def f(x):
                assert x > 0
                return x
            """)
        _write(tmp_path, "examples/demo.py", """\
            assert 1 + 1 == 2
            """)
        findings = run_lint(tmp_path, ["no-assert"])
        assert {f.path for f in findings} == {
            "src/repro/core/bad.py", "examples/demo.py",
        }

    def test_explicit_raise_passes(self, tmp_path):
        _write(tmp_path, "src/repro/core/good.py", """\
            def f(x):
                if x <= 0:
                    raise ValueError("x must be positive")
                return x
            """)
        assert run_lint(tmp_path, ["no-assert"]) == []


class TestMechanics:
    def test_inline_suppression(self, tmp_path):
        _write(tmp_path, "src/repro/core/suppressed.py", """\
            def f(x):
                assert x > 0  # lint: allow[no-assert]
                return x
            """)
        assert run_lint(tmp_path, ["no-assert"]) == []

    def test_inline_suppression_is_per_rule(self, tmp_path):
        _write(tmp_path, "src/repro/core/wrong_tag.py", """\
            def f(x):
                assert x > 0  # lint: allow[determinism]
                return x
            """)
        assert len(run_lint(tmp_path, ["no-assert"])) == 1

    def test_unknown_rule_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown rule"):
            run_lint(tmp_path, ["not-a-rule"])

    def test_syntax_error_reported_not_raised(self, tmp_path):
        _write(tmp_path, "src/repro/core/broken.py", "def f(:\n")
        findings = run_lint(tmp_path, ["no-assert"])
        assert [f.rule for f in findings] == ["syntax"]

    def test_findings_sorted_and_serializable(self, tmp_path):
        _write(tmp_path, "src/repro/core/b.py", "assert True\n")
        _write(tmp_path, "src/repro/core/a.py", "assert True\n")
        findings = run_lint(tmp_path, ["no-assert"])
        assert [f.path for f in findings] == [
            "src/repro/core/a.py", "src/repro/core/b.py",
        ]
        payload = findings[0].as_dict()
        assert payload["rule"] == "no-assert"
        assert ":" in findings[0].format()

    def test_registry_names_match(self):
        assert rule_names() == sorted(RULES)
        assert len(RULES) >= 6  # the issue's floor
        for rule in RULES.values():
            assert rule.check is not None or rule.project_check is not None


class TestSelfRun:
    def test_repository_lints_clean(self):
        """The CI gate: zero findings on this repository."""
        findings = run_lint(REPO_ROOT)
        assert findings == [], "\n".join(f.format() for f in findings)

    def test_every_rule_runs_against_the_repo(self):
        """No rule silently scoped out of existence: each per-file rule
        applies to at least one real file, and the allowlisted owners
        exist."""
        from repro.tools.lint import _iter_files

        rel_paths = [
            p.relative_to(REPO_ROOT).as_posix()
            for p in _iter_files(REPO_ROOT)
        ]
        for rule in RULES.values():
            if rule.check is not None:
                assert any(rule.applies(p) for p in rel_paths), rule.name
            for pattern, _reason in rule.allow:
                assert (REPO_ROOT / pattern).exists(), (
                    f"{rule.name} allowlists {pattern}, which is gone"
                )
